// Suite generation: produce a QUBIKOS benchmark release for an
// architecture, as QASM + JSON metadata on disk.
//
//   $ ./generate_suite [arch] [out_dir] [gates] [per_count] [seed]
//   $ ./generate_suite sycamore54 ./suite_sycamore 1500 10 1
//
// Defaults reproduce the paper's Aspen-4 configuration (swap counts
// 5/10/15/20, 300 two-qubit gates).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "arch/architectures.hpp"
#include "core/suite.hpp"
#include "core/verifier.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace qubikos;

    const std::string arch_name = argc > 1 ? argv[1] : "aspen4";
    const std::string out_dir = argc > 2 ? argv[2] : "./suite_" + arch_name;
    const std::size_t gates = argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 300;
    const int per_count = argc > 4 ? std::atoi(argv[4]) : 10;
    const std::uint64_t seed = argc > 5 ? static_cast<std::uint64_t>(std::atoll(argv[5])) : 1;

    const arch::architecture device = arch::by_name(arch_name);

    core::suite_spec spec;
    spec.arch_name = device.name;
    spec.swap_counts = {5, 10, 15, 20};
    spec.circuits_per_count = per_count;
    spec.total_two_qubit_gates = gates;
    spec.base_seed = seed;

    std::printf("generating %zu x %d QUBIKOS circuits for %s...\n", spec.swap_counts.size(),
                per_count, device.name.c_str());
    const core::suite s = core::generate_suite(device, spec);

    ascii_table table({"instance", "optimal swaps", "2q gates", "verified"});
    int verified = 0;
    for (std::size_t i = 0; i < s.instances.size(); ++i) {
        const auto& instance = s.instances[i];
        const auto report = core::verify_structure(instance, device);
        if (report.valid) ++verified;
        table.add("#" + std::to_string(i), instance.optimal_swaps,
                  instance.logical.num_two_qubit_gates(),
                  report.valid ? std::string("yes") : report.error);
    }
    std::printf("%s", table.str().c_str());
    std::printf("structural verification: %d/%zu\n", verified, s.instances.size());

    core::save_suite(s, out_dir);
    std::printf("saved suite (QASM + JSON metadata) to %s\n", out_dir.c_str());

    // Round-trip check.
    const core::suite loaded = core::load_suite(out_dir);
    std::printf("reload check: %zu instances loaded back\n", loaded.instances.size());
    return verified == static_cast<int>(s.instances.size()) ? 0 : 1;
}
