// Quickstart: generate one QUBIKOS benchmark, verify its structure, route
// it with a QLS tool and measure the optimality gap.
//
//   $ ./quickstart
//
// This is the 60-second tour of the library's public API.
#include <cstdio>

#include "arch/architectures.hpp"
#include "circuit/qasm.hpp"
#include "core/qubikos.hpp"
#include "core/verifier.hpp"
#include "router/sabre.hpp"

int main() {
    using namespace qubikos;

    // 1. Pick a device: Rigetti Aspen-4, 16 qubits, two bridged octagons.
    const arch::architecture device = arch::aspen4();
    std::printf("device: %s (%d qubits, %d couplers)\n", device.name.c_str(),
                device.num_qubits(), device.num_couplers());

    // 2. Generate a benchmark whose optimal SWAP count is 5, padded to 300
    //    two-qubit gates.
    core::generator_options options;
    options.num_swaps = 5;
    options.total_two_qubit_gates = 300;
    options.seed = 2025;
    const core::benchmark_instance instance = core::generate(device, options);
    std::printf("benchmark: %zu two-qubit gates, provably optimal SWAP count = %d\n",
                instance.logical.num_two_qubit_gates(), instance.optimal_swaps);

    // 3. Verify the construction invariants (Lemmas 1-3 of the paper,
    //    checked mechanically: non-isomorphic sections, serialization,
    //    valid reference answer).
    const auto verification = core::verify_structure(instance, device);
    std::printf("structural verification: %s\n",
                verification.valid ? "PASS" : verification.error.c_str());

    // 4. Route with SABRE (LightSABRE = SABRE + many trials).
    router::sabre_options sabre;
    sabre.trials = 64;
    const routed_circuit routed = router::route_sabre(instance.logical, device.coupling, sabre);

    // 5. Validate the tool's output and report the optimality gap.
    const auto report = validate_routed(instance.logical, routed, device.coupling);
    std::printf("sabre result: %s, %zu swaps -> optimality gap %.2fx\n",
                report.valid ? "valid" : report.error.c_str(), report.swap_count,
                static_cast<double>(report.swap_count) / instance.optimal_swaps);

    // 6. Export the benchmark as OpenQASM for other toolchains.
    qasm::save(instance.logical, "quickstart_benchmark.qasm");
    qasm::save(instance.answer.physical, "quickstart_answer.qasm");
    std::printf("wrote quickstart_benchmark.qasm / quickstart_answer.qasm\n");
    return verification.valid && report.valid ? 0 : 1;
}
