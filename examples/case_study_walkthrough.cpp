// Sec. IV-C walkthrough: hand SABRE the provably optimal initial mapping
// of a QUBIKOS instance and watch where its routing deviates from the
// optimal swap sequence — then show the decaying-lookahead fix.
//
//   $ ./case_study_walkthrough [seed_scan_limit]
#include <cstdio>
#include <cstdlib>

#include "arch/architectures.hpp"
#include "core/qubikos.hpp"
#include "eval/case_study.hpp"

int main(int argc, char** argv) {
    using namespace qubikos;
    const std::uint64_t scan_limit = argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 64;

    // Rochester's sparse heavy-hex lattice produces deviations most often
    // (Sec. IV-B explains why sparse connectivity hurts the tools).
    const arch::architecture device = arch::rochester53();

    // Scan seeds for an instance where SABRE (optimal initial mapping,
    // Qiskit cost constants) deviates from the optimal swap sequence —
    // the situation Fig. 5 dissects.
    for (std::uint64_t seed = 1; seed <= scan_limit; ++seed) {
        core::generator_options options;
        options.num_swaps = 10;
        options.total_two_qubit_gates = 600;
        options.seed = seed;
        const auto instance = core::generate(device, options);

        router::sabre_options sabre;  // Qiskit defaults: ext set 20, W=0.5
        sabre.seed = 1;
        const auto analysis = eval::analyze_lightsabre(instance, device.coupling, sabre);

        // Only instances where the deviation actually cost extra swaps are
        // interesting (a deviation can still reach an alternative optimal
        // routing).
        if (!analysis.deviation.has_value() ||
            analysis.sabre_swaps <= static_cast<std::size_t>(analysis.optimal_swaps)) {
            continue;
        }
        const auto& dev = *analysis.deviation;

        std::printf("seed %llu: SABRE used %zu swaps (optimal %d)\n",
                    static_cast<unsigned long long>(seed), analysis.sabre_swaps,
                    analysis.optimal_swaps);
        std::printf("first deviation at decision #%zu:\n", dev.decision_index);
        std::printf("  chosen  SWAP(p%d,p%d): basic=%.4f lookahead=%.4f decay=%.4f total=%.4f\n",
                    dev.chosen.candidate.a, dev.chosen.candidate.b, dev.chosen.basic,
                    dev.chosen.lookahead, dev.chosen.decay_factor, dev.chosen.total());
        if (dev.optimal_score.has_value()) {
            std::printf(
                "  optimal SWAP(p%d,p%d): basic=%.4f lookahead=%.4f decay=%.4f total=%.4f\n",
                dev.optimal_score->candidate.a, dev.optimal_score->candidate.b,
                dev.optimal_score->basic, dev.optimal_score->lookahead,
                dev.optimal_score->decay_factor, dev.optimal_score->total());
            if (dev.lookahead_decided) {
                std::printf("  -> basic and decay tie; the uniform lookahead term picked the "
                            "suboptimal swap (the Fig. 5 situation).\n");
            } else {
                std::printf("  -> the cost model preferred the suboptimal swap.\n");
            }
        } else {
            std::printf("  optimal SWAP(p%d,p%d) was NOT among SABRE's candidates: it touches "
                        "no front-layer qubit, so the heuristic could not even consider it.\n",
                        dev.optimal_swap.a, dev.optimal_swap.b);
        }

        // The proposed fix: geometrically decay the extended-set weights.
        for (const double lambda : {1.0, 0.8, 0.6, 0.4}) {
            router::sabre_options fixed = sabre;
            fixed.lookahead_decay = lambda;
            const auto with_fix = eval::analyze_lightsabre(instance, device.coupling, fixed);
            std::printf("  lookahead_decay=%.1f -> %zu swaps\n", lambda, with_fix.sabre_swaps);
        }
        return 0;
    }
    std::printf("no lookahead-decided deviation found in %llu seeds "
                "(SABRE routed them all optimally from the optimal mapping)\n",
                static_cast<unsigned long long>(scan_limit));
    return 0;
}
