// Optimality verification (the Sec. IV-A loop in miniature): generate
// QUBIKOS circuits on small architectures and prove, with the SAT-based
// exact solver, that each needs exactly its designed SWAP count — SAT at
// n, UNSAT at n-1.
//
//   $ ./verify_optimality [per_count] [max_swaps]
#include <cstdio>
#include <cstdlib>

#include "arch/architectures.hpp"
#include "core/qubikos.hpp"
#include "exact/olsq.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace qubikos;
    const int per_count = argc > 1 ? std::atoi(argv[1]) : 5;
    const int max_swaps = argc > 2 ? std::atoi(argv[2]) : 4;

    ascii_table table({"arch", "designed n", "circuits", "confirmed optimal", "avg seconds"});
    bool all_ok = true;

    for (const auto& device : {arch::aspen4(), arch::grid(3, 3)}) {
        for (int swaps = 1; swaps <= max_swaps; ++swaps) {
            int confirmed = 0;
            double total_seconds = 0.0;
            for (int i = 0; i < per_count; ++i) {
                core::generator_options options;
                options.num_swaps = swaps;
                options.total_two_qubit_gates = 30;  // paper limit for IV-A
                options.seed = static_cast<std::uint64_t>(swaps) * 1000 + i;
                const auto instance = core::generate(device, options);

                stopwatch timer;
                exact::olsq_options solver;
                solver.max_swaps = swaps + 1;
                const auto result =
                    exact::solve_optimal(instance.logical, device.coupling, solver);
                total_seconds += timer.seconds();
                if (result.solved && result.optimal_swaps == swaps) ++confirmed;
            }
            all_ok = all_ok && confirmed == per_count;
            table.add(device.name, swaps, per_count,
                      std::to_string(confirmed) + "/" + std::to_string(per_count),
                      ascii_table::num(total_seconds / per_count, 2));
        }
    }
    std::printf("%s", table.str().c_str());
    std::printf(all_ok ? "all circuits confirmed optimal by the exact solver\n"
                       : "MISMATCH: some circuits not confirmed!\n");
    return all_ok ? 0 : 1;
}
