// qubikos_cli — command-line driver for the whole library.
//
//   qubikos_cli arches
//   qubikos_cli generate <arch> <swaps> <gates> <seed> [out_prefix]
//   qubikos_cli suite <arch> <out_dir> [gates] [per_count] [seed]
//   qubikos_cli verify <suite_dir>
//   qubikos_cli certify <suite_dir> [conflict_limit]
//   qubikos_cli tools list
//   qubikos_cli tools describe <tool>
//   qubikos_cli route <tool[:key=val,...]> <arch> <circuit.qasm> [trials]
//   qubikos_cli campaign init <spec.json> [--tool name[:key=val,...]]...
//   qubikos_cli campaign plan <spec.json> [num_shards]
//   qubikos_cli campaign run <spec.json> <store_dir> [--shard k/n]
//                            [--threads t] [--max-units m] [--batch b]
//                            [--retry-quarantined] [-v]
//   qubikos_cli campaign status <store> [--shards n] [--json]
//   qubikos_cli campaign profile <store>
//   qubikos_cli campaign sync <dest_store> <src_store>... [-v]
//   qubikos_cli campaign pull <dest_store> <src_store>... [-v]
//   qubikos_cli campaign merge <spec.json> <out_store> <in_store>...
//   qubikos_cli campaign report <spec.json> <store>...
//
// The tool axis comes from the self-describing registry (`tools list`
// shows the lineup, `tools describe <tool>` its option schema).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "arch/architectures.hpp"
#include "campaign/merge.hpp"
#include "campaign/plan.hpp"
#include "campaign/profile.hpp"
#include "campaign/report.hpp"
#include "campaign/spec.hpp"
#include "campaign/status.hpp"
#include "campaign/store.hpp"
#include "campaign/sync.hpp"
#include "campaign/worker.hpp"
#include "circuit/qasm.hpp"
#include "core/qubikos.hpp"
#include "core/suite.hpp"
#include "core/verifier.hpp"
#include "eval/harness.hpp"
#include "exact/olsq.hpp"
#include "tools/context.hpp"
#include "tools/registry.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace qubikos;

int usage() {
    std::fprintf(stderr,
                 "usage:\n"
                 "  qubikos_cli arches\n"
                 "  qubikos_cli tools list\n"
                 "  qubikos_cli tools describe <tool>\n"
                 "  qubikos_cli generate <arch> <swaps> <gates> <seed> [out_prefix]\n"
                 "  qubikos_cli suite <arch> <out_dir> [gates] [per_count] [seed]\n"
                 "  qubikos_cli verify <suite_dir>\n"
                 "  qubikos_cli certify <suite_dir> [conflict_limit]\n"
                 "  qubikos_cli route <tool[:key=val,...]> <arch> <circuit.qasm> [trials]\n"
                 "  qubikos_cli campaign init <spec.json> [--tool name[:key=val,...]]...\n"
                 "  qubikos_cli campaign plan <spec.json> [num_shards]\n"
                 "  qubikos_cli campaign run <spec.json> <store_dir> [--shard k/n]\n"
                 "                           [--threads t] [--max-units m] [--batch b]\n"
                 "                           [--retry-quarantined] [-v]\n"
                 "  qubikos_cli campaign status <store> [--shards n] [--json]\n"
                 "  qubikos_cli campaign profile <store>\n"
                 "  qubikos_cli campaign sync <dest_store> <src_store>... [-v]\n"
                 "  qubikos_cli campaign pull <dest_store> <src_store>... [-v]\n"
                 "  qubikos_cli campaign merge <spec.json> <out_store> <in_store>...\n"
                 "  qubikos_cli campaign report <spec.json> <store>...\n");
    return 2;
}

int cmd_arches() {
    for (const auto& name : arch::known_names()) {
        if (name.find('<') != std::string::npos) {
            std::printf("%-14s (parametric)\n", name.c_str());
            continue;
        }
        const auto device = arch::by_name(name);
        std::printf("%-14s %3d qubits, %3d couplers\n", name.c_str(), device.num_qubits(),
                    device.num_couplers());
    }
    return 0;
}

int cmd_generate(int argc, char** argv) {
    if (argc < 6) return usage();
    const auto device = arch::by_name(argv[2]);
    core::generator_options options;
    options.num_swaps = std::atoi(argv[3]);
    options.total_two_qubit_gates = static_cast<std::size_t>(std::atoll(argv[4]));
    options.seed = static_cast<std::uint64_t>(std::atoll(argv[5]));
    const auto instance = core::generate(device, options);
    const auto report = core::verify_structure(instance, device);
    std::printf("arch=%s optimal_swaps=%d two_qubit_gates=%zu verified=%s\n",
                device.name.c_str(), instance.optimal_swaps,
                instance.logical.num_two_qubit_gates(),
                report.valid ? "yes" : report.error.c_str());
    if (argc > 6) {
        const std::string prefix = argv[6];
        qasm::save(instance.logical, prefix + ".qasm");
        qasm::save(instance.answer.physical, prefix + ".answer.qasm");
        std::printf("wrote %s.qasm and %s.answer.qasm\n", prefix.c_str(), prefix.c_str());
    }
    return report.valid ? 0 : 1;
}

int cmd_suite(int argc, char** argv) {
    if (argc < 4) return usage();
    const auto device = arch::by_name(argv[2]);
    core::suite_spec spec;
    spec.arch_name = device.name;
    spec.swap_counts = {5, 10, 15, 20};
    spec.total_two_qubit_gates = argc > 4 ? static_cast<std::size_t>(std::atoll(argv[4])) : 300;
    spec.circuits_per_count = argc > 5 ? std::atoi(argv[5]) : 10;
    spec.base_seed = argc > 6 ? static_cast<std::uint64_t>(std::atoll(argv[6])) : 1;
    const auto s = core::generate_suite(device, spec);
    core::save_suite(s, argv[3]);
    std::printf("wrote %zu instances to %s\n", s.instances.size(), argv[3]);
    return 0;
}

int cmd_verify(int argc, char** argv) {
    if (argc < 3) return usage();
    const auto s = core::load_suite(argv[2]);
    const auto device = arch::by_name(s.spec.arch_name);
    int ok = 0;
    for (std::size_t i = 0; i < s.instances.size(); ++i) {
        const auto report = core::verify_structure(s.instances[i], device);
        if (report.valid) {
            ++ok;
        } else {
            std::printf("instance #%zu FAILED: %s\n", i, report.error.c_str());
        }
    }
    std::printf("structural verification: %d/%zu\n", ok, s.instances.size());
    return ok == static_cast<int>(s.instances.size()) ? 0 : 1;
}

int cmd_certify(int argc, char** argv) {
    if (argc < 3) return usage();
    const auto s = core::load_suite(argv[2]);
    const auto device = arch::by_name(s.spec.arch_name);
    const std::uint64_t conflict_limit =
        argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 0;
    int confirmed = 0;
    int aborted = 0;
    for (std::size_t i = 0; i < s.instances.size(); ++i) {
        const auto& instance = s.instances[i];
        exact::olsq_options options;
        options.min_swaps = instance.optimal_swaps > 0 ? instance.optimal_swaps - 1 : 0;
        options.max_swaps = instance.optimal_swaps + 1;
        options.conflict_limit = conflict_limit;
        stopwatch timer;
        const auto result = exact::solve_optimal(instance.logical, device.coupling, options);
        if (result.aborted) {
            ++aborted;
            std::printf("instance #%zu: aborted (conflict limit)\n", i);
        } else if (result.solved && result.optimal_swaps == instance.optimal_swaps) {
            ++confirmed;
            std::printf("instance #%zu: confirmed optimal=%d (%.2fs)\n", i,
                        result.optimal_swaps, timer.seconds());
        } else {
            std::printf("instance #%zu: MISMATCH (solver says %d, declared %d)\n", i,
                        result.optimal_swaps, instance.optimal_swaps);
        }
    }
    std::printf("certified %d/%zu (%d aborted)\n", confirmed, s.instances.size(), aborted);
    return confirmed + aborted == static_cast<int>(s.instances.size()) ? 0 : 1;
}

// --- tools subcommands ------------------------------------------------------

int cmd_tools(int argc, char** argv) {
    if (argc < 3) return usage();
    if (std::strcmp(argv[2], "list") == 0) {
        std::fputs(tools::render_tool_table().c_str(), stdout);
        std::printf("select options with tool:key=val,... "
                    "(`qubikos_cli tools describe <tool>` shows the schema)\n");
        return 0;
    }
    if (std::strcmp(argv[2], "describe") == 0 && argc > 3) {
        std::fputs(tools::describe_tool(argv[3]).c_str(), stdout);
        return 0;
    }
    return usage();
}

int cmd_route(int argc, char** argv) {
    if (argc < 5) return usage();
    // Any registry tool, with inline overrides: route sabre:trials=8,...
    // A bad selector is a usage error (exit 2, like the pre-registry
    // unknown-tool path), distinct from a failed routing (exit 1).
    tools::tool_selection selection;
    try {
        selection = tools::parse_tool_spec(argv[2]);
        (void)tools::resolve_options(tools::tool_registry_info(selection.name),
                                     selection.options);
    } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }
    const auto device = arch::by_name(argv[3]);
    const circuit logical = qasm::load(argv[4]);
    if (argc > 5 && tools::tool_registry_info(selection.name).find_option("trials") != nullptr) {
        // Positional trial count (back-compat; ignored by trial-less
        // tools as before); explicit overrides win.
        json::object overrides =
            selection.options.is_null() ? json::object{} : selection.options.as_object();
        if (overrides.find("trials") == overrides.end()) {
            overrides["trials"] = std::atoi(argv[5]);
        }
        selection.options = json::value(std::move(overrides));
    }
    const auto tool = tools::make_tool(selection.name, selection.options,
                                       tools::make_routing_context(device.coupling));
    stopwatch timer;
    const auto routed = tool.run(logical, device.coupling);
    const auto report = validate_routed(logical, routed, device.coupling);
    if (!report.valid) {
        std::printf("INVALID routing: %s\n", report.error.c_str());
        return 1;
    }
    std::printf("tool=%s swaps=%zu seconds=%.3f\n", selection.canonical().c_str(),
                report.swap_count, timer.seconds());
    return 0;
}

// --- campaign subcommands ---------------------------------------------------

int cmd_campaign_init(int argc, char** argv) {
    if (argc < 4) return usage();
    auto spec = campaign::example_spec();
    for (int i = 4; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--tool") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--tool needs a value (name[:key=val,...])\n");
                return 2;
            }
            // A selection with overrides becomes a labeled variant; the
            // canonical "name:key=val,..." form keeps two variants of the
            // same tool distinguishable in unit IDs and tables.
            const auto selection = tools::parse_tool_spec(argv[++i]);
            spec.tools.emplace_back(selection.name, selection.options, selection.canonical());
        } else {
            std::fprintf(stderr, "unknown campaign init option '%s'\n", arg.c_str());
            return 2;
        }
    }
    campaign::save_spec(spec, argv[3]);
    const auto plan = campaign::expand_plan(spec);
    std::printf("wrote example spec '%s' to %s (%zu work units over %zu tools)\n",
                spec.name.c_str(), argv[3], plan.units.size(),
                campaign::resolved_tool_names(spec).size());
    return 0;
}

int cmd_campaign_plan(int argc, char** argv) {
    if (argc < 4) return usage();
    const auto spec = campaign::load_spec(argv[3]);
    const auto plan = campaign::expand_plan(spec);
    const int num_shards = argc > 4 ? std::atoi(argv[4]) : 1;
    if (num_shards < 1) {
        std::fprintf(stderr, "bad shard count '%s' (expected a positive integer)\n", argv[4]);
        return 2;
    }
    std::printf("campaign '%s' (mode %s, fingerprint %s)\n", spec.name.c_str(),
                campaign::mode_name(spec.mode), campaign::spec_fingerprint(spec).c_str());
    std::printf("%zu work units over %zu suites\n", plan.units.size(), spec.suites.size());
    for (int shard = 0; shard < num_shards; ++shard) {
        const auto indices = campaign::shard_indices(plan.units.size(), shard, num_shards);
        std::printf("  shard %d/%d: %zu units", shard, num_shards, indices.size());
        if (!indices.empty()) {
            std::printf("  (%s ... %s)", plan.units[indices.front()].id.c_str(),
                        plan.units[indices.back()].id.c_str());
        }
        std::printf("\n");
    }
    return 0;
}

int cmd_campaign_run(int argc, char** argv) {
    if (argc < 5) return usage();
    const auto spec = campaign::load_spec(argv[3]);
    const std::string store_dir = argv[4];
    campaign::worker_options options;
    options.threads = 0;  // auto: QUBIKOS_THREADS / hardware_concurrency
    for (int i = 5; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--shard" && i + 1 < argc) {
            if (std::sscanf(argv[++i], "%d/%d", &options.shard, &options.num_shards) != 2) {
                std::fprintf(stderr, "bad --shard (expected k/n)\n");
                return 2;
            }
        } else if (arg == "--threads" && i + 1 < argc) {
            options.threads = std::atoi(argv[++i]);
        } else if (arg == "--max-units" && i + 1 < argc) {
            options.max_units = static_cast<std::size_t>(std::atoll(argv[++i]));
        } else if (arg == "--batch" && i + 1 < argc) {
            options.batch_size = static_cast<std::size_t>(std::atoll(argv[++i]));
        } else if (arg == "--retry-quarantined") {
            options.retry_quarantined = true;
        } else if (arg == "-v" || arg == "--verbose") {
            options.verbose = true;
        } else {
            std::fprintf(stderr, "unknown campaign run option '%s'\n", arg.c_str());
            return 2;
        }
    }
    const auto plan = campaign::expand_plan(spec);
    stopwatch timer;
    const auto report = campaign::run_campaign_shard(plan, store_dir, options);
    std::printf(
        "shard %d/%d: %zu assigned, %zu resumed (skipped), %zu executed, %zu remaining, "
        "%zu failed attempts, %zu quarantined, %d invalid (%.2fs)\n",
        options.shard, options.num_shards, report.assigned, report.skipped, report.executed,
        report.remaining, report.failed_attempts, report.quarantined, report.invalid_runs,
        timer.seconds());
    return report.invalid_runs == 0 && report.quarantined == 0 ? 0 : 1;
}

int cmd_campaign_status(int argc, char** argv) {
    if (argc < 4) return usage();
    const std::string store_dir = argv[3];
    campaign::status_options options;
    bool as_json = false;
    for (int i = 4; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--shards" && i + 1 < argc) {
            options.num_shards = std::atoi(argv[++i]);
        } else if (arg == "--json") {
            as_json = true;
        } else {
            std::fprintf(stderr, "unknown campaign status option '%s'\n", arg.c_str());
            return 2;
        }
    }
    // Read-only probe: the spec comes out of the store's own meta.json
    // and the runs are loaded without opening the store for appending,
    // so probing a store a worker is writing to is always safe.
    const auto spec = campaign::result_store::load_meta_spec(store_dir);
    const auto plan = campaign::expand_plan(spec);
    const auto runs = campaign::result_store::load_runs(store_dir);
    const auto status = campaign::probe_status(plan, runs, options);
    if (as_json) {
        std::printf("%s\n", campaign::status_to_json(plan, status).dump(2).c_str());
    } else {
        std::fputs(campaign::render_status(plan, status, options).c_str(), stdout);
    }
    return status.complete() ? 0 : 1;
}

int cmd_campaign_profile(int argc, char** argv) {
    if (argc < 4) return usage();
    // Read-only like status: aggregates the store's metrics sidecar
    // records into per-(suite, tool) cost tables.
    const std::string store_dir = argv[3];
    const auto spec = campaign::result_store::load_meta_spec(store_dir);
    const auto plan = campaign::expand_plan(spec);
    const auto runs = campaign::result_store::load_runs(store_dir);
    std::fputs(campaign::render_profile(plan, runs).c_str(), stdout);
    return 0;
}

int cmd_campaign_sync(int argc, char** argv) {
    // `sync` and `pull` are the same operation; `pull` is the spelling
    // for collecting from (possibly live) worker stores, which is safe —
    // a mid-append copy tears at most the newest segment's final line,
    // exactly what the read path tolerates.
    if (argc < 5) return usage();
    const std::string dest = argv[3];
    std::vector<std::string> sources;
    campaign::sync_options options;
    for (int i = 4; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-v" || arg == "--verbose") {
            options.verbose = true;
        } else {
            sources.push_back(arg);
        }
    }
    if (sources.empty()) return usage();
    const auto report = campaign::sync_stores(dest, sources, options);
    std::printf("synced %zu stores into %s: %zu copied, %zu grown, %zu unchanged, "
                "%zu heads updated\n",
                sources.size(), dest.c_str(), report.copied, report.grown, report.unchanged,
                report.heads);
    return 0;
}

int cmd_campaign_merge(int argc, char** argv) {
    if (argc < 6) return usage();
    const auto spec = campaign::load_spec(argv[3]);
    const auto plan = campaign::expand_plan(spec);
    std::vector<std::string> stores;
    for (int i = 5; i < argc; ++i) stores.emplace_back(argv[i]);
    const auto merged = campaign::merge_stores(plan, stores);
    campaign::write_merged_store(merged, spec, argv[4]);
    std::printf("merged %zu stores: %zu/%zu units (%zu duplicates dropped, %zu missing) -> %s\n",
                stores.size(), merged.runs.size(), plan.units.size(), merged.duplicates,
                merged.missing.size(), argv[4]);
    return merged.complete() ? 0 : 1;
}

int cmd_campaign_report(int argc, char** argv) {
    if (argc < 5) return usage();
    const auto spec = campaign::load_spec(argv[3]);
    const auto plan = campaign::expand_plan(spec);
    std::vector<std::string> stores;
    for (int i = 4; i < argc; ++i) stores.emplace_back(argv[i]);
    const auto merged = campaign::merge_stores(plan, stores);
    const std::string report = campaign::render_report(plan, merged);
    std::fputs(report.c_str(), stdout);
    return merged.complete() ? 0 : 1;
}

int cmd_campaign(int argc, char** argv) {
    if (argc < 3) return usage();
    if (std::strcmp(argv[2], "init") == 0) return cmd_campaign_init(argc, argv);
    if (std::strcmp(argv[2], "plan") == 0) return cmd_campaign_plan(argc, argv);
    if (std::strcmp(argv[2], "run") == 0) return cmd_campaign_run(argc, argv);
    if (std::strcmp(argv[2], "status") == 0) return cmd_campaign_status(argc, argv);
    if (std::strcmp(argv[2], "profile") == 0) return cmd_campaign_profile(argc, argv);
    if (std::strcmp(argv[2], "sync") == 0) return cmd_campaign_sync(argc, argv);
    if (std::strcmp(argv[2], "pull") == 0) return cmd_campaign_sync(argc, argv);
    if (std::strcmp(argv[2], "merge") == 0) return cmd_campaign_merge(argc, argv);
    if (std::strcmp(argv[2], "report") == 0) return cmd_campaign_report(argc, argv);
    return usage();
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    try {
        if (std::strcmp(argv[1], "arches") == 0) return cmd_arches();
        if (std::strcmp(argv[1], "tools") == 0) return cmd_tools(argc, argv);
        if (std::strcmp(argv[1], "generate") == 0) return cmd_generate(argc, argv);
        if (std::strcmp(argv[1], "suite") == 0) return cmd_suite(argc, argv);
        if (std::strcmp(argv[1], "verify") == 0) return cmd_verify(argc, argv);
        if (std::strcmp(argv[1], "certify") == 0) return cmd_certify(argc, argv);
        if (std::strcmp(argv[1], "route") == 0) return cmd_route(argc, argv);
        if (std::strcmp(argv[1], "campaign") == 0) return cmd_campaign(argc, argv);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return usage();
}
