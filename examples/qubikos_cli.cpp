// qubikos_cli — command-line driver for the whole library.
//
// Built around a declarative command table: every subcommand is one
// entry (name, argument synopsis, one-line summary, handler), the global
// usage text and per-command `--help` are generated from it, and
// dispatch is longest-prefix matching over the table — adding a command
// means adding one entry and one handler, nothing else.
//
// Exit codes, uniformly: 0 success, 1 runtime failure (a command that
// ran and failed), 2 usage error (bad command line; the command never
// ran).
//
// `route` and `serve` execute through the typed serve request API
// (src/serve/request.hpp): `route --json` prints exactly the response
// line the daemon would send for the equivalent request, pinned
// byte-identical by tests/test_serve.cpp.
#include <signal.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <sstream>
#include <string>
#include <vector>

#include "arch/architectures.hpp"
#include "campaign/merge.hpp"
#include "campaign/plan.hpp"
#include "campaign/profile.hpp"
#include "campaign/report.hpp"
#include "campaign/spec.hpp"
#include "campaign/status.hpp"
#include "campaign/store.hpp"
#include "campaign/sync.hpp"
#include "campaign/worker.hpp"
#include "circuit/qasm.hpp"
#include "core/qubikos.hpp"
#include "core/suite.hpp"
#include "core/verifier.hpp"
#include "exact/olsq.hpp"
#include "serve/engine.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"
#include "tools/registry.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace qubikos;

/// Arguments after the command words.
using arg_list = std::vector<std::string>;

struct command {
    const char* name;     ///< space-separated words ("campaign run")
    const char* args;     ///< synopsis of the remaining arguments
    const char* summary;  ///< one line for the usage listing
    int (*handler)(const arg_list& args);
};

const std::vector<command>& command_table();

const command& find_command(const char* name) {
    for (const auto& cmd : command_table()) {
        if (std::strcmp(cmd.name, name) == 0) return cmd;
    }
    std::fprintf(stderr, "internal: no such command '%s'\n", name);
    std::abort();
}

/// Prints one command's usage line to `out`.
void print_command_usage(std::FILE* out, const command& cmd) {
    std::fprintf(out, "  qubikos_cli %s%s%s\n", cmd.name, cmd.args[0] != '\0' ? " " : "",
                 cmd.args);
}

int print_usage(std::FILE* out) {
    std::fprintf(out, "usage:\n");
    for (const auto& cmd : command_table()) print_command_usage(out, cmd);
    std::fprintf(out, "run any command with --help for its synopsis\n");
    return 2;
}

/// Usage-error exit for a specific command: message (optional) plus the
/// command's own usage line, never the full table.
int usage_error(const char* name, const std::string& message = {}) {
    if (!message.empty()) std::fprintf(stderr, "%s\n", message.c_str());
    std::fprintf(stderr, "usage:\n");
    print_command_usage(stderr, find_command(name));
    return 2;
}

bool parse_int_arg(const std::string& text, long long& out) {
    char* end = nullptr;
    errno = 0;
    out = std::strtoll(text.c_str(), &end, 10);
    return end != text.c_str() && *end == '\0' && errno == 0;
}

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot read " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

// --- library commands -------------------------------------------------------

int cmd_arches(const arg_list& args) {
    if (!args.empty()) return usage_error("arches");
    for (const auto& name : arch::known_names()) {
        if (name.find('<') != std::string::npos) {
            std::printf("%-14s (parametric)\n", name.c_str());
            continue;
        }
        const auto device = arch::by_name(name);
        std::printf("%-14s %3d qubits, %3d couplers\n", name.c_str(), device.num_qubits(),
                    device.num_couplers());
    }
    return 0;
}

int cmd_generate(const arg_list& args) {
    if (args.size() < 4 || args.size() > 5) return usage_error("generate");
    const auto device = arch::by_name(args[0]);
    core::generator_options options;
    options.num_swaps = std::atoi(args[1].c_str());
    options.total_two_qubit_gates = static_cast<std::size_t>(std::atoll(args[2].c_str()));
    options.seed = static_cast<std::uint64_t>(std::atoll(args[3].c_str()));
    const auto instance = core::generate(device, options);
    const auto report = core::verify_structure(instance, device);
    std::printf("arch=%s optimal_swaps=%d two_qubit_gates=%zu verified=%s\n",
                device.name.c_str(), instance.optimal_swaps,
                instance.logical.num_two_qubit_gates(),
                report.valid ? "yes" : report.error.c_str());
    if (args.size() > 4) {
        const std::string& prefix = args[4];
        qasm::save(instance.logical, prefix + ".qasm");
        qasm::save(instance.answer.physical, prefix + ".answer.qasm");
        std::printf("wrote %s.qasm and %s.answer.qasm\n", prefix.c_str(), prefix.c_str());
    }
    return report.valid ? 0 : 1;
}

int cmd_suite(const arg_list& args) {
    if (args.size() < 2 || args.size() > 5) return usage_error("suite");
    const auto device = arch::by_name(args[0]);
    core::suite_spec spec;
    spec.arch_name = device.name;
    spec.swap_counts = {5, 10, 15, 20};
    spec.total_two_qubit_gates =
        args.size() > 2 ? static_cast<std::size_t>(std::atoll(args[2].c_str())) : 300;
    spec.circuits_per_count = args.size() > 3 ? std::atoi(args[3].c_str()) : 10;
    spec.base_seed = args.size() > 4 ? static_cast<std::uint64_t>(std::atoll(args[4].c_str())) : 1;
    const auto s = core::generate_suite(device, spec);
    core::save_suite(s, args[1]);
    std::printf("wrote %zu instances to %s\n", s.instances.size(), args[1].c_str());
    return 0;
}

int cmd_verify(const arg_list& args) {
    if (args.size() != 1) return usage_error("verify");
    const auto s = core::load_suite(args[0]);
    const auto device = arch::by_name(s.spec.arch_name);
    int ok = 0;
    for (std::size_t i = 0; i < s.instances.size(); ++i) {
        const auto report = core::verify_structure(s.instances[i], device);
        if (report.valid) {
            ++ok;
        } else {
            std::printf("instance #%zu FAILED: %s\n", i, report.error.c_str());
        }
    }
    std::printf("structural verification: %d/%zu\n", ok, s.instances.size());
    return ok == static_cast<int>(s.instances.size()) ? 0 : 1;
}

int cmd_certify(const arg_list& args) {
    if (args.empty() || args.size() > 2) return usage_error("certify");
    const auto s = core::load_suite(args[0]);
    const auto device = arch::by_name(s.spec.arch_name);
    const std::uint64_t conflict_limit =
        args.size() > 1 ? static_cast<std::uint64_t>(std::atoll(args[1].c_str())) : 0;
    int confirmed = 0;
    int aborted = 0;
    for (std::size_t i = 0; i < s.instances.size(); ++i) {
        const auto& instance = s.instances[i];
        exact::olsq_options options;
        options.min_swaps = instance.optimal_swaps > 0 ? instance.optimal_swaps - 1 : 0;
        options.max_swaps = instance.optimal_swaps + 1;
        options.conflict_limit = conflict_limit;
        stopwatch timer;
        const auto result = exact::solve_optimal(instance.logical, device.coupling, options);
        if (result.aborted) {
            ++aborted;
            std::printf("instance #%zu: aborted (conflict limit)\n", i);
        } else if (result.solved && result.optimal_swaps == instance.optimal_swaps) {
            ++confirmed;
            std::printf("instance #%zu: confirmed optimal=%d (%.2fs)\n", i,
                        result.optimal_swaps, timer.seconds());
        } else {
            std::printf("instance #%zu: MISMATCH (solver says %d, declared %d)\n", i,
                        result.optimal_swaps, instance.optimal_swaps);
        }
    }
    std::printf("certified %d/%zu (%d aborted)\n", confirmed, s.instances.size(), aborted);
    return confirmed + aborted == static_cast<int>(s.instances.size()) ? 0 : 1;
}

// --- tools subcommands ------------------------------------------------------

int cmd_tools_list(const arg_list& args) {
    if (!args.empty()) return usage_error("tools list");
    std::fputs(tools::render_tool_table().c_str(), stdout);
    std::printf("select options with tool:key=val,... "
                "(`qubikos_cli tools describe <tool>` shows the schema)\n");
    return 0;
}

int cmd_tools_describe(const arg_list& args) {
    bool as_json = false;
    std::string tool;
    for (const auto& arg : args) {
        if (arg == "--json") {
            as_json = true;
        } else if (tool.empty()) {
            tool = arg;
        } else {
            return usage_error("tools describe", "unexpected argument '" + arg + "'");
        }
    }
    if (as_json) {
        // Machine-readable registry dump: the whole registry, or one
        // tool's schema. Byte-deterministic (snapshot-pinned by test).
        const json::value doc =
            tool.empty() ? tools::registry_to_json()
                         : tools::tool_info_to_json(tools::tool_registry_info(tool));
        std::printf("%s\n", doc.dump(2).c_str());
        return 0;
    }
    if (tool.empty()) return usage_error("tools describe", "which tool? (or --json for all)");
    std::fputs(tools::describe_tool(tool).c_str(), stdout);
    return 0;
}

// --- routing service --------------------------------------------------------

int cmd_route(const arg_list& args) {
    bool as_json = false;
    bool timing = false;
    bool emit_qasm = false;
    arg_list pos;
    for (const auto& arg : args) {
        if (arg == "--json") {
            as_json = true;
        } else if (arg == "--timing") {
            timing = true;
        } else if (arg == "--emit-qasm") {
            emit_qasm = true;
        } else if (arg.size() > 1 && arg[0] == '-' && arg[1] == '-') {
            return usage_error("route", "unknown option '" + arg + "'");
        } else {
            pos.push_back(arg);
        }
    }
    if (pos.size() < 3 || pos.size() > 4) return usage_error("route");

    // Any registry tool, with inline overrides: route sabre:trials=8,...
    // A bad selector is a usage error (exit 2), distinct from a failed
    // routing (exit 1).
    tools::tool_selection selection;
    try {
        selection = tools::parse_tool_spec(pos[0]);
        (void)tools::resolve_options(tools::tool_registry_info(selection.name),
                                     selection.options);
    } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }
    if (pos.size() > 3 && tools::tool_registry_info(selection.name).find_option("trials") !=
                              nullptr) {
        // Positional trial count (back-compat; ignored by trial-less
        // tools as before); explicit overrides win.
        json::object overrides =
            selection.options.is_null() ? json::object{} : selection.options.as_object();
        if (overrides.find("trials") == overrides.end()) {
            overrides["trials"] = std::atoi(pos[3].c_str());
        }
        selection.options = json::value(std::move(overrides));
    }

    // The CLI is just another client of the typed request API: build the
    // exact route_request a serve client would send and execute it on a
    // local engine — `route --json` output and a daemon's response line
    // for the same request are byte-identical by construction.
    serve::route_request req;
    req.id = "cli";
    req.device = pos[1];
    req.tool = selection.name;
    req.options = selection.options;
    req.qasm = read_file(pos[2]);
    req.timing = as_json ? timing : true;
    req.emit_qasm = emit_qasm;

    serve::engine eng;
    serve::route_response resp;
    try {
        resp = eng.route(req);
    } catch (const serve::request_error& e) {
        std::fprintf(stderr, "%s\n", e.what());
        switch (e.code()) {
            case serve::error_code::unknown_device:
            case serve::error_code::unknown_tool:
            case serve::error_code::bad_option: return 2;
            default: return 1;
        }
    }
    if (as_json) {
        std::printf("%s\n", resp.to_json().dump().c_str());
        return resp.legal ? 0 : 1;
    }
    if (!resp.legal) {
        std::printf("INVALID routing: %s\n", resp.validation_error.c_str());
        return 1;
    }
    std::printf("tool=%s swaps=%zu seconds=%.3f\n", resp.tool.c_str(), resp.swaps,
                resp.seconds);
    return 0;
}

int cmd_serve(const arg_list& args) {
    std::string socket_path;
    long long port = -1;
    serve::server_options sopts;
    serve::engine_options eopts;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string& arg = args[i];
        const auto value = [&]() -> const std::string& {
            if (i + 1 >= args.size()) {
                throw std::invalid_argument(arg + " needs a value");
            }
            return args[++i];
        };
        try {
            long long n = 0;
            if (arg == "--socket") {
                socket_path = value();
            } else if (arg == "--port") {
                if (!parse_int_arg(value(), n) || n < 0 || n > 65535) {
                    return usage_error("serve", "bad --port (expected 0..65535)");
                }
                port = n;
            } else if (arg == "--max-line-bytes") {
                if (!parse_int_arg(value(), n) || n < 2) {
                    return usage_error("serve", "bad --max-line-bytes");
                }
                sopts.max_line_bytes = static_cast<std::size_t>(n);
            } else if (arg == "--queue") {
                if (!parse_int_arg(value(), n) || n < 1) {
                    return usage_error("serve", "bad --queue");
                }
                sopts.max_queued_per_client = static_cast<std::size_t>(n);
            } else if (arg == "--cache-devices") {
                if (!parse_int_arg(value(), n) || n < 1) {
                    return usage_error("serve", "bad --cache-devices");
                }
                eopts.max_cached_devices = static_cast<std::size_t>(n);
            } else if (arg == "--no-cache") {
                eopts.cache_contexts = false;
            } else {
                return usage_error("serve", "unknown option '" + arg + "'");
            }
        } catch (const std::invalid_argument& e) {
            return usage_error("serve", e.what());
        }
    }
    if (socket_path.empty() == (port < 0)) {
        return usage_error("serve", "exactly one of --socket and --port is required");
    }

    // Block the shutdown signals *before* the server spawns its threads
    // so every thread inherits the mask and sigwait below is the only
    // consumer — the clean-shutdown path (stop() drains all queues) runs
    // on ctrl-C and on `kill`.
    sigset_t set;
    sigemptyset(&set);
    sigaddset(&set, SIGINT);
    sigaddset(&set, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &set, nullptr);

    serve::engine eng(eopts);
    serve::server srv(eng, sopts);
    if (!socket_path.empty()) {
        srv.listen_unix(socket_path);
        std::printf("serving on %s\n", socket_path.c_str());
    } else {
        const int bound = srv.listen_tcp(static_cast<int>(port));
        std::printf("serving on 127.0.0.1:%d\n", bound);
    }
    std::fflush(stdout);  // readiness line: scripts wait for it

    int sig = 0;
    sigwait(&set, &sig);
    srv.stop();
    const auto stats = eng.stats();
    std::printf("served %llu requests (context cache: %llu hits, %llu misses, "
                "%llu evictions)\n",
                static_cast<unsigned long long>(srv.requests_served()),
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses),
                static_cast<unsigned long long>(stats.evictions));
    return 0;
}

// --- campaign subcommands ---------------------------------------------------

int cmd_campaign_init(const arg_list& args) {
    if (args.empty()) return usage_error("campaign init");
    auto spec = campaign::example_spec();
    for (std::size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "--tool") {
            if (i + 1 >= args.size()) {
                return usage_error("campaign init", "--tool needs a value (name[:key=val,...])");
            }
            // A selection with overrides becomes a labeled variant; the
            // canonical "name:key=val,..." form keeps two variants of the
            // same tool distinguishable in unit IDs and tables.
            const auto selection = tools::parse_tool_spec(args[++i]);
            spec.tools.emplace_back(selection.name, selection.options, selection.canonical());
        } else {
            return usage_error("campaign init", "unknown option '" + args[i] + "'");
        }
    }
    campaign::save_spec(spec, args[0]);
    const auto plan = campaign::expand_plan(spec);
    std::printf("wrote example spec '%s' to %s (%zu work units over %zu tools)\n",
                spec.name.c_str(), args[0].c_str(), plan.units.size(),
                campaign::resolved_tool_names(spec).size());
    return 0;
}

int cmd_campaign_plan(const arg_list& args) {
    if (args.empty() || args.size() > 2) return usage_error("campaign plan");
    const auto spec = campaign::load_spec(args[0]);
    const auto plan = campaign::expand_plan(spec);
    const int num_shards = args.size() > 1 ? std::atoi(args[1].c_str()) : 1;
    if (num_shards < 1) {
        return usage_error("campaign plan",
                           "bad shard count '" + args[1] + "' (expected a positive integer)");
    }
    std::printf("campaign '%s' (mode %s, fingerprint %s)\n", spec.name.c_str(),
                campaign::mode_name(spec.mode), campaign::spec_fingerprint(spec).c_str());
    std::printf("%zu work units over %zu suites\n", plan.units.size(), spec.suites.size());
    for (int shard = 0; shard < num_shards; ++shard) {
        const auto indices = campaign::shard_indices(plan.units.size(), shard, num_shards);
        std::printf("  shard %d/%d: %zu units", shard, num_shards, indices.size());
        if (!indices.empty()) {
            std::printf("  (%s ... %s)", plan.units[indices.front()].id.c_str(),
                        plan.units[indices.back()].id.c_str());
        }
        std::printf("\n");
    }
    return 0;
}

int cmd_campaign_run(const arg_list& args) {
    if (args.size() < 2) return usage_error("campaign run");
    const auto spec = campaign::load_spec(args[0]);
    const std::string& store_dir = args[1];
    campaign::worker_options options;
    options.threads = 0;  // auto: QUBIKOS_THREADS / hardware_concurrency
    for (std::size_t i = 2; i < args.size(); ++i) {
        const std::string& arg = args[i];
        if (arg == "--shard" && i + 1 < args.size()) {
            if (std::sscanf(args[++i].c_str(), "%d/%d", &options.shard, &options.num_shards) !=
                2) {
                return usage_error("campaign run", "bad --shard (expected k/n)");
            }
        } else if (arg == "--threads" && i + 1 < args.size()) {
            options.threads = std::atoi(args[++i].c_str());
        } else if (arg == "--max-units" && i + 1 < args.size()) {
            options.max_units = static_cast<std::size_t>(std::atoll(args[++i].c_str()));
        } else if (arg == "--batch" && i + 1 < args.size()) {
            options.batch_size = static_cast<std::size_t>(std::atoll(args[++i].c_str()));
        } else if (arg == "--retry-quarantined") {
            options.retry_quarantined = true;
        } else if (arg == "-v" || arg == "--verbose") {
            options.verbose = true;
        } else {
            return usage_error("campaign run", "unknown option '" + arg + "'");
        }
    }
    const auto plan = campaign::expand_plan(spec);
    stopwatch timer;
    const auto report = campaign::run_campaign_shard(plan, store_dir, options);
    std::printf(
        "shard %d/%d: %zu assigned, %zu resumed (skipped), %zu executed, %zu remaining, "
        "%zu failed attempts, %zu quarantined, %d invalid (%.2fs)\n",
        options.shard, options.num_shards, report.assigned, report.skipped, report.executed,
        report.remaining, report.failed_attempts, report.quarantined, report.invalid_runs,
        timer.seconds());
    return report.invalid_runs == 0 && report.quarantined == 0 ? 0 : 1;
}

int cmd_campaign_status(const arg_list& args) {
    if (args.empty()) return usage_error("campaign status");
    const std::string& store_dir = args[0];
    campaign::status_options options;
    bool as_json = false;
    for (std::size_t i = 1; i < args.size(); ++i) {
        const std::string& arg = args[i];
        if (arg == "--shards" && i + 1 < args.size()) {
            options.num_shards = std::atoi(args[++i].c_str());
        } else if (arg == "--json") {
            as_json = true;
        } else {
            return usage_error("campaign status", "unknown option '" + arg + "'");
        }
    }
    // Read-only probe: the spec comes out of the store's own meta.json
    // and the runs are loaded without opening the store for appending,
    // so probing a store a worker is writing to is always safe.
    const auto spec = campaign::result_store::load_meta_spec(store_dir);
    const auto plan = campaign::expand_plan(spec);
    const auto runs = campaign::result_store::load_runs(store_dir);
    const auto status = campaign::probe_status(plan, runs, options);
    if (as_json) {
        std::printf("%s\n", campaign::status_to_json(plan, status).dump(2).c_str());
    } else {
        std::fputs(campaign::render_status(plan, status, options).c_str(), stdout);
    }
    return status.complete() ? 0 : 1;
}

int cmd_campaign_profile(const arg_list& args) {
    if (args.size() != 1) return usage_error("campaign profile");
    // Read-only like status: aggregates the store's metrics sidecar
    // records into per-(suite, tool) cost tables.
    const auto spec = campaign::result_store::load_meta_spec(args[0]);
    const auto plan = campaign::expand_plan(spec);
    const auto runs = campaign::result_store::load_runs(args[0]);
    std::fputs(campaign::render_profile(plan, runs).c_str(), stdout);
    return 0;
}

int cmd_campaign_sync(const arg_list& args) {
    // `sync` and `pull` are the same operation; `pull` is the spelling
    // for collecting from (possibly live) worker stores, which is safe —
    // a mid-append copy tears at most the newest segment's final line,
    // exactly what the read path tolerates.
    if (args.size() < 2) return usage_error("campaign sync");
    const std::string& dest = args[0];
    std::vector<std::string> sources;
    campaign::sync_options options;
    for (std::size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "-v" || args[i] == "--verbose") {
            options.verbose = true;
        } else {
            sources.push_back(args[i]);
        }
    }
    if (sources.empty()) return usage_error("campaign sync");
    const auto report = campaign::sync_stores(dest, sources, options);
    std::printf("synced %zu stores into %s: %zu copied, %zu grown, %zu unchanged, "
                "%zu heads updated\n",
                sources.size(), dest.c_str(), report.copied, report.grown, report.unchanged,
                report.heads);
    return 0;
}

int cmd_campaign_merge(const arg_list& args) {
    if (args.size() < 3) return usage_error("campaign merge");
    const auto spec = campaign::load_spec(args[0]);
    const auto plan = campaign::expand_plan(spec);
    std::vector<std::string> stores(args.begin() + 2, args.end());
    const auto merged = campaign::merge_stores(plan, stores);
    campaign::write_merged_store(merged, spec, args[1]);
    std::printf("merged %zu stores: %zu/%zu units (%zu duplicates dropped, %zu missing) -> %s\n",
                stores.size(), merged.runs.size(), plan.units.size(), merged.duplicates,
                merged.missing.size(), args[1].c_str());
    return merged.complete() ? 0 : 1;
}

int cmd_campaign_report(const arg_list& args) {
    if (args.size() < 2) return usage_error("campaign report");
    const auto spec = campaign::load_spec(args[0]);
    const auto plan = campaign::expand_plan(spec);
    std::vector<std::string> stores(args.begin() + 1, args.end());
    const auto merged = campaign::merge_stores(plan, stores);
    const std::string report = campaign::render_report(plan, merged);
    std::fputs(report.c_str(), stdout);
    return merged.complete() ? 0 : 1;
}

// --- the table --------------------------------------------------------------

const std::vector<command>& command_table() {
    static const std::vector<command> table = {
        {"arches", "", "list known device architectures", cmd_arches},
        {"tools list", "", "list the registered QLS tools", cmd_tools_list},
        {"tools describe", "[<tool>] [--json]", "show a tool's option schema (or the whole registry as JSON)",
         cmd_tools_describe},
        {"generate", "<arch> <swaps> <gates> <seed> [out_prefix]",
         "generate one QUBIKOS instance", cmd_generate},
        {"suite", "<arch> <out_dir> [gates] [per_count] [seed]",
         "generate a benchmark suite", cmd_suite},
        {"verify", "<suite_dir>", "structurally verify a suite's optimal counts", cmd_verify},
        {"certify", "<suite_dir> [conflict_limit]",
         "confirm a suite's optimal counts with the exact solver", cmd_certify},
        {"route", "<tool[:key=val,...]> <arch> <circuit.qasm> [trials] [--json] [--timing] [--emit-qasm]",
         "route one circuit with a registry tool", cmd_route},
        {"serve",
         "(--socket <path> | --port <n>) [--max-line-bytes n] [--queue n] [--cache-devices n] [--no-cache]",
         "run the JSONL routing service until SIGINT/SIGTERM", cmd_serve},
        {"campaign init", "<spec.json> [--tool name[:key=val,...]]...",
         "write an example campaign spec", cmd_campaign_init},
        {"campaign plan", "<spec.json> [num_shards]", "show a campaign's work units and shards",
         cmd_campaign_plan},
        {"campaign run",
         "<spec.json> <store_dir> [--shard k/n] [--threads t] [--max-units m] [--batch b] [--retry-quarantined] [-v]",
         "execute (a shard of) a campaign into a result store", cmd_campaign_run},
        {"campaign status", "<store> [--shards n] [--json]", "probe a store's completion state",
         cmd_campaign_status},
        {"campaign profile", "<store>", "aggregate a store's per-unit cost metrics",
         cmd_campaign_profile},
        {"campaign sync", "<dest_store> <src_store>... [-v]", "one-way merge stores into dest",
         cmd_campaign_sync},
        {"campaign pull", "<dest_store> <src_store>... [-v]",
         "collect from (possibly live) worker stores", cmd_campaign_sync},
        {"campaign merge", "<spec.json> <out_store> <in_store>...",
         "merge stores into one deduplicated store", cmd_campaign_merge},
        {"campaign report", "<spec.json> <store>...", "render the paper tables from stores",
         cmd_campaign_report},
    };
    return table;
}

std::vector<std::string> split_words(const char* text) {
    std::vector<std::string> words;
    std::string word;
    for (const char* p = text;; ++p) {
        if (*p == ' ' || *p == '\0') {
            if (!word.empty()) words.push_back(word);
            word.clear();
            if (*p == '\0') break;
        } else {
            word += *p;
        }
    }
    return words;
}

}  // namespace

int main(int argc, char** argv) {
    const std::vector<std::string> tokens(argv + 1, argv + argc);
    if (tokens.empty()) return print_usage(stderr);
    if (tokens[0] == "help" || tokens[0] == "--help" || tokens[0] == "-h") {
        print_usage(stdout);
        return 0;
    }

    // Longest-prefix match over the table ("campaign run" beats any
    // one-word interpretation of "campaign").
    const command* best = nullptr;
    std::size_t best_words = 0;
    bool group_seen = false;  // some entry shares the first word
    for (const auto& cmd : command_table()) {
        const auto words = split_words(cmd.name);
        if (words[0] == tokens[0]) group_seen = true;
        if (words.size() > tokens.size()) continue;
        bool match = true;
        for (std::size_t i = 0; i < words.size(); ++i) {
            if (words[i] != tokens[i]) {
                match = false;
                break;
            }
        }
        if (match && words.size() > best_words) {
            best = &cmd;
            best_words = words.size();
        }
    }
    if (best == nullptr) {
        if (group_seen) {
            // "qubikos_cli campaign frobnicate" — list the group.
            std::fprintf(stderr, "unknown %s subcommand\nusage:\n", tokens[0].c_str());
            for (const auto& cmd : command_table()) {
                if (split_words(cmd.name)[0] == tokens[0]) print_command_usage(stderr, cmd);
            }
            return 2;
        }
        std::fprintf(stderr, "unknown command '%s'\n", tokens[0].c_str());
        return print_usage(stderr);
    }

    const arg_list args(tokens.begin() + static_cast<std::ptrdiff_t>(best_words), tokens.end());
    for (const auto& arg : args) {
        if (arg == "--help" || arg == "-h") {
            std::printf("usage:\n");
            print_command_usage(stdout, *best);
            std::printf("  %s\n", best->summary);
            return 0;
        }
    }
    try {
        return best->handler(args);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
