// Tool shoot-out: run the four QLS tools over a freshly generated QUBIKOS
// suite on one architecture and print a Fig. 4-style swap-ratio table.
//
//   $ ./evaluate_tools [arch] [gates] [per_count] [sabre_trials]
//   $ ./evaluate_tools rochester53 1500 3 32
#include <cstdio>
#include <cstdlib>
#include <string>

#include "arch/architectures.hpp"
#include "core/suite.hpp"
#include "eval/harness.hpp"
#include "tools/context.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace qubikos;

    const std::string arch_name = argc > 1 ? argv[1] : "aspen4";
    const std::size_t gates = argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 300;
    const int per_count = argc > 3 ? std::atoi(argv[3]) : 3;
    const int trials = argc > 4 ? std::atoi(argv[4]) : 32;

    const arch::architecture device = arch::by_name(arch_name);

    core::suite_spec spec;
    spec.arch_name = device.name;
    spec.swap_counts = {5, 10, 15, 20};
    spec.circuits_per_count = per_count;
    spec.total_two_qubit_gates = gates;
    spec.base_seed = 7;
    const core::suite s = core::generate_suite(device, spec);

    eval::toolbox_options toolbox;
    toolbox.sabre.trials = trials;
    // One shared routing context: the whole lineup reuses the device's
    // distance matrix instead of rebuilding it per routed circuit.
    const auto tools =
        eval::paper_toolbox(toolbox, tools::make_routing_context(device.coupling));

    std::printf("running %zu tools x %zu circuits on %s...\n", tools.size(),
                s.instances.size(), device.name.c_str());
    const auto result = eval::evaluate_suite(s, device, tools);
    if (result.invalid_runs != 0) {
        std::printf("WARNING: %d invalid routed circuits!\n", result.invalid_runs);
    }

    ascii_table table({"tool", "designed swaps", "avg swaps", "swap ratio", "avg seconds"});
    for (const auto& cell : result.cells) {
        table.add(cell.tool, cell.designed_swaps, ascii_table::num(cell.average_swaps, 1),
                  ascii_table::num(cell.swap_ratio, 2) + "x",
                  ascii_table::num(cell.average_seconds, 3));
    }
    std::printf("%s", table.str().c_str());

    for (const auto& t : tools) {
        std::printf("%-10s overall optimality gap: %.2fx (geomean %.2fx)\n", t.name.c_str(),
                    eval::mean_ratio(result.cells, t.name),
                    eval::geomean_ratio(result.cells, t.name));
    }
    return result.invalid_runs == 0 ? 0 : 1;
}
