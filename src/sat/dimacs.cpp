#include "sat/dimacs.hpp"

#include <sstream>
#include <stdexcept>

namespace qubikos::sat {

void formula::add_clause(std::vector<lit> lits) {
    for (const lit l : lits) {
        if (l.variable() < 0 || l.variable() >= num_vars_) {
            throw std::out_of_range("formula::add_clause: variable out of range");
        }
    }
    clauses_.push_back(std::move(lits));
}

bool formula::load_into(solver& s) const {
    if (s.num_vars() != 0) throw std::invalid_argument("formula::load_into: solver not fresh");
    for (int v = 0; v < num_vars_; ++v) s.new_var();
    bool ok = true;
    for (const auto& clause : clauses_) ok = s.add_clause(clause) && ok;
    return ok;
}

bool formula::satisfied_by(const std::vector<bool>& assignment) const {
    if (static_cast<int>(assignment.size()) != num_vars_) {
        throw std::invalid_argument("formula::satisfied_by: wrong assignment size");
    }
    for (const auto& clause : clauses_) {
        bool sat = false;
        for (const lit l : clause) {
            if (assignment[static_cast<std::size_t>(l.variable())] != l.negated()) {
                sat = true;
                break;
            }
        }
        if (!sat) return false;
    }
    return true;
}

bool formula::brute_force_satisfiable() const {
    if (num_vars_ > 25) {
        throw std::invalid_argument("formula::brute_force_satisfiable: too many variables");
    }
    const std::uint64_t count = std::uint64_t{1} << num_vars_;
    std::vector<bool> assignment(static_cast<std::size_t>(num_vars_));
    for (std::uint64_t bits = 0; bits < count; ++bits) {
        for (int v = 0; v < num_vars_; ++v) {
            assignment[static_cast<std::size_t>(v)] = ((bits >> v) & 1) != 0;
        }
        if (satisfied_by(assignment)) return true;
    }
    return false;
}

std::string formula::to_dimacs() const {
    std::string out = "p cnf ";
    out += std::to_string(num_vars_);
    out += ' ';
    out += std::to_string(clauses_.size());
    out += '\n';
    for (const auto& clause : clauses_) {
        for (const lit l : clause) {
            if (l.negated()) out += '-';
            out += std::to_string(l.variable() + 1);
            out += ' ';
        }
        out += "0\n";
    }
    return out;
}

formula formula::from_dimacs(const std::string& text) {
    std::istringstream in(text);
    std::string token;
    formula out;
    int declared_clauses = -1;
    std::vector<lit> clause;
    while (in >> token) {
        if (token == "c") {
            std::string rest;
            std::getline(in, rest);
            continue;
        }
        if (token == "p") {
            std::string kind;
            int nv = 0;
            in >> kind >> nv >> declared_clauses;
            if (kind != "cnf") throw std::runtime_error("dimacs: not a cnf problem line");
            out = formula(nv);
            continue;
        }
        int value = 0;
        try {
            value = std::stoi(token);
        } catch (const std::exception&) {
            throw std::runtime_error("dimacs: bad token '" + token + "'");
        }
        if (value == 0) {
            out.add_clause(clause);
            clause.clear();
        } else {
            const var v = std::abs(value) - 1;
            clause.push_back(lit::make(v, value < 0));
        }
    }
    if (!clause.empty()) throw std::runtime_error("dimacs: clause missing terminating 0");
    return out;
}

}  // namespace qubikos::sat
