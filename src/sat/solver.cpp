#include "sat/solver.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/restart.hpp"

namespace qubikos::sat {

namespace {

constexpr std::uint64_t kRestartBase = 100;

/// Publishes the statistics deltas of one solve() call on every exit
/// path (sat/unsat/unknown/throw) — a scope guard, so the hot CDCL loop
/// keeps incrementing only the plain stats_ fields.
struct obs_stats_guard {
    const solver::statistics& live;
    solver::statistics base;

    explicit obs_stats_guard(const solver::statistics& s) : live(s), base(s) {}

    ~obs_stats_guard() {
        if (!obs::enabled()) return;
        static const obs::metric_id solves = obs::counter("sat.solves");
        static const obs::metric_id propagations = obs::counter("sat.propagations");
        static const obs::metric_id conflicts = obs::counter("sat.conflicts");
        static const obs::metric_id decisions = obs::counter("sat.decisions");
        static const obs::metric_id restarts = obs::counter("sat.restarts");
        static const obs::metric_id learned = obs::counter("sat.learned_clauses");
        obs::add(solves);
        obs::add(propagations, live.propagations - base.propagations);
        obs::add(conflicts, live.conflicts - base.conflicts);
        obs::add(decisions, live.decisions - base.decisions);
        obs::add(restarts, live.restarts - base.restarts);
        obs::add(learned, live.learned_clauses - base.learned_clauses);
    }
};

}  // namespace

var solver::new_var() {
    const var v = static_cast<var>(assign_.size());
    assign_.push_back(lbool::undef);
    phase_.push_back(false);
    level_.push_back(0);
    reason_.push_back(kNoReason);
    activity_.push_back(0.0);
    heap_index_.push_back(-1);
    seen_.push_back(0);
    watches_.emplace_back();
    watches_.emplace_back();
    heap_insert(v);
    return v;
}

solver::cref solver::alloc_clause(const std::vector<lit>& lits, bool learned, std::uint32_t lbd) {
    const cref ref = static_cast<cref>(arena_.size());
    arena_.push_back(static_cast<std::uint32_t>(lits.size()) |
                     (learned ? 0x80000000u : 0u));
    arena_.push_back(lbd);
    for (const lit l : lits) arena_.push_back(static_cast<std::uint32_t>(l.code));
    return ref;
}

void solver::attach(cref ref) {
    clause_view c = view(ref);
    QUBIKOS_ASSERT(c.size() >= 2);
    watches_[c.get(0).index()].push_back({ref, c.get(1)});
    watches_[c.get(1).index()].push_back({ref, c.get(0)});
}

bool solver::add_clause(std::vector<lit> lits) {
    if (!ok_) return false;
    QUBIKOS_ASSERT(current_level() == 0);
    // Simplify: sort, dedupe, drop false literals, detect tautologies and
    // satisfied clauses.
    std::sort(lits.begin(), lits.end(),
              [](lit a, lit b) { return a.code < b.code; });
    std::vector<lit> out;
    out.reserve(lits.size());
    for (const lit l : lits) {
        if (l.variable() < 0 || l.variable() >= num_vars()) {
            throw std::out_of_range("sat::add_clause: unknown variable");
        }
        if (!out.empty() && l == out.back()) continue;
        if (!out.empty() && l == ~out.back()) return true;  // tautology
        const lbool v = value(l);
        if (v == lbool::true_) return true;  // satisfied at level 0
        if (v == lbool::false_) continue;    // drop falsified literal
        out.push_back(l);
    }
    if (out.empty()) {
        ok_ = false;
        return false;
    }
    if (out.size() == 1) {
        enqueue(out[0], kNoReason);
        if (propagate() != kNoReason) {
            ok_ = false;
            return false;
        }
        return true;
    }
    const cref ref = alloc_clause(out, /*learned=*/false, /*lbd=*/0);
    problem_clauses_.push_back(ref);
    ++num_problem_clauses_;
    attach(ref);
    return true;
}

void solver::enqueue(lit l, cref reason) {
    QUBIKOS_CHECK_MSG(value(l) == lbool::undef,
                      "enqueue of already-assigned literal " << l.str() << " at level "
                                                             << current_level());
    assign_[static_cast<std::size_t>(l.variable())] =
        l.negated() ? lbool::false_ : lbool::true_;
    level_[static_cast<std::size_t>(l.variable())] = current_level();
    reason_[static_cast<std::size_t>(l.variable())] = reason;
    trail_.push_back(l);
}

solver::cref solver::propagate() {
    while (qhead_ < trail_.size()) {
        const lit p = trail_[qhead_++];
        ++stats_.propagations;
        const lit false_lit = ~p;
        auto& watch_list = watches_[false_lit.index()];
        std::size_t keep = 0;
        for (std::size_t i = 0; i < watch_list.size(); ++i) {
            const watcher w = watch_list[i];
            if (value(w.blocker) == lbool::true_) {
                watch_list[keep++] = w;
                continue;
            }
            clause_view c = view(w.ref);
            // Normalize: the false literal goes to slot 1.
            if (c.get(0) == false_lit) {
                c.set(0, c.get(1));
                c.set(1, false_lit);
            }
            const lit first = c.get(0);
            if (first != w.blocker && value(first) == lbool::true_) {
                watch_list[keep++] = {w.ref, first};
                continue;
            }
            // Find a replacement watch.
            bool moved = false;
            for (std::uint32_t k = 2; k < c.size(); ++k) {
                if (value(c.get(k)) != lbool::false_) {
                    c.set(1, c.get(k));
                    c.set(k, false_lit);
                    watches_[c.get(1).index()].push_back({w.ref, first});
                    moved = true;
                    break;
                }
            }
            if (moved) continue;
            // Unit or conflict.
            watch_list[keep++] = {w.ref, first};
            if (value(first) == lbool::false_) {
                // Conflict: restore the remaining watchers and report.
                for (std::size_t j = i + 1; j < watch_list.size(); ++j) {
                    watch_list[keep++] = watch_list[j];
                }
                watch_list.resize(keep);
                qhead_ = trail_.size();
                return w.ref;
            }
            enqueue(first, w.ref);
        }
        watch_list.resize(keep);
    }
    return kNoReason;
}

void solver::bump_var(var v) {
    activity_[static_cast<std::size_t>(v)] += var_inc_;
    if (activity_[static_cast<std::size_t>(v)] > kRescaleThreshold) {
        for (auto& a : activity_) a *= 1e-100;
        var_inc_ *= 1e-100;
    }
    if (heap_contains(v)) heap_percolate_up(heap_index_[static_cast<std::size_t>(v)]);
}

void solver::analyze(cref conflict, std::vector<lit>& learnt, int& backtrack_level,
                     std::uint32_t& lbd) {
    learnt.clear();
    learnt.push_back(lit{});  // slot for the asserting literal
    int counter = 0;
    lit p{};
    bool have_p = false;
    std::size_t trail_index = trail_.size();
    cref reason = conflict;

    for (;;) {
        QUBIKOS_ASSERT(reason != kNoReason);
        clause_view c = view(reason);
        for (std::uint32_t i = (have_p ? 1u : 0u); i < c.size(); ++i) {
            const lit q = c.get(i);
            const var qv = q.variable();
            if (seen_[static_cast<std::size_t>(qv)] || level(qv) == 0) continue;
            seen_[static_cast<std::size_t>(qv)] = 1;
            bump_var(qv);
            if (level(qv) >= current_level()) {
                ++counter;
            } else {
                learnt.push_back(q);
            }
        }
        // Next literal on the trail to resolve on.
        while (!seen_[static_cast<std::size_t>(trail_[trail_index - 1].variable())]) {
            --trail_index;
        }
        --trail_index;
        p = trail_[trail_index];
        have_p = true;
        seen_[static_cast<std::size_t>(p.variable())] = 0;
        --counter;
        if (counter == 0) break;
        reason = reason_[static_cast<std::size_t>(p.variable())];
    }
    learnt[0] = ~p;

    // Minimize: drop literals whose reasons are covered by the clause.
    analyze_clear_.assign(learnt.begin() + 1, learnt.end());
    for (const lit l : analyze_clear_) seen_[static_cast<std::size_t>(l.variable())] = 1;
    std::uint32_t abstract_levels = 0;
    for (std::size_t i = 1; i < learnt.size(); ++i) {
        abstract_levels |= 1u << (level(learnt[i].variable()) & 31);
    }
    std::size_t keep = 1;
    for (std::size_t i = 1; i < learnt.size(); ++i) {
        if (reason_[static_cast<std::size_t>(learnt[i].variable())] == kNoReason ||
            !literal_redundant(learnt[i], abstract_levels)) {
            learnt[keep++] = learnt[i];
        }
    }
    learnt.resize(keep);
    for (const lit l : analyze_clear_) seen_[static_cast<std::size_t>(l.variable())] = 0;
    seen_[static_cast<std::size_t>(learnt[0].variable())] = 0;

    // Backtrack level: highest level among the non-asserting literals.
    backtrack_level = 0;
    std::size_t max_i = 1;
    for (std::size_t i = 1; i < learnt.size(); ++i) {
        if (level(learnt[i].variable()) > level(learnt[max_i].variable())) max_i = i;
    }
    if (learnt.size() > 1) {
        std::swap(learnt[1], learnt[max_i]);
        backtrack_level = level(learnt[1].variable());
    }

    // LBD: number of distinct decision levels in the clause.
    std::vector<int> levels;
    levels.reserve(learnt.size());
    for (const lit l : learnt) levels.push_back(level(l.variable()));
    std::sort(levels.begin(), levels.end());
    lbd = static_cast<std::uint32_t>(
        std::unique(levels.begin(), levels.end()) - levels.begin());
}

bool solver::literal_redundant(lit l, std::uint32_t abstract_levels) {
    analyze_stack_.clear();
    analyze_stack_.push_back(l);
    const std::size_t top = analyze_clear_.size();
    while (!analyze_stack_.empty()) {
        const lit cur = analyze_stack_.back();
        analyze_stack_.pop_back();
        const cref reason = reason_[static_cast<std::size_t>(cur.variable())];
        if (reason == kNoReason) {
            // Reached a decision: not redundant; undo the speculative marks.
            for (std::size_t i = top; i < analyze_clear_.size(); ++i) {
                seen_[static_cast<std::size_t>(analyze_clear_[i].variable())] = 0;
            }
            analyze_clear_.resize(top);
            return false;
        }
        clause_view c = view(reason);
        for (std::uint32_t i = 1; i < c.size(); ++i) {
            const lit q = c.get(i);
            const var qv = q.variable();
            if (seen_[static_cast<std::size_t>(qv)] || level(qv) == 0) continue;
            if ((1u << (level(qv) & 31)) & ~abstract_levels) {
                for (std::size_t j = top; j < analyze_clear_.size(); ++j) {
                    seen_[static_cast<std::size_t>(analyze_clear_[j].variable())] = 0;
                }
                analyze_clear_.resize(top);
                return false;
            }
            seen_[static_cast<std::size_t>(qv)] = 1;
            analyze_clear_.push_back(q);
            analyze_stack_.push_back(q);
        }
    }
    return true;
}

void solver::backtrack(int target_level) {
    if (current_level() <= target_level) return;
    const std::size_t bound = static_cast<std::size_t>(trail_lim_[static_cast<std::size_t>(target_level)]);
    for (std::size_t i = trail_.size(); i > bound; --i) {
        const lit l = trail_[i - 1];
        const var v = l.variable();
        phase_[static_cast<std::size_t>(v)] = !l.negated();
        assign_[static_cast<std::size_t>(v)] = lbool::undef;
        reason_[static_cast<std::size_t>(v)] = kNoReason;
        if (!heap_contains(v)) heap_insert(v);
    }
    trail_.resize(bound);
    trail_lim_.resize(static_cast<std::size_t>(target_level));
    qhead_ = trail_.size();
}

lit solver::decide() {
    for (;;) {
        if (heap_.empty()) return lit{};
        const var v = heap_pop();
        if (assign_[static_cast<std::size_t>(v)] == lbool::undef) {
            return lit::make(v, !phase_[static_cast<std::size_t>(v)]);
        }
    }
}

void solver::reduce_db() {
    QUBIKOS_ASSERT(current_level() == 0);
    if (learned_.empty()) return;
    // Keep glue clauses (lbd <= 2) and the better half by LBD.
    std::sort(learned_.begin(), learned_.end(), [this](cref a, cref b) {
        return view(a).lbd() < view(b).lbd();
    });
    std::size_t keep = learned_.size() / 2;
    while (keep < learned_.size() && view(learned_[keep]).lbd() <= 2) ++keep;
    stats_.deleted_clauses += learned_.size() - keep;
    learned_.resize(keep);

    // Rebuild all watch lists (safe at level 0 where no reasons point at
    // learned clauses other than level-0 units, which keep no reason).
    for (auto& wl : watches_) wl.clear();
    for (const cref ref : problem_clauses_) attach(ref);
    for (const cref ref : learned_) attach(ref);
    QUBIKOS_DCHECK(watch_invariants_ok());
}

status solver::solve(const std::vector<lit>& assumptions) {
    const obs::trace_span span("sat.solve");
    const obs_stats_guard publish(stats_);
    if (!ok_) return status::unsat;
    backtrack(0);
    if (propagate() != kNoReason) {
        ok_ = false;
        return status::unsat;
    }
    QUBIKOS_DCHECK(watch_invariants_ok());
    QUBIKOS_DCHECK(trail_invariants_ok());

    std::uint64_t restart_count = 0;
    std::uint64_t conflicts_until_restart = kRestartBase * luby(restart_count);
    std::uint64_t conflicts_since_restart = 0;
    std::uint64_t max_learnt = num_problem_clauses_ / 3 + 1000;
    std::vector<lit> learnt;

    for (;;) {
        const cref conflict = propagate();
        if (conflict != kNoReason) {
            ++stats_.conflicts;
            ++conflicts_since_restart;
            if (current_level() == 0) {
                ok_ = false;
                return status::unsat;
            }
            int backtrack_level = 0;
            std::uint32_t lbd = 0;
            analyze(conflict, learnt, backtrack_level, lbd);
            backtrack(backtrack_level);
            if (learnt.size() == 1) {
                enqueue(learnt[0], kNoReason);
            } else {
                const cref ref = alloc_clause(learnt, /*learned=*/true, lbd);
                learned_.push_back(ref);
                ++stats_.learned_clauses;
                attach(ref);
                enqueue(learnt[0], ref);
            }
            decay_var_activity();
            var_inc_ *= 1.0;
            if (conflict_limit_ != 0 && stats_.conflicts >= conflict_limit_) {
                backtrack(0);
                return status::unknown;
            }
            continue;
        }

        if (conflicts_since_restart >= conflicts_until_restart) {
            ++stats_.restarts;
            ++restart_count;
            conflicts_since_restart = 0;
            conflicts_until_restart = kRestartBase * luby(restart_count);
            backtrack(0);
            QUBIKOS_DCHECK(trail_invariants_ok());
            if (learned_.size() > max_learnt) {
                reduce_db();
                max_learnt = max_learnt + max_learnt / 10;
            }
            continue;
        }

        // Establish assumptions as successive decision levels.
        if (current_level() < static_cast<int>(assumptions.size())) {
            const lit a = assumptions[static_cast<std::size_t>(current_level())];
            if (a.variable() < 0 || a.variable() >= num_vars()) {
                throw std::out_of_range("sat::solve: unknown assumption variable");
            }
            const lbool v = value(a);
            if (v == lbool::false_) return status::unsat;  // conflicts with assumptions
            trail_lim_.push_back(static_cast<int>(trail_.size()));
            if (v == lbool::undef) enqueue(a, kNoReason);
            continue;
        }

        const lit d = decide();
        if (d == lit{}) {
            // Full assignment: record the model.
            model_.assign(static_cast<std::size_t>(num_vars()), false);
            for (int v = 0; v < num_vars(); ++v) {
                model_[static_cast<std::size_t>(v)] =
                    assign_[static_cast<std::size_t>(v)] == lbool::true_;
            }
            backtrack(0);
            return status::sat;
        }
        ++stats_.decisions;
        trail_lim_.push_back(static_cast<int>(trail_.size()));
        enqueue(d, kNoReason);
    }
}

bool solver::watch_invariants_ok() {
    // Direction 1: every watcher entry's clause really holds the watched
    // literal in one of its two watch slots.
    for (std::size_t idx = 0; idx < watches_.size(); ++idx) {
        const lit watched = from_code(static_cast<std::int32_t>(idx));
        for (const watcher& w : watches_[idx]) {
            const clause_view c = view(w.ref);
            if (c.size() < 2) return false;
            if (c.get(0) != watched && c.get(1) != watched) return false;
        }
    }
    // Direction 2: every attached clause appears on exactly the lists of
    // its first two literals, once each.
    const auto watched_times = [&](cref ref, lit l) {
        std::size_t count = 0;
        for (const watcher& w : watches_[l.index()]) {
            if (w.ref == ref) ++count;
        }
        return count;
    };
    for (const std::vector<cref>* clauses : {&problem_clauses_, &learned_}) {
        for (const cref ref : *clauses) {
            const clause_view c = view(ref);
            if (watched_times(ref, c.get(0)) != 1) return false;
            if (watched_times(ref, c.get(1)) != 1) return false;
        }
    }
    return true;
}

bool solver::trail_invariants_ok() const {
    if (qhead_ != trail_.size()) return false;
    for (std::size_t i = 0; i < trail_.size(); ++i) {
        if (value(trail_[i]) != lbool::true_) return false;
    }
    // Decision markers partition the trail into non-decreasing levels.
    for (std::size_t l = 0; l < trail_lim_.size(); ++l) {
        const auto lim = static_cast<std::size_t>(trail_lim_[l]);
        if (lim > trail_.size()) return false;
        if (l > 0 && trail_lim_[l] < trail_lim_[l - 1]) return false;
    }
    return true;
}

bool solver::model_value(var v) const {
    if (v < 0 || static_cast<std::size_t>(v) >= model_.size()) {
        throw std::out_of_range("sat::model_value: no model or unknown variable");
    }
    return model_[static_cast<std::size_t>(v)];
}

// --- indexed max-heap on activity ----------------------------------------

void solver::heap_insert(var v) {
    heap_index_[static_cast<std::size_t>(v)] = static_cast<int>(heap_.size());
    heap_.push_back(v);
    heap_percolate_up(static_cast<int>(heap_.size()) - 1);
}

void solver::heap_percolate_up(int i) {
    const var v = heap_[static_cast<std::size_t>(i)];
    const double act = activity_[static_cast<std::size_t>(v)];
    while (i > 0) {
        const int parent = (i - 1) / 2;
        const var pv = heap_[static_cast<std::size_t>(parent)];
        if (activity_[static_cast<std::size_t>(pv)] >= act) break;
        heap_[static_cast<std::size_t>(i)] = pv;
        heap_index_[static_cast<std::size_t>(pv)] = i;
        i = parent;
    }
    heap_[static_cast<std::size_t>(i)] = v;
    heap_index_[static_cast<std::size_t>(v)] = i;
}

void solver::heap_percolate_down(int i) {
    const var v = heap_[static_cast<std::size_t>(i)];
    const double act = activity_[static_cast<std::size_t>(v)];
    const int n = static_cast<int>(heap_.size());
    for (;;) {
        int child = 2 * i + 1;
        if (child >= n) break;
        if (child + 1 < n &&
            activity_[static_cast<std::size_t>(heap_[static_cast<std::size_t>(child + 1)])] >
                activity_[static_cast<std::size_t>(heap_[static_cast<std::size_t>(child)])]) {
            ++child;
        }
        const var cv = heap_[static_cast<std::size_t>(child)];
        if (act >= activity_[static_cast<std::size_t>(cv)]) break;
        heap_[static_cast<std::size_t>(i)] = cv;
        heap_index_[static_cast<std::size_t>(cv)] = i;
        i = child;
    }
    heap_[static_cast<std::size_t>(i)] = v;
    heap_index_[static_cast<std::size_t>(v)] = i;
}

var solver::heap_pop() {
    const var top = heap_[0];
    heap_index_[static_cast<std::size_t>(top)] = -1;
    const var last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
        heap_[0] = last;
        heap_index_[static_cast<std::size_t>(last)] = 0;
        heap_percolate_down(0);
    }
    return top;
}

}  // namespace qubikos::sat
