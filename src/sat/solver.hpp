// Conflict-driven clause-learning SAT solver.
//
// This is the decision engine underneath the exact layout synthesizer
// (src/exact/olsq.*), standing in for the PySAT/Z3 backends the paper's
// optimality study uses. Feature set: two-watched-literal propagation,
// first-UIP clause learning with recursive minimization, EVSIDS variable
// activities on an indexed heap, phase saving, Luby restarts, and
// LBD-based learned-clause reduction.
#pragma once

#include <cstdint>
#include <vector>

#include "sat/literal.hpp"

namespace qubikos::sat {

enum class status { sat, unsat, unknown };

class solver {
public:
    solver() = default;

    /// Creates a fresh variable and returns it.
    var new_var();
    [[nodiscard]] int num_vars() const { return static_cast<int>(assign_.size()); }
    [[nodiscard]] std::size_t num_clauses() const { return num_problem_clauses_; }

    /// Adds a clause; returns false if the formula is already trivially
    /// unsatisfiable (empty clause after simplification).
    bool add_clause(std::vector<lit> lits);
    bool add_clause(lit a) { return add_clause(std::vector<lit>{a}); }
    bool add_clause(lit a, lit b) { return add_clause(std::vector<lit>{a, b}); }
    bool add_clause(lit a, lit b, lit c) { return add_clause(std::vector<lit>{a, b, c}); }

    /// Solves the current formula. `assumptions` are decided first; an
    /// UNSAT answer under assumptions means no model extends them.
    status solve(const std::vector<lit>& assumptions = {});

    /// Model access, valid after solve() returned sat.
    [[nodiscard]] bool model_value(var v) const;
    [[nodiscard]] bool model_value(lit l) const {
        return model_value(l.variable()) != l.negated();
    }

    /// Abort knob: stop and return unknown after this many conflicts
    /// (0 = unlimited).
    void set_conflict_limit(std::uint64_t limit) { conflict_limit_ = limit; }

    struct statistics {
        std::uint64_t conflicts = 0;
        std::uint64_t decisions = 0;
        std::uint64_t propagations = 0;
        std::uint64_t restarts = 0;
        std::uint64_t learned_clauses = 0;
        std::uint64_t deleted_clauses = 0;
    };
    [[nodiscard]] const statistics& stats() const { return stats_; }

private:
    using cref = std::uint32_t;
    static constexpr cref kNoReason = 0xffffffffu;

    // --- clause arena ----------------------------------------------------
    // Layout per clause: [size | learned flag in bit 31] [lbd] [activity
    // placeholder unused] lits... ; refs are offsets into arena_.
    struct clause_view {
        std::uint32_t* header;
        [[nodiscard]] std::uint32_t size() const { return header[0] & 0x7fffffffu; }
        [[nodiscard]] bool learned() const { return (header[0] >> 31) != 0; }
        [[nodiscard]] std::uint32_t lbd() const { return header[1]; }
        void set_lbd(std::uint32_t lbd) { header[1] = lbd; }
        [[nodiscard]] lit get(std::uint32_t i) const {
            return from_code(static_cast<std::int32_t>(header[2 + i]));
        }
        void set(std::uint32_t i, lit l) { header[2 + i] = static_cast<std::uint32_t>(l.code); }
    };

    clause_view view(cref ref) { return clause_view{arena_.data() + ref}; }
    cref alloc_clause(const std::vector<lit>& lits, bool learned, std::uint32_t lbd);

    struct watcher {
        cref ref;
        lit blocker;
    };

    // --- core loop --------------------------------------------------------
    void attach(cref ref);
    cref propagate();
    void analyze(cref conflict, std::vector<lit>& learnt, int& backtrack_level,
                 std::uint32_t& lbd);
    bool literal_redundant(lit l, std::uint32_t abstract_levels);
    void backtrack(int level);
    void enqueue(lit l, cref reason);
    lit decide();
    void reduce_db();
    void restart();

    [[nodiscard]] lbool value(lit l) const {
        const lbool v = assign_[static_cast<std::size_t>(l.variable())];
        if (v == lbool::undef) return lbool::undef;
        return l.negated() ? !v : v;
    }
    [[nodiscard]] int level(var v) const { return level_[static_cast<std::size_t>(v)]; }
    [[nodiscard]] int current_level() const { return static_cast<int>(trail_lim_.size()); }

    // --- contract scans (QUBIKOS_DCHECK material; see util/check.hpp) ----
    /// Two-watched-literal invariant: every watcher entry's clause holds
    /// the watched literal in slot 0 or 1, and every attached clause is
    /// found on exactly the two lists of its first two literals.
    [[nodiscard]] bool watch_invariants_ok();
    /// Trail invariant: propagation queue drained, every trail literal
    /// assigned true at a level consistent with the decision markers.
    [[nodiscard]] bool trail_invariants_ok() const;

    // --- activity heap ----------------------------------------------------
    void bump_var(var v);
    void decay_var_activity() { var_inc_ /= kVarDecay; }
    void heap_insert(var v);
    void heap_percolate_up(int i);
    void heap_percolate_down(int i);
    var heap_pop();
    [[nodiscard]] bool heap_contains(var v) const {
        return heap_index_[static_cast<std::size_t>(v)] != -1;
    }

    static constexpr double kVarDecay = 0.95;
    static constexpr double kRescaleThreshold = 1e100;

    // state
    std::vector<std::uint32_t> arena_;
    std::vector<cref> problem_clauses_;
    std::vector<cref> learned_;
    std::size_t num_problem_clauses_ = 0;

    std::vector<std::vector<watcher>> watches_;  // indexed by lit.index()
    std::vector<lbool> assign_;
    std::vector<bool> phase_;       // saved polarity
    std::vector<int> level_;
    std::vector<cref> reason_;
    std::vector<lit> trail_;
    std::vector<int> trail_lim_;
    std::size_t qhead_ = 0;

    std::vector<double> activity_;
    double var_inc_ = 1.0;
    std::vector<var> heap_;
    std::vector<int> heap_index_;

    std::vector<bool> model_;
    bool ok_ = true;  // false once an empty clause was derived

    // scratch buffers for analyze()
    std::vector<char> seen_;
    std::vector<lit> analyze_stack_;
    std::vector<lit> analyze_clear_;

    std::uint64_t conflict_limit_ = 0;
    statistics stats_;
};

}  // namespace qubikos::sat
