#include "sat/encodings.hpp"

#include <stdexcept>

namespace qubikos::sat {

namespace {

void at_most_one_pairwise(solver& s, const std::vector<lit>& lits) {
    for (std::size_t i = 0; i < lits.size(); ++i) {
        for (std::size_t j = i + 1; j < lits.size(); ++j) {
            s.add_clause(~lits[i], ~lits[j]);
        }
    }
}

/// Sinz sequential AMO: aux s_i == "one of lits[0..i] is true".
void at_most_one_sequential(solver& s, const std::vector<lit>& lits) {
    const std::size_t n = lits.size();
    std::vector<var> aux(n - 1);
    for (auto& v : aux) v = s.new_var();
    // lits[i] -> s_i ; s_{i-1} -> s_i ; lits[i] & s_{i-1} -> false
    s.add_clause(~lits[0], pos(aux[0]));
    for (std::size_t i = 1; i + 1 < n; ++i) {
        s.add_clause(~lits[i], pos(aux[i]));
        s.add_clause(neg(aux[i - 1]), pos(aux[i]));
        s.add_clause(~lits[i], neg(aux[i - 1]));
    }
    s.add_clause(~lits[n - 1], neg(aux[n - 2]));
}

}  // namespace

void at_most_one(solver& s, const std::vector<lit>& lits) {
    if (lits.size() <= 1) return;
    if (lits.size() <= 6) {
        at_most_one_pairwise(s, lits);
    } else {
        at_most_one_sequential(s, lits);
    }
}

void at_least_one(solver& s, const std::vector<lit>& lits) {
    if (lits.empty()) throw std::invalid_argument("at_least_one: empty literal set");
    s.add_clause(lits);
}

void exactly_one(solver& s, const std::vector<lit>& lits) {
    at_least_one(s, lits);
    at_most_one(s, lits);
}

void at_most_k(solver& s, const std::vector<lit>& lits, int k) {
    if (k < 0) throw std::invalid_argument("at_most_k: negative k");
    const int n = static_cast<int>(lits.size());
    if (k >= n) return;
    if (k == 0) {
        for (const lit l : lits) s.add_clause(~l);
        return;
    }
    // Sinz sequential counter: r[i][j] == "at least j+1 of lits[0..i]".
    std::vector<std::vector<var>> r(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        r[static_cast<std::size_t>(i)].resize(static_cast<std::size_t>(k));
        for (int j = 0; j < k; ++j) r[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = s.new_var();
    }
    const auto reg = [&r](int i, int j) { return r[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]; };

    s.add_clause(~lits[0], pos(reg(0, 0)));
    for (int j = 1; j < k; ++j) s.add_clause(neg(reg(0, j)));
    for (int i = 1; i < n; ++i) {
        s.add_clause(~lits[static_cast<std::size_t>(i)], pos(reg(i, 0)));
        s.add_clause(neg(reg(i - 1, 0)), pos(reg(i, 0)));
        for (int j = 1; j < k; ++j) {
            s.add_clause(~lits[static_cast<std::size_t>(i)], neg(reg(i - 1, j - 1)), pos(reg(i, j)));
            s.add_clause(neg(reg(i - 1, j)), pos(reg(i, j)));
        }
        s.add_clause(~lits[static_cast<std::size_t>(i)], neg(reg(i - 1, k - 1)));
    }
}

void at_least_k(solver& s, const std::vector<lit>& lits, int k) {
    if (k <= 0) return;
    const int n = static_cast<int>(lits.size());
    if (k > n) throw std::invalid_argument("at_least_k: k exceeds literal count");
    std::vector<lit> negated;
    negated.reserve(lits.size());
    for (const lit l : lits) negated.push_back(~l);
    at_most_k(s, negated, n - k);
}

}  // namespace qubikos::sat
