// Literal encoding for the SAT solver (MiniSat convention).
//
// Variables are dense non-negative ints; a literal packs variable and
// polarity as 2*var + (negated ? 1 : 0) so that negation is a single XOR
// and literals index arrays directly.
#pragma once

#include <cstdint>
#include <string>

namespace qubikos::sat {

using var = std::int32_t;

struct lit {
    std::int32_t code = -2;  // undefined by default

    lit() = default;
    /// Positive or negative literal of a variable.
    static lit make(var v, bool negated) { return lit{(v << 1) | (negated ? 1 : 0)}; }

    [[nodiscard]] var variable() const { return code >> 1; }
    [[nodiscard]] bool negated() const { return (code & 1) != 0; }
    [[nodiscard]] lit operator~() const { return lit{code ^ 1}; }
    /// Direct array index (0..2n-1).
    [[nodiscard]] std::size_t index() const { return static_cast<std::size_t>(code); }

    [[nodiscard]] std::string str() const {
        std::string out;
        if (negated()) out += '-';
        out += std::to_string(variable() + 1);
        return out;
    }

    friend bool operator==(const lit&, const lit&) = default;

private:
    explicit constexpr lit(std::int32_t c) : code(c) {}
    friend constexpr lit from_code(std::int32_t);
};

constexpr lit from_code(std::int32_t c) { return lit{c}; }

inline lit pos(var v) { return lit::make(v, false); }
inline lit neg(var v) { return lit::make(v, true); }

/// Three-valued assignment.
enum class lbool : std::uint8_t { false_, true_, undef };

inline lbool operator!(lbool b) {
    if (b == lbool::undef) return lbool::undef;
    return b == lbool::true_ ? lbool::false_ : lbool::true_;
}

}  // namespace qubikos::sat
