// Clause container with DIMACS CNF import/export.
//
// Keeps a formula independent of any solver instance so tests can
// cross-check the CDCL solver against brute-force enumeration, and so
// encodings can be inspected offline.
#pragma once

#include <string>
#include <vector>

#include "sat/literal.hpp"
#include "sat/solver.hpp"

namespace qubikos::sat {

class formula {
public:
    formula() = default;
    explicit formula(int num_vars) : num_vars_(num_vars) {}

    var new_var() { return num_vars_++; }
    [[nodiscard]] int num_vars() const { return num_vars_; }
    [[nodiscard]] const std::vector<std::vector<lit>>& clauses() const { return clauses_; }

    void add_clause(std::vector<lit> lits);

    /// Loads the formula into a fresh-state solver (creates variables
    /// 0..num_vars-1 in order). Returns false if an empty clause made the
    /// formula trivially unsat.
    bool load_into(solver& s) const;

    /// Evaluates under a full assignment (tests / brute force).
    [[nodiscard]] bool satisfied_by(const std::vector<bool>& assignment) const;

    /// Exhaustive satisfiability check; only sensible for <= ~25 vars.
    [[nodiscard]] bool brute_force_satisfiable() const;

    [[nodiscard]] std::string to_dimacs() const;
    [[nodiscard]] static formula from_dimacs(const std::string& text);

private:
    int num_vars_ = 0;
    std::vector<std::vector<lit>> clauses_;
};

}  // namespace qubikos::sat
