// Cardinality encodings on top of the CDCL solver.
//
// The OLSQ encoding needs exactly-one / at-most-one constraints over
// mapping rows, gate time assignments and transition swaps. Small groups
// use the pairwise encoding; larger groups the sequential (Sinz) encoding,
// which stays linear in clauses and auxiliary variables.
#pragma once

#include <vector>

#include "sat/solver.hpp"

namespace qubikos::sat {

/// At most one of `lits` is true. Chooses pairwise vs sequential
/// automatically (pairwise for <= 6 literals).
void at_most_one(solver& s, const std::vector<lit>& lits);

/// Exactly one of `lits` is true; `lits` must be non-empty.
void exactly_one(solver& s, const std::vector<lit>& lits);

/// At least one (a plain clause).
void at_least_one(solver& s, const std::vector<lit>& lits);

/// Sequential-counter encoding of sum(lits) <= k (k >= 0).
void at_most_k(solver& s, const std::vector<lit>& lits, int k);

/// sum(lits) >= k, encoded as at_most (n-k) over the negations.
void at_least_k(solver& s, const std::vector<lit>& lits, int k);

}  // namespace qubikos::sat
