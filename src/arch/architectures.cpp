#include "arch/architectures.hpp"

#include <stdexcept>

namespace qubikos::arch {

architecture line(int n) {
    if (n < 2) throw std::invalid_argument("arch::line: need n >= 2");
    graph g(n);
    for (int i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
    return {"line" + std::to_string(n), std::move(g)};
}

architecture ring(int n) {
    if (n < 3) throw std::invalid_argument("arch::ring: need n >= 3");
    graph g(n);
    for (int i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
    g.add_edge(n - 1, 0);
    return {"ring" + std::to_string(n), std::move(g)};
}

architecture grid(int rows, int cols) {
    if (rows < 1 || cols < 1) throw std::invalid_argument("arch::grid: empty grid");
    graph g(rows * cols);
    const auto id = [cols](int r, int c) { return r * cols + c; };
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
            if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
        }
    }
    return {"grid" + std::to_string(rows) + "x" + std::to_string(cols), std::move(g)};
}

namespace {

/// Heavy-hex builder shared by heavy_hex() and eagle127(). Chains are
/// horizontal rows of qubits; connector qubits sit between chains at
/// columns congruent to `offset` (alternating 0 and 2) modulo 4, linking
/// the same column in both chains. `first_cols`/`last_cols` trim the first
/// and last chains the way IBM devices do.
architecture build_heavy_hex(const std::string& name, int rows, int row_len, bool trim_ends) {
    if (rows < 2 || row_len < 5) {
        throw std::invalid_argument("heavy_hex: need rows >= 2 and row_len >= 5");
    }
    graph g(0);
    // chain_start[r] = vertex id of column chain_col0[r] in chain r.
    std::vector<int> chain_start(static_cast<std::size_t>(rows));
    std::vector<int> chain_col0(static_cast<std::size_t>(rows), 0);
    std::vector<int> chain_len(static_cast<std::size_t>(rows), row_len);
    if (trim_ends) {
        // First chain drops the last column, last chain drops column 0
        // (ibm_washington pattern).
        chain_len.front() = row_len - 1;
        chain_len.back() = row_len - 1;
        chain_col0.back() = 1;
    }

    const auto col_of = [&](int r, int c) {
        return chain_start[static_cast<std::size_t>(r)] + (c - chain_col0[static_cast<std::size_t>(r)]);
    };

    for (int r = 0; r < rows; ++r) {
        chain_start[static_cast<std::size_t>(r)] = g.num_vertices();
        for (int c = 0; c < chain_len[static_cast<std::size_t>(r)]; ++c) g.add_vertex();
        for (int c = 0; c + 1 < chain_len[static_cast<std::size_t>(r)]; ++c) {
            const int base = chain_start[static_cast<std::size_t>(r)];
            g.add_edge(base + c, base + c + 1);
        }
        if (r == 0) continue;
        // Connectors between chain r-1 and chain r at every 4th column,
        // starting at 0 for even gaps and 2 for odd gaps.
        const int start_col = ((r - 1) % 2 == 0) ? 0 : 2;
        for (int c = start_col; c < row_len; c += 4) {
            const bool in_upper = c >= chain_col0[static_cast<std::size_t>(r - 1)] &&
                                  c < chain_col0[static_cast<std::size_t>(r - 1)] +
                                          chain_len[static_cast<std::size_t>(r - 1)];
            const bool in_lower = c >= chain_col0[static_cast<std::size_t>(r)] &&
                                  c < chain_col0[static_cast<std::size_t>(r)] +
                                          chain_len[static_cast<std::size_t>(r)];
            if (!in_upper || !in_lower) continue;
            const int connector = g.add_vertex();
            g.add_edge(col_of(r - 1, c), connector);
            g.add_edge(connector, col_of(r, c));
        }
    }
    return {name, std::move(g)};
}

}  // namespace

architecture heavy_hex(int rows, int row_len) {
    return build_heavy_hex("heavyhex" + std::to_string(rows) + "x" + std::to_string(row_len),
                           rows, row_len, /*trim_ends=*/false);
}

architecture aspen4() {
    // Two octagon rings (0-7 and 8-15) bridged by couplers (1,14), (2,13) —
    // the 16Q-A lattice with pyQuil ids 10..17 relabeled to 8..15.
    graph g(16);
    for (int i = 0; i < 8; ++i) g.add_edge(i, (i + 1) % 8);
    for (int i = 0; i < 8; ++i) g.add_edge(8 + i, 8 + (i + 1) % 8);
    g.add_edge(1, 14);
    g.add_edge(2, 13);
    return {"aspen4", std::move(g)};
}

architecture sycamore54() {
    // 9 rows x 6 columns, diagonal square lattice: 54 qubits, 88 couplers.
    constexpr int kRows = 9;
    constexpr int kCols = 6;
    graph g(kRows * kCols);
    const auto id = [](int r, int c) { return r * kCols + c; };
    for (int r = 0; r + 1 < kRows; ++r) {
        for (int c = 0; c < kCols; ++c) {
            g.add_edge(id(r, c), id(r + 1, c));
            if (r % 2 == 0) {
                if (c > 0) g.add_edge(id(r, c), id(r + 1, c - 1));
            } else {
                if (c + 1 < kCols) g.add_edge(id(r, c), id(r + 1, c + 1));
            }
        }
    }
    return {"sycamore54", std::move(g)};
}

architecture rochester53() {
    // Published ibmq_rochester coupling map: 53 qubits, 58 couplers.
    static const int kEdges[][2] = {
        {0, 1},   {1, 2},   {2, 3},   {3, 4},   {0, 5},   {4, 6},   {5, 9},   {6, 13},
        {7, 8},   {8, 9},   {9, 10},  {10, 11}, {11, 12}, {12, 13}, {13, 14}, {14, 15},
        {7, 16},  {11, 17}, {15, 18}, {16, 19}, {17, 23}, {18, 27}, {19, 20}, {20, 21},
        {21, 22}, {22, 23}, {23, 24}, {24, 25}, {25, 26}, {26, 27}, {21, 28}, {25, 29},
        {28, 32}, {29, 36}, {30, 31}, {31, 32}, {32, 33}, {33, 34}, {34, 35}, {35, 36},
        {36, 37}, {37, 38}, {30, 39}, {34, 40}, {38, 41}, {39, 42}, {40, 46}, {41, 50},
        {42, 43}, {43, 44}, {44, 45}, {45, 46}, {46, 47}, {47, 48}, {48, 49}, {49, 50},
        {45, 51}, {49, 52},
    };
    graph g(53);
    for (const auto& e : kEdges) g.add_edge(e[0], e[1]);
    return {"rochester53", std::move(g)};
}

architecture eagle127() {
    // Heavy-hex with 7 chains of 15 (first/last trimmed to 14) and 4
    // connectors per gap: 127 qubits, 144 couplers (ibm_washington).
    architecture a = build_heavy_hex("eagle127", /*rows=*/7, /*row_len=*/15, /*trim_ends=*/true);
    return a;
}

architecture tokyo20() {
    // IBM Q20 Tokyo: 4x5 grid plus the published diagonal couplers.
    static const int kEdges[][2] = {
        // grid rows
        {0, 1},   {1, 2},   {2, 3},   {3, 4},
        {5, 6},   {6, 7},   {7, 8},   {8, 9},
        {10, 11}, {11, 12}, {12, 13}, {13, 14},
        {15, 16}, {16, 17}, {17, 18}, {18, 19},
        // grid columns
        {0, 5},   {1, 6},   {2, 7},   {3, 8},   {4, 9},
        {5, 10},  {6, 11},  {7, 12},  {8, 13},  {9, 14},
        {10, 15}, {11, 16}, {12, 17}, {13, 18}, {14, 19},
        // diagonals
        {1, 7},   {2, 6},   {3, 9},   {4, 8},
        {5, 11},  {6, 10},  {7, 13},  {8, 12},
        {11, 17}, {12, 16}, {13, 19}, {14, 18},
    };
    graph g(20);
    for (const auto& e : kEdges) g.add_edge(e[0], e[1]);
    return {"tokyo20", std::move(g)};
}

architecture guadalupe16() {
    // ibmq_guadalupe (Falcon r4): 16 qubits, 16 couplers, small heavy-hex.
    static const int kEdges[][2] = {
        {0, 1}, {1, 2}, {2, 3}, {3, 5}, {5, 8}, {8, 9}, {8, 11}, {11, 14},
        {14, 13}, {13, 12}, {12, 10}, {10, 7}, {7, 4}, {4, 1}, {12, 15}, {6, 7},
    };
    graph g(16);
    for (const auto& e : kEdges) g.add_edge(e[0], e[1]);
    return {"guadalupe16", std::move(g)};
}

std::vector<architecture> paper_platforms() {
    std::vector<architecture> out;
    out.push_back(aspen4());
    out.push_back(sycamore54());
    out.push_back(rochester53());
    out.push_back(eagle127());
    return out;
}

architecture by_name(const std::string& name) {
    if (name == "aspen4") return aspen4();
    if (name == "sycamore54") return sycamore54();
    if (name == "rochester53") return rochester53();
    if (name == "eagle127") return eagle127();
    if (name == "tokyo20") return tokyo20();
    if (name == "guadalupe16") return guadalupe16();
    if (name.rfind("line", 0) == 0) return line(std::stoi(name.substr(4)));
    if (name.rfind("ring", 0) == 0) return ring(std::stoi(name.substr(4)));
    if (name.rfind("grid", 0) == 0) {
        const auto x = name.find('x');
        if (x != std::string::npos) {
            return grid(std::stoi(name.substr(4, x - 4)), std::stoi(name.substr(x + 1)));
        }
    }
    throw std::invalid_argument("arch::by_name: unknown architecture '" + name + "'");
}

std::vector<std::string> known_names() {
    return {"aspen4",      "sycamore54", "rochester53", "eagle127", "tokyo20",
            "guadalupe16", "line<n>",    "ring<n>",     "grid<r>x<c>"};
}

}  // namespace qubikos::arch
