// Device coupling graphs GC(P, EP).
//
// The four evaluation platforms of the paper (Sec. IV) plus parametric
// families for tests and the optimality study:
//   - Rigetti Aspen-4: 16 qubits, two octagon rings bridged by 2 couplers.
//   - Google Sycamore: 54 qubits, 88 couplers, diagonal square lattice.
//   - IBM Rochester: 53 qubits, 58 couplers, heavy-hex-like lattice
//     (explicit published coupling map).
//   - IBM Eagle: 127 qubits, 144 couplers, heavy-hex lattice
//     (ibm_washington layout, generated row/connector-wise).
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace qubikos::arch {

/// A named device: coupling graph plus identification metadata.
struct architecture {
    std::string name;
    graph coupling;

    [[nodiscard]] int num_qubits() const { return coupling.num_vertices(); }
    [[nodiscard]] int num_couplers() const { return coupling.num_edges(); }
};

// --- parametric families -------------------------------------------------
[[nodiscard]] architecture line(int n);
[[nodiscard]] architecture ring(int n);
[[nodiscard]] architecture grid(int rows, int cols);
/// IBM-style heavy-hex: `rows` horizontal chains of `row_len` qubits with
/// 4-spaced connector qubits between adjacent chains. rows >= 2,
/// row_len >= 5. The first/last chains are one qubit shorter, matching
/// real devices.
[[nodiscard]] architecture heavy_hex(int rows, int row_len);

// --- evaluation platforms (Sec. IV) --------------------------------------
[[nodiscard]] architecture aspen4();
[[nodiscard]] architecture sycamore54();
[[nodiscard]] architecture rochester53();
[[nodiscard]] architecture eagle127();

// --- additional devices (QUEKO's platforms; handy for extensions) --------
/// IBM Tokyo: 20 qubits, dense 4x5 lattice with diagonal couplers.
[[nodiscard]] architecture tokyo20();
/// IBM Guadalupe: 16 qubits, small heavy-hex (falcon r4 layout).
[[nodiscard]] architecture guadalupe16();

/// All four paper platforms, in the order used by Fig. 4.
[[nodiscard]] std::vector<architecture> paper_platforms();

/// Lookup by name ("aspen4", "sycamore54", "rochester53", "eagle127",
/// "grid3x3", ...); throws std::invalid_argument on unknown names.
[[nodiscard]] architecture by_name(const std::string& name);
[[nodiscard]] std::vector<std::string> known_names();

}  // namespace qubikos::arch
