// Registration unit for the ML-QLS-style multilevel tool. The routing_*
// options configure the final SABRE-style pass of each V-cycle (its
// trial/thread/seed/bidirectional knobs are controlled by the multilevel
// driver itself and deliberately not exposed).
#include <cstdint>

#include "router/mlqls.hpp"
#include "tools/builtin.hpp"
#include "tools/registry.hpp"

namespace qubikos::tools::detail {

namespace {

router::mlqls_options mlqls_from(const json::value& o) {
    router::mlqls_options m;
    m.coarsest_size = o.at("coarsest_size").as_int();
    m.refine_sweeps = o.at("refine_sweeps").as_int();
    m.placement_trials = o.at("placement_trials").as_int();
    m.seed = static_cast<std::uint64_t>(o.at("seed").as_number());
    m.routing.extended_set_size = o.at("routing_extended_set_size").as_int();
    m.routing.extended_set_weight = o.at("routing_extended_set_weight").as_number();
    m.routing.decay_increment = o.at("routing_decay_increment").as_number();
    m.routing.decay_reset_interval = o.at("routing_decay_reset_interval").as_int();
    m.routing.lookahead_decay = o.at("routing_lookahead_decay").as_number();
    m.routing.release_valve = o.at("routing_release_valve").as_int();
    return m;
}

}  // namespace

void register_builtin_mlqls() {
    tool_info info;
    info.name = "mlqls";
    info.doc = "multilevel placement + SABRE-style routing (ML-QLS, Lin & Cong)";
    info.options = {
        {"coarsest_size", option_kind::integer, 8,
         "stop coarsening the interaction graph at this many vertices"},
        {"refine_sweeps", option_kind::integer, 3,
         "hill-climbing sweeps per uncoarsening level"},
        {"placement_trials", option_kind::integer, 4,
         "full V-cycles with different refinement orders; best routed result wins"},
        {"seed", option_kind::integer, 1, "base RNG seed of the V-cycle trials", 0.0,
         max_seed_option},
        {"routing_extended_set_size", option_kind::integer, 20,
         "lookahead window of the final routing pass"},
        {"routing_extended_set_weight", option_kind::real, 0.5,
         "extended-set weight of the final routing pass"},
        {"routing_decay_increment", option_kind::real, 0.001,
         "decay increment of the final routing pass"},
        {"routing_decay_reset_interval", option_kind::integer, 5,
         "decay reset interval of the final routing pass"},
        {"routing_lookahead_decay", option_kind::real, 1.0,
         "extended-set position decay of the final routing pass"},
        {"routing_release_valve", option_kind::integer, 0,
         "no-progress bound of the final routing pass (0 = auto)"},
    };
    register_tool(std::move(info), [](const json::value& options,
                                      std::shared_ptr<const routing_context> context) {
        const router::mlqls_options m = mlqls_from(options);
        return eval::tool{
            "", [m, context = std::move(context)](const circuit& c, const graph& g) {
                if (context != nullptr && context->matches(g)) {
                    return router::route_mlqls(c, g, context->distances(), m);
                }
                return router::route_mlqls(c, g, m);
            },
            /*run_stats=*/{}};
    });
}

}  // namespace qubikos::tools::detail
