// Builtin tool registration hooks.
//
// One function per router, each defined in its own registration unit
// (src/tools/builtin_<router>.cpp). The registry calls them lazily on
// first access — explicit pull instead of static-initializer push, which
// a static library's linker would drop for unreferenced objects.
#pragma once

namespace qubikos::tools::detail {

void register_builtin_lightsabre();
void register_builtin_mlqls();
void register_builtin_qmap();
void register_builtin_tket();

}  // namespace qubikos::tools::detail
