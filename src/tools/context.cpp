#include "tools/context.hpp"

namespace qubikos::tools {

routing_context::routing_context(const graph& coupling)
    : coupling_(coupling), dist_(coupling) {}

bool routing_context::matches(const graph& g) const {
    return g.num_vertices() == coupling_.num_vertices() && g.edges() == coupling_.edges();
}

std::shared_ptr<const routing_context> make_routing_context(const graph& coupling) {
    return std::make_shared<const routing_context>(coupling);
}

}  // namespace qubikos::tools
