#include "tools/context.hpp"

namespace qubikos::tools {

routing_context::routing_context(const graph& coupling, distance_options options)
    : coupling_(coupling), dist_(coupling, options) {}

bool routing_context::matches(const graph& g) const {
    return g.num_vertices() == coupling_.num_vertices() && g.edges() == coupling_.edges();
}

std::shared_ptr<const routing_context> make_routing_context(const graph& coupling) {
    return std::make_shared<const routing_context>(coupling);
}

std::shared_ptr<const routing_context> make_routing_context(const graph& coupling,
                                                            distance_options options) {
    return std::make_shared<const routing_context>(coupling, options);
}

}  // namespace qubikos::tools
