#include "tools/registry.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <stdexcept>

#include "tools/builtin.hpp"
#include "util/table.hpp"

namespace qubikos::tools {

namespace {

struct registry_entry {
    tool_info info;
    tool_factory factory;
};

struct registry_state {
    std::mutex mutex;
    /// deque: references to entries stay valid across later
    /// registrations (tool_registry_info hands them out).
    std::deque<registry_entry> entries;

    registry_entry* find(const std::string& name) {
        for (auto& entry : entries) {
            if (entry.info.name == name) return &entry;
        }
        return nullptr;
    }
};

registry_state& raw_state() {
    static registry_state instance;
    return instance;
}

/// True on the thread currently executing the builtin-registration pass:
/// its register_tool calls must write to raw_state() directly instead of
/// re-entering state()'s call_once (which would deadlock).
thread_local bool registering_builtins = false;

/// The process-wide registry. Builtins register on first access — from
/// queries AND from public register_tool, so an early external
/// registration can never claim a builtin name — via a dedicated unit
/// per router (static initializers in a static library would be dropped
/// for unreferenced objects, so registration is pulled, not pushed).
registry_state& state() {
    static std::once_flag builtins_once;
    std::call_once(builtins_once, [] {
        registering_builtins = true;
        detail::register_builtin_lightsabre();
        detail::register_builtin_mlqls();
        detail::register_builtin_qmap();
        detail::register_builtin_tket();
        registering_builtins = false;
    });
    return raw_state();
}

bool value_has_kind(const json::value& v, option_kind kind) {
    switch (kind) {
        case option_kind::boolean: return v.type() == json::kind::boolean;
        case option_kind::real: return v.type() == json::kind::number;
        case option_kind::integer:
            return v.type() == json::kind::number &&
                   v.as_number() == std::floor(v.as_number());
    }
    return false;
}

/// Shortest decimal literal that round-trips `d` — labels like
/// "sabre:lookahead_decay=0.9" must not read "0.90000000000000002".
std::string number_literal(double d) {
    if (d == std::floor(d) && std::abs(d) < 1e15) {
        return std::to_string(static_cast<long long>(d));
    }
    char buf[32];
    for (int precision = 6; precision <= 17; ++precision) {
        std::snprintf(buf, sizeof buf, "%.*g", precision, d);
        if (std::strtod(buf, nullptr) == d) break;
    }
    return buf;
}

std::string value_literal(const json::value& v) {
    switch (v.type()) {
        case json::kind::boolean: return v.as_bool() ? "true" : "false";
        case json::kind::number: return number_literal(v.as_number());
        default: return v.dump();
    }
}

/// Caller holds reg.mutex.
std::string known_tool_names_line(const registry_state& reg) {
    std::string line;
    for (const auto& entry : reg.entries) {
        if (!line.empty()) line += "|";
        line += entry.info.name;
    }
    return line;
}

/// Parses one "key=value" override, typed by the schema.
json::value parse_option_value(const tool_info& info, const option_spec& spec,
                               const std::string& text) {
    const auto fail = [&](const char* expected) {
        throw std::invalid_argument("tools: option '" + spec.key + "' of '" + info.name +
                                    "' expects " + expected + ", got '" + text + "'");
    };
    if (spec.kind == option_kind::boolean) {
        if (text == "true" || text == "1") return json::value(true);
        if (text == "false" || text == "0") return json::value(false);
        fail("a boolean (true|false|1|0)");
    }
    char* end = nullptr;
    if (spec.kind == option_kind::integer) {
        errno = 0;
        const long long parsed = std::strtoll(text.c_str(), &end, 10);
        if (end == text.c_str() || *end != '\0' || errno == ERANGE) fail("an integer");
        return json::value(static_cast<std::int64_t>(parsed));
    }
    errno = 0;
    const double parsed = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE) fail("a number");
    return json::value(parsed);
}

}  // namespace

const char* option_kind_name(option_kind kind) {
    switch (kind) {
        case option_kind::integer: return "int";
        case option_kind::real: return "real";
        case option_kind::boolean: return "bool";
    }
    return "?";
}

const option_spec* tool_info::find_option(const std::string& key) const {
    for (const auto& option : options) {
        if (option.key == key) return &option;
    }
    return nullptr;
}

void register_tool(tool_info info, tool_factory factory) {
    if (info.name.empty()) throw std::invalid_argument("tools: tool name must be nonempty");
    if (factory == nullptr) {
        throw std::invalid_argument("tools: tool '" + info.name + "' has no factory");
    }
    for (const auto& option : info.options) {
        if (!value_has_kind(option.default_value, option.kind)) {
            throw std::invalid_argument("tools: default for option '" + option.key + "' of '" +
                                        info.name + "' does not match its declared " +
                                        option_kind_name(option.kind) + " kind");
        }
        if (option.kind != option_kind::boolean &&
            (option.default_value.as_number() < option.minimum ||
             option.default_value.as_number() > option.maximum)) {
            throw std::invalid_argument("tools: default for option '" + option.key + "' of '" +
                                        info.name + "' is outside its own [minimum, maximum]");
        }
    }
    auto& reg = registering_builtins ? raw_state() : state();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    if (reg.find(info.name) != nullptr) {
        throw std::invalid_argument("tools: tool '" + info.name + "' is already registered");
    }
    reg.entries.push_back({std::move(info), std::move(factory)});
}

std::vector<std::string> registered_tool_names() {
    auto& reg = state();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    std::vector<std::string> names;
    names.reserve(reg.entries.size());
    for (const auto& entry : reg.entries) names.push_back(entry.info.name);
    return names;
}

bool is_registered_tool(const std::string& name) {
    auto& reg = state();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    return reg.find(name) != nullptr;
}

const tool_info& tool_registry_info(const std::string& name) {
    auto& reg = state();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    const registry_entry* entry = reg.find(name);
    if (entry == nullptr) {
        throw std::invalid_argument("tools: unknown tool '" + name + "' (" +
                                    known_tool_names_line(reg) + ")");
    }
    // Entries are never removed or reordered, so the reference is stable.
    return entry->info;
}

const std::vector<std::string>& paper_tool_names() {
    static const std::vector<std::string> names = {"lightsabre", "mlqls", "qmap", "tket"};
    return names;
}

json::value resolve_options(const tool_info& info, const json::value& overrides) {
    json::object resolved;
    for (const auto& option : info.options) resolved[option.key] = option.default_value;
    if (!overrides.is_null()) {
        if (overrides.type() != json::kind::object) {
            throw std::invalid_argument("tools: options for '" + info.name +
                                        "' must be a JSON object");
        }
        for (const auto& [key, value] : overrides.as_object()) {
            const option_spec* spec = info.find_option(key);
            if (spec == nullptr) {
                throw std::invalid_argument(
                    "tools: unknown option '" + key + "' for tool '" + info.name +
                    "' (see `qubikos_cli tools describe " + info.name + "`)");
            }
            if (!value_has_kind(value, spec->kind)) {
                throw std::invalid_argument("tools: option '" + key + "' of '" + info.name +
                                            "' expects a " + option_kind_name(spec->kind) +
                                            " value, got " + value.dump());
            }
            if (spec->kind != option_kind::boolean &&
                (value.as_number() < spec->minimum || value.as_number() > spec->maximum)) {
                throw std::invalid_argument(
                    "tools: option '" + key + "' of '" + info.name + "' must be in [" +
                    number_literal(spec->minimum) + ", " + number_literal(spec->maximum) +
                    "], got " + value.dump());
            }
            resolved[key] = value;
        }
    }
    return json::value(std::move(resolved));
}

eval::tool make_tool(const std::string& name, const json::value& overrides,
                     std::shared_ptr<const routing_context> context) {
    tool_factory factory;
    json::value resolved;
    {
        auto& reg = state();
        const std::lock_guard<std::mutex> lock(reg.mutex);
        const registry_entry* entry = reg.find(name);
        if (entry == nullptr) {
            throw std::invalid_argument("tools: unknown tool '" + name + "' (" +
                                        known_tool_names_line(reg) + ")");
        }
        factory = entry->factory;
        resolved = resolve_options(entry->info, overrides);
    }
    eval::tool tool = factory(resolved, std::move(context));
    tool.name = name;
    return tool;
}

std::string tool_selection::canonical() const {
    if (options.is_null() || options.as_object().empty()) return name;
    std::string out = name + ":";
    bool first = true;
    for (const auto& [key, value] : options.as_object()) {
        if (!first) out += ",";
        first = false;
        out += key + "=" + value_literal(value);
    }
    return out;
}

tool_selection parse_tool_spec(const std::string& text) {
    tool_selection selection;
    const std::size_t colon = text.find(':');
    selection.name = text.substr(0, colon);
    const tool_info& info = tool_registry_info(selection.name);  // throws on unknown
    if (colon == std::string::npos) return selection;

    json::object overrides;
    std::size_t pos = colon + 1;
    while (pos <= text.size()) {
        const std::size_t comma = std::min(text.find(',', pos), text.size());
        const std::string pair = text.substr(pos, comma - pos);
        const std::size_t eq = pair.find('=');
        if (pair.empty() || eq == std::string::npos || eq == 0) {
            throw std::invalid_argument("tools: bad option '" + pair + "' in '" + text +
                                        "' (expected name[:key=val,...])");
        }
        const std::string key = pair.substr(0, eq);
        const option_spec* spec = info.find_option(key);
        if (spec == nullptr) {
            throw std::invalid_argument("tools: unknown option '" + key + "' for tool '" +
                                        info.name + "' (see `qubikos_cli tools describe " +
                                        info.name + "`)");
        }
        if (overrides.find(key) != overrides.end()) {
            throw std::invalid_argument("tools: option '" + key + "' given twice in '" + text +
                                        "'");
        }
        overrides[key] = parse_option_value(info, *spec, pair.substr(eq + 1));
        pos = comma + 1;
    }
    selection.options = json::value(std::move(overrides));
    return selection;
}

std::string describe_tool(const std::string& name) {
    const tool_info& info = tool_registry_info(name);
    std::string out = "tool " + info.name + ": " + info.doc + "\n";
    if (info.options.empty()) {
        out += "  (no options)\n";
        return out;
    }
    ascii_table table({"option", "type", "default", "doc"});
    for (const auto& option : info.options) {
        table.add(option.key, option_kind_name(option.kind),
                  value_literal(option.default_value), option.doc);
    }
    out += table.str();
    return out;
}

json::value tool_info_to_json(const tool_info& info) {
    json::array options;
    for (const auto& option : info.options) {
        json::object o;
        o["default"] = option.default_value;
        o["doc"] = option.doc;
        o["key"] = option.key;
        o["kind"] = option_kind_name(option.kind);
        if (option.kind != option_kind::boolean) {
            o["maximum"] = option.maximum;
            o["minimum"] = option.minimum;
        }
        options.push_back(json::value(std::move(o)));
    }
    json::object tool;
    tool["doc"] = info.doc;
    tool["name"] = info.name;
    tool["options"] = json::value(std::move(options));
    return json::value(std::move(tool));
}

json::value registry_to_json() {
    json::array tools;
    for (const auto& name : registered_tool_names()) {
        tools.push_back(tool_info_to_json(tool_registry_info(name)));
    }
    json::object doc;
    doc["schema"] = "qubikos.tools.v1";
    doc["tools"] = json::value(std::move(tools));
    return json::value(std::move(doc));
}

std::string render_tool_table() {
    ascii_table table({"tool", "options", "doc"});
    for (const auto& name : registered_tool_names()) {
        const tool_info& info = tool_registry_info(name);
        table.add(info.name, info.options.size(), info.doc);
    }
    return table.str();
}

}  // namespace qubikos::tools
