// Registration unit for the QMAP-style layered A* mapper.
#include "router/qmap.hpp"
#include "tools/builtin.hpp"
#include "tools/registry.hpp"

namespace qubikos::tools::detail {

void register_builtin_qmap() {
    tool_info info;
    info.name = "qmap";
    info.doc = "layered A* swap search with greedy fallback (QMAP, Zulehner/Wille)";
    info.options = {
        {"node_limit", option_kind::integer, 20000,
         "A* node budget per layer before falling back to greedy routing"},
        {"lookahead_weight", option_kind::real, 0.75,
         "weight of the next-layer lookahead term (0 disables it)"},
        {"placement_window", option_kind::integer, 25,
         "leading two-qubit gates the initial placement sees (0 = whole circuit)"},
    };
    register_tool(std::move(info), [](const json::value& options,
                                      std::shared_ptr<const routing_context> context) {
        router::qmap_options q;
        q.node_limit = static_cast<std::size_t>(options.at("node_limit").as_number());
        q.lookahead_weight = options.at("lookahead_weight").as_number();
        q.placement_window =
            static_cast<std::size_t>(options.at("placement_window").as_number());
        return eval::tool{
            "", [q, context = std::move(context)](const circuit& c, const graph& g) {
                if (context != nullptr && context->matches(g)) {
                    return router::route_qmap(c, g, context->distances(), q);
                }
                return router::route_qmap(c, g, q);
            },
            /*run_stats=*/{}};
    });
}

}  // namespace qubikos::tools::detail
