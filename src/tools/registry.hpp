// Self-describing tool registry: the single catalog of QLS tools.
//
// The paper's experiment grid is (tool x benchmark); before this
// registry existed the tool axis was an ad-hoc std::function lineup
// hardcoded by eval::paper_toolbox, the campaign worker, the CLI and
// every bench — five layers to touch per new tool variant. Now a tool
// registers ONCE, with a name, a doc line and a typed option schema, and
// every consumer selects tools by name + option overrides:
//
//   eval::paper_toolbox          -> registry query over paper_tool_names()
//   campaign spec v3             -> {"name": "lightsabre", "options": {...}}
//   qubikos_cli tools list       -> the registry table
//   qubikos_cli route / --tool   -> parse_tool_spec("name:key=val,...")
//   benches                      -> make_tool(name, overrides, context)
//
// Option validation is loud: an unknown tool name, an unknown option key
// or an ill-typed value throws immediately (never a silent default) —
// a misspelled knob that quietly ran the default configuration would
// poison a whole campaign's tables.
//
// Builtin tools self-register lazily from per-router registration units
// (src/tools/builtin_*.cpp) on first registry access; additional tools
// can be registered at runtime with register_tool().
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "eval/harness.hpp"
#include "tools/context.hpp"
#include "util/json.hpp"

namespace qubikos::tools {

enum class option_kind { integer, real, boolean };

[[nodiscard]] const char* option_kind_name(option_kind kind);

/// One typed knob of a tool's schema. `default_value` must match `kind`
/// (boolean <-> bool, integer <-> integral number, real <-> number).
/// Numeric values outside [minimum, maximum] are rejected at resolve
/// time; the defaults (non-negative, capped at int32 max) make the
/// factories' int/size_t casts well-defined without per-factory checks.
/// Widen explicitly where a knob needs more (e.g. 64-bit seeds).
struct option_spec {
    std::string key;
    option_kind kind = option_kind::integer;
    json::value default_value;
    std::string doc;
    double minimum = 0.0;
    double maximum = 2147483647.0;  // INT32_MAX
};

/// Exactly representable in double and in uint64 — the widest range a
/// JSON-carried seed can survive unclamped.
inline constexpr double max_seed_option = 9007199254740992.0;  // 2^53

/// A registered tool's self-description.
struct tool_info {
    std::string name;
    std::string doc;
    std::vector<option_spec> options;

    /// nullptr when the key is not in the schema.
    [[nodiscard]] const option_spec* find_option(const std::string& key) const;
};

/// Builds an eval::tool from a fully-resolved option object (every schema
/// key present, validated) and an optional shared routing context
/// (nullptr = the tool computes per-call distance matrices, the
/// pre-registry behavior).
using tool_factory = std::function<eval::tool(
    const json::value& options, std::shared_ptr<const routing_context> context)>;

/// Registers a tool; throws std::invalid_argument on a duplicate name or
/// a schema whose defaults don't match their declared kinds.
void register_tool(tool_info info, tool_factory factory);

/// All registered names, in registration order (builtins first).
[[nodiscard]] std::vector<std::string> registered_tool_names();

[[nodiscard]] bool is_registered_tool(const std::string& name);

/// Self-description of a registered tool; throws on unknown names with
/// the known lineup in the message.
[[nodiscard]] const tool_info& tool_registry_info(const std::string& name);

/// The paper's four-tool lineup (lightsabre, mlqls, qmap, tket) in table
/// order — the default tool axis of specs, reports and benches.
[[nodiscard]] const std::vector<std::string>& paper_tool_names();

/// Validates `overrides` (an object, or null for none) against the schema
/// and folds it over the defaults into a complete option object. Unknown
/// keys and ill-typed values throw std::invalid_argument.
[[nodiscard]] json::value resolve_options(const tool_info& info, const json::value& overrides);

/// Looks a tool up, resolves its options and builds it. The returned
/// tool's name is the registry name; callers running several variants of
/// one tool relabel it (eval::tool::name is plain data).
[[nodiscard]] eval::tool make_tool(const std::string& name, const json::value& overrides = {},
                                   std::shared_ptr<const routing_context> context = nullptr);

/// A parsed tool selection: registry name + option overrides.
struct tool_selection {
    std::string name;
    /// Object of overrides; null when none were given.
    json::value options;

    /// "name" or "name:key=val,..." (keys sorted — json objects are
    /// ordered maps), the default display label of an option-overridden
    /// variant.
    [[nodiscard]] std::string canonical() const;
};

/// Parses the CLI selector syntax "name[:key=val,...]". Values are typed
/// by the schema (integer/real parsed fully, booleans accept
/// true/false/1/0); anything else throws std::invalid_argument.
[[nodiscard]] tool_selection parse_tool_spec(const std::string& text);

/// Multi-line human-readable schema description of one tool (the
/// `qubikos_cli tools describe` output; snapshot-pinned by test).
[[nodiscard]] std::string describe_tool(const std::string& name);

/// One tool's self-description as JSON: {"doc", "name", "options":
/// [{"default", "doc", "key", "kind", "maximum", "minimum"}]} with the
/// options in schema order. Machine-readable counterpart of
/// describe_tool for serve clients and `tools describe <tool> --json`.
[[nodiscard]] json::value tool_info_to_json(const tool_info& info);

/// The whole registry as JSON ({"schema": "qubikos.tools.v1", "tools":
/// [...]} in registration order) — the `tools describe --json` document
/// and the serve protocol's "tools" op payload. Byte-deterministic for
/// a fixed registry (snapshot-pinned by test).
[[nodiscard]] json::value registry_to_json();

/// One-line-per-tool table of the whole registry (`tools list`).
[[nodiscard]] std::string render_tool_table();

}  // namespace qubikos::tools
