// Registration unit for the t|ket>-style slice router.
#include "router/tket.hpp"
#include "tools/builtin.hpp"
#include "tools/registry.hpp"

namespace qubikos::tools::detail {

void register_builtin_tket() {
    tool_info info;
    info.name = "tket";
    info.doc = "deterministic timeslice router (t|ket>, Cowtan et al.)";
    info.options = {
        {"lookahead_slices", option_kind::integer, 4,
         "future slices the swap cost looks at"},
        {"slice_discount", option_kind::real, 0.5, "geometric weight per future slice"},
        {"stagnation_limit", option_kind::integer, 0,
         "stagnation bound before force-routing the nearest gate (0 = auto)"},
        {"placement_window", option_kind::integer, 50,
         "leading two-qubit gates the initial placement sees (0 = whole circuit)"},
    };
    register_tool(std::move(info), [](const json::value& options,
                                      std::shared_ptr<const routing_context> context) {
        router::tket_options t;
        t.lookahead_slices = options.at("lookahead_slices").as_int();
        t.slice_discount = options.at("slice_discount").as_number();
        t.stagnation_limit = options.at("stagnation_limit").as_int();
        t.placement_window =
            static_cast<std::size_t>(options.at("placement_window").as_number());
        return eval::tool{
            "", [t, context = std::move(context)](const circuit& c, const graph& g) {
                if (context != nullptr && context->matches(g)) {
                    return router::route_tket(c, g, context->distances(), t);
                }
                return router::route_tket(c, g, t);
            },
            /*run_stats=*/{}};
    });
}

}  // namespace qubikos::tools::detail
