// Registration unit for the SABRE-engine tools:
//   lightsabre — the paper's headline tool (SABRE + many random trials);
//   sabre      — single-configuration SABRE for ablations (the Sec. IV-C
//                lookahead-decay study runs this with lookahead_decay
//                swept; defaults are one stock trial).
#include <cstdint>

#include "router/sabre.hpp"
#include "tools/builtin.hpp"
#include "tools/registry.hpp"

namespace qubikos::tools::detail {

namespace {

std::vector<option_spec> sabre_schema(int default_trials) {
    return {
        {"trials", option_kind::integer, default_trials,
         "random restarts; the best (fewest-swap) result is kept (paper: 1000)"},
        {"threads", option_kind::integer, 1,
         "trial-loop worker threads (0 = auto); results are thread-count-invariant"},
        {"seed", option_kind::integer, 1, "base RNG seed of the salted trial streams", 0.0,
         max_seed_option},
        {"extended_set_size", option_kind::integer, 20,
         "lookahead window size (Qiskit 1.2 default 20)"},
        {"extended_set_weight", option_kind::real, 0.5,
         "weight W of the extended-set term (Qiskit 1.2 default 0.5)"},
        {"decay_increment", option_kind::real, 0.001,
         "per-swap decay added to a touched qubit's factor"},
        {"decay_reset_interval", option_kind::integer, 5,
         "swaps between decay resets (Qiskit 1.2 default 5)"},
        {"lookahead_decay", option_kind::real, 1.0,
         "geometric decay over extended-set positions; 1.0 = Qiskit's uniform "
         "weighting, <1.0 = the Sec. IV-C proposed fix"},
        {"bidirectional", option_kind::boolean, json::value(true),
         "forward/backward/forward initial-mapping refinement"},
        {"release_valve", option_kind::integer, 0,
         "consecutive no-progress swaps before force-routing (0 = auto)"},
        {"portfolio", option_kind::boolean, json::value(false),
         "schedule trials in deterministic waves with early cuts (luby-budget "
         "portfolio) instead of running every trial to completion"},
        {"portfolio.wave", option_kind::integer, 0,
         "trials per portfolio wave (0 = auto: max(worker count, 4))"},
        {"portfolio.budget_base", option_kind::integer, 0,
         "per-mapping-pass swap-decision budget base for waves >= 1 (0 = "
         "auto: half the best trial's costliest pass)"},
        {"portfolio.budget_growth", option_kind::real, 0.0,
         "0 = scale the budget by the Luby sequence; >= 1 = geometric growth "
         "per wave"},
        {"portfolio.patience", option_kind::integer, 2,
         "stop scheduling waves after this many without improvement (0 = run "
         "all trials)"},
        {"portfolio.target_swaps", option_kind::integer, 0,
         "stop once the best trial reaches this many swaps or fewer (0 = off)"},
    };
}

router::sabre_options sabre_from(const json::value& o) {
    router::sabre_options s;
    s.trials = o.at("trials").as_int();
    s.threads = o.at("threads").as_int();
    s.seed = static_cast<std::uint64_t>(o.at("seed").as_number());
    s.extended_set_size = o.at("extended_set_size").as_int();
    s.extended_set_weight = o.at("extended_set_weight").as_number();
    s.decay_increment = o.at("decay_increment").as_number();
    s.decay_reset_interval = o.at("decay_reset_interval").as_int();
    s.lookahead_decay = o.at("lookahead_decay").as_number();
    s.bidirectional = o.at("bidirectional").as_bool();
    s.release_valve = o.at("release_valve").as_int();
    s.portfolio = o.at("portfolio").as_bool();
    s.portfolio_wave = o.at("portfolio.wave").as_int();
    s.portfolio_budget_base = o.at("portfolio.budget_base").as_int();
    s.portfolio_budget_growth = o.at("portfolio.budget_growth").as_number();
    s.portfolio_patience = o.at("portfolio.patience").as_int();
    s.portfolio_target_swaps = o.at("portfolio.target_swaps").as_int();
    return s;
}

eval::tool make_sabre_tool(const json::value& options,
                           std::shared_ptr<const routing_context> context) {
    const router::sabre_options s = sabre_from(options);
    const auto route = [s, context = std::move(context)](const circuit& c, const graph& g,
                                                         router::sabre_stats* stats) {
        if (context != nullptr && context->matches(g)) {
            return router::route_sabre(c, g, context->distances(), s, stats);
        }
        return router::route_sabre(c, g, s, stats);
    };
    eval::tool t;
    t.run = [route](const circuit& c, const graph& g) { return route(c, g, nullptr); };
    // Same routing (same options, same seed) with the sabre_stats the
    // plain entry point drops surfaced into the harness record.
    t.run_stats = [route](const circuit& c, const graph& g, eval::tool_run_stats& out) {
        router::sabre_stats stats;
        routed_circuit routed = route(c, g, &stats);
        out.present = true;
        out.trials_run = static_cast<long long>(stats.trials_run);
        out.trials_pruned = static_cast<long long>(stats.trials_pruned);
        out.pass_decisions = static_cast<long long>(stats.pass_decisions);
        out.arena_slots = static_cast<long long>(stats.arena_slots);
        return routed;
    };
    return t;
}

}  // namespace

void register_builtin_lightsabre() {
    register_tool({"lightsabre",
                   "SABRE with random-restart trials (LightSABRE; Qiskit 1.2 cost function)",
                   sabre_schema(/*default_trials=*/32)},
                  make_sabre_tool);
    register_tool({"sabre",
                   "single-configuration SABRE for ablations (Sec. IV-C lookahead study)",
                   sabre_schema(/*default_trials=*/1)},
                  make_sabre_tool);
}

}  // namespace qubikos::tools::detail
