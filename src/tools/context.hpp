// Shared per-device routing context.
//
// Every heuristic router needs coupling-graph distances; historically
// each routing call rebuilt them from scratch (O(V*(V+E)) per circuit —
// measurable against small circuits, pure waste in a (tool x instance)
// grid that routes hundreds of circuits on one device). A
// routing_context builds a distance_provider once per device; every
// registry-made tool bound to the context reuses it, and falls back to a
// local computation when handed a different graph, so sharing is purely
// an optimization — results are bit-identical either way. Small devices
// get the dense matrix; above the distance_options threshold (or under
// QUBIKOS_LAZY_DIST) the provider serves lazily cached BFS rows, so a
// thousand-qubit synthetic device never materializes O(V^2).
#pragma once

#include <memory>

#include "graph/distance.hpp"
#include "graph/graph.hpp"

namespace qubikos::tools {

/// Immutable per-device precomputations shared by registry tools. Owns a
/// copy of the coupling graph so the context never dangles.
class routing_context {
public:
    explicit routing_context(const graph& coupling,
                             distance_options options = distance_options::from_env());

    [[nodiscard]] const graph& coupling() const { return coupling_; }
    [[nodiscard]] const distance_provider& distances() const { return dist_; }

    /// True when the provider serves lazily cached BFS rows instead of a
    /// dense matrix (serve telemetry and benches report this).
    [[nodiscard]] bool lazy_distances() const { return dist_.is_lazy(); }

    /// True when `g` is the graph this context was built from (vertex
    /// count and edge list compared — O(E), negligible next to routing).
    /// A logically-equal graph with a different edge insertion order
    /// reports false; the tool then computes its own distances, trading
    /// the speedup for guaranteed correctness.
    [[nodiscard]] bool matches(const graph& g) const;

private:
    graph coupling_;
    distance_provider dist_;
};

/// Convenience: the shared_ptr form every tool factory consumes.
[[nodiscard]] std::shared_ptr<const routing_context> make_routing_context(const graph& coupling);

/// Explicit-policy overload (dense/lazy/threshold); the default reads
/// QUBIKOS_LAZY_DIST.
[[nodiscard]] std::shared_ptr<const routing_context> make_routing_context(
    const graph& coupling, distance_options options);

}  // namespace qubikos::tools
