// Shared per-device routing context.
//
// Every heuristic router needs the all-pairs shortest-path matrix of the
// coupling graph; historically each routing call rebuilt it from scratch
// (O(V*(V+E)) per circuit — measurable against small circuits, pure
// waste in a (tool x instance) grid that routes hundreds of circuits on
// one device). A routing_context computes it once per device; every
// registry-made tool bound to the context reuses it, and falls back to a
// local computation when handed a different graph, so sharing is purely
// an optimization — results are bit-identical either way.
#pragma once

#include <memory>

#include "graph/distance.hpp"
#include "graph/graph.hpp"

namespace qubikos::tools {

/// Immutable per-device precomputations shared by registry tools. Owns a
/// copy of the coupling graph so the context never dangles.
class routing_context {
public:
    explicit routing_context(const graph& coupling);

    [[nodiscard]] const graph& coupling() const { return coupling_; }
    [[nodiscard]] const distance_matrix& distances() const { return dist_; }

    /// True when `g` is the graph this context was built from (vertex
    /// count and edge list compared — O(E), negligible next to routing).
    /// A logically-equal graph with a different edge insertion order
    /// reports false; the tool then computes its own matrix, trading the
    /// speedup for guaranteed correctness.
    [[nodiscard]] bool matches(const graph& g) const;

private:
    graph coupling_;
    distance_matrix dist_;
};

/// Convenience: the shared_ptr form every tool factory consumes.
[[nodiscard]] std::shared_ptr<const routing_context> make_routing_context(const graph& coupling);

}  // namespace qubikos::tools
