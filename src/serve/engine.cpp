#include "serve/engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "circuit/qasm.hpp"
#include "circuit/routed.hpp"
#include "core/qubikos.hpp"
#include "exact/olsq.hpp"
#include "obs/obs.hpp"
#include "tools/registry.hpp"
#include "util/stopwatch.hpp"

namespace qubikos::serve {

namespace {

std::shared_ptr<const engine::device_entry> build_device(const std::string& name) {
    auto entry = std::make_shared<engine::device_entry>();
    try {
        entry->device = arch::by_name(name);
    } catch (const std::invalid_argument& e) {
        throw request_error(error_code::unknown_device, e.what());
    }
    entry->context = tools::make_routing_context(entry->device.coupling);
    return entry;
}

core::generator_options to_generator_options(const generator_params& params) {
    core::generator_options options;
    options.num_swaps = params.swaps;
    options.total_two_qubit_gates = params.gates;
    options.seed = params.seed;
    return options;
}

core::benchmark_instance generate_instance(const arch::architecture& device,
                                           const generator_params& params) {
    try {
        return core::generate(device, to_generator_options(params));
    } catch (const core::generator_error& e) {
        throw request_error(error_code::bad_request, e.what());
    }
}

}  // namespace

engine::engine(engine_options options) : options_(options) {}

std::shared_ptr<const engine::device_entry> engine::device_for(const std::string& name) {
    static const obs::metric_id hit = obs::counter("serve.context_hit");
    static const obs::metric_id miss = obs::counter("serve.context_miss");
    static const obs::metric_id evict = obs::counter("serve.context_evict");
    if (options_.cache_contexts) {
        const std::lock_guard<std::mutex> lock(mutex_);
        for (std::size_t i = 0; i < lru_.size(); ++i) {
            if (lru_[i].first == name) {
                std::rotate(lru_.begin(), lru_.begin() + static_cast<std::ptrdiff_t>(i),
                            lru_.begin() + static_cast<std::ptrdiff_t>(i) + 1);
                ++stats_.hits;
                obs::add(hit);
                return lru_.front().second;
            }
        }
    }
    // Build outside the lock: a cold large-grid request must not stall
    // concurrent requests for already-cached devices.
    auto entry = build_device(name);
    obs::add(miss);
    if (!options_.cache_contexts) {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.misses;
        return entry;
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.misses;
    for (std::size_t i = 0; i < lru_.size(); ++i) {
        if (lru_[i].first == name) {
            // A concurrent miss published first; adopt its entry (one
            // canonical context per device) and drop ours.
            std::rotate(lru_.begin(), lru_.begin() + static_cast<std::ptrdiff_t>(i),
                        lru_.begin() + static_cast<std::ptrdiff_t>(i) + 1);
            return lru_.front().second;
        }
    }
    lru_.insert(lru_.begin(), {name, entry});
    if (lru_.size() > options_.max_cached_devices) {
        lru_.pop_back();
        ++stats_.evictions;
        obs::add(evict);
    }
    return entry;
}

route_response engine::route(const route_request& req) {
    const auto entry = device_for(req.device);

    circuit logical;
    if (req.generate.has_value()) {
        logical = generate_instance(entry->device, *req.generate).logical;
    } else {
        try {
            logical = qasm::parse(req.qasm);
        } catch (const std::runtime_error& e) {
            throw request_error(error_code::bad_request, std::string("qasm: ") + e.what());
        }
    }

    eval::tool tool;
    try {
        tool = tools::make_tool(req.tool, req.options, entry->context);
    } catch (const std::invalid_argument& e) {
        // parse_request validates these up front; this guards callers
        // that build route_requests directly (CLI, benches).
        throw request_error(tools::is_registered_tool(req.tool) ? error_code::bad_option
                                                                : error_code::unknown_tool,
                            e.what());
    }

    cpu_stopwatch timer;
    const routed_circuit routed = tool.run(logical, entry->device.coupling);
    const double seconds = timer.seconds();
    const auto report = validate_routed(logical, routed, entry->device.coupling);

    route_response resp;
    resp.id = req.id;
    resp.device = req.device;
    resp.tool = tools::tool_selection{req.tool, req.options}.canonical();
    resp.swaps = report.swap_count;
    resp.legal = report.valid;
    resp.validation_error = report.error;
    resp.depth = routed.physical.depth();
    const int logical_depth = logical.depth();
    if (logical_depth > 0) {
        resp.depth_ratio = static_cast<double>(routed.physical.depth()) /
                           static_cast<double>(logical_depth);
    }
    if (req.emit_qasm) resp.qasm = qasm::write(routed.physical);
    if (req.timing) resp.seconds = seconds;
    return resp;
}

certify_response engine::certify(const certify_request& req) {
    const auto entry = device_for(req.device);
    const auto instance = generate_instance(entry->device, req.generate);

    exact::olsq_options options;
    // Same bracketing as `qubikos_cli certify`: the generator's count is
    // provably optimal, so SAT at k and UNSAT at k-1 settle it; searching
    // one past the declared count detects a (hypothetical) generator bug
    // as a mismatch instead of an abort.
    options.min_swaps = instance.optimal_swaps > 0 ? instance.optimal_swaps - 1 : 0;
    options.max_swaps = instance.optimal_swaps + 1;
    options.conflict_limit = req.conflict_limit;

    cpu_stopwatch timer;
    const auto result = exact::solve_optimal(instance.logical, entry->device.coupling, options);

    certify_response resp;
    resp.id = req.id;
    resp.device = req.device;
    resp.declared_swaps = instance.optimal_swaps;
    resp.solver_swaps = result.optimal_swaps;
    resp.confirmed = result.solved && result.optimal_swaps == instance.optimal_swaps;
    resp.aborted = result.aborted;
    if (req.timing) resp.seconds = timer.seconds();
    return resp;
}

engine::cache_stats engine::stats() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

}  // namespace qubikos::serve
