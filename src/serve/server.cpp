#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "serve/engine.hpp"
#include "serve/request.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace qubikos::serve {

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
    throw std::runtime_error("serve: " + what + ": " + std::strerror(errno));
}

bool write_all(int fd, const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

/// One queued request line. `waited` measures queue latency (enqueue to
/// dispatch) for the serve.queue_wait timer.
struct pending {
    std::string line;
    bool oversized = false;
    stopwatch waited;
};

struct client_state {
    int fd = -1;
    std::thread reader;
    std::deque<pending> queue;
    bool eof = false;
    bool write_failed = false;
};

struct batch_item {
    client_state* client = nullptr;
    std::string line;
    bool oversized = false;
};

}  // namespace

struct server::impl {
    engine& eng;
    server_options opts;

    std::mutex mu;
    std::condition_variable work_cv;   // dispatcher: work queued / stop
    std::condition_variable space_cv;  // readers: queue below its bound
    std::vector<std::unique_ptr<client_state>> clients;
    bool stopping = false;
    bool stopped = false;

    std::vector<int> listen_fds;
    std::vector<std::thread> acceptors;
    std::thread dispatcher;
    std::string unix_path;
    std::atomic<std::uint64_t> served{0};

    impl(engine& e, server_options o) : eng(e), opts(o) {
        dispatcher = std::thread([this] { dispatcher_loop(); });
    }

    void enqueue(client_state* c, pending p) {
        std::unique_lock<std::mutex> lock(mu);
        // During shutdown the bound is waived: everything a reader got
        // off the wire is answered, and blocking here forever would
        // deadlock stop() against a full queue.
        space_cv.wait(lock, [&] {
            return stopping || c->queue.size() < opts.max_queued_per_client;
        });
        p.waited.reset();
        c->queue.push_back(std::move(p));
        work_cv.notify_one();
    }

    void reader_loop(client_state* c) {
        std::string line;
        char chunk[4096];
        bool drop = false;  // inside an oversized line: discard to '\n'
        for (;;) {
            const ssize_t n = ::recv(c->fd, chunk, sizeof chunk, 0);
            if (n < 0 && errno == EINTR) continue;
            if (n <= 0) break;
            for (ssize_t i = 0; i < n; ++i) {
                const char b = chunk[i];
                if (b == '\n') {
                    if (drop) {
                        enqueue(c, pending{"", true, {}});
                        drop = false;
                    } else if (!line.empty()) {
                        enqueue(c, pending{std::move(line), false, {}});
                    }
                    line.clear();
                    continue;
                }
                if (drop) continue;
                line += b;
                if (line.size() > opts.max_line_bytes) {
                    line.clear();
                    drop = true;
                }
            }
        }
        // A final unterminated line still gets an answer (clients that
        // half-close after their last request need no trailing newline).
        if (drop) {
            enqueue(c, pending{"", true, {}});
        } else if (!line.empty()) {
            enqueue(c, pending{std::move(line), false, {}});
        }
        const std::lock_guard<std::mutex> lock(mu);
        c->eof = true;
        work_cv.notify_one();
    }

    void dispatcher_loop() {
        static const obs::timer_id queue_wait = obs::timer("serve.queue_wait");
        static const obs::metric_id batches = obs::counter("serve.batches");
        std::vector<batch_item> batch;
        std::vector<std::string> responses;
        for (;;) {
            std::vector<std::unique_ptr<client_state>> dead;
            bool finished = false;
            {
                std::unique_lock<std::mutex> lock(mu);
                work_cv.wait(lock, [&] {
                    if (stopping) return true;
                    for (const auto& c : clients) {
                        if (!c->queue.empty() || c->eof) return true;
                    }
                    return false;
                });
                batch.clear();
                for (const auto& c : clients) {
                    while (!c->queue.empty()) {
                        pending p = std::move(c->queue.front());
                        c->queue.pop_front();
                        obs::add(queue_wait.ns,
                                 static_cast<std::uint64_t>(p.waited.seconds() * 1e9));
                        obs::add(queue_wait.calls);
                        batch.push_back({c.get(), std::move(p.line), p.oversized});
                    }
                }
                if (!batch.empty()) space_cv.notify_all();
                // Reap finished clients only when no batch references
                // them (their queues were just drained into this batch,
                // so wait for the next round).
                if (batch.empty()) {
                    for (std::size_t i = clients.size(); i-- > 0;) {
                        if (clients[i]->eof && clients[i]->queue.empty()) {
                            dead.push_back(std::move(clients[i]));
                            clients.erase(clients.begin() +
                                          static_cast<std::ptrdiff_t>(i));
                        }
                    }
                    finished = stopping && clients.empty();
                }
            }
            reap(dead);
            if (finished) return;
            if (batch.empty()) continue;

            obs::add(batches);
            responses.assign(batch.size(), {});
            const auto run_one = [&](std::size_t i) {
                try {
                    responses[i] = batch[i].oversized
                                       ? error_line("", error_code::oversized_line,
                                                    "request line exceeds " +
                                                        std::to_string(opts.max_line_bytes) +
                                                        " bytes")
                                       : handle_line(eng, batch[i].line);
                } catch (const std::exception& e) {
                    responses[i] = error_line("", error_code::internal, e.what());
                }
            };
            if (batch.size() == 1) {
                run_one(0);
            } else {
                const obs::trace_span span("serve.batch");
                thread_pool& pool = thread_pool::shared();
                const std::size_t workers = opts.max_batch_workers == 0
                                                ? pool.size()
                                                : opts.max_batch_workers;
                pool.parallel_for_slots(
                    0, batch.size(), workers,
                    [&](std::size_t i, std::size_t) { run_one(i); }, 1);
            }

            // No lock for the writes: the dispatcher is the only thread
            // that reaps clients or touches write_failed/fd-for-writing,
            // so a slow client blocking in send() stalls only this batch
            // flush, never the readers.
            for (std::size_t i = 0; i < batch.size(); ++i) {
                client_state* c = batch[i].client;
                // Count before the write: a client that has read response
                // i must never observe requests_served() < i+1, and the
                // dispatcher is the only incrementing thread.
                served.fetch_add(1, std::memory_order_relaxed);
                if (!c->write_failed && !write_all(c->fd, responses[i] + "\n")) {
                    c->write_failed = true;
                }
            }
        }
    }

    static void reap(std::vector<std::unique_ptr<client_state>>& dead) {
        for (auto& c : dead) {
            if (c->reader.joinable()) c->reader.join();
            ::close(c->fd);
        }
        dead.clear();
    }

    void adopt(int fd) {
        std::unique_lock<std::mutex> lock(mu);
        if (stopping) {
            lock.unlock();
            ::close(fd);
            return;
        }
        auto c = std::make_unique<client_state>();
        c->fd = fd;
        client_state* raw = c.get();
        clients.push_back(std::move(c));
        raw->reader = std::thread([this, raw] { reader_loop(raw); });
    }

    void accept_loop(int lfd) {
        for (;;) {
            const int fd = ::accept(lfd, nullptr, nullptr);
            if (fd < 0) {
                if (errno == EINTR) continue;
                return;  // listener shut down
            }
            adopt(fd);
        }
    }

    void start_acceptor(int lfd) {
        {
            const std::lock_guard<std::mutex> lock(mu);
            listen_fds.push_back(lfd);
        }
        acceptors.emplace_back([this, lfd] { accept_loop(lfd); });
    }

    void stop() {
        {
            std::unique_lock<std::mutex> lock(mu);
            if (stopped) return;
            stopped = true;
            stopping = true;
            // Unblock accept() (Linux: shutdown on a listener fails the
            // blocked call) and half-close client reads so readers see
            // EOF after the bytes already in flight.
            for (const int lfd : listen_fds) ::shutdown(lfd, SHUT_RDWR);
            for (const auto& c : clients) ::shutdown(c->fd, SHUT_RD);
            space_cv.notify_all();
        }
        for (auto& t : acceptors) t.join();
        acceptors.clear();
        for (const int lfd : listen_fds) ::close(lfd);
        listen_fds.clear();
        // Readers drain into the queues and mark eof; the dispatcher
        // answers everything queued, reaps every client and exits.
        work_cv.notify_one();
        if (dispatcher.joinable()) dispatcher.join();
        if (!unix_path.empty()) ::unlink(unix_path.c_str());
    }
};

server::server(engine& eng, server_options options)
    : impl_(std::make_unique<impl>(eng, options)) {}

server::~server() { impl_->stop(); }

void server::listen_unix(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        throw std::runtime_error("serve: socket path too long: " + path);
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int lfd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (lfd < 0) sys_fail("socket");
    ::unlink(path.c_str());  // a stale socket from a killed daemon
    if (::bind(lfd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(lfd, 64) != 0) {
        ::close(lfd);
        sys_fail("bind/listen on " + path);
    }
    impl_->unix_path = path;
    impl_->start_acceptor(lfd);
}

int server::listen_tcp(int port) {
    const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (lfd < 0) sys_fail("socket");
    const int one = 1;
    ::setsockopt(lfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(lfd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(lfd, 64) != 0) {
        ::close(lfd);
        sys_fail("bind/listen on 127.0.0.1:" + std::to_string(port));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(lfd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
        ::close(lfd);
        sys_fail("getsockname");
    }
    impl_->start_acceptor(lfd);
    return static_cast<int>(ntohs(bound.sin_port));
}

void server::add_client(int fd) { impl_->adopt(fd); }

void server::stop() { impl_->stop(); }

std::uint64_t server::requests_served() const {
    return impl_->served.load(std::memory_order_relaxed);
}

}  // namespace qubikos::serve
