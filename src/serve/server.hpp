// JSONL socket server for the routing service.
//
// Transport + scheduling only — every byte of protocol semantics lives
// in serve/request.*. The server owns:
//
//   accept thread      one per listening socket (unix or TCP loopback)
//   reader threads     one per client: split the byte stream into lines,
//                      enforce the max-line bound, push into the
//                      client's bounded queue (blocking when full — the
//                      stalled read is the backpressure signal; the
//                      kernel socket buffer does the rest)
//   dispatcher thread  gathers the pending requests of all clients into
//                      a batch, fans the batch out over
//                      thread_pool::shared() (slot machinery shared with
//                      SABRE trials and the campaign worker — a serve
//                      daemon and a routing hot loop contend for the
//                      same pool instead of oversubscribing cores), then
//                      writes responses back in batch order.
//
// Ordering: within one client, responses always come back in request
// order (queues are FIFO and the batch preserves per-client order);
// across clients no order is promised. Requests of one batch execute
// concurrently, which is safe because engine execution is stateless per
// request (the context cache is internally synchronized).
//
// Shutdown (stop()): listeners close, client reads half-close, queued
// requests drain and their responses flush before sockets close — a
// client that stops sending always gets every answer it paid for.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include <memory>

namespace qubikos::serve {

class engine;

struct server_options {
    /// Reject (and answer with an oversized_line envelope) any request
    /// line longer than this many bytes.
    std::size_t max_line_bytes = 1u << 20;
    /// Bounded per-client queue depth; a reader blocks when its client
    /// has this many requests pending.
    std::size_t max_queued_per_client = 64;
    /// Cap on concurrent request execution within one batch; 0 = the
    /// shared pool's size.
    std::size_t max_batch_workers = 0;
};

class server {
public:
    /// The engine must outlive the server.
    explicit server(engine& eng, server_options options = {});
    ~server();

    server(const server&) = delete;
    server& operator=(const server&) = delete;

    /// Binds a unix-domain socket at `path` (unlinking a stale one) and
    /// starts accepting. Throws std::runtime_error on bind failure.
    void listen_unix(const std::string& path);

    /// Binds 127.0.0.1:<port> (0 = ephemeral) and starts accepting;
    /// returns the bound port.
    int listen_tcp(int port);

    /// Adopts an already-connected socket (e.g. one end of a
    /// socketpair) as a client. The server owns the fd from here on.
    void add_client(int fd);

    /// Stops accepting, half-closes client reads, drains every queued
    /// request, flushes responses, closes sockets and joins all threads.
    /// Idempotent; also run by the destructor.
    void stop();

    /// Total requests answered so far (including error envelopes).
    [[nodiscard]] std::uint64_t requests_served() const;

private:
    struct impl;
    std::unique_ptr<impl> impl_;
};

}  // namespace qubikos::serve
