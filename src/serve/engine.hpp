// Request-execution engine of the routing service.
//
// Owns what outlives a single request: an LRU cache of per-device
// routing state. Every request names its device; building one costs
// arch::by_name (graph construction) plus tools::make_routing_context
// (an all-pairs distance matrix for small devices, a lazy BFS-row
// provider above the distance_options threshold) — for the devices a
// daemon typically serves, that dwarfs routing a small circuit. The
// engine builds each device once and every subsequent request on it
// reuses the cached context, which is where bench_serve's cached-vs-cold
// speedup comes from. Sharing is purely an optimization: registry tools
// fall back to a local matrix on a context mismatch, so responses are
// bit-identical with the cache on, off, or thrashing.
//
// Thread-safety: route()/certify()/device_for() may be called from any
// number of threads concurrently (the server dispatches batches onto the
// shared pool). The cache mutex guards only the lookup; device
// construction runs unlocked, so a cold request for one device never
// stalls traffic on another.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "arch/architectures.hpp"
#include "serve/request.hpp"
#include "tools/context.hpp"

namespace qubikos::serve {

struct engine_options {
    /// false = rebuild device + context per request (the cold baseline
    /// bench_serve measures the cache against).
    bool cache_contexts = true;
    /// LRU capacity in devices. Small on purpose: a dense entry is
    /// O(V^2) int32 (eagle127 ~ 64 KB; larger devices cache lazily-built
    /// BFS rows instead) and real workloads name few devices.
    std::size_t max_cached_devices = 8;
};

class engine {
public:
    /// A cached device: the architecture plus its shared routing context.
    /// Immutable once published; handed out as shared_ptr so an eviction
    /// never invalidates a request mid-flight.
    struct device_entry {
        arch::architecture device;
        std::shared_ptr<const tools::routing_context> context;
    };

    struct cache_stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
    };

    explicit engine(engine_options options = {});

    /// Resolves a device by name through the cache. Throws request_error
    /// (unknown_device) for names arch::by_name rejects. Exposed so
    /// tests can pin cache identity (same shared_ptr on a hit).
    [[nodiscard]] std::shared_ptr<const device_entry> device_for(const std::string& name);

    /// Executes one route request; throws request_error on request-level
    /// failures (execute() turns those into error envelopes).
    [[nodiscard]] route_response route(const route_request& req);

    /// Generates the requested QUBIKOS instance and confirms its declared
    /// optimal SWAP count with the exact solver.
    [[nodiscard]] certify_response certify(const certify_request& req);

    [[nodiscard]] cache_stats stats() const;

private:
    engine_options options_;
    mutable std::mutex mutex_;
    /// Most-recently-used first. A vector, not a map: capacity is single
    /// digits, the scan is cheaper than any tree, and iteration order is
    /// trivially deterministic (DET-001).
    std::vector<std::pair<std::string, std::shared_ptr<const device_entry>>> lru_;
    cache_stats stats_;
};

}  // namespace qubikos::serve
