#include "serve/request.hpp"

#include <cmath>

#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "serve/engine.hpp"
#include "tools/registry.hpp"

namespace qubikos::serve {

namespace {

/// Requests must stay small enough to echo verbatim in error messages
/// and to bound per-client memory (the payload bound is the server's
/// max_line_bytes; this one is just for the correlation id).
constexpr std::size_t kMaxIdBytes = 256;

[[noreturn]] void bad(const std::string& message) {
    throw request_error(error_code::bad_request, message);
}

const json::value& field(const json::object& obj, const char* key) {
    const auto it = obj.find(key);
    if (it == obj.end()) bad(std::string("missing required field \"") + key + "\"");
    return it->second;
}

std::string string_field(const json::object& obj, const char* key) {
    const json::value& v = field(obj, key);
    if (v.type() != json::kind::string) {
        bad(std::string("field \"") + key + "\" must be a string");
    }
    return v.as_string();
}

bool bool_field(const json::object& obj, const char* key, bool fallback) {
    const auto it = obj.find(key);
    if (it == obj.end()) return fallback;
    if (it->second.type() != json::kind::boolean) {
        bad(std::string("field \"") + key + "\" must be a boolean");
    }
    return it->second.as_bool();
}

/// Integer field in [minimum, maximum]; JSON numbers carry doubles, so
/// integrality is checked explicitly (1.5 swaps is a client bug, not a
/// value to truncate).
double int_field(const json::object& obj, const char* key, double fallback, double minimum,
                 double maximum) {
    const auto it = obj.find(key);
    if (it == obj.end()) return fallback;
    const json::value& v = it->second;
    if (v.type() != json::kind::number || v.as_number() != std::floor(v.as_number())) {
        bad(std::string("field \"") + key + "\" must be an integer");
    }
    const double n = v.as_number();
    if (n < minimum || n > maximum) {
        bad(std::string("field \"") + key + "\" must be in [" +
            std::to_string(static_cast<long long>(minimum)) + ", " +
            std::to_string(static_cast<long long>(maximum)) + "], got " + v.dump());
    }
    return n;
}

/// Rejects fields outside the op's schema — the serve counterpart of the
/// registry's unknown-option rejection: a misspelled field must never be
/// silently ignored.
void check_known_fields(const json::object& obj, const char* op_name,
                        std::initializer_list<const char*> known) {
    for (const auto& [key, unused] : obj) {
        (void)unused;
        bool ok = false;
        for (const char* k : known) {
            if (key == k) {
                ok = true;
                break;
            }
        }
        if (!ok) bad("unknown field \"" + key + "\" for op \"" + op_name + "\"");
    }
}

generator_params parse_generate(const json::value& v) {
    if (v.type() != json::kind::object) bad("field \"generate\" must be an object");
    const json::object& obj = v.as_object();
    check_known_fields(obj, "generate", {"swaps", "gates", "seed"});
    generator_params params;
    params.swaps = static_cast<int>(int_field(obj, "swaps", 1, 0, 2147483647.0));
    params.gates =
        static_cast<std::size_t>(int_field(obj, "gates", 0, 0, 2147483647.0));
    params.seed = static_cast<std::uint64_t>(
        int_field(obj, "seed", 1, 0, tools::max_seed_option));
    return params;
}

std::string parse_id(const json::object& obj) {
    const std::string id = string_field(obj, "id");
    if (id.empty()) bad("field \"id\" must be a nonempty string");
    if (id.size() > kMaxIdBytes) {
        bad("field \"id\" exceeds " + std::to_string(kMaxIdBytes) + " bytes");
    }
    return id;
}

request parse_request_object(const json::object& obj) {
    request req;
    req.id = parse_id(obj);
    const std::string op_name = string_field(obj, "op");

    if (op_name == "route") {
        req.which = op::route;
        check_known_fields(obj, "route",
                           {"id", "op", "device", "tool", "options", "qasm", "generate",
                            "timing", "emit_qasm"});
        route_request& r = req.route;
        r.id = req.id;
        r.device = string_field(obj, "device");
        r.tool = string_field(obj, "tool");
        if (!tools::is_registered_tool(r.tool)) {
            throw request_error(error_code::unknown_tool,
                                "unknown tool \"" + r.tool + "\"");
        }
        if (const auto it = obj.find("options"); it != obj.end()) {
            r.options = it->second;
            try {
                // Validate eagerly (unknown key / ill-typed / out-of-range
                // all reject here); the engine resolves again when it
                // builds the tool — same function, same result.
                (void)tools::resolve_options(tools::tool_registry_info(r.tool), r.options);
            } catch (const std::invalid_argument& e) {
                throw request_error(error_code::bad_option, e.what());
            }
        }
        const bool has_qasm = obj.find("qasm") != obj.end();
        const bool has_generate = obj.find("generate") != obj.end();
        if (has_qasm == has_generate) {
            bad("op \"route\" needs exactly one of \"qasm\" and \"generate\"");
        }
        if (has_qasm) r.qasm = string_field(obj, "qasm");
        if (has_generate) r.generate = parse_generate(obj.find("generate")->second);
        r.timing = bool_field(obj, "timing", false);
        r.emit_qasm = bool_field(obj, "emit_qasm", false);
        return req;
    }

    if (op_name == "certify") {
        req.which = op::certify;
        check_known_fields(obj, "certify",
                           {"id", "op", "device", "generate", "conflict_limit", "timing"});
        certify_request& c = req.certify;
        c.id = req.id;
        c.device = string_field(obj, "device");
        c.generate = parse_generate(field(obj, "generate"));
        c.conflict_limit = static_cast<std::uint64_t>(
            int_field(obj, "conflict_limit", 0, 0, tools::max_seed_option));
        c.timing = bool_field(obj, "timing", false);
        return req;
    }

    if (op_name == "tools") {
        req.which = op::tools;
        check_known_fields(obj, "tools", {"id", "op"});
        return req;
    }

    throw request_error(error_code::unknown_op,
                        "unknown op \"" + op_name +
                            "\" (expected route, certify or tools)");
}

/// Best-effort id recovery from a request that parsed as JSON but failed
/// validation, so the client can still correlate the error envelope.
std::string salvage_id(const json::value& root) {
    if (root.type() != json::kind::object) return "";
    const auto it = root.as_object().find("id");
    if (it == root.as_object().end() || it->second.type() != json::kind::string) return "";
    const std::string& id = it->second.as_string();
    return id.size() <= kMaxIdBytes ? id : "";
}

}  // namespace

const char* error_code_name(error_code code) {
    switch (code) {
        case error_code::parse_error: return "parse_error";
        case error_code::bad_request: return "bad_request";
        case error_code::unknown_op: return "unknown_op";
        case error_code::unknown_device: return "unknown_device";
        case error_code::unknown_tool: return "unknown_tool";
        case error_code::bad_option: return "bad_option";
        case error_code::oversized_line: return "oversized_line";
        case error_code::internal: return "internal";
    }
    return "internal";
}

json::value route_response::to_json() const {
    json::object doc;
    doc["depth"] = json::value(static_cast<std::int64_t>(depth));
    doc["depth_ratio"] = depth_ratio;
    doc["device"] = device;
    doc["id"] = id;
    doc["legal"] = legal;
    doc["ok"] = true;
    doc["op"] = "route";
    if (!qasm.empty()) doc["qasm"] = qasm;
    if (seconds >= 0.0) doc["seconds"] = seconds;
    doc["swaps"] = swaps;
    doc["tool"] = tool;
    if (!legal) doc["validation_error"] = validation_error;
    return json::value(std::move(doc));
}

json::value certify_response::to_json() const {
    json::object doc;
    doc["aborted"] = aborted;
    doc["confirmed"] = confirmed;
    doc["declared_swaps"] = declared_swaps;
    doc["device"] = device;
    doc["id"] = id;
    doc["ok"] = true;
    doc["op"] = "certify";
    if (seconds >= 0.0) doc["seconds"] = seconds;
    doc["solver_swaps"] = solver_swaps;
    return json::value(std::move(doc));
}

request parse_request(const std::string& line) {
    json::value root;
    try {
        root = json::parse(line);
    } catch (const json::error& e) {
        throw request_error(error_code::parse_error, e.what());
    }
    if (root.type() != json::kind::object) {
        throw request_error(error_code::parse_error, "request must be a JSON object");
    }
    return parse_request_object(root.as_object());
}

std::string error_line(const std::string& id, error_code code, const std::string& message) {
    json::object err;
    err["code"] = error_code_name(code);
    err["message"] = message;
    json::object doc;
    doc["error"] = json::value(std::move(err));
    doc["id"] = id;
    doc["ok"] = false;
    return json::value(std::move(doc)).dump();
}

std::string execute(engine& eng, const request& req) {
    static const obs::metric_id requests = obs::counter("serve.requests");
    static const obs::metric_id errors = obs::counter("serve.errors");
    const obs::trace_span span("serve.request");
    obs::add(requests);
    try {
        switch (req.which) {
            case op::route: return eng.route(req.route).to_json().dump();
            case op::certify: return eng.certify(req.certify).to_json().dump();
            case op::tools: {
                json::object doc;
                doc["id"] = req.id;
                doc["ok"] = true;
                doc["op"] = "tools";
                doc["registry"] = tools::registry_to_json();
                return json::value(std::move(doc)).dump();
            }
        }
        throw request_error(error_code::internal, "unhandled op");
    } catch (const request_error& e) {
        obs::add(errors);
        return error_line(req.id, e.code(), e.what());
    } catch (const std::exception& e) {
        // A tool/solver failure must answer this request, not unwind the
        // server loop past every other client.
        obs::add(errors);
        return error_line(req.id, error_code::internal, e.what());
    }
}

std::string handle_line(engine& eng, const std::string& line) {
    static const obs::metric_id errors = obs::counter("serve.errors");
    json::value root;
    try {
        root = json::parse(line);
    } catch (const json::error& e) {
        obs::add(errors);
        return error_line("", error_code::parse_error, e.what());
    }
    if (root.type() != json::kind::object) {
        obs::add(errors);
        return error_line("", error_code::parse_error, "request must be a JSON object");
    }
    request req;
    try {
        req = parse_request_object(root.as_object());
    } catch (const request_error& e) {
        obs::add(errors);
        return error_line(salvage_id(root), e.code(), e.what());
    }
    return execute(eng, req);
}

}  // namespace qubikos::serve
