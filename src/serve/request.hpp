// Typed request/response API of the routing service.
//
// One schema, three consumers: the `qubikos_cli serve` daemon parses
// wire lines into these structs, the CLI `route` command builds them
// directly from its arguments, and bench_serve's load driver generates
// them programmatically — so a served response and a direct CLI
// invocation are the same code path end to end (pinned byte-identical
// by test), never two stringly-typed reimplementations.
//
// The wire protocol is JSONL: one JSON object per '\n'-terminated line,
// one response line per request line (see docs/serve.md for framing,
// backpressure and the error envelope). Validation is loud in the spec
// v3 tradition: an unknown op, device, tool, option key or an ill-typed
// value is rejected with a structured error envelope — never a silent
// default that would quietly serve the wrong configuration.
//
// Responses are byte-deterministic for a fixed request and library
// version: timing is opt-in per request ("timing": true) precisely so
// the default response carries no wall-clock noise. Depth metrics ride
// along as optional fields (the 2020 Optimality Study evaluates depth
// optimality too; the schema keeps room for fidelity-style metrics the
// same way).
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

#include "util/json.hpp"

namespace qubikos::serve {

class engine;  // serve/engine.hpp

/// Structured request-rejection reasons (the "code" field of the error
/// envelope). Stable wire names via error_code_name().
enum class error_code {
    parse_error,     ///< line is not a JSON object
    bad_request,     ///< schema violation (missing/unknown/ill-typed field)
    unknown_op,      ///< "op" not in {route, certify, tools}
    unknown_device,  ///< "device" is not a known architecture
    unknown_tool,    ///< "tool" is not in the registry
    bad_option,      ///< "options" rejected by the tool's schema
    oversized_line,  ///< request line exceeded the server's byte limit
    internal,        ///< unexpected failure while executing
};

[[nodiscard]] const char* error_code_name(error_code code);

/// Thrown by parse/execute paths; the server and handle_line() convert
/// it into an error envelope, so a malformed request can never take the
/// daemon down.
class request_error : public std::runtime_error {
public:
    request_error(error_code code, const std::string& message)
        : std::runtime_error(message), code_(code) {}
    [[nodiscard]] error_code code() const { return code_; }

private:
    error_code code_;
};

/// Generator parameters for requests that synthesize their circuit
/// server-side instead of shipping QASM (exactly core::generator_options'
/// QUBIKOS knobs).
struct generator_params {
    int swaps = 1;
    std::size_t gates = 0;
    std::uint64_t seed = 1;
};

/// op == "route": route one circuit with one registry tool.
struct route_request {
    std::string id;
    std::string device;             ///< architecture name (arch::by_name)
    std::string tool;               ///< registry tool name
    json::value options;            ///< schema overrides; null = defaults
    std::string qasm;               ///< inline OpenQASM 2.0 program, or
    std::optional<generator_params> generate;  ///< generate server-side
    bool timing = false;            ///< include "seconds" in the response
    bool emit_qasm = false;         ///< include the routed physical QASM
};

struct route_response {
    std::string id;
    std::string device;
    std::string tool;
    std::size_t swaps = 0;
    bool legal = false;
    /// validate_routed's diagnosis when legal is false (serialized only
    /// then; the shipped tools never produce an illegal routing).
    std::string validation_error;
    /// Optional metrics (depth today; fidelity-style columns later).
    long long depth = -1;
    double depth_ratio = 0.0;
    /// Routed physical program; present when the request set emit_qasm.
    std::string qasm;
    /// Wall seconds spent routing; < 0 (absent) unless the request set
    /// timing — keeps default responses byte-deterministic.
    double seconds = -1.0;

    [[nodiscard]] json::value to_json() const;
};

/// op == "certify": generate a QUBIKOS instance and confirm its declared
/// optimal SWAP count with the exact solver.
struct certify_request {
    std::string id;
    std::string device;
    generator_params generate;
    std::uint64_t conflict_limit = 0;  ///< 0 = unlimited
    bool timing = false;
};

struct certify_response {
    std::string id;
    std::string device;
    int declared_swaps = 0;
    int solver_swaps = -1;
    bool confirmed = false;
    bool aborted = false;
    double seconds = -1.0;

    [[nodiscard]] json::value to_json() const;
};

enum class op { route, certify, tools };

/// One parsed request of any op (a closed sum; `which` selects the
/// active payload).
struct request {
    op which = op::route;
    std::string id;
    route_request route;
    certify_request certify;
};

/// Parses and fully validates one wire line. Throws request_error with a
/// structured code on any violation; the thrown message is what lands in
/// the error envelope's "message".
[[nodiscard]] request parse_request(const std::string& line);

/// Builds one error-envelope response line (no trailing newline):
/// {"error":{"code":...,"message":...},"id":...,"ok":false}. `id` may be
/// empty (unparseable requests echo "").
[[nodiscard]] std::string error_line(const std::string& id, error_code code,
                                     const std::string& message);

/// Executes one parsed request against `eng` and returns the response
/// line (no trailing newline). Request-level failures become error
/// envelopes; this never throws for bad requests.
[[nodiscard]] std::string execute(engine& eng, const request& req);

/// parse_request + execute: the one-line-in, one-line-out entry the
/// server loop, the CLI and the tests all call.
[[nodiscard]] std::string handle_line(engine& eng, const std::string& line);

}  // namespace qubikos::serve
