// ML-QLS-style multilevel layout synthesis (Lin & Cong [27]).
//
// The multilevel skeleton:
//   1. coarsen the weighted interaction graph by heavy-edge matching
//      until it is small;
//   2. place the coarsest graph greedily on the device;
//   3. uncoarsen level by level, splitting merged qubits onto nearby
//      free physical qubits and refining the placement by pairwise-swap
//      hill climbing on the weighted-distance objective;
//   4. route with a SABRE-style pass from the refined initial mapping.
// The quality lever versus plain SABRE is the global placement; the paper
// finds it competitive with LightSABRE except on the largest device.
#pragma once

#include <cstdint>

#include "circuit/circuit.hpp"
#include "circuit/routed.hpp"
#include "graph/graph.hpp"
#include "router/sabre.hpp"

namespace qubikos::router {

struct mlqls_options {
    /// Stop coarsening at this many coarse vertices.
    int coarsest_size = 8;
    /// Hill-climbing sweeps per uncoarsening level.
    int refine_sweeps = 3;
    /// Full V-cycles with different refinement orders; the best routed
    /// result is kept (ML-QLS iterates placement with router feedback).
    int placement_trials = 4;
    /// Options for the final SABRE-style routing pass.
    sabre_options routing;
    std::uint64_t seed = 1;
};

[[nodiscard]] routed_circuit route_mlqls(const circuit& logical, const graph& coupling,
                                         const mlqls_options& options = {});

/// Precomputed-distance variant: `dist` must be the APSP matrix of
/// `coupling` (shared per-device routing contexts amortize it across
/// calls); results are bit-identical to the owning overload.
[[nodiscard]] routed_circuit route_mlqls(const circuit& logical, const graph& coupling,
                                         const distance_provider& dist,
                                         const mlqls_options& options = {});

}  // namespace qubikos::router
