// qubikos-lint: hot-path — dag_frontier/score kernels run once per gate per trial.
#include "router/common.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/bfs.hpp"

namespace qubikos::router {

// --- dag_frontier ----------------------------------------------------------

dag_frontier::dag_frontier(const gate_dag& dag) { reset(dag); }

void dag_frontier::reset(const gate_dag& dag) {
    dag_ = &dag;
    executed_ = 0;
    front_.clear();
    remaining_preds_.resize(static_cast<std::size_t>(dag.num_nodes()));
    executed_flags_.assign(static_cast<std::size_t>(dag.num_nodes()), 0);
    for (int node = 0; node < dag.num_nodes(); ++node) {
        remaining_preds_[static_cast<std::size_t>(node)] =
            static_cast<int>(dag.preds(node).size());
        if (remaining_preds_[static_cast<std::size_t>(node)] == 0) front_.push_back(node);
    }
}

void dag_frontier::execute(int node) {
    const auto it = std::find(front_.begin(), front_.end(), node);
    if (it == front_.end()) {
        throw std::logic_error("dag_frontier::execute: node not in front layer");
    }
    front_.erase(it);
    executed_flags_[static_cast<std::size_t>(node)] = 1;
    ++executed_;
    for (const int succ : dag_->succs(node)) {
        if (--remaining_preds_[static_cast<std::size_t>(succ)] == 0) front_.push_back(succ);
    }
}

std::vector<int> dag_frontier::lookahead_set(int limit) const {
    std::vector<int> out;
    std::vector<char> seen;
    std::vector<int> queue;
    lookahead_set(limit, out, seen, queue);
    return out;
}

void dag_frontier::lookahead_set(int limit, std::vector<int>& out, std::vector<char>& seen,
                                 std::vector<int>& queue) const {
    out.clear();
    if (limit <= 0) return;
    seen.assign(static_cast<std::size_t>(dag_->num_nodes()), 0);
    queue.clear();
    // The deque of the allocating version becomes a vector plus a head
    // cursor: pops never reclaim space, so the traversal order (and the
    // returned set) is unchanged while the storage is reusable.
    std::size_t head = 0;
    for (const int node : front_) {
        seen[static_cast<std::size_t>(node)] = 1;
        queue.push_back(node);
    }
    while (head < queue.size() && static_cast<int>(out.size()) < limit) {
        const int cur = queue[head++];
        for (const int succ : dag_->succs(cur)) {
            if (seen[static_cast<std::size_t>(succ)] ||
                executed_flags_[static_cast<std::size_t>(succ)]) {
                continue;
            }
            seen[static_cast<std::size_t>(succ)] = 1;
            out.push_back(succ);
            if (static_cast<int>(out.size()) >= limit) break;
            queue.push_back(succ);
        }
    }
}

// --- emission_buffer --------------------------------------------------------

emission_buffer::emission_buffer(const circuit& logical, const gate_dag& dag, int num_physical)
    : logical_(&logical), dag_(&dag), physical_(num_physical) {
    per_qubit_.resize(static_cast<std::size_t>(logical.num_qubits()));
    cursor_.assign(static_cast<std::size_t>(logical.num_qubits()), 0);
    for (std::size_t i = 0; i < logical.size(); ++i) {
        const gate& g = logical[i];
        per_qubit_[static_cast<std::size_t>(g.q0)].push_back(i);
        if (g.is_two_qubit()) per_qubit_[static_cast<std::size_t>(g.q1)].push_back(i);
    }
}

void emission_buffer::drain_single_qubit(int program_qubit, std::size_t before_index,
                                         const mapping& current) {
    auto& cursor = cursor_[static_cast<std::size_t>(program_qubit)];
    const auto& list = per_qubit_[static_cast<std::size_t>(program_qubit)];
    while (cursor < list.size() && list[cursor] < before_index) {
        const gate& g = (*logical_)[list[cursor]];
        if (g.is_two_qubit()) {
            throw std::logic_error(
                "emission_buffer: two-qubit gate executed out of dependency order");
        }
        physical_.append(gate::single(g.kind, current.physical(program_qubit), g.angle));
        ++cursor;
    }
}

void emission_buffer::execute_two_qubit(int node, const mapping& current) {
    const std::size_t index = dag_->circuit_index(node);
    const gate& g = dag_->node_gate(node);
    drain_single_qubit(g.q0, index, current);
    drain_single_qubit(g.q1, index, current);
    physical_.append(gate::two(g.kind, current.physical(g.q0), current.physical(g.q1)));
    // Step both cursors past this gate.
    ++cursor_[static_cast<std::size_t>(g.q0)];
    ++cursor_[static_cast<std::size_t>(g.q1)];
}

void emission_buffer::emit_swap(int pa, int pb) {
    physical_.append(gate::swap_gate(pa, pb));
    ++swaps_;
}

void emission_buffer::finish(const mapping& current) {
    for (int q = 0; q < logical_->num_qubits(); ++q) {
        drain_single_qubit(q, logical_->size(), current);
    }
}

void emission_buffer::reset() {
    physical_.clear_gates();
    std::fill(cursor_.begin(), cursor_.end(), 0);
    swaps_ = 0;
}

// --- greedy placement -------------------------------------------------------

mapping greedy_placement(const circuit& logical, const graph& coupling,
                         const distance_provider& dist, std::size_t gate_window) {
    const int num_program = logical.num_qubits();
    const int num_physical = coupling.num_vertices();
    if (num_program > num_physical) {
        throw std::invalid_argument("greedy_placement: more program than physical qubits");
    }

    // Interaction graph of (a prefix of) the circuit.
    graph interactions(num_program);
    std::size_t seen = 0;
    for (const auto& g : logical.gates()) {
        if (!g.is_two_qubit()) continue;
        if (gate_window != 0 && seen >= gate_window) break;
        interactions.add_edge_if_absent(g.q0, g.q1);
        ++seen;
    }

    std::vector<int> order(static_cast<std::size_t>(num_program));
    for (int q = 0; q < num_program; ++q) order[static_cast<std::size_t>(q)] = q;
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return interactions.degree(a) > interactions.degree(b);
    });

    std::vector<int> q2p(static_cast<std::size_t>(num_program), -1);
    std::vector<char> used(static_cast<std::size_t>(num_physical), 0);
    for (const int q : order) {
        int best = -1;
        long best_cost = 0;
        for (int p = 0; p < num_physical; ++p) {
            if (used[static_cast<std::size_t>(p)]) continue;
            long cost = 0;
            for (const int partner : interactions.neighbors(q)) {
                const int pp = q2p[static_cast<std::size_t>(partner)];
                // Source the lookup from the *placed* endpoint: distances
                // are symmetric, so the value is unchanged, but a lazy
                // provider then only materializes rows for the handful of
                // already-placed partners instead of every candidate p.
                if (pp != -1) cost += dist(pp, p);
            }
            // Prefer low distance to placed partners; ties by high degree
            // (center of the device), encoded by subtracting degree
            // scaled below any distance contribution.
            const long score = cost * 1024 - coupling.degree(p);
            if (best == -1 || score < best_cost) {
                best = p;
                best_cost = score;
            }
        }
        q2p[static_cast<std::size_t>(q)] = best;
        used[static_cast<std::size_t>(best)] = 1;
    }
    return mapping::from_program_to_physical(q2p, num_physical);
}

// --- force_route -------------------------------------------------------------

void force_route(int node, const gate_dag& dag, const graph& coupling,
                 const distance_provider& dist, mapping& current, emission_buffer& out) {
    const gate& g = dag.node_gate(node);
    int pa = current.physical(g.q0);
    const int pb = current.physical(g.q1);
    // All comparisons read distances *to pb*, so one provider row covers
    // the whole walk (distances are symmetric; values unchanged).
    const std::int32_t* to_pb = dist.row(pb);
    while (!coupling.has_edge(pa, pb)) {
        // Move q0 one step along a shortest path toward q1.
        int next = -1;
        for (const int pn : coupling.neighbors(pa)) {
            if (to_pb[pn] < to_pb[pa]) {
                next = pn;
                break;
            }
        }
        if (next == -1) {
            throw std::logic_error("force_route: no distance-decreasing neighbor");
        }
        out.emit_swap(pa, next);
        current.swap_physical(pa, next);
        pa = next;
    }
}

// --- candidate swaps ----------------------------------------------------------

void candidate_swaps(const std::vector<int>& front, const gate_dag& dag, const graph& coupling,
                     const mapping& current, std::vector<edge>& out) {
    out.clear();
    for (const int node : front) {
        const gate& g = dag.node_gate(node);
        for (const int q : {g.q0, g.q1}) {
            const int p = current.physical(q);
            for (const int pn : coupling.neighbors(p)) out.push_back(edge(p, pn));
        }
    }
    // Sorted + deduplicated matches the old std::set iteration order
    // exactly, so routing decisions (and tie-breaks) are unchanged.
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
}

std::vector<edge> candidate_swaps(const std::vector<int>& front, const gate_dag& dag,
                                  const graph& coupling, const mapping& current) {
    std::vector<edge> out;
    candidate_swaps(front, dag, coupling, current, out);
    return out;
}

}  // namespace qubikos::router
