// SABRE / LightSABRE heuristic layout synthesis.
//
// Li, Ding, Xie (ASPLOS'19) routing with the Qiskit LightSABRE cost
// function the paper's case study dissects (Sec. IV-C):
//
//   score(swap) = max(decay[p1], decay[p2]) *
//                 ( (1/|F|) * sum_F D[pi(q0)][pi(q1)]
//                 + (W/|E|) * sum_E D[pi(q0)][pi(q1)] )
//
// with extended set size 20, weight W = 0.5, decay increment 0.001 and
// decay reset every 5 swaps — Qiskit 1.2 defaults. "LightSABRE" in the
// paper means this algorithm run with many random trials (1000 in their
// setup), keeping the best result; `trials` controls that here.
//
// Extras beyond stock SABRE:
//   - bidirectional initial-mapping passes (forward/backward/forward);
//   - a release valve (as in LightSABRE) that force-routes the nearest
//     front gate when no gate executed for a while, guaranteeing progress;
//   - `lookahead_decay` < 1 applies the geometric decay to extended-set
//     terms that Sec. IV-C proposes as a fix, enabling the ablation bench.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/mapping.hpp"
#include "circuit/routed.hpp"
#include "graph/distance.hpp"
#include "graph/graph.hpp"

namespace qubikos::router {

struct sabre_options {
    /// Random restarts; the best (fewest-swap) result is kept.
    int trials = 1;
    /// Worker threads for the trial loop: 0 = auto (QUBIKOS_THREADS env
    /// override, else hardware_concurrency), 1 = serial. Trials use
    /// independent salted RNG streams, so the result is bit-identical
    /// for every thread count (ties go to the lowest trial index).
    /// Defaults to serial so cross-tool runtime comparisons stay fair
    /// and callers opt in to parallelism explicitly.
    int threads = 1;
    int extended_set_size = 20;
    double extended_set_weight = 0.5;
    double decay_increment = 0.001;
    int decay_reset_interval = 5;
    /// Geometric decay over extended-set positions; 1.0 reproduces Qiskit
    /// (uniform weights), < 1.0 is the Sec. IV-C proposed fix.
    double lookahead_decay = 1.0;
    /// Run the forward/backward/forward initial-mapping refinement.
    bool bidirectional = true;
    /// Force-route the closest front gate after this many consecutive
    /// swaps without executing a gate (0 = auto: 3*diameter + 20).
    int release_valve = 0;
    std::uint64_t seed = 1;

    // --- portfolio trial scheduler (opt-in) --------------------------------
    //
    // Instead of running every trial to completion, the portfolio
    // schedules the same diversified-seed trials in deterministic waves
    // and cuts losers early:
    //   - the final (emission) pass of every trial aborts once its
    //     emitted swaps exceed the best completed trial so far (a
    //     relaxed atomic incumbent). This cut is *sound*: an aborted
    //     trial provably could not have improved the result, so the
    //     returned best (count, trial index, circuit) is identical to
    //     running all scheduled trials in full — for any thread count;
    //   - from the second wave on, each mapping-refinement pass runs
    //     under a swap-decision budget of base * luby(wave) (or
    //     base * growth^wave), where base auto-calibrates to half the
    //     current winner's own costliest mapping pass. This is the
    //     restart-budget idiom of CDCL solvers: doomed trials are
    //     abandoned after a cheap prefix, while the growing schedule
    //     still lets occasional long-shot trials run far. Budget cuts
    //     are heuristic (a cut trial *might* have refined into a
    //     winner), which is why the portfolio is opt-in;
    //   - the scheduler stops scheduling new waves once a target quality
    //     is reached or `patience` consecutive waves brought no
    //     improvement.
    // All scheduling decisions (budgets, stops) are frozen at wave
    // barriers from already-deterministic values, so portfolio results
    // are bit-identical for a fixed (seed, knobs) pair at any thread
    // count.
    bool portfolio = false;
    /// Trials per wave (0 = auto: max(worker count, 4)). Affects budget
    /// calibration and stop granularity, so it is part of the
    /// deterministic configuration.
    int portfolio_wave = 0;
    /// Per-mapping-pass swap-decision budget base for waves >= 1; 0 =
    /// auto (half the costliest mapping pass of the best trial so far,
    /// re-read at every wave barrier). Set very large to disable budget
    /// cuts.
    int portfolio_budget_base = 0;
    /// 0 = scale the budget by the Luby sequence (1,1,2,1,1,2,4,...);
    /// >= 1 = geometric: budget_base * growth^(wave-1).
    double portfolio_budget_growth = 0.0;
    /// Stop scheduling new waves after this many consecutive waves
    /// without improving the incumbent (0 = run all trials).
    int portfolio_patience = 2;
    /// Stop as soon as the incumbent reaches this many swaps or fewer
    /// (0 = disabled).
    int portfolio_target_swaps = 0;
};

/// Score breakdown for one candidate swap at a decision point (consumed by
/// the Sec. IV-C case study).
struct swap_score {
    edge candidate;
    double basic = 0.0;
    double lookahead = 0.0;
    double decay_factor = 1.0;
    [[nodiscard]] double total() const { return decay_factor * (basic + lookahead); }
};

/// Observer invoked at every swap decision of the *final* routing pass.
struct sabre_decision {
    std::vector<int> front_nodes;
    std::vector<int> extended_nodes;
    std::vector<swap_score> scores;
    edge chosen;
    std::size_t swaps_so_far = 0;
};
using sabre_observer = std::function<void(const sabre_decision&)>;

struct sabre_stats {
    std::size_t best_swaps = 0;
    int best_trial = -1;
    std::size_t force_routes = 0;
    /// Trials that ran to completion / were cut early (budget or
    /// incumbent abort) / were never started (early stop). Sums to the
    /// requested trial count. In the default (non-portfolio) mode
    /// trials_run == trials.
    std::size_t trials_run = 0;
    std::size_t trials_pruned = 0;
    std::size_t trials_skipped = 0;
    /// Total swap decisions applied across every pass of every trial —
    /// the work metric the portfolio optimizes. Deterministic at one
    /// thread; at higher thread counts incumbent cuts can land earlier
    /// or later, so only the result (not this cost) is exactly stable.
    std::size_t pass_decisions = 0;
    /// Portfolio waves executed (0 in the default mode).
    std::size_t waves = 0;
    /// Concurrent trial slots (live arenas / preallocated result slots)
    /// the run used: min(threads, trials) — peak memory holds this many
    /// routed circuits, not O(trials).
    std::size_t arena_slots = 0;
};

/// Full SABRE flow: per trial, a random initial mapping refined by
/// bidirectional passes, then routing; best trial wins.
[[nodiscard]] routed_circuit route_sabre(const circuit& logical, const graph& coupling,
                                         const sabre_options& options = {},
                                         sabre_stats* stats = nullptr);

/// Same flow with a caller-provided distance provider for `coupling`
/// (must match it). Lets a shared per-device routing context amortize
/// the distance construction across calls instead of rebuilding it per
/// circuit; results are bit-identical to the owning overload — and to
/// each other across dense/lazy providers and kernel backends.
[[nodiscard]] routed_circuit route_sabre(const circuit& logical, const graph& coupling,
                                         const distance_provider& dist,
                                         const sabre_options& options = {},
                                         sabre_stats* stats = nullptr);

/// Routing-only entry point with a caller-fixed initial mapping (no
/// trials, no bidirectional refinement). This is the standalone-router
/// evaluation mode Sec. IV-C describes: feed the known-optimal initial
/// mapping and measure pure routing quality. `observer` (optional) sees
/// every swap decision.
[[nodiscard]] routed_circuit route_sabre_with_initial(const circuit& logical,
                                                      const graph& coupling,
                                                      const mapping& initial,
                                                      const sabre_options& options = {},
                                                      const sabre_observer& observer = {},
                                                      sabre_stats* stats = nullptr);

/// Precomputed-distance variant (see route_sabre above).
[[nodiscard]] routed_circuit route_sabre_with_initial(const circuit& logical,
                                                      const graph& coupling,
                                                      const distance_provider& dist,
                                                      const mapping& initial,
                                                      const sabre_options& options = {},
                                                      const sabre_observer& observer = {},
                                                      sabre_stats* stats = nullptr);

/// Mapping-only pass: routes `logical` from `initial` without emitting a
/// circuit and returns the final mapping. Building block for
/// forward/backward initial-mapping refinement in other flows (ML-QLS).
[[nodiscard]] mapping sabre_final_mapping(const circuit& logical, const graph& coupling,
                                          const mapping& initial,
                                          const sabre_options& options = {});

/// Precomputed-distance variant (see route_sabre above).
[[nodiscard]] mapping sabre_final_mapping(const circuit& logical, const graph& coupling,
                                          const distance_provider& dist, const mapping& initial,
                                          const sabre_options& options = {});

}  // namespace qubikos::router
