// QMAP-style heuristic mapper (Zulehner/Wille lineage [33]).
//
// The circuit is partitioned into dependency layers; for each layer an A*
// search over swap sequences transforms the current mapping into one where
// every layer gate is executable. The heuristic is the admissible
// "each swap fixes at most two distance units" bound plus a discounted
// lookahead on the next layer (which makes the search fast but the overall
// result heuristic — the behaviour the paper measures). The search is
// node-capped; on exhaustion a greedy best-swap loop with a forced-routing
// backstop finishes the layer, mirroring how the real tool degrades on
// large devices.
#pragma once

#include <cstddef>

#include "circuit/circuit.hpp"
#include "circuit/routed.hpp"
#include "graph/distance.hpp"
#include "graph/graph.hpp"

namespace qubikos::router {

struct qmap_options {
    /// A* node budget per layer before falling back to greedy routing.
    std::size_t node_limit = 20000;
    /// Weight of the next-layer lookahead term (0 disables it).
    double lookahead_weight = 0.75;
    /// Initial placement only sees this many leading two-qubit gates —
    /// Zulehner-style mappers derive the start mapping from the first
    /// layers, not the global interaction graph (0 = whole circuit).
    std::size_t placement_window = 25;
};

struct qmap_stats {
    std::size_t layers = 0;
    std::size_t astar_solved_layers = 0;
    std::size_t fallback_layers = 0;
    std::size_t expanded_nodes = 0;
};

[[nodiscard]] routed_circuit route_qmap(const circuit& logical, const graph& coupling,
                                        const qmap_options& options = {},
                                        qmap_stats* stats = nullptr);

/// Precomputed-distance variant: `dist` must be the APSP matrix of
/// `coupling` (shared per-device routing contexts amortize it across
/// calls); results are bit-identical to the owning overload.
[[nodiscard]] routed_circuit route_qmap(const circuit& logical, const graph& coupling,
                                        const distance_provider& dist,
                                        const qmap_options& options = {},
                                        qmap_stats* stats = nullptr);

/// Routing-only entry point with a caller-fixed initial mapping —
/// the standalone-router evaluation mode of Sec. IV-C.
[[nodiscard]] routed_circuit route_qmap_with_initial(const circuit& logical,
                                                     const graph& coupling,
                                                     const mapping& initial,
                                                     const qmap_options& options = {},
                                                     qmap_stats* stats = nullptr);

/// Precomputed-distance variant (see route_qmap above).
[[nodiscard]] routed_circuit route_qmap_with_initial(const circuit& logical,
                                                     const graph& coupling,
                                                     const distance_provider& dist,
                                                     const mapping& initial,
                                                     const qmap_options& options = {},
                                                     qmap_stats* stats = nullptr);

}  // namespace qubikos::router
