#include "router/tket.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "circuit/dag.hpp"
#include "router/common.hpp"

namespace qubikos::router {

namespace {

/// Partitions the not-yet-executed DAG nodes into ASAP slices relative to
/// the current execution state: slice 0 is the front layer, slice s the
/// gates that become ready once slices < s finish. Node index order is a
/// topological order, so one forward sweep suffices.
std::vector<std::vector<int>> upcoming_slices(const gate_dag& dag, const dag_frontier& frontier,
                                              int max_slices) {
    std::vector<std::vector<int>> slices;
    std::vector<int> level(static_cast<std::size_t>(dag.num_nodes()), -1);
    for (int node = 0; node < dag.num_nodes(); ++node) {
        if (frontier.executed(node)) continue;
        int lvl = 0;
        for (const int pred : dag.preds(node)) {
            if (frontier.executed(pred)) continue;
            lvl = std::max(lvl, level[static_cast<std::size_t>(pred)] + 1);
        }
        level[static_cast<std::size_t>(node)] = lvl;
        if (lvl < max_slices) {
            if (static_cast<int>(slices.size()) <= lvl) {
                slices.resize(static_cast<std::size_t>(lvl) + 1);
            }
            slices[static_cast<std::size_t>(lvl)].push_back(node);
        }
    }
    return slices;
}

}  // namespace

routed_circuit route_tket(const circuit& logical, const graph& coupling,
                          const tket_options& options) {
    const distance_provider dist(coupling);
    return route_tket(logical, coupling, dist, options);
}

routed_circuit route_tket(const circuit& logical, const graph& coupling,
                          const distance_provider& dist, const tket_options& options) {
    return route_tket_with_initial(
        logical, coupling, dist,
        greedy_placement(logical, coupling, dist, options.placement_window), options);
}

routed_circuit route_tket_with_initial(const circuit& logical, const graph& coupling,
                                       const mapping& initial, const tket_options& options) {
    const distance_provider dist(coupling);
    return route_tket_with_initial(logical, coupling, dist, initial, options);
}

routed_circuit route_tket_with_initial(const circuit& logical, const graph& coupling,
                                       const distance_provider& dist, const mapping& initial,
                                       const tket_options& options) {
    const gate_dag dag(logical);

    mapping current = initial;
    dag_frontier frontier(dag);
    emission_buffer emit(logical, dag, coupling.num_vertices());
    const int stagnation_limit =
        options.stagnation_limit > 0 ? options.stagnation_limit : 3 * dist.diameter() + 20;
    int swaps_since_progress = 0;
    edge last_swap;
    std::vector<edge> candidates;  // reused across decision points

    const auto gate_distance_after = [&](int node, int pa, int pb) {
        const gate& g = dag.node_gate(node);
        auto moved = [pa, pb](int p) { return p == pa ? pb : (p == pb ? pa : p); };
        return dist(moved(current.physical(g.q0)), moved(current.physical(g.q1)));
    };

    while (!frontier.done()) {
        // Execute every executable front gate.
        bool progressed = false;
        bool executed_any = true;
        while (executed_any) {
            executed_any = false;
            const std::vector<int> front_copy = frontier.front();
            for (const int node : front_copy) {
                const gate& g = dag.node_gate(node);
                if (coupling.has_edge(current.physical(g.q0), current.physical(g.q1))) {
                    emit.execute_two_qubit(node, current);
                    frontier.execute(node);
                    executed_any = true;
                    progressed = true;
                }
            }
        }
        if (progressed) swaps_since_progress = 0;
        if (frontier.done()) break;

        if (swaps_since_progress > stagnation_limit) {
            int best_node = frontier.front().front();
            int best_distance = std::numeric_limits<int>::max();
            for (const int node : frontier.front()) {
                const gate& g = dag.node_gate(node);
                const int d = dist(current.physical(g.q0), current.physical(g.q1));
                if (d < best_distance) {
                    best_distance = d;
                    best_node = node;
                }
            }
            force_route(best_node, dag, coupling, dist, current, emit);
            swaps_since_progress = 0;
            continue;
        }

        const auto slices = upcoming_slices(dag, frontier, options.lookahead_slices);
        candidate_swaps(frontier.front(), dag, coupling, current, candidates);

        double best_cost = std::numeric_limits<double>::infinity();
        edge best;
        bool found = false;
        for (const auto& cand : candidates) {
            // Never immediately undo the previous swap (2-cycle guard).
            if (swaps_since_progress > 0 && cand == last_swap) continue;
            double cost = 0.0;
            double weight = 1.0;
            for (const auto& slice : slices) {
                for (const int node : slice) {
                    cost += weight * gate_distance_after(node, cand.a, cand.b);
                }
                weight *= options.slice_discount;
            }
            if (cost < best_cost) {
                best_cost = cost;
                best = cand;
                found = true;
            }
        }
        if (!found) {
            // Every candidate excluded: fall back to forced routing.
            force_route(frontier.front().front(), dag, coupling, dist, current, emit);
            swaps_since_progress = 0;
            continue;
        }

        emit.emit_swap(best.a, best.b);
        current.swap_physical(best.a, best.b);
        last_swap = best;
        ++swaps_since_progress;
    }

    emit.finish(current);
    routed_circuit out;
    out.initial = initial;
    out.physical = emit.take();
    return out;
}

}  // namespace qubikos::router
