// Shared machinery for the heuristic QLS tools.
//
// All four routers (SABRE, t|ket>-style, QMAP-style, ML-QLS-style) share:
//   - dag_frontier: incremental front layer over the gate dependency DAG;
//   - emission_buffer: writes the physical circuit, interleaving the
//     single-qubit gates at their correct positions;
//   - greedy_placement: interaction-aware initial mapping used by the
//     tket/QMAP-style flows;
//   - shortest-path fallback routing used as a progress guarantee.
#pragma once

#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/dag.hpp"
#include "circuit/mapping.hpp"
#include "circuit/routed.hpp"
#include "graph/distance.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace qubikos::router {

/// Incremental front layer of a gate_dag.
class dag_frontier {
public:
    explicit dag_frontier(const gate_dag& dag);

    /// Re-initializes over `dag` (which may be the same one), reusing
    /// the internal buffers' capacity — per-trial arenas reset one
    /// frontier per pass instead of constructing a fresh one.
    void reset(const gate_dag& dag);

    [[nodiscard]] const std::vector<int>& front() const { return front_; }
    [[nodiscard]] bool done() const { return executed_ == dag_->num_nodes(); }
    [[nodiscard]] int executed_count() const { return executed_; }
    [[nodiscard]] bool executed(int node) const {
        return executed_flags_[static_cast<std::size_t>(node)] != 0;
    }

    /// Marks a front node executed and promotes newly ready successors.
    void execute(int node);

    /// Collects up to `limit` upcoming nodes beyond the front (BFS over
    /// successors, deduplicated, in discovery order) — SABRE's extended
    /// set.
    [[nodiscard]] std::vector<int> lookahead_set(int limit) const;

    /// Allocation-free variant: fills `out` (cleared first) with exactly
    /// the nodes lookahead_set(limit) would return, using the caller's
    /// `seen`/`queue` scratch. The routers call this once per emitted
    /// swap, so the buffers' capacity persists across the routing loop.
    void lookahead_set(int limit, std::vector<int>& out, std::vector<char>& seen,
                       std::vector<int>& queue) const;

private:
    const gate_dag* dag_;
    std::vector<int> remaining_preds_;
    std::vector<char> executed_flags_;
    std::vector<int> front_;
    int executed_ = 0;
};

/// Emits the physical circuit: swaps on demand, two-qubit gates when the
/// router schedules them, and pending single-qubit gates just before the
/// first later gate on the same qubit.
class emission_buffer {
public:
    emission_buffer(const circuit& logical, const gate_dag& dag, int num_physical);

    /// Emits DAG node `node` (and any pending earlier single-qubit gates
    /// on its operands) under the current mapping.
    void execute_two_qubit(int node, const mapping& current);

    void emit_swap(int pa, int pb);

    /// Emits all trailing single-qubit gates; call once after routing.
    void finish(const mapping& current);

    /// Rewinds to the just-constructed state (no gates emitted, cursors
    /// at zero) while keeping the per-qubit index lists and all buffer
    /// capacity — the same logical circuit can be routed again with zero
    /// steady-state allocation. Per-trial arenas call this between
    /// trials.
    void reset();

    [[nodiscard]] circuit take() { return std::move(physical_); }
    /// Borrow the emitted circuit without consuming it (arenas copy the
    /// best trial's circuit out and then reset() for the next trial).
    [[nodiscard]] const circuit& physical_circuit() const { return physical_; }
    [[nodiscard]] std::size_t swaps_emitted() const { return swaps_; }

private:
    void drain_single_qubit(int program_qubit, std::size_t before_index, const mapping& current);

    const circuit* logical_;
    const gate_dag* dag_;
    circuit physical_;
    /// Per program qubit: indices of logical gates touching it, ascending.
    std::vector<std::vector<std::size_t>> per_qubit_;
    std::vector<std::size_t> cursor_;
    std::size_t swaps_ = 0;
};

/// Interaction-aware greedy initial placement: program qubits in
/// descending interaction-degree order, each placed on the free physical
/// qubit minimizing summed distance to already-placed interaction
/// partners (ties: higher physical degree). Used by the tket- and
/// QMAP-style flows. `gate_window` limits how many leading two-qubit
/// gates the placement sees (0 = all) — real placement passes only look
/// at a prefix of the circuit.
[[nodiscard]] mapping greedy_placement(const circuit& logical, const graph& coupling,
                                       const distance_provider& dist,
                                       std::size_t gate_window = 0);

/// Progress fallback: swaps one endpoint of `node`'s gate along a
/// shortest path until the gate is executable, emitting the swaps.
/// Guarantees any single gate becomes executable in <= diameter swaps.
void force_route(int node, const gate_dag& dag, const graph& coupling,
                 const distance_provider& dist, mapping& current, emission_buffer& out);

/// Candidate swaps for a front layer: all coupling edges incident to the
/// physical location of any front-gate operand (normalized, deduplicated,
/// ascending). Fills `out` (cleared first) via sort+unique on the caller's
/// reused buffer — the routers call this once per emitted swap, so the
/// buffer's capacity persists across the whole routing loop instead of a
/// std::set allocating per node per decision point.
void candidate_swaps(const std::vector<int>& front, const gate_dag& dag, const graph& coupling,
                     const mapping& current, std::vector<edge>& out);

/// Convenience overload returning a fresh vector (same order).
[[nodiscard]] std::vector<edge> candidate_swaps(const std::vector<int>& front,
                                                const gate_dag& dag, const graph& coupling,
                                                const mapping& current);

}  // namespace qubikos::router
