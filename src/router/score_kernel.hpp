// Batched SABRE candidate-score kernel.
//
// route_pass evaluates every candidate swap of a decision point against
// the same flat operand buffers (front-layer and extended-set physical
// pairs). This kernel takes those buffers structure-of-arrays and scores
// all candidates in one call through a runtime-dispatched backend:
//
//   - scalar: the portable baseline, bit-for-bit the original loop;
//   - avx2:   8-wide int32 distance gathers from the dense matrix
//             (function multiversioning — no global -mavx2; selected
//             only when __builtin_cpu_supports("avx2") and the provider
//             has a dense base to gather from).
//
// Determinism contract: integer distance sums are exact in double
// (< 2^53), so the front-layer term is reassociation-safe; the
// floating-point extended-set weights are applied in the original gate
// order by both backends. Every backend therefore produces bit-identical
// scores — routed output never depends on the dispatch, pinned by test.
//
// QUBIKOS_SIMD=scalar|auto overrides the dispatch (auto = best
// supported); force_simd_backend() overrides it programmatically for
// benches and tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/distance.hpp"
#include "graph/graph.hpp"

namespace qubikos::router {

enum class simd_backend { scalar, avx2 };

[[nodiscard]] const char* simd_backend_name(simd_backend backend);

/// The backend score_candidates dispatches to right now.
[[nodiscard]] simd_backend active_simd_backend();

/// Force a backend (bench/test hook). Requesting avx2 on hardware
/// without it falls back to scalar.
void force_simd_backend(simd_backend backend);

/// Re-resolve from QUBIKOS_SIMD + CPU support (undoes force_simd_backend).
void reset_simd_backend_from_env();

/// One decision point's inputs, structure-of-arrays. All pointers borrow
/// the caller's buffers; `dist` must outlive the call.
struct score_batch {
    const std::int32_t* front_p0 = nullptr;  ///< front-gate operand 0, physical
    const std::int32_t* front_p1 = nullptr;  ///< front-gate operand 1, physical
    std::size_t front_gates = 0;
    const std::int32_t* ext_p0 = nullptr;  ///< extended-set operand 0, physical
    const std::int32_t* ext_p1 = nullptr;  ///< extended-set operand 1, physical
    std::size_t ext_gates = 0;
    const double* ext_weight = nullptr;  ///< per extended gate, original order
    double ext_norm = 1.0;
    double extended_set_weight = 0.5;
    const distance_provider* dist = nullptr;
};

/// Scores `count` candidate swaps against `batch`, writing per-candidate
/// basic and lookahead terms (decay is applied by the caller — it is
/// per-candidate state, not per-gate). `ext_scratch` is reused capacity
/// for the vector backends' gathered extended distances. Requires
/// front_gates > 0 when count > 0.
void score_candidates(const score_batch& batch, const edge* candidates, std::size_t count,
                      double* basic, double* lookahead, std::vector<std::int32_t>& ext_scratch);

}  // namespace qubikos::router
