#include "router/sabre.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "circuit/dag.hpp"
#include "router/common.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace qubikos::router {

namespace {

/// One routing pass over a prepared DAG. Returns the final mapping.
///
/// The inner loops run on reused flat scratch buffers: the executable
/// drain collects into one vector instead of copying the front layer per
/// sweep, per-gate physical operand locations are looked up once per
/// decision point (not once per candidate x gate), and the score /
/// tie-break vectors keep their capacity across iterations.
mapping route_pass(const gate_dag& dag, const graph& coupling,
                   const distance_matrix& dist, const mapping& initial,
                   const sabre_options& options, rng& random, emission_buffer* emit,
                   const sabre_observer& observer, std::size_t* force_route_count) {
    mapping current = initial;
    dag_frontier frontier(dag);
    std::vector<double> decay(static_cast<std::size_t>(coupling.num_vertices()), 1.0);
    int swaps_since_reset = 0;
    int swaps_since_progress = 0;
    const int release_threshold =
        options.release_valve > 0 ? options.release_valve : 3 * dist.diameter() + 20;

    // Scratch buffers reused across every iteration of the routing loop.
    std::vector<int> executable;
    std::vector<edge> candidates;
    std::vector<std::pair<int, int>> front_phys;
    std::vector<std::pair<int, int>> ext_phys;
    std::vector<double> ext_weight;
    std::vector<swap_score> scores;
    std::vector<std::size_t> best_indices;

    const auto reset_decay = [&decay, &swaps_since_reset]() {
        std::fill(decay.begin(), decay.end(), 1.0);
        swaps_since_reset = 0;
    };

    // Distance of a gate (cached physical operands p0, p1) after
    // hypothetically applying swap (pa, pb).
    const auto dist_after = [&dist](int p0, int p1, int pa, int pb) {
        const int m0 = p0 == pa ? pb : (p0 == pb ? pa : p0);
        const int m1 = p1 == pa ? pb : (p1 == pb ? pa : p1);
        return dist(m0, m1);
    };

    while (!frontier.done()) {
        // Execute everything executable. The mapping is fixed during a
        // sweep, so collecting first and executing second sees exactly
        // the nodes a front-layer snapshot would.
        bool executed_any = true;
        bool progressed = false;
        while (executed_any) {
            executed_any = false;
            executable.clear();
            for (const int node : frontier.front()) {
                const gate& g = dag.node_gate(node);
                if (coupling.has_edge(current.physical(g.q0), current.physical(g.q1))) {
                    executable.push_back(node);
                }
            }
            for (const int node : executable) {
                if (emit != nullptr) emit->execute_two_qubit(node, current);
                frontier.execute(node);
                executed_any = true;
                progressed = true;
            }
        }
        if (progressed) {
            reset_decay();
            swaps_since_progress = 0;
        }
        if (frontier.done()) break;

        // Release valve: guarantee progress on adversarial instances.
        if (swaps_since_progress > release_threshold) {
            if (force_route_count != nullptr) ++(*force_route_count);
            int best_node = frontier.front().front();
            int best_distance = std::numeric_limits<int>::max();
            for (const int node : frontier.front()) {
                const gate& g = dag.node_gate(node);
                const int d = dist(current.physical(g.q0), current.physical(g.q1));
                if (d < best_distance) {
                    best_distance = d;
                    best_node = node;
                }
            }
            if (emit != nullptr) {
                force_route(best_node, dag, coupling, dist, current, *emit);
            } else {
                // Mapping-only pass: apply the same swaps without emission.
                const gate& g = dag.node_gate(best_node);
                int pa = current.physical(g.q0);
                const int pb = current.physical(g.q1);
                while (!coupling.has_edge(pa, pb)) {
                    for (const int pn : coupling.neighbors(pa)) {
                        if (dist(pn, pb) < dist(pa, pb)) {
                            current.swap_physical(pa, pn);
                            pa = pn;
                            break;
                        }
                    }
                }
            }
            swaps_since_progress = 0;
            reset_decay();
            continue;
        }

        // Score candidate swaps.
        candidate_swaps(frontier.front(), dag, coupling, current, candidates);
        const auto extended = frontier.lookahead_set(options.extended_set_size);
        const auto& front = frontier.front();

        // Physical operand locations, looked up once per decision point
        // and shared by every candidate's score.
        front_phys.clear();
        for (const int node : front) {
            const gate& g = dag.node_gate(node);
            front_phys.emplace_back(current.physical(g.q0), current.physical(g.q1));
        }
        ext_phys.clear();
        for (const int node : extended) {
            const gate& g = dag.node_gate(node);
            ext_phys.emplace_back(current.physical(g.q0), current.physical(g.q1));
        }

        // Extended-set position weights (uniform when lookahead_decay==1).
        ext_weight.assign(extended.size(), 1.0);
        double ext_norm = static_cast<double>(extended.size());
        if (options.lookahead_decay < 1.0 && !extended.empty()) {
            double w = 1.0;
            ext_norm = 0.0;
            for (std::size_t i = 0; i < extended.size(); ++i) {
                ext_weight[i] = w;
                ext_norm += w;
                w *= options.lookahead_decay;
            }
        }

        scores.clear();
        scores.reserve(candidates.size());
        double best_total = std::numeric_limits<double>::infinity();
        for (const auto& cand : candidates) {
            swap_score s;
            s.candidate = cand;
            double basic = 0.0;
            for (const auto& [p0, p1] : front_phys) {
                basic += dist_after(p0, p1, cand.a, cand.b);
            }
            s.basic = basic / static_cast<double>(front_phys.size());
            if (!ext_phys.empty()) {
                double ext = 0.0;
                for (std::size_t i = 0; i < ext_phys.size(); ++i) {
                    ext += ext_weight[i] *
                           dist_after(ext_phys[i].first, ext_phys[i].second, cand.a, cand.b);
                }
                s.lookahead = options.extended_set_weight * ext / ext_norm;
            }
            s.decay_factor = std::max(decay[static_cast<std::size_t>(cand.a)],
                                      decay[static_cast<std::size_t>(cand.b)]);
            best_total = std::min(best_total, s.total());
            scores.push_back(s);
        }

        // Random tie-break among the best candidates (as Qiskit does).
        best_indices.clear();
        for (std::size_t i = 0; i < scores.size(); ++i) {
            if (scores[i].total() <= best_total + 1e-12) best_indices.push_back(i);
        }
        const std::size_t pick = best_indices[random.below(best_indices.size())];
        const edge chosen = scores[pick].candidate;

        if (observer) {
            sabre_decision d;
            d.front_nodes = front;
            d.extended_nodes = extended;
            d.scores = scores;
            d.chosen = chosen;
            d.swaps_so_far = emit != nullptr ? emit->swaps_emitted() : 0;
            observer(d);
        }

        if (emit != nullptr) emit->emit_swap(chosen.a, chosen.b);
        current.swap_physical(chosen.a, chosen.b);
        decay[static_cast<std::size_t>(chosen.a)] += options.decay_increment;
        decay[static_cast<std::size_t>(chosen.b)] += options.decay_increment;
        ++swaps_since_progress;
        if (++swaps_since_reset >= options.decay_reset_interval) reset_decay();
    }

    return current;
}

/// Reverses a circuit's gate order (dependency structure mirrored); used
/// by the bidirectional initial-mapping refinement.
circuit reversed(const circuit& c) {
    circuit out(c.num_qubits());
    for (std::size_t i = c.size(); i > 0; --i) out.append(c[i - 1]);
    return out;
}

/// Everything one trial produces; slots are preallocated so parallel
/// trials never contend.
struct trial_result {
    std::size_t swaps = 0;
    std::size_t force_routes = 0;
    mapping initial;
    circuit physical;
};

}  // namespace

routed_circuit route_sabre_with_initial(const circuit& logical, const graph& coupling,
                                        const mapping& initial, const sabre_options& options,
                                        const sabre_observer& observer, sabre_stats* stats) {
    const distance_matrix dist(coupling);
    return route_sabre_with_initial(logical, coupling, dist, initial, options, observer, stats);
}

routed_circuit route_sabre_with_initial(const circuit& logical, const graph& coupling,
                                        const distance_matrix& dist, const mapping& initial,
                                        const sabre_options& options,
                                        const sabre_observer& observer, sabre_stats* stats) {
    const gate_dag dag(logical);
    rng random(options.seed);

    emission_buffer emit(logical, dag, coupling.num_vertices());
    std::size_t force_routes = 0;
    const mapping final_mapping = route_pass(dag, coupling, dist, initial, options,
                                             random, &emit, observer, &force_routes);
    emit.finish(final_mapping);

    routed_circuit out;
    out.initial = initial;
    out.physical = emit.take();
    if (stats != nullptr) {
        stats->best_swaps = out.swap_count();
        stats->best_trial = 0;
        stats->force_routes = force_routes;
    }
    return out;
}

mapping sabre_final_mapping(const circuit& logical, const graph& coupling,
                            const mapping& initial, const sabre_options& options) {
    const distance_matrix dist(coupling);
    return sabre_final_mapping(logical, coupling, dist, initial, options);
}

mapping sabre_final_mapping(const circuit& logical, const graph& coupling,
                            const distance_matrix& dist, const mapping& initial,
                            const sabre_options& options) {
    const gate_dag dag(logical);
    rng random(options.seed);
    return route_pass(dag, coupling, dist, initial, options, random, nullptr, {},
                      nullptr);
}

routed_circuit route_sabre(const circuit& logical, const graph& coupling,
                           const sabre_options& options, sabre_stats* stats) {
    const distance_matrix dist(coupling);
    return route_sabre(logical, coupling, dist, options, stats);
}

routed_circuit route_sabre(const circuit& logical, const graph& coupling,
                           const distance_matrix& dist, const sabre_options& options,
                           sabre_stats* stats) {
    if (options.trials < 1) throw std::invalid_argument("route_sabre: trials must be >= 1");
    if (options.threads < 0) throw std::invalid_argument("route_sabre: threads must be >= 0");
    const gate_dag dag(logical);
    const circuit reversed_logical = reversed(logical);
    const gate_dag reverse_dag(reversed_logical);

    // Trials draw from independent salted RNG streams and share only
    // read-only state, so they are embarrassingly parallel: each writes
    // its preallocated slot, then a serial reduction picks the winner.
    // Slots are recycled block by block so peak memory is O(pool size),
    // not O(trials) — at paper scale (1000 trials) holding every routed
    // circuit at once would dwarf the routing state itself.
    const std::size_t trials = static_cast<std::size_t>(options.trials);
    thread_pool pool(std::min(thread_pool::resolve_threads(
                                  static_cast<std::size_t>(options.threads)),
                              trials));
    const std::size_t block =
        std::min(trials, std::max<std::size_t>(pool.size() * 4, 16));
    std::vector<trial_result> results(block);

    const auto run_trial = [&](std::size_t trial) {
        // Salted stream: tool seeds must never alias generator seeds, or
        // a trial would silently reproduce the planted optimal mapping.
        rng random((options.seed ^ 0x5ab3e7a1c2d9f04bULL) +
                   static_cast<std::uint64_t>(trial) * 0x9e3779b97f4a7c15ULL);
        mapping initial =
            mapping::random(logical.num_qubits(), coupling.num_vertices(), random);

        if (options.bidirectional) {
            // Forward then backward mapping-only passes refine the initial
            // mapping (SABRE's bidirectional trick).
            const mapping after_forward =
                route_pass(dag, coupling, dist, initial, options, random,
                           nullptr, {}, nullptr);
            initial = route_pass(reverse_dag, coupling, dist, after_forward,
                                 options, random, nullptr, {}, nullptr);
        }

        emission_buffer emit(logical, dag, coupling.num_vertices());
        std::size_t force_routes = 0;
        const mapping final_mapping = route_pass(dag, coupling, dist, initial,
                                                 options, random, &emit, {}, &force_routes);
        emit.finish(final_mapping);

        trial_result& slot = results[trial % block];
        slot.swaps = emit.swaps_emitted();
        slot.force_routes = force_routes;
        slot.initial = std::move(initial);
        slot.physical = emit.take();
    };

    // Deterministic reduction: fewest swaps wins, ties broken by lowest
    // trial index — the per-block reduction scans slots in trial order,
    // so the result is bit-identical to the serial loop for any thread
    // count and any block size.
    routed_circuit best;
    std::size_t best_swaps = std::numeric_limits<std::size_t>::max();
    int best_trial = -1;
    std::size_t total_force_routes = 0;
    for (std::size_t start = 0; start < trials; start += block) {
        const std::size_t end = std::min(start + block, trials);
        pool.parallel_for(start, end, run_trial);
        for (std::size_t trial = start; trial < end; ++trial) {
            trial_result& slot = results[trial % block];
            total_force_routes += slot.force_routes;
            if (slot.swaps < best_swaps) {
                best_swaps = slot.swaps;
                best_trial = static_cast<int>(trial);
                best.initial = std::move(slot.initial);
                best.physical = std::move(slot.physical);
            }
        }
    }

    if (stats != nullptr) {
        stats->best_swaps = best_swaps;
        stats->best_trial = best_trial;
        stats->force_routes = total_force_routes;
    }
    return best;
}

}  // namespace qubikos::router
