#include "router/sabre.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "circuit/dag.hpp"
#include "router/common.hpp"
#include "util/rng.hpp"

namespace qubikos::router {

namespace {

/// One routing pass over a prepared DAG. Returns the final mapping.
mapping route_pass(const gate_dag& dag, const graph& coupling,
                   const distance_matrix& dist, const mapping& initial,
                   const sabre_options& options, rng& random, emission_buffer* emit,
                   const sabre_observer& observer, std::size_t* force_route_count) {
    mapping current = initial;
    dag_frontier frontier(dag);
    std::vector<double> decay(static_cast<std::size_t>(coupling.num_vertices()), 1.0);
    int swaps_since_reset = 0;
    int swaps_since_progress = 0;
    const int release_threshold =
        options.release_valve > 0 ? options.release_valve : 3 * dist.diameter() + 20;

    const auto reset_decay = [&decay, &swaps_since_reset]() {
        std::fill(decay.begin(), decay.end(), 1.0);
        swaps_since_reset = 0;
    };

    // Distance of a gate after hypothetically applying swap (pa, pb).
    const auto gate_distance_after = [&](int node, int pa, int pb) {
        const gate& g = dag.node_gate(node);
        auto moved = [pa, pb](int p) { return p == pa ? pb : (p == pb ? pa : p); };
        return dist(moved(current.physical(g.q0)), moved(current.physical(g.q1)));
    };

    while (!frontier.done()) {
        // Execute everything executable.
        bool executed_any = true;
        bool progressed = false;
        while (executed_any) {
            executed_any = false;
            const std::vector<int> front_copy = frontier.front();
            for (const int node : front_copy) {
                const gate& g = dag.node_gate(node);
                if (coupling.has_edge(current.physical(g.q0), current.physical(g.q1))) {
                    if (emit != nullptr) emit->execute_two_qubit(node, current);
                    frontier.execute(node);
                    executed_any = true;
                    progressed = true;
                }
            }
        }
        if (progressed) {
            reset_decay();
            swaps_since_progress = 0;
        }
        if (frontier.done()) break;

        // Release valve: guarantee progress on adversarial instances.
        if (swaps_since_progress > release_threshold) {
            if (force_route_count != nullptr) ++(*force_route_count);
            int best_node = frontier.front().front();
            int best_distance = std::numeric_limits<int>::max();
            for (const int node : frontier.front()) {
                const gate& g = dag.node_gate(node);
                const int d = dist(current.physical(g.q0), current.physical(g.q1));
                if (d < best_distance) {
                    best_distance = d;
                    best_node = node;
                }
            }
            if (emit != nullptr) {
                force_route(best_node, dag, coupling, dist, current, *emit);
            } else {
                // Mapping-only pass: apply the same swaps without emission.
                const gate& g = dag.node_gate(best_node);
                int pa = current.physical(g.q0);
                const int pb = current.physical(g.q1);
                while (!coupling.has_edge(pa, pb)) {
                    for (const int pn : coupling.neighbors(pa)) {
                        if (dist(pn, pb) < dist(pa, pb)) {
                            current.swap_physical(pa, pn);
                            pa = pn;
                            break;
                        }
                    }
                }
            }
            swaps_since_progress = 0;
            reset_decay();
            continue;
        }

        // Score candidate swaps.
        const auto candidates = candidate_swaps(frontier.front(), dag, coupling, current);
        const auto extended = frontier.lookahead_set(options.extended_set_size);
        const auto& front = frontier.front();

        // Extended-set position weights (uniform when lookahead_decay==1).
        std::vector<double> ext_weight(extended.size(), 1.0);
        double ext_norm = static_cast<double>(extended.size());
        if (options.lookahead_decay < 1.0 && !extended.empty()) {
            double w = 1.0;
            ext_norm = 0.0;
            for (std::size_t i = 0; i < extended.size(); ++i) {
                ext_weight[i] = w;
                ext_norm += w;
                w *= options.lookahead_decay;
            }
        }

        std::vector<swap_score> scores;
        scores.reserve(candidates.size());
        double best_total = std::numeric_limits<double>::infinity();
        for (const auto& cand : candidates) {
            swap_score s;
            s.candidate = cand;
            double basic = 0.0;
            for (const int node : front) basic += gate_distance_after(node, cand.a, cand.b);
            s.basic = basic / static_cast<double>(front.size());
            if (!extended.empty()) {
                double ext = 0.0;
                for (std::size_t i = 0; i < extended.size(); ++i) {
                    ext += ext_weight[i] * gate_distance_after(extended[i], cand.a, cand.b);
                }
                s.lookahead = options.extended_set_weight * ext / ext_norm;
            }
            s.decay_factor = std::max(decay[static_cast<std::size_t>(cand.a)],
                                      decay[static_cast<std::size_t>(cand.b)]);
            best_total = std::min(best_total, s.total());
            scores.push_back(s);
        }

        // Random tie-break among the best candidates (as Qiskit does).
        std::vector<std::size_t> best_indices;
        for (std::size_t i = 0; i < scores.size(); ++i) {
            if (scores[i].total() <= best_total + 1e-12) best_indices.push_back(i);
        }
        const std::size_t pick = best_indices[random.below(best_indices.size())];
        const edge chosen = scores[pick].candidate;

        if (observer) {
            sabre_decision d;
            d.front_nodes = front;
            d.extended_nodes = extended;
            d.scores = scores;
            d.chosen = chosen;
            d.swaps_so_far = emit != nullptr ? emit->swaps_emitted() : 0;
            observer(d);
        }

        if (emit != nullptr) emit->emit_swap(chosen.a, chosen.b);
        current.swap_physical(chosen.a, chosen.b);
        decay[static_cast<std::size_t>(chosen.a)] += options.decay_increment;
        decay[static_cast<std::size_t>(chosen.b)] += options.decay_increment;
        ++swaps_since_progress;
        if (++swaps_since_reset >= options.decay_reset_interval) reset_decay();
    }

    return current;
}

/// Reverses a circuit's gate order (dependency structure mirrored); used
/// by the bidirectional initial-mapping refinement.
circuit reversed(const circuit& c) {
    circuit out(c.num_qubits());
    for (std::size_t i = c.size(); i > 0; --i) out.append(c[i - 1]);
    return out;
}

}  // namespace

routed_circuit route_sabre_with_initial(const circuit& logical, const graph& coupling,
                                        const mapping& initial, const sabre_options& options,
                                        const sabre_observer& observer, sabre_stats* stats) {
    const gate_dag dag(logical);
    const distance_matrix dist(coupling);
    rng random(options.seed);

    emission_buffer emit(logical, dag, coupling.num_vertices());
    std::size_t force_routes = 0;
    const mapping final_mapping = route_pass(dag, coupling, dist, initial, options,
                                             random, &emit, observer, &force_routes);
    emit.finish(final_mapping);

    routed_circuit out;
    out.initial = initial;
    out.physical = emit.take();
    if (stats != nullptr) {
        stats->best_swaps = out.swap_count();
        stats->best_trial = 0;
        stats->force_routes = force_routes;
    }
    return out;
}

mapping sabre_final_mapping(const circuit& logical, const graph& coupling,
                            const mapping& initial, const sabre_options& options) {
    const gate_dag dag(logical);
    const distance_matrix dist(coupling);
    rng random(options.seed);
    return route_pass(dag, coupling, dist, initial, options, random, nullptr, {},
                      nullptr);
}

routed_circuit route_sabre(const circuit& logical, const graph& coupling,
                           const sabre_options& options, sabre_stats* stats) {
    if (options.trials < 1) throw std::invalid_argument("route_sabre: trials must be >= 1");
    const gate_dag dag(logical);
    const gate_dag reverse_dag = gate_dag(reversed(logical));
    const circuit reversed_logical = reversed(logical);
    const distance_matrix dist(coupling);

    routed_circuit best;
    std::size_t best_swaps = std::numeric_limits<std::size_t>::max();
    int best_trial = -1;
    std::size_t total_force_routes = 0;

    for (int trial = 0; trial < options.trials; ++trial) {
        // Salted stream: tool seeds must never alias generator seeds, or
        // a trial would silently reproduce the planted optimal mapping.
        rng random((options.seed ^ 0x5ab3e7a1c2d9f04bULL) +
                   static_cast<std::uint64_t>(trial) * 0x9e3779b97f4a7c15ULL);
        mapping initial =
            mapping::random(logical.num_qubits(), coupling.num_vertices(), random);

        if (options.bidirectional) {
            // Forward then backward mapping-only passes refine the initial
            // mapping (SABRE's bidirectional trick).
            const mapping after_forward =
                route_pass(dag, coupling, dist, initial, options, random,
                           nullptr, {}, nullptr);
            initial = route_pass(reverse_dag, coupling, dist, after_forward,
                                 options, random, nullptr, {}, nullptr);
        }

        emission_buffer emit(logical, dag, coupling.num_vertices());
        std::size_t force_routes = 0;
        const mapping final_mapping = route_pass(dag, coupling, dist, initial,
                                                 options, random, &emit, {}, &force_routes);
        emit.finish(final_mapping);
        total_force_routes += force_routes;

        const std::size_t swaps = emit.swaps_emitted();
        if (swaps < best_swaps) {
            best_swaps = swaps;
            best_trial = trial;
            best.initial = initial;
            best.physical = emit.take();
        }
    }

    if (stats != nullptr) {
        stats->best_swaps = best_swaps;
        stats->best_trial = best_trial;
        stats->force_routes = total_force_routes;
    }
    return best;
}

}  // namespace qubikos::router
