// qubikos-lint: hot-path — route_pass and the trial loop dominate campaign time.
#include "router/sabre.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <utility>

#include "circuit/dag.hpp"
#include "circuit/routed.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "router/common.hpp"
#include "router/score_kernel.hpp"
#include "util/check.hpp"
#include "util/restart.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace qubikos::router {

namespace {

constexpr std::size_t kNoLimit = std::numeric_limits<std::size_t>::max();

/// Publishes one route's sabre_stats to the telemetry registry. Called
/// once per route at the call boundary — never from the trial hot loop —
/// so enabling observability adds a handful of counter writes per route.
void publish_sabre_stats(const sabre_stats& s) {
    static const obs::metric_id routes = obs::counter("sabre.routes");
    static const obs::metric_id trials_run = obs::counter("sabre.trials_run");
    static const obs::metric_id trials_pruned = obs::counter("sabre.trials_pruned");
    static const obs::metric_id trials_skipped = obs::counter("sabre.trials_skipped");
    static const obs::metric_id pass_decisions = obs::counter("sabre.pass_decisions");
    static const obs::metric_id force_routes = obs::counter("sabre.force_routes");
    static const obs::metric_id waves = obs::counter("sabre.waves");
    static const obs::metric_id swaps = obs::counter("sabre.best_swaps");
    obs::add(routes);
    obs::add(trials_run, s.trials_run);
    obs::add(trials_pruned, s.trials_pruned);
    obs::add(trials_skipped, s.trials_skipped);
    obs::add(pass_decisions, s.pass_decisions);
    obs::add(force_routes, s.force_routes);
    obs::add(waves, s.waves);
    obs::add(swaps, s.best_swaps);
}

/// Every buffer one routing pass touches, bundled for reuse: a trial
/// arena holds one of these and resets it per pass, so steady-state
/// trials allocate nothing. The structure-of-arrays int32 operand
/// buffers (one array per gate operand) are exactly the layout the
/// batched score kernel consumes — contiguous lanes, no interleaving.
struct pass_scratch {
    dag_frontier frontier;
    std::vector<double> decay;
    std::vector<int> executable;
    std::vector<edge> candidates;
    std::vector<int> extended;
    std::vector<char> lookahead_seen;
    std::vector<int> lookahead_queue;
    std::vector<std::int32_t> front_p0;
    std::vector<std::int32_t> front_p1;
    std::vector<std::int32_t> ext_p0;
    std::vector<std::int32_t> ext_p1;
    std::vector<double> ext_weight;
    std::vector<std::int32_t> ext_dist;
    std::vector<double> basic_out;
    std::vector<double> lookahead_out;
    std::vector<swap_score> scores;
    std::vector<std::size_t> best_indices;

    explicit pass_scratch(const gate_dag& dag) : frontier(dag) {}
};

/// Abort bounds of one pass. `max_decisions` is the wave-frozen swap
/// budget of the portfolio's mapping passes; `incumbent` (emission pass
/// only) aborts a trial once its emitted swaps exceed the best completed
/// trial — a sound cut: the aborted trial could not have won.
struct pass_limits {
    std::size_t max_decisions = kNoLimit;
    const std::atomic<std::size_t>* incumbent = nullptr;
};

/// One routing pass over a prepared DAG. `current` is the initial
/// mapping on entry and the final mapping on return. Returns false when
/// a limit aborted the pass (current/emit then hold partial state).
/// `decisions` accumulates every swap applied, across calls.
///
/// The inner loops run on the reused scratch: the executable drain
/// collects into one vector instead of copying the front layer per
/// sweep, per-gate physical operand locations are looked up once per
/// decision point (not once per candidate x gate) into flat int32
/// buffers, and the score / tie-break vectors keep their capacity across
/// iterations.
bool route_pass(const gate_dag& dag, const graph& coupling, const distance_provider& dist,
                mapping& current, const sabre_options& options, rng& random,
                emission_buffer* emit, const sabre_observer& observer,
                std::size_t* force_route_count, pass_scratch& scratch,
                const pass_limits& limits, std::size_t& decisions) {
    dag_frontier& frontier = scratch.frontier;
    frontier.reset(dag);
    scratch.decay.assign(static_cast<std::size_t>(coupling.num_vertices()), 1.0);
    std::vector<double>& decay = scratch.decay;
    int swaps_since_reset = 0;
    int swaps_since_progress = 0;
    const int release_threshold =
        options.release_valve > 0 ? options.release_valve : 3 * dist.diameter() + 20;

    std::vector<int>& executable = scratch.executable;
    std::vector<edge>& candidates = scratch.candidates;
    std::vector<std::int32_t>& front_p0 = scratch.front_p0;
    std::vector<std::int32_t>& front_p1 = scratch.front_p1;
    std::vector<std::int32_t>& ext_p0 = scratch.ext_p0;
    std::vector<std::int32_t>& ext_p1 = scratch.ext_p1;
    std::vector<double>& ext_weight = scratch.ext_weight;
    std::vector<swap_score>& scores = scratch.scores;
    std::vector<std::size_t>& best_indices = scratch.best_indices;

    const auto reset_decay = [&decay, &swaps_since_reset]() {
        std::fill(decay.begin(), decay.end(), 1.0);
        swaps_since_reset = 0;
    };

    const auto over_incumbent = [&]() {
        return limits.incumbent != nullptr && emit != nullptr &&
               emit->swaps_emitted() > limits.incumbent->load(std::memory_order_relaxed);
    };

    while (!frontier.done()) {
        // Execute everything executable. The mapping is fixed during a
        // sweep, so collecting first and executing second sees exactly
        // the nodes a front-layer snapshot would.
        bool executed_any = true;
        bool progressed = false;
        while (executed_any) {
            executed_any = false;
            executable.clear();
            for (const int node : frontier.front()) {
                const gate& g = dag.node_gate(node);
                if (coupling.has_edge(current.physical(g.q0), current.physical(g.q1))) {
                    executable.push_back(node);
                }
            }
            for (const int node : executable) {
                if (emit != nullptr) emit->execute_two_qubit(node, current);
                frontier.execute(node);
                executed_any = true;
                progressed = true;
            }
        }
        if (progressed) {
            reset_decay();
            swaps_since_progress = 0;
        }
        if (frontier.done()) break;

        // Release valve: guarantee progress on adversarial instances.
        if (swaps_since_progress > release_threshold) {
            if (force_route_count != nullptr) ++(*force_route_count);
            int best_node = frontier.front().front();
            int best_distance = std::numeric_limits<int>::max();
            for (const int node : frontier.front()) {
                const gate& g = dag.node_gate(node);
                const int d = dist(current.physical(g.q0), current.physical(g.q1));
                if (d < best_distance) {
                    best_distance = d;
                    best_node = node;
                }
            }
            if (emit != nullptr) {
                const std::size_t before = emit->swaps_emitted();
                force_route(best_node, dag, coupling, dist, current, *emit);
                decisions += emit->swaps_emitted() - before;
                if (over_incumbent()) return false;
            } else {
                // Mapping-only pass: apply the same swaps without emission.
                const gate& g = dag.node_gate(best_node);
                int pa = current.physical(g.q0);
                const int pb = current.physical(g.q1);
                while (!coupling.has_edge(pa, pb)) {
                    for (const int pn : coupling.neighbors(pa)) {
                        if (dist(pn, pb) < dist(pa, pb)) {
                            current.swap_physical(pa, pn);
                            pa = pn;
                            break;
                        }
                    }
                    if (++decisions > limits.max_decisions) return false;
                }
            }
            swaps_since_progress = 0;
            reset_decay();
            continue;
        }

        // Score candidate swaps.
        candidate_swaps(frontier.front(), dag, coupling, current, candidates);
        frontier.lookahead_set(options.extended_set_size, scratch.extended,
                               scratch.lookahead_seen, scratch.lookahead_queue);
        const std::vector<int>& extended = scratch.extended;
        const auto& front = frontier.front();

        // Physical operand locations, looked up once per decision point
        // and shared by every candidate's score. Structure-of-arrays
        // (one lane per operand) so the batched kernel reads contiguous
        // memory.
        front_p0.clear();
        front_p1.clear();
        for (const int node : front) {
            const gate& g = dag.node_gate(node);
            front_p0.push_back(current.physical(g.q0));
            front_p1.push_back(current.physical(g.q1));
        }
        ext_p0.clear();
        ext_p1.clear();
        for (const int node : extended) {
            const gate& g = dag.node_gate(node);
            ext_p0.push_back(current.physical(g.q0));
            ext_p1.push_back(current.physical(g.q1));
        }

        // Extended-set position weights (uniform when lookahead_decay==1).
        ext_weight.assign(extended.size(), 1.0);
        double ext_norm = static_cast<double>(extended.size());
        if (options.lookahead_decay < 1.0 && !extended.empty()) {
            double w = 1.0;
            ext_norm = 0.0;
            for (std::size_t i = 0; i < extended.size(); ++i) {
                ext_weight[i] = w;
                ext_norm += w;
                w *= options.lookahead_decay;
            }
        }

        // All candidates of the decision point scored in one kernel call
        // (scalar or SIMD — bit-identical either way; see score_kernel).
        score_batch batch;
        batch.front_p0 = front_p0.data();
        batch.front_p1 = front_p1.data();
        batch.front_gates = front_p0.size();
        batch.ext_p0 = ext_p0.data();
        batch.ext_p1 = ext_p1.data();
        batch.ext_gates = ext_p0.size();
        batch.ext_weight = ext_weight.data();
        batch.ext_norm = ext_norm;
        batch.extended_set_weight = options.extended_set_weight;
        batch.dist = &dist;
        scratch.basic_out.resize(candidates.size());
        scratch.lookahead_out.resize(candidates.size());
        score_candidates(batch, candidates.data(), candidates.size(),
                         scratch.basic_out.data(), scratch.lookahead_out.data(),
                         scratch.ext_dist);

        scores.clear();
        scores.reserve(candidates.size());
        double best_total = std::numeric_limits<double>::infinity();
        for (std::size_t c = 0; c < candidates.size(); ++c) {
            swap_score s;
            s.candidate = candidates[c];
            s.basic = scratch.basic_out[c];
            s.lookahead = scratch.lookahead_out[c];
            s.decay_factor = std::max(decay[static_cast<std::size_t>(candidates[c].a)],
                                      decay[static_cast<std::size_t>(candidates[c].b)]);
            best_total = std::min(best_total, s.total());
            scores.push_back(s);
        }

        // Random tie-break among the best candidates (as Qiskit does).
        best_indices.clear();
        for (std::size_t i = 0; i < scores.size(); ++i) {
            if (scores[i].total() <= best_total + 1e-12) best_indices.push_back(i);
        }
        const std::size_t pick = best_indices[random.below(best_indices.size())];
        const edge chosen = scores[pick].candidate;

        if (observer) {
            sabre_decision d;
            d.front_nodes = front;
            d.extended_nodes = extended;
            d.scores = scores;
            d.chosen = chosen;
            d.swaps_so_far = emit != nullptr ? emit->swaps_emitted() : 0;
            observer(d);
        }

        if (emit != nullptr) emit->emit_swap(chosen.a, chosen.b);
        current.swap_physical(chosen.a, chosen.b);
        decay[static_cast<std::size_t>(chosen.a)] += options.decay_increment;
        decay[static_cast<std::size_t>(chosen.b)] += options.decay_increment;
        ++swaps_since_progress;
        if (++swaps_since_reset >= options.decay_reset_interval) reset_decay();
        if (++decisions > limits.max_decisions) return false;
        if (over_incumbent()) return false;
    }

    return true;
}

/// Reverses a circuit's gate order (dependency structure mirrored); used
/// by the bidirectional initial-mapping refinement.
circuit reversed(const circuit& c) {
    circuit out(c.num_qubits());
    for (std::size_t i = c.size(); i > 0; --i) out.append(c[i - 1]);
    return out;
}

/// Per-slot trial arena: all pass scratch plus the slot's running
/// reduction state. Trials on one slot arrive in increasing index order
/// (the pool's claim cursor is monotonic), so keeping the first
/// strictly-better result reproduces the serial lowest-index tie-break;
/// the cross-slot reduction finishes the job lexicographically.
struct trial_arena {
    pass_scratch scratch;
    emission_buffer emit;
    mapping initial;
    mapping current;
    std::vector<int> perm;

    std::size_t best_swaps = kNoLimit;
    long best_trial = -1;
    mapping best_initial;
    circuit best_physical;
    std::size_t force_routes = 0;
    std::size_t decisions = 0;
    std::size_t completed = 0;
    std::size_t pruned = 0;
    /// Costliest single mapping pass of the slot-best trial (portfolio
    /// budget auto-calibration; deterministic — a completing trial's
    /// mapping passes ran un-aborted).
    std::size_t best_map_pass = 0;

    trial_arena(const circuit& logical, const gate_dag& dag, int num_physical)
        : scratch(dag), emit(logical, dag, num_physical) {}
};

/// Shared fixtures of one route_sabre call.
struct trial_context {
    const circuit& logical;
    const graph& coupling;
    const distance_provider& dist;
    const gate_dag& dag;
    const gate_dag& reverse_dag;
    const sabre_options& options;
};

/// Runs one trial in `arena`. Returns true when the trial completed (its
/// result is folded into the slot state), false when a limit pruned it.
bool run_trial(const trial_context& ctx, trial_arena& arena, std::size_t trial,
               std::size_t map_budget, const std::atomic<std::size_t>* incumbent) {
    // Salted stream: tool seeds must never alias generator seeds, or
    // a trial would silently reproduce the planted optimal mapping.
    rng random((ctx.options.seed ^ 0x5ab3e7a1c2d9f04bULL) +
               static_cast<std::uint64_t>(trial) * 0x9e3779b97f4a7c15ULL);
    mapping::random_into(arena.initial, ctx.logical.num_qubits(),
                         ctx.coupling.num_vertices(), random, arena.perm);

    std::size_t trial_map_pass = 0;
    if (ctx.options.bidirectional) {
        // Forward then backward mapping-only passes refine the initial
        // mapping (SABRE's bidirectional trick). `map_budget` bounds each
        // pass individually (decisions accumulates across passes and
        // trials), so the limit is offset by the pass start.
        arena.current = arena.initial;
        std::size_t before = arena.decisions;
        pass_limits budget{map_budget == kNoLimit ? kNoLimit : before + map_budget, nullptr};
        if (!route_pass(ctx.dag, ctx.coupling, ctx.dist, arena.current, ctx.options, random,
                        nullptr, {}, nullptr, arena.scratch, budget, arena.decisions)) {
            return false;
        }
        trial_map_pass = arena.decisions - before;
        before = arena.decisions;
        budget.max_decisions = map_budget == kNoLimit ? kNoLimit : before + map_budget;
        if (!route_pass(ctx.reverse_dag, ctx.coupling, ctx.dist, arena.current, ctx.options,
                        random, nullptr, {}, nullptr, arena.scratch, budget,
                        arena.decisions)) {
            return false;
        }
        trial_map_pass = std::max(trial_map_pass, arena.decisions - before);
        arena.initial = arena.current;
    }

    arena.emit.reset();
    std::size_t force_routes = 0;
    arena.current = arena.initial;
    const bool done =
        route_pass(ctx.dag, ctx.coupling, ctx.dist, arena.current, ctx.options, random,
                   &arena.emit, {}, &force_routes, arena.scratch,
                   pass_limits{kNoLimit, incumbent}, arena.decisions);
    arena.force_routes += force_routes;
    if (!done) return false;
    arena.emit.finish(arena.current);

    const std::size_t swaps = arena.emit.swaps_emitted();
    if (swaps < arena.best_swaps) {
        arena.best_swaps = swaps;
        arena.best_trial = static_cast<long>(trial);
        arena.best_initial = arena.initial;
        arena.best_physical = arena.emit.physical_circuit();
        arena.best_map_pass = trial_map_pass;
    }
    return true;
}

/// Deterministic cross-slot reduction: fewest swaps wins, ties broken by
/// lowest trial index — together with the in-slot ascending-order scan
/// this is bit-identical to the serial loop for any thread count.
routed_circuit reduce_slots(std::vector<trial_arena>& arenas, sabre_stats* stats,
                            std::size_t requested_trials) {
    trial_arena* winner = nullptr;
    std::size_t total_force_routes = 0;
    std::size_t total_decisions = 0;
    std::size_t completed = 0;
    std::size_t pruned = 0;
    for (auto& arena : arenas) {
        total_force_routes += arena.force_routes;
        total_decisions += arena.decisions;
        completed += arena.completed;
        pruned += arena.pruned;
        if (arena.best_trial < 0) continue;
        if (winner == nullptr || arena.best_swaps < winner->best_swaps ||
            (arena.best_swaps == winner->best_swaps && arena.best_trial < winner->best_trial)) {
            winner = &arena;
        }
    }
    if (winner == nullptr) {
        // Unreachable by construction: the first trial to finish always
        // completes (the incumbent is unset until then, and wave 0 runs
        // unbudgeted).
        throw std::logic_error("route_sabre: every trial was pruned");
    }
    routed_circuit best;
    best.initial = std::move(winner->best_initial);
    best.physical = std::move(winner->best_physical);
    // The winning trial's initial mapping must still be a bijection —
    // a trial that corrupted its mapping would otherwise surface as a
    // silently-invalid routed circuit at report time.
    QUBIKOS_DCHECK(best.initial.is_consistent());
    if (stats != nullptr) {
        stats->best_swaps = winner->best_swaps;
        stats->best_trial = static_cast<int>(winner->best_trial);
        stats->force_routes = total_force_routes;
        stats->trials_run = completed;
        stats->trials_pruned = pruned;
        stats->trials_skipped = requested_trials - completed - pruned;
        stats->pass_decisions = total_decisions;
        stats->waves = 0;
        stats->arena_slots = arenas.size();
    }
    return best;
}

void validate_options(const sabre_options& options) {
    if (options.trials < 1) throw std::invalid_argument("route_sabre: trials must be >= 1");
    if (options.threads < 0) throw std::invalid_argument("route_sabre: threads must be >= 0");
    if (options.portfolio_wave < 0 || options.portfolio_budget_base < 0 ||
        options.portfolio_patience < 0 || options.portfolio_target_swaps < 0) {
        throw std::invalid_argument("route_sabre: portfolio knobs must be >= 0");
    }
    if (options.portfolio_budget_growth != 0.0 && options.portfolio_budget_growth < 1.0) {
        throw std::invalid_argument(
            "route_sabre: portfolio_budget_growth must be 0 (luby) or >= 1");
    }
}

/// Mapping-pass budget of wave `w` (>= 1): base scaled by the Luby
/// sequence, or geometrically when growth >= 1.
std::size_t wave_budget(std::size_t base, std::size_t w, double growth) {
    if (base == 0) return kNoLimit;
    if (growth >= 1.0) {
        const double b = static_cast<double>(base) * std::pow(growth, static_cast<double>(w - 1));
        if (b >= static_cast<double>(kNoLimit) / 2) return kNoLimit;
        return static_cast<std::size_t>(b);
    }
    const std::uint64_t factor = luby(static_cast<std::uint64_t>(w - 1));
    if (factor > kNoLimit / base) return kNoLimit;
    return base * static_cast<std::size_t>(factor);
}

/// The portfolio trial scheduler: deterministic waves of diversified-seed
/// trials under luby/geometric mapping-pass budgets, a relaxed atomic
/// incumbent aborting hopeless emission passes, and early stop on target
/// quality or stalled improvement. See sabre_options for the soundness /
/// determinism contract.
routed_circuit route_sabre_portfolio(const trial_context& ctx, sabre_stats* stats) {
    const sabre_options& options = ctx.options;
    const std::size_t trials = static_cast<std::size_t>(options.trials);
    const std::size_t width = std::min(
        thread_pool::resolve_threads(static_cast<std::size_t>(options.threads)), trials);
    const std::size_t wave_size = options.portfolio_wave > 0
                                      ? static_cast<std::size_t>(options.portfolio_wave)
                                      : std::max<std::size_t>(width, 4);

    std::vector<trial_arena> arenas;
    arenas.reserve(width);
    for (std::size_t i = 0; i < width; ++i) {
        arenas.emplace_back(ctx.logical, ctx.dag, ctx.coupling.num_vertices());
    }

    std::atomic<std::size_t> incumbent{kNoLimit};
    const std::size_t explicit_base = static_cast<std::size_t>(options.portfolio_budget_base);
    std::size_t budget_base = explicit_base;
    std::size_t scheduled = 0;
    std::size_t wave_index = 0;
    int stale_waves = 0;
    std::size_t frozen_best = kNoLimit;

    while (scheduled < trials) {
        if (options.portfolio_target_swaps > 0 &&
            frozen_best <= static_cast<std::size_t>(options.portfolio_target_swaps)) {
            break;
        }
        if (options.portfolio_patience > 0 && stale_waves >= options.portfolio_patience) break;

        const std::size_t map_budget =
            wave_index == 0 ? kNoLimit
                            : wave_budget(budget_base, wave_index, options.portfolio_budget_growth);
        const std::size_t wave_end = std::min(scheduled + wave_size, trials);
        const obs::trace_span wave_span("sabre.wave");
        thread_pool::shared().parallel_for_slots(
            scheduled, wave_end, width,
            [&](std::size_t trial, std::size_t slot) {
                trial_arena& arena = arenas[slot];
                if (!run_trial(ctx, arena, trial, map_budget, &incumbent)) {
                    ++arena.pruned;
                    return;
                }
                ++arena.completed;
                // Relaxed fetch-min: later trials abort against the best
                // completed swap count.
                std::size_t cur = incumbent.load(std::memory_order_relaxed);
                const std::size_t swaps = arena.emit.swaps_emitted();
                while (swaps < cur &&
                       !incumbent.compare_exchange_weak(cur, swaps, std::memory_order_relaxed)) {
                }
            },
            /*chunk=*/1);
        scheduled = wave_end;
        ++wave_index;

        // Wave barrier: every scheduling input below is deterministic —
        // the global winner is the lexicographic (swaps, trial) minimum
        // over completed trials, trials achieving the true best always
        // complete, and a completing trial's mapping passes ran
        // un-aborted — so budgets and stop decisions replay exactly for
        // any thread count.
        const trial_arena* winner = nullptr;
        for (const auto& arena : arenas) {
            if (arena.best_trial < 0) continue;
            if (winner == nullptr || arena.best_swaps < winner->best_swaps ||
                (arena.best_swaps == winner->best_swaps &&
                 arena.best_trial < winner->best_trial)) {
                winner = &arena;
            }
        }
        if (explicit_base == 0 && winner != nullptr) {
            // Auto-calibration: half of the winner's own costliest
            // mapping pass. Tight on purpose — trials whose
            // refinement runs past what the incumbent class needed are
            // abandoned early, and the Luby schedule's 2x / 4x waves
            // still let winner-class and long-shot trials run far.
            budget_base = winner->best_map_pass / 2;
        }
        const std::size_t best_now = winner != nullptr ? winner->best_swaps : kNoLimit;
        stale_waves = best_now < frozen_best ? 0 : stale_waves + 1;
        frozen_best = best_now;
    }

    routed_circuit best = reduce_slots(arenas, stats, trials);
    if (stats != nullptr) stats->waves = wave_index;
    return best;
}

}  // namespace

routed_circuit route_sabre_with_initial(const circuit& logical, const graph& coupling,
                                        const mapping& initial, const sabre_options& options,
                                        const sabre_observer& observer, sabre_stats* stats) {
    const distance_provider dist(coupling);
    return route_sabre_with_initial(logical, coupling, dist, initial, options, observer, stats);
}

routed_circuit route_sabre_with_initial(const circuit& logical, const graph& coupling,
                                        const distance_provider& dist, const mapping& initial,
                                        const sabre_options& options,
                                        const sabre_observer& observer, sabre_stats* stats) {
    const obs::trace_span span("sabre.route");
    QUBIKOS_CHECK_MSG(initial.num_program() == logical.num_qubits() &&
                          initial.num_physical() == coupling.num_vertices(),
                      "initial mapping is " << initial.num_program() << "->"
                                            << initial.num_physical() << ", circuit/device is "
                                            << logical.num_qubits() << "/"
                                            << coupling.num_vertices());
    QUBIKOS_DCHECK(initial.is_consistent());
    sabre_stats local_stats;
    if (stats == nullptr && obs::enabled()) stats = &local_stats;
    const gate_dag dag(logical);
    rng random(options.seed);

    pass_scratch scratch(dag);
    emission_buffer emit(logical, dag, coupling.num_vertices());
    std::size_t force_routes = 0;
    std::size_t decisions = 0;
    mapping final_mapping = initial;
    route_pass(dag, coupling, dist, final_mapping, options, random, &emit, observer,
               &force_routes, scratch, {}, decisions);
    emit.finish(final_mapping);

    routed_circuit out;
    out.initial = initial;
    out.physical = emit.take();
    // Legality before emission to the caller: every two-qubit gate on a
    // coupled pair, and the physical circuit replays the logical traces.
    QUBIKOS_DCHECK(validate_routed(logical, out, coupling).valid);
    if (stats != nullptr) {
        *stats = {};
        stats->best_swaps = out.swap_count();
        stats->best_trial = 0;
        stats->force_routes = force_routes;
        stats->trials_run = 1;
        stats->pass_decisions = decisions;
        stats->arena_slots = 1;
        if (obs::enabled()) publish_sabre_stats(*stats);
    }
    return out;
}

mapping sabre_final_mapping(const circuit& logical, const graph& coupling,
                            const mapping& initial, const sabre_options& options) {
    const distance_provider dist(coupling);
    return sabre_final_mapping(logical, coupling, dist, initial, options);
}

mapping sabre_final_mapping(const circuit& logical, const graph& coupling,
                            const distance_provider& dist, const mapping& initial,
                            const sabre_options& options) {
    const gate_dag dag(logical);
    rng random(options.seed);
    pass_scratch scratch(dag);
    std::size_t decisions = 0;
    mapping current = initial;
    route_pass(dag, coupling, dist, current, options, random, nullptr, {}, nullptr, scratch,
               {}, decisions);
    // A mapping-only pass applies SWAPs in place; the result must still
    // be the same bijection up to permutation.
    QUBIKOS_DCHECK(current.is_consistent());
    return current;
}

routed_circuit route_sabre(const circuit& logical, const graph& coupling,
                           const sabre_options& options, sabre_stats* stats) {
    const distance_provider dist(coupling);
    return route_sabre(logical, coupling, dist, options, stats);
}

routed_circuit route_sabre(const circuit& logical, const graph& coupling,
                           const distance_provider& dist, const sabre_options& options,
                           sabre_stats* stats) {
    validate_options(options);
    const obs::trace_span span("sabre.route");
    // Publish stats even when the caller passed none: route into a local
    // so the telemetry layer sees every route's totals.
    sabre_stats local_stats;
    if (stats == nullptr && obs::enabled()) stats = &local_stats;
    const gate_dag dag(logical);
    const circuit reversed_logical = reversed(logical);
    const gate_dag reverse_dag(reversed_logical);
    const trial_context ctx{logical, coupling, dist, dag, reverse_dag, options};

    if (options.portfolio) {
        routed_circuit out = route_sabre_portfolio(ctx, stats);
        QUBIKOS_DCHECK(validate_routed(logical, out, coupling).valid);
        if (stats != nullptr && obs::enabled()) publish_sabre_stats(*stats);
        return out;
    }

    // Trials draw from independent salted RNG streams and share only
    // read-only state, so they are embarrassingly parallel: each slot of
    // the process-wide pool runs trials out of its own arena (steady
    // state allocates nothing) and keeps a running slot-local best, then
    // a serial reduction picks the winner. Peak memory is O(slots), not
    // O(trials) — at paper scale (1000 trials) holding every routed
    // circuit at once would dwarf the routing state itself.
    const std::size_t trials = static_cast<std::size_t>(options.trials);
    const std::size_t width = std::min(
        thread_pool::resolve_threads(static_cast<std::size_t>(options.threads)), trials);
    std::vector<trial_arena> arenas;
    arenas.reserve(width);
    for (std::size_t i = 0; i < width; ++i) {
        arenas.emplace_back(logical, dag, coupling.num_vertices());
    }

    thread_pool::shared().parallel_for_slots(
        0, trials, width,
        [&](std::size_t trial, std::size_t slot) {
            trial_arena& arena = arenas[slot];
            run_trial(ctx, arena, trial, kNoLimit, nullptr);
            ++arena.completed;
        },
        /*chunk=*/1);

    routed_circuit out = reduce_slots(arenas, stats, trials);
    QUBIKOS_DCHECK(validate_routed(logical, out, coupling).valid);
    if (stats != nullptr && obs::enabled()) publish_sabre_stats(*stats);
    return out;
}

}  // namespace qubikos::router
