#include "router/mlqls.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <numeric>
#include <vector>

#include "graph/distance.hpp"
#include "router/common.hpp"
#include "util/rng.hpp"

namespace qubikos::router {

namespace {

/// Weighted interaction graph: multiplicity of two-qubit gates per pair.
struct weighted_graph {
    int num_vertices = 0;
    std::map<edge, long> weights;
    /// Vertex weights (number of original qubits merged into each).
    std::vector<int> sizes;

    [[nodiscard]] long weighted_degree(int v) const {
        long total = 0;
        for (const auto& [e, w] : weights) {
            if (e.a == v || e.b == v) total += w;
        }
        return total;
    }
};

weighted_graph build_interaction(const circuit& logical) {
    weighted_graph g;
    g.num_vertices = logical.num_qubits();
    g.sizes.assign(static_cast<std::size_t>(logical.num_qubits()), 1);
    for (const auto& gt : logical.gates()) {
        if (gt.is_two_qubit()) ++g.weights[edge(gt.q0, gt.q1)];
    }
    return g;
}

/// One coarsening level: heavy-edge matching, heaviest edges first.
/// coarse_of maps fine vertex -> coarse vertex.
struct coarse_level {
    weighted_graph coarse;
    std::vector<int> coarse_of;
};

coarse_level coarsen(const weighted_graph& fine) {
    std::vector<std::pair<long, edge>> by_weight;
    by_weight.reserve(fine.weights.size());
    for (const auto& [e, w] : fine.weights) by_weight.emplace_back(w, e);
    std::sort(by_weight.begin(), by_weight.end(), [](const auto& a, const auto& b) {
        return a.first > b.first || (a.first == b.first && a.second < b.second);
    });

    std::vector<int> match(static_cast<std::size_t>(fine.num_vertices), -1);
    for (const auto& [w, e] : by_weight) {
        (void)w;
        if (match[static_cast<std::size_t>(e.a)] == -1 &&
            match[static_cast<std::size_t>(e.b)] == -1) {
            match[static_cast<std::size_t>(e.a)] = e.b;
            match[static_cast<std::size_t>(e.b)] = e.a;
        }
    }

    coarse_level level;
    level.coarse_of.assign(static_cast<std::size_t>(fine.num_vertices), -1);
    int next = 0;
    for (int v = 0; v < fine.num_vertices; ++v) {
        if (level.coarse_of[static_cast<std::size_t>(v)] != -1) continue;
        const int partner = match[static_cast<std::size_t>(v)];
        level.coarse_of[static_cast<std::size_t>(v)] = next;
        int size = fine.sizes[static_cast<std::size_t>(v)];
        if (partner != -1 && partner > v) {
            level.coarse_of[static_cast<std::size_t>(partner)] = next;
            size += fine.sizes[static_cast<std::size_t>(partner)];
        }
        level.coarse.sizes.push_back(size);
        ++next;
    }
    level.coarse.num_vertices = next;
    for (const auto& [e, w] : fine.weights) {
        const int ca = level.coarse_of[static_cast<std::size_t>(e.a)];
        const int cb = level.coarse_of[static_cast<std::size_t>(e.b)];
        if (ca != cb) level.coarse.weights[edge(ca, cb)] += w;
    }
    return level;
}

/// Placement objective: sum of weight * distance over interaction edges.
long placement_cost(const weighted_graph& g, const std::vector<int>& position,
                    const distance_provider& dist) {
    long cost = 0;
    for (const auto& [e, w] : g.weights) {
        cost += w * dist(position[static_cast<std::size_t>(e.a)],
                         position[static_cast<std::size_t>(e.b)]);
    }
    return cost;
}

/// Greedy placement of a (coarse) weighted graph: heaviest vertex on the
/// highest-degree physical qubit, then each next vertex minimizing
/// weighted distance to placed partners.
std::vector<int> place_coarse(const weighted_graph& g, const graph& coupling,
                              const distance_provider& dist) {
    std::vector<int> order(static_cast<std::size_t>(g.num_vertices));
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return g.weighted_degree(a) > g.weighted_degree(b);
    });

    std::vector<int> position(static_cast<std::size_t>(g.num_vertices), -1);
    std::vector<char> used(static_cast<std::size_t>(coupling.num_vertices()), 0);
    for (const int v : order) {
        long best_cost = 0;
        int best = -1;
        for (int p = 0; p < coupling.num_vertices(); ++p) {
            if (used[static_cast<std::size_t>(p)]) continue;
            long cost = 0;
            for (const auto& [e, w] : g.weights) {
                int partner = -1;
                if (e.a == v) partner = e.b;
                if (e.b == v) partner = e.a;
                if (partner == -1) continue;
                const int pp = position[static_cast<std::size_t>(partner)];
                if (pp != -1) cost += w * dist(p, pp);
            }
            const long score = cost * 1024 - coupling.degree(p);
            if (best == -1 || score < best_cost) {
                best = p;
                best_cost = score;
            }
        }
        // best == -1 only when the coupling graph has fewer qubits than the
        // (coarse) interaction graph has vertices; leave the vertex unplaced
        // rather than scribble at used[-1].
        position[static_cast<std::size_t>(v)] = best;
        if (best >= 0) used[static_cast<std::size_t>(best)] = 1;
    }
    return position;
}

/// Pairwise-exchange hill climbing over placed positions (also considers
/// moving to free physical qubits).
void refine(const weighted_graph& g, std::vector<int>& position, const graph& coupling,
            const distance_provider& dist, int sweeps, rng& random) {
    std::vector<int> holder(static_cast<std::size_t>(coupling.num_vertices()), -1);
    const auto rebuild_holder = [&]() {
        std::fill(holder.begin(), holder.end(), -1);
        for (int v = 0; v < g.num_vertices; ++v) {
            holder[static_cast<std::size_t>(position[static_cast<std::size_t>(v)])] = v;
        }
    };
    rebuild_holder();

    long current = placement_cost(g, position, dist);
    for (int sweep = 0; sweep < sweeps; ++sweep) {
        bool improved = false;
        auto vertex_order = random.permutation(g.num_vertices);
        for (const int v : vertex_order) {
            const int pv = position[static_cast<std::size_t>(v)];
            // Try every physical location (swap with occupant or move to a
            // free one).
            for (int p = 0; p < coupling.num_vertices(); ++p) {
                if (p == pv) continue;
                const int other = holder[static_cast<std::size_t>(p)];
                position[static_cast<std::size_t>(v)] = p;
                if (other != -1) position[static_cast<std::size_t>(other)] = pv;
                const long cost = placement_cost(g, position, dist);
                if (cost < current) {
                    current = cost;
                    improved = true;
                    holder[static_cast<std::size_t>(p)] = v;
                    holder[static_cast<std::size_t>(pv)] = other;
                    break;
                }
                position[static_cast<std::size_t>(v)] = pv;
                if (other != -1) position[static_cast<std::size_t>(other)] = p;
            }
        }
        if (!improved) break;
    }
}

}  // namespace

namespace {

/// One full V-cycle: coarsen, place, uncoarsen, refine. Returns the final
/// fine-level placement (program qubit -> physical qubit).
std::vector<int> multilevel_placement(const circuit& logical, const graph& coupling,
                                      const distance_provider& dist, const mlqls_options& options,
                                      rng& random) {
    // 1. Coarsening chain.
    std::vector<weighted_graph> graphs{build_interaction(logical)};
    std::vector<std::vector<int>> coarse_maps;
    while (graphs.back().num_vertices > options.coarsest_size) {
        coarse_level level = coarsen(graphs.back());
        if (level.coarse.num_vertices == graphs.back().num_vertices) break;  // no progress
        coarse_maps.push_back(std::move(level.coarse_of));
        graphs.push_back(std::move(level.coarse));
    }

    // 2. Coarsest placement.
    std::vector<int> position = place_coarse(graphs.back(), coupling, dist);
    refine(graphs.back(), position, coupling, dist, options.refine_sweeps, random);

    // 3. Uncoarsen + refine.
    for (std::size_t level = coarse_maps.size(); level > 0; --level) {
        const auto& coarse_of = coarse_maps[level - 1];
        const weighted_graph& fine = graphs[level - 1];
        std::vector<int> fine_position(static_cast<std::size_t>(fine.num_vertices), -1);
        std::vector<char> used(static_cast<std::size_t>(coupling.num_vertices()), 0);

        // First fine vertex of each coarse vertex inherits its position.
        std::vector<int> first_of(static_cast<std::size_t>(graphs[level].num_vertices), -1);
        for (int v = 0; v < fine.num_vertices; ++v) {
            const int cv = coarse_of[static_cast<std::size_t>(v)];
            if (first_of[static_cast<std::size_t>(cv)] == -1) {
                first_of[static_cast<std::size_t>(cv)] = v;
                const int cp = position[static_cast<std::size_t>(cv)];
                fine_position[static_cast<std::size_t>(v)] = cp;
                if (cp >= 0) used[static_cast<std::size_t>(cp)] = 1;
            }
        }
        // Remaining fine vertices go to the nearest free physical qubit.
        for (int v = 0; v < fine.num_vertices; ++v) {
            if (fine_position[static_cast<std::size_t>(v)] != -1) continue;
            const int anchor =
                position[static_cast<std::size_t>(coarse_of[static_cast<std::size_t>(v)])];
            int best = -1;
            for (int p = 0; p < coupling.num_vertices(); ++p) {
                if (used[static_cast<std::size_t>(p)]) continue;
                if (best == -1 || dist(anchor, p) < dist(anchor, best)) best = p;
            }
            fine_position[static_cast<std::size_t>(v)] = best;
            used[static_cast<std::size_t>(best)] = 1;
        }
        position = std::move(fine_position);
        refine(fine, position, coupling, dist, options.refine_sweeps, random);
    }
    return position;
}

}  // namespace

routed_circuit route_mlqls(const circuit& logical, const graph& coupling,
                           const mlqls_options& options) {
    const distance_provider dist(coupling);
    return route_mlqls(logical, coupling, dist, options);
}

routed_circuit route_mlqls(const circuit& logical, const graph& coupling,
                           const distance_provider& dist, const mlqls_options& options) {
    routed_circuit best;
    std::size_t best_swaps = std::numeric_limits<std::size_t>::max();
    const int trials = std::max(1, options.placement_trials);
    // ML-QLS refines placement with router feedback; model that with one
    // forward/backward mapping-only round from the multilevel placement.
    circuit reversed_logical(logical.num_qubits());
    for (std::size_t i = logical.size(); i > 0; --i) reversed_logical.append(logical[i - 1]);

    for (int trial = 0; trial < trials; ++trial) {
        rng random(options.seed + static_cast<std::uint64_t>(trial) * 0x9e3779b97f4a7c15ULL);
        const auto position = multilevel_placement(logical, coupling, dist, options, random);
        mapping initial = mapping::from_program_to_physical(position, coupling.num_vertices());

        sabre_options routing = options.routing;
        routing.bidirectional = false;
        routing.seed = options.seed + static_cast<std::uint64_t>(trial);

        // The dist-taking entry points keep the four routing passes of a
        // trial from rebuilding the APSP matrix each.
        const mapping after_forward =
            sabre_final_mapping(logical, coupling, dist, initial, routing);
        initial = sabre_final_mapping(reversed_logical, coupling, dist, after_forward, routing);

        routed_circuit candidate =
            route_sabre_with_initial(logical, coupling, dist, initial, routing);
        if (candidate.swap_count() < best_swaps) {
            best_swaps = candidate.swap_count();
            best = std::move(candidate);
        }
    }
    return best;
}

}  // namespace qubikos::router
