// t|ket>-style slice router (Cowtan et al. [32], "On the qubit routing
// problem").
//
// The routing strategy that distinguishes t|ket> from SABRE-family tools:
//   - initial placement by greedy interaction-graph matching;
//   - the circuit is viewed as timeslices of parallel two-qubit gates;
//   - swap selection minimizes the summed coupling distance of the
//     current slice plus geometrically down-weighted future slices;
//   - deterministic (no random restarts), no decay term.
// On QUBIKOS circuits this slice-global view is exactly what the paper
// observes to lag SABRE by a wide margin (Sec. IV-B).
#pragma once

#include "circuit/circuit.hpp"
#include "circuit/routed.hpp"
#include "graph/distance.hpp"
#include "graph/graph.hpp"

namespace qubikos::router {

struct tket_options {
    /// How many future slices the swap cost looks at.
    int lookahead_slices = 4;
    /// Geometric weight applied per future slice.
    double slice_discount = 0.5;
    /// Stagnation bound before force-routing the nearest gate
    /// (0 = auto: 3*diameter + 20).
    int stagnation_limit = 0;
    /// Initial placement only sees this many leading two-qubit gates —
    /// mirroring tket's GraphPlacement, which matches a pattern built
    /// from the first slices of the circuit rather than the whole
    /// interaction graph (0 = whole circuit).
    std::size_t placement_window = 50;
};

[[nodiscard]] routed_circuit route_tket(const circuit& logical, const graph& coupling,
                                        const tket_options& options = {});

/// Precomputed-distance variant: `dist` must be a distance provider over
/// `coupling` (shared per-device routing contexts amortize it across
/// calls); results are bit-identical to the owning overload.
[[nodiscard]] routed_circuit route_tket(const circuit& logical, const graph& coupling,
                                        const distance_provider& dist,
                                        const tket_options& options = {});

/// Routing-only entry point with a caller-fixed initial mapping —
/// the standalone-router evaluation mode of Sec. IV-C.
[[nodiscard]] routed_circuit route_tket_with_initial(const circuit& logical,
                                                     const graph& coupling,
                                                     const mapping& initial,
                                                     const tket_options& options = {});

/// Precomputed-distance variant (see route_tket above).
[[nodiscard]] routed_circuit route_tket_with_initial(const circuit& logical,
                                                     const graph& coupling,
                                                     const distance_provider& dist,
                                                     const mapping& initial,
                                                     const tket_options& options = {});

}  // namespace qubikos::router
