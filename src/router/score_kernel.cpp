// qubikos-lint: hot-path — every SABRE swap decision scores all candidates here.
#include "router/score_kernel.hpp"

#include <atomic>
#include <cstdlib>
#include <string_view>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define QUBIKOS_SCORE_KERNEL_AVX2 1
#include <immintrin.h>
#else
#define QUBIKOS_SCORE_KERNEL_AVX2 0
#endif

namespace qubikos::router {

namespace {

bool avx2_supported() {
#if QUBIKOS_SCORE_KERNEL_AVX2
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
}

/// QUBIKOS_SIMD=scalar pins the baseline; "auto" (or unset, or any other
/// value) picks the best backend the CPU supports.
simd_backend resolve_backend_from_env() {
    const char* raw = std::getenv("QUBIKOS_SIMD");
    if (raw != nullptr && std::string_view(raw) == "scalar") return simd_backend::scalar;
    return avx2_supported() ? simd_backend::avx2 : simd_backend::scalar;
}

std::atomic<simd_backend>& backend_state() {
    static std::atomic<simd_backend> state{resolve_backend_from_env()};
    return state;
}

/// The original route_pass inner loop, verbatim: per candidate, ordered
/// double accumulation of front distances then weighted extended-set
/// distances. This is the reference every other backend must match
/// bit-for-bit.
void score_candidates_scalar(const score_batch& batch, const edge* candidates,
                             std::size_t count, double* basic, double* lookahead) {
    const distance_provider& dist = *batch.dist;
    for (std::size_t k = 0; k < count; ++k) {
        const int pa = candidates[k].a;
        const int pb = candidates[k].b;
        double basic_sum = 0.0;
        for (std::size_t i = 0; i < batch.front_gates; ++i) {
            const int p0 = batch.front_p0[i];
            const int p1 = batch.front_p1[i];
            const int m0 = p0 == pa ? pb : (p0 == pb ? pa : p0);
            const int m1 = p1 == pa ? pb : (p1 == pb ? pa : p1);
            basic_sum += dist(m0, m1);
        }
        basic[k] = basic_sum / static_cast<double>(batch.front_gates);
        if (batch.ext_gates > 0) {
            double ext = 0.0;
            for (std::size_t i = 0; i < batch.ext_gates; ++i) {
                const int p0 = batch.ext_p0[i];
                const int p1 = batch.ext_p1[i];
                const int m0 = p0 == pa ? pb : (p0 == pb ? pa : p0);
                const int m1 = p1 == pa ? pb : (p1 == pb ? pa : p1);
                ext += batch.ext_weight[i] * dist(m0, m1);
            }
            lookahead[k] = batch.extended_set_weight * ext / batch.ext_norm;
        } else {
            lookahead[k] = 0.0;
        }
    }
}

#if QUBIKOS_SCORE_KERNEL_AVX2

__attribute__((target("avx2"))) inline std::int32_t hsum_epi32(__m256i v) {
    const __m128i lo = _mm256_castsi256_si128(v);
    const __m128i hi = _mm256_extracti128_si256(v, 1);
    __m128i s = _mm_add_epi32(lo, hi);
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0x4e));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0xb1));
    return _mm_cvtsi128_si32(s);
}

/// Applies the hypothetical swap (vpa, vpb) to 8 physical indices at
/// once: lanes equal to pa become pb and vice versa (pa != pb, so the
/// two blends never both fire on one lane). cmpeq's all-ones 32-bit
/// masks drive blendv_epi8 lane-uniformly.
__attribute__((target("avx2"))) inline __m256i apply_swap8(__m256i p, __m256i vpa,
                                                           __m256i vpb) {
    const __m256i eqa = _mm256_cmpeq_epi32(p, vpa);
    const __m256i eqb = _mm256_cmpeq_epi32(p, vpb);
    __m256i m = _mm256_blendv_epi8(p, vpb, eqa);
    m = _mm256_blendv_epi8(m, vpa, eqb);
    return m;
}

/// 8-wide path over the dense matrix: per candidate, gather 8 post-swap
/// distances per step. Front distances are int32 and their sum is exact
/// in double, so vector reassociation cannot change the result; the
/// extended-set distances are gathered into `ext_scratch` first and the
/// FP weights applied in the original gate order, keeping the lookahead
/// term bit-identical to the scalar backend. Dense only: the flat index
/// m0*n + m1 stays well inside int32 for any matrix that fits in memory.
__attribute__((target("avx2"))) void score_candidates_avx2(
    const score_batch& batch, const edge* candidates, std::size_t count, double* basic,
    double* lookahead, std::vector<std::int32_t>& ext_scratch) {
    const std::int32_t* base = batch.dist->dense_data();
    const int n = batch.dist->num_vertices();
    const __m256i vn = _mm256_set1_epi32(n);
    ext_scratch.resize(batch.ext_gates);
    for (std::size_t k = 0; k < count; ++k) {
        const int pa = candidates[k].a;
        const int pb = candidates[k].b;
        const __m256i vpa = _mm256_set1_epi32(pa);
        const __m256i vpb = _mm256_set1_epi32(pb);

        __m256i acc = _mm256_setzero_si256();
        std::size_t i = 0;
        for (; i + 8 <= batch.front_gates; i += 8) {
            const __m256i p0 = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(batch.front_p0 + i));
            const __m256i p1 = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(batch.front_p1 + i));
            const __m256i m0 = apply_swap8(p0, vpa, vpb);
            const __m256i m1 = apply_swap8(p1, vpa, vpb);
            const __m256i idx = _mm256_add_epi32(_mm256_mullo_epi32(m0, vn), m1);
            acc = _mm256_add_epi32(acc, _mm256_i32gather_epi32(base, idx, 4));
        }
        std::int64_t front_sum = hsum_epi32(acc);
        for (; i < batch.front_gates; ++i) {
            const int p0 = batch.front_p0[i];
            const int p1 = batch.front_p1[i];
            const int m0 = p0 == pa ? pb : (p0 == pb ? pa : p0);
            const int m1 = p1 == pa ? pb : (p1 == pb ? pa : p1);
            front_sum += base[static_cast<std::size_t>(m0) * static_cast<std::size_t>(n) +
                              static_cast<std::size_t>(m1)];
        }
        basic[k] = static_cast<double>(front_sum) / static_cast<double>(batch.front_gates);

        if (batch.ext_gates > 0) {
            i = 0;
            for (; i + 8 <= batch.ext_gates; i += 8) {
                const __m256i p0 = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(batch.ext_p0 + i));
                const __m256i p1 = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(batch.ext_p1 + i));
                const __m256i m0 = apply_swap8(p0, vpa, vpb);
                const __m256i m1 = apply_swap8(p1, vpa, vpb);
                const __m256i idx = _mm256_add_epi32(_mm256_mullo_epi32(m0, vn), m1);
                _mm256_storeu_si256(reinterpret_cast<__m256i*>(ext_scratch.data() + i),
                                    _mm256_i32gather_epi32(base, idx, 4));
            }
            for (; i < batch.ext_gates; ++i) {
                const int p0 = batch.ext_p0[i];
                const int p1 = batch.ext_p1[i];
                const int m0 = p0 == pa ? pb : (p0 == pb ? pa : p0);
                const int m1 = p1 == pa ? pb : (p1 == pb ? pa : p1);
                ext_scratch[i] =
                    base[static_cast<std::size_t>(m0) * static_cast<std::size_t>(n) +
                         static_cast<std::size_t>(m1)];
            }
            // FP weights in the original gate order — see the header's
            // determinism contract.
            double ext = 0.0;
            for (std::size_t g = 0; g < batch.ext_gates; ++g) {
                ext += batch.ext_weight[g] * static_cast<double>(ext_scratch[g]);
            }
            lookahead[k] = batch.extended_set_weight * ext / batch.ext_norm;
        } else {
            lookahead[k] = 0.0;
        }
    }
}

#endif  // QUBIKOS_SCORE_KERNEL_AVX2

}  // namespace

const char* simd_backend_name(simd_backend backend) {
    switch (backend) {
        case simd_backend::avx2:
            return "avx2";
        case simd_backend::scalar:
            break;
    }
    return "scalar";
}

simd_backend active_simd_backend() {
    return backend_state().load(std::memory_order_relaxed);
}

void force_simd_backend(simd_backend backend) {
    if (backend == simd_backend::avx2 && !avx2_supported()) backend = simd_backend::scalar;
    backend_state().store(backend, std::memory_order_relaxed);
}

void reset_simd_backend_from_env() {
    backend_state().store(resolve_backend_from_env(), std::memory_order_relaxed);
}

void score_candidates(const score_batch& batch, const edge* candidates, std::size_t count,
                      double* basic, double* lookahead,
                      std::vector<std::int32_t>& ext_scratch) {
    static_cast<void>(ext_scratch);
    if (count == 0) return;
#if QUBIKOS_SCORE_KERNEL_AVX2
    // The gather path needs a dense base; lazy providers score through
    // the scalar loop (their row cache is the win at that scale).
    if (active_simd_backend() == simd_backend::avx2 &&
        batch.dist->dense_data() != nullptr) {
        score_candidates_avx2(batch, candidates, count, basic, lookahead, ext_scratch);
        return;
    }
#endif
    score_candidates_scalar(batch, candidates, count, basic, lookahead);
}

}  // namespace qubikos::router
