#include "router/qmap.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <queue>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "circuit/dag.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "router/common.hpp"

namespace qubikos::router {

namespace {

/// Writes the in-progress stats through the caller's pointer (and into
/// the telemetry registry) on *every* exit path, including exceptions.
/// Previously stats were only assigned after emit.finish(), so an
/// early-exiting route left the caller's struct untouched and profile
/// tables showed zero-cost units.
struct qmap_stats_sink {
    qmap_stats* out;
    const qmap_stats& local;

    ~qmap_stats_sink() {
        if (out != nullptr) *out = local;
        if (obs::enabled()) {
            static const obs::metric_id routes = obs::counter("qmap.routes");
            static const obs::metric_id layers = obs::counter("qmap.layers");
            static const obs::metric_id astar = obs::counter("qmap.astar_solved_layers");
            static const obs::metric_id fallback = obs::counter("qmap.fallback_layers");
            static const obs::metric_id expanded = obs::counter("qmap.expanded_nodes");
            obs::add(routes);
            obs::add(layers, local.layers);
            obs::add(astar, local.astar_solved_layers);
            obs::add(fallback, local.fallback_layers);
            obs::add(expanded, local.expanded_nodes);
        }
    }
};

/// Packs a program->physical assignment into a hashable string key.
std::string pack_mapping(const mapping& m) {
    std::string key(static_cast<std::size_t>(m.num_program()) * 2, '\0');
    for (int q = 0; q < m.num_program(); ++q) {
        const int p = m.physical(q);
        key[static_cast<std::size_t>(q) * 2] = static_cast<char>(p & 0xff);
        key[static_cast<std::size_t>(q) * 2 + 1] = static_cast<char>((p >> 8) & 0xff);
    }
    return key;
}

/// Admissible heuristic, the max of two lower bounds: (a) one swap
/// improves the summed gate distance by at most 2, and (b) a single gate
/// at distance d needs at least d-1 swaps (a swap moves the pair's
/// distance by at most 1).
int admissible_h(const std::vector<std::pair<int, int>>& layer_pairs, const mapping& m,
                 const distance_provider& dist) {
    int total = 0;
    int worst = 0;
    for (const auto& [qa, qb] : layer_pairs) {
        const int need = std::max(0, dist(m.physical(qa), m.physical(qb)) - 1);
        total += need;
        worst = std::max(worst, need);
    }
    return std::max(worst, (total + 1) / 2);
}

double lookahead_h(const std::vector<std::pair<int, int>>& next_pairs, const mapping& m,
                   const distance_provider& dist, double weight) {
    if (next_pairs.empty() || weight <= 0.0) return 0.0;
    double total = 0.0;
    for (const auto& [qa, qb] : next_pairs) {
        total += std::max(0, dist(m.physical(qa), m.physical(qb)) - 1);
    }
    return weight * total / 2.0;
}

bool layer_satisfied(const std::vector<std::pair<int, int>>& layer_pairs, const mapping& m,
                     const graph& coupling) {
    for (const auto& [qa, qb] : layer_pairs) {
        if (!coupling.has_edge(m.physical(qa), m.physical(qb))) return false;
    }
    return true;
}

/// Swap candidates: edges incident to any unsatisfied gate operand.
std::vector<edge> layer_candidates(const std::vector<std::pair<int, int>>& layer_pairs,
                                   const mapping& m, const graph& coupling) {
    std::set<edge> out;
    for (const auto& [qa, qb] : layer_pairs) {
        if (coupling.has_edge(m.physical(qa), m.physical(qb))) continue;
        for (const int q : {qa, qb}) {
            const int p = m.physical(q);
            for (const int pn : coupling.neighbors(p)) out.insert(edge(p, pn));
        }
    }
    return {out.begin(), out.end()};
}

struct search_node {
    mapping state;
    int g = 0;
    int parent = -1;
    edge via;
};

/// A* for one layer; returns the swap sequence, or nullopt on node-cap.
std::optional<std::vector<edge>> astar_layer(const std::vector<std::pair<int, int>>& layer_pairs,
                                             const std::vector<std::pair<int, int>>& next_pairs,
                                             const mapping& start, const graph& coupling,
                                             const distance_provider& dist,
                                             const qmap_options& options,
                                             std::size_t* expanded) {
    std::vector<search_node> nodes;
    std::unordered_map<std::string, int> best_g;

    using queue_entry = std::pair<double, int>;  // (f, node index)
    std::priority_queue<queue_entry, std::vector<queue_entry>, std::greater<>> open;

    nodes.push_back({start, 0, -1, edge{}});
    best_g[pack_mapping(start)] = 0;
    open.emplace(admissible_h(layer_pairs, start, dist), 0);

    while (!open.empty()) {
        const auto [f, index] = open.top();
        open.pop();
        (void)f;
        const search_node current = nodes[static_cast<std::size_t>(index)];
        if (layer_satisfied(layer_pairs, current.state, coupling)) {
            std::vector<edge> swaps;
            for (int at = index; nodes[static_cast<std::size_t>(at)].parent != -1;
                 at = nodes[static_cast<std::size_t>(at)].parent) {
                swaps.push_back(nodes[static_cast<std::size_t>(at)].via);
            }
            std::reverse(swaps.begin(), swaps.end());
            return swaps;
        }
        if (nodes.size() > options.node_limit) return std::nullopt;
        ++(*expanded);

        for (const auto& cand : layer_candidates(layer_pairs, current.state, coupling)) {
            mapping next = current.state;
            next.swap_physical(cand.a, cand.b);
            const int next_g = current.g + 1;
            const std::string key = pack_mapping(next);
            const auto it = best_g.find(key);
            if (it != best_g.end() && it->second <= next_g) continue;
            best_g[key] = next_g;
            const double next_f =
                next_g + admissible_h(layer_pairs, next, dist) +
                lookahead_h(next_pairs, next, dist, options.lookahead_weight);
            nodes.push_back({std::move(next), next_g, index, cand});
            open.emplace(next_f, static_cast<int>(nodes.size()) - 1);
        }
    }
    return std::nullopt;
}

/// Greedy fallback: best single swap by heuristic until the layer is
/// satisfied; forced shortest-path routing breaks plateaus.
std::vector<edge> greedy_layer(const std::vector<std::pair<int, int>>& layer_pairs,
                               mapping state, const graph& coupling,
                               const distance_provider& dist) {
    std::vector<edge> swaps;
    int stagnation = 0;
    const std::size_t hard_cap =
        16 * (static_cast<std::size_t>(dist.diameter()) + layer_pairs.size() + 4);
    while (!layer_satisfied(layer_pairs, state, coupling)) {
        if (swaps.size() > hard_cap) {
            // Oscillation guard: finish by force-routing every remaining
            // gate along shortest paths.
            for (const auto& [qa, qb] : layer_pairs) {
                int pa = state.physical(qa);
                const int pb = state.physical(qb);
                while (!coupling.has_edge(pa, pb)) {
                    for (const int pn : coupling.neighbors(pa)) {
                        if (dist(pn, pb) < dist(pa, pb)) {
                            swaps.emplace_back(pa, pn);
                            state.swap_physical(pa, pn);
                            pa = pn;
                            break;
                        }
                    }
                }
            }
            break;
        }
        const auto candidates = layer_candidates(layer_pairs, state, coupling);
        int best_h = std::numeric_limits<int>::max();
        edge best;
        for (const auto& cand : candidates) {
            mapping next = state;
            next.swap_physical(cand.a, cand.b);
            const int h = admissible_h(layer_pairs, next, dist);
            if (h < best_h) {
                best_h = h;
                best = cand;
            }
        }
        const int current_h = admissible_h(layer_pairs, state, dist);
        if (best_h >= current_h) ++stagnation;
        if (stagnation > 4) {
            // Force the first unsatisfied gate via shortest-path swaps.
            for (const auto& [qa, qb] : layer_pairs) {
                int pa = state.physical(qa);
                const int pb = state.physical(qb);
                while (!coupling.has_edge(pa, pb)) {
                    for (const int pn : coupling.neighbors(pa)) {
                        if (dist(pn, pb) < dist(pa, pb)) {
                            swaps.emplace_back(pa, pn);
                            state.swap_physical(pa, pn);
                            pa = pn;
                            break;
                        }
                    }
                }
            }
            stagnation = 0;
            continue;
        }
        swaps.push_back(best);
        state.swap_physical(best.a, best.b);
    }
    return swaps;
}

}  // namespace

routed_circuit route_qmap(const circuit& logical, const graph& coupling,
                          const qmap_options& options, qmap_stats* stats) {
    const distance_provider dist(coupling);
    return route_qmap(logical, coupling, dist, options, stats);
}

routed_circuit route_qmap(const circuit& logical, const graph& coupling,
                          const distance_provider& dist, const qmap_options& options,
                          qmap_stats* stats) {
    return route_qmap_with_initial(
        logical, coupling, dist,
        greedy_placement(logical, coupling, dist, options.placement_window), options, stats);
}

routed_circuit route_qmap_with_initial(const circuit& logical, const graph& coupling,
                                       const mapping& initial, const qmap_options& options,
                                       qmap_stats* stats) {
    const distance_provider dist(coupling);
    return route_qmap_with_initial(logical, coupling, dist, initial, options, stats);
}

routed_circuit route_qmap_with_initial(const circuit& logical, const graph& coupling,
                                       const distance_provider& dist, const mapping& initial,
                                       const qmap_options& options, qmap_stats* stats) {
    const gate_dag dag(logical);

    // Dependency layers (ASAP levels).
    const auto levels = dag.asap_levels();
    const int num_layers =
        dag.num_nodes() == 0 ? 0 : *std::max_element(levels.begin(), levels.end()) + 1;
    std::vector<std::vector<int>> layers(static_cast<std::size_t>(num_layers));
    for (int node = 0; node < dag.num_nodes(); ++node) {
        layers[static_cast<std::size_t>(levels[static_cast<std::size_t>(node)])].push_back(node);
    }

    const auto layer_pairs = [&](int layer_index) {
        std::vector<std::pair<int, int>> pairs;
        if (layer_index < 0 || layer_index >= num_layers) return pairs;
        for (const int node : layers[static_cast<std::size_t>(layer_index)]) {
            const gate& g = dag.node_gate(node);
            pairs.emplace_back(g.q0, g.q1);
        }
        return pairs;
    };

    mapping current = initial;
    emission_buffer emit(logical, dag, coupling.num_vertices());
    dag_frontier frontier(dag);
    const obs::trace_span span("qmap.route");
    qmap_stats local_stats;
    const qmap_stats_sink sink{stats, local_stats};
    local_stats.layers = static_cast<std::size_t>(num_layers);

    for (int layer = 0; layer < num_layers; ++layer) {
        const auto pairs = layer_pairs(layer);
        const auto next_pairs = layer_pairs(layer + 1);

        std::vector<edge> swaps;
        if (!layer_satisfied(pairs, current, coupling)) {
            auto found = astar_layer(pairs, next_pairs, current, coupling, dist, options,
                                     &local_stats.expanded_nodes);
            if (found.has_value()) {
                ++local_stats.astar_solved_layers;
                swaps = std::move(*found);
            } else {
                ++local_stats.fallback_layers;
                swaps = greedy_layer(pairs, current, coupling, dist);
            }
        } else {
            ++local_stats.astar_solved_layers;
        }

        // Replay the swap sequence, executing layer gates eagerly as they
        // become adjacent (they are dependency-independent, so early
        // execution is always valid). Any gate still stranded afterwards
        // is force-routed — this keeps the result valid even when the
        // fallback returned an incomplete sequence.
        std::vector<int> pending = layers[static_cast<std::size_t>(layer)];
        const auto execute_adjacent = [&]() {
            for (std::size_t i = 0; i < pending.size();) {
                const gate& g = dag.node_gate(pending[i]);
                if (coupling.has_edge(current.physical(g.q0), current.physical(g.q1))) {
                    emit.execute_two_qubit(pending[i], current);
                    frontier.execute(pending[i]);
                    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
                } else {
                    ++i;
                }
            }
        };
        execute_adjacent();
        for (const auto& s : swaps) {
            if (pending.empty()) break;
            emit.emit_swap(s.a, s.b);
            current.swap_physical(s.a, s.b);
            execute_adjacent();
        }
        while (!pending.empty()) {
            force_route(pending.front(), dag, coupling, dist, current, emit);
            execute_adjacent();
        }
    }

    emit.finish(current);

    routed_circuit out;
    out.initial = initial;
    out.physical = emit.take();
    return out;
}

}  // namespace qubikos::router
