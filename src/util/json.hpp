// Minimal JSON value model, writer and parser.
//
// Used to serialize benchmark-suite metadata (optimal swap counts, initial
// mappings, generator parameters) next to the QASM files, and to read it
// back in the evaluation harness. Covers the JSON subset the suite format
// needs: null, bool, number, string, array, object; no comments, no
// non-finite numbers.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace qubikos::json {

class value;

// The kind enum is declared before the container aliases: gcc's -Wshadow
// otherwise reports the scoped enumerators as shadowing the aliases.
enum class kind { null, boolean, number, string, array, object };

using array = std::vector<value>;
/// std::map keeps key order deterministic, which keeps emitted files diffable.
using object = std::map<std::string, value>;

/// Error thrown by the parser and by mistyped accessors.
class error : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

class value {
public:
    value() : kind_(kind::null) {}
    value(std::nullptr_t) : kind_(kind::null) {}
    value(bool b) : kind_(kind::boolean), bool_(b) {}
    value(double d) : kind_(kind::number), num_(d) {}
    value(int i) : kind_(kind::number), num_(i) {}
    value(std::int64_t i) : kind_(kind::number), num_(static_cast<double>(i)) {}
    value(std::size_t i) : kind_(kind::number), num_(static_cast<double>(i)) {}
    value(const char* s) : kind_(kind::string), str_(s) {}
    value(std::string s) : kind_(kind::string), str_(std::move(s)) {}
    value(array a) : kind_(kind::array), arr_(std::make_shared<array>(std::move(a))) {}
    value(object o) : kind_(kind::object), obj_(std::make_shared<object>(std::move(o))) {}

    [[nodiscard]] kind type() const { return kind_; }
    [[nodiscard]] bool is_null() const { return kind_ == kind::null; }

    [[nodiscard]] bool as_bool() const {
        require(kind::boolean);
        return bool_;
    }
    [[nodiscard]] double as_number() const {
        require(kind::number);
        return num_;
    }
    [[nodiscard]] int as_int() const { return static_cast<int>(as_number()); }
    [[nodiscard]] const std::string& as_string() const {
        require(kind::string);
        return str_;
    }
    [[nodiscard]] const array& as_array() const {
        require(kind::array);
        return *arr_;
    }
    [[nodiscard]] const object& as_object() const {
        require(kind::object);
        return *obj_;
    }

    /// Object member access; throws if missing or not an object.
    [[nodiscard]] const value& at(const std::string& key) const;
    /// True when this is an object containing key.
    [[nodiscard]] bool contains(const std::string& key) const;

    /// Serialize. indent < 0 emits compact one-line JSON.
    [[nodiscard]] std::string dump(int indent = -1) const;

private:
    void require(kind k) const {
        if (kind_ != k) throw error("json: wrong type access");
    }
    void write(std::string& out, int indent, int depth) const;

    kind kind_;
    bool bool_ = false;
    double num_ = 0;
    std::string str_;
    std::shared_ptr<array> arr_;
    std::shared_ptr<object> obj_;
};

/// Parse a complete JSON document; trailing garbage is an error.
[[nodiscard]] value parse(const std::string& text);

/// Appends `s` to `out` as a JSON string literal (quotes included) —
/// THE escaping routine of the codebase. value::dump, the serve
/// response emitter and the trace flusher all funnel through here so a
/// control character or quote can never reach an output stream raw.
void append_quoted(std::string& out, const std::string& s);

/// Convenience form of append_quoted.
[[nodiscard]] std::string quoted(const std::string& s);

}  // namespace qubikos::json
