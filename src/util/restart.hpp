// Restart-budget schedules shared by the CDCL solver and the SABRE
// portfolio trial scheduler.
//
// luby() is the classic Luby-Sinclair-Zuckerman universal restart
// sequence (1,1,2,1,1,2,4,1,...): scaling a base budget by luby(i) for
// the i-th attempt is within a log factor of the optimal restart policy
// for any run-time distribution — which is exactly the regime a
// diversified-seed trial portfolio lives in (most trials are doomed,
// a few are great, and nobody knows which in advance).
#pragma once

#include <cstdint>

namespace qubikos {

/// i-th element (0-based) of the Luby sequence 1,1,2,1,1,2,4,1,1,2,...
constexpr std::uint64_t luby(std::uint64_t i) {
    // Find the finite subsequence containing index i and its position.
    std::uint64_t size = 1;
    std::uint64_t seq = 0;
    while (size < i + 1) {
        ++seq;
        size = 2 * size + 1;
    }
    while (size - 1 != i) {
        size = (size - 1) / 2;
        --seq;
        i = i % size;
    }
    return std::uint64_t{1} << seq;
}

}  // namespace qubikos
