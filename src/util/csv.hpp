// CSV emission for the evaluation harness.
//
// Every bench writes its raw measurements as CSV next to the printed table
// so results can be re-plotted without re-running the sweep.
#pragma once

#include <string>
#include <vector>

namespace qubikos::csv {

/// Rectangular CSV document: one header row plus data rows.
class writer {
public:
    explicit writer(std::vector<std::string> header);

    /// Appends a row; throws std::invalid_argument on width mismatch.
    void add_row(std::vector<std::string> row);

    /// Convenience: formats arithmetic values with to_string.
    template <typename... Ts>
    void add(const Ts&... cells) {
        add_row({format(cells)...});
    }

    [[nodiscard]] std::string str() const;
    void save(const std::string& path) const;
    [[nodiscard]] std::size_t rows() const { return rows_.size(); }

private:
    static std::string format(const std::string& s) { return s; }
    static std::string format(const char* s) { return s; }
    static std::string format(double d);
    static std::string format(int i) { return std::to_string(i); }
    static std::string format(long i) { return std::to_string(i); }
    static std::string format(long long i) { return std::to_string(i); }
    static std::string format(std::size_t i) { return std::to_string(i); }

    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// Quotes a cell per RFC 4180 when it contains separators/quotes/newlines.
[[nodiscard]] std::string escape(const std::string& cell);

}  // namespace qubikos::csv
