// Fixed-size thread pool for embarrassingly parallel index loops.
//
// The trial engine (SABRE restarts) and the evaluation harness
// (tool x instance grid) both consist of independent units of work whose
// results are reduced deterministically afterwards, so a plain
// parallel_for over an index range — no work stealing, no futures — is
// all the concurrency machinery this library needs. No external deps.
//
// Sizing: an explicit request wins; a request of 0 means "auto", which
// reads the QUBIKOS_THREADS environment variable and falls back to
// std::thread::hardware_concurrency(). A pool of size 1 (or a
// single-core machine) spawns no threads at all: parallel_for runs the
// loop inline on the calling thread, so single-threaded behaviour is
// exactly the serial code path.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qubikos {

class thread_pool {
public:
    /// `threads` == 0 resolves via resolve_threads(); >= 1 is taken as-is.
    explicit thread_pool(std::size_t threads = 0);
    ~thread_pool();

    thread_pool(const thread_pool&) = delete;
    thread_pool& operator=(const thread_pool&) = delete;

    /// Number of threads that execute work (workers + the calling
    /// thread); always >= 1.
    [[nodiscard]] std::size_t size() const { return size_; }

    /// Applies fn(i) for every i in [begin, end), distributing indices
    /// dynamically over the pool; the calling thread participates.
    /// Blocks until every index is done. If any fn throws, the first
    /// exception is rethrown here after the loop drains.
    void parallel_for(std::size_t begin, std::size_t end,
                      const std::function<void(std::size_t)>& fn);

    /// 0 -> QUBIKOS_THREADS env var if set and positive, else
    /// hardware_concurrency() (>= 1); n > 0 -> n.
    [[nodiscard]] static std::size_t resolve_threads(std::size_t requested);

private:
    struct job;

    void worker_loop();

    std::size_t size_ = 1;
    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable work_ready_;
    std::condition_variable work_done_;
    job* job_ = nullptr;
    std::uint64_t generation_ = 0;
    bool stop_ = false;
};

}  // namespace qubikos
