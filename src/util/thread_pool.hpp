// Persistent fixed-size thread pool for embarrassingly parallel index
// loops.
//
// The trial engine (SABRE restarts), the evaluation harness (tool x
// instance grid) and the campaign worker all consist of independent
// units of work whose results are reduced deterministically afterwards,
// so a plain parallel_for over an index range — no work stealing, no
// futures — is all the concurrency machinery this library needs. No
// external deps.
//
// Two usage modes:
//   - thread_pool::shared() is the process-wide pool every hot path
//     dispatches onto. It is created once (sized by QUBIKOS_THREADS /
//     hardware_concurrency) and reused for the life of the process, so a
//     route_sabre call costs one mutex lock + wakeup, not a pool's worth
//     of thread spawns. Callers cap per-job concurrency with the
//     max_workers argument of parallel_for_slots; requests beyond the
//     pool's size are clamped to it (oversubscribing cores never helps).
//   - Explicitly constructed pools keep the old semantics (an owned set
//     of worker threads of exactly the requested size) for tests and
//     special cases.
//
// Jobs may be published concurrently (including nested parallel_for from
// inside a worker): each job tracks its own cursor, participants and
// completion, and the publishing thread always participates, so nesting
// cannot deadlock even when every worker is busy.
//
// Sizing: an explicit request wins; a request of 0 means "auto", which
// reads the QUBIKOS_THREADS environment variable and falls back to
// std::thread::hardware_concurrency(). A pool of size 1 (or a
// single-core machine) spawns no threads at all: parallel_for runs the
// loop inline on the calling thread, so single-threaded behaviour is
// exactly the serial code path.
//
// Error handling: the first exception a job function throws is rethrown
// from the publishing call after the job drains, and it *cancels* the
// job — indices not yet claimed when the exception happened are never
// run.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qubikos {

class thread_pool {
public:
    /// `threads` == 0 resolves via resolve_threads(); >= 1 is taken as-is.
    explicit thread_pool(std::size_t threads = 0);
    ~thread_pool();

    thread_pool(const thread_pool&) = delete;
    thread_pool& operator=(const thread_pool&) = delete;

    /// Number of threads that execute work (workers + the calling
    /// thread); always >= 1.
    [[nodiscard]] std::size_t size() const { return size_; }

    /// Applies fn(i) for every i in [begin, end), distributing indices
    /// dynamically over the pool; the calling thread participates.
    /// Blocks until the job drains. If any fn throws, the first
    /// exception is rethrown here and the remaining unclaimed indices
    /// are skipped (the job is cancelled).
    void parallel_for(std::size_t begin, std::size_t end,
                      const std::function<void(std::size_t)>& fn);

    /// Width-capped, slot-aware, chunked variant: at most `max_workers`
    /// threads (including the caller) execute the job, each identified
    /// by a stable slot index in [0, effective_width) passed as fn's
    /// second argument — the hook per-thread arenas key off. Indices are
    /// claimed `chunk` at a time (0 = auto: range / (width * 8), at
    /// least 1), so fine-grained loops pay one atomic per chunk instead
    /// of one per index. A thread's claims are monotonically increasing,
    /// so per-slot reductions that scan in claim order see ascending
    /// indices. Exception semantics match parallel_for.
    void parallel_for_slots(std::size_t begin, std::size_t end, std::size_t max_workers,
                            const std::function<void(std::size_t, std::size_t)>& fn,
                            std::size_t chunk = 1);

    /// 0 -> QUBIKOS_THREADS env var if set and positive, else
    /// hardware_concurrency() (>= 1); n > 0 -> n.
    [[nodiscard]] static std::size_t resolve_threads(std::size_t requested);

    /// The process-wide pool, created on first use with auto sizing
    /// (QUBIKOS_THREADS read once, at that moment). All library hot
    /// paths dispatch here so thread creation is a one-time cost.
    [[nodiscard]] static thread_pool& shared();

private:
    struct job;

    void worker_loop();
    void run_job(job& j);

    std::size_t size_ = 1;
    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable work_ready_;
    std::condition_variable work_done_;
    /// Published jobs that may still accept participants. A job is
    /// removed once exhausted, cancelled, or fully staffed; the entry is
    /// non-owning (jobs live on their publisher's stack).
    std::vector<job*> jobs_;
    bool stop_ = false;
};

}  // namespace qubikos
