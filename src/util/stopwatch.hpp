// Wall-clock stopwatch used by the evaluation harness to report runtimes.
#pragma once

#include <chrono>

namespace qubikos {

class stopwatch {
public:
    stopwatch() : start_(clock::now()) {}

    void reset() { start_ = clock::now(); }

    [[nodiscard]] double seconds() const {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

    [[nodiscard]] double millis() const { return seconds() * 1e3; }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

}  // namespace qubikos
