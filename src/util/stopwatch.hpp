// Stopwatches used by the evaluation harness to report runtimes.
//
// Two clocks, two semantics:
//   stopwatch      - wall-clock (steady_clock); what a user experiences.
//   cpu_stopwatch  - per-thread CPU time; what the work itself costs.
//
// Per-record timings taken inside a parallel loop must use cpu_stopwatch:
// wall time inflates under contention (a record "takes" longer merely
// because sibling records share the cores), while thread-CPU time of a
// serial tool invocation is the same whether the surrounding grid runs on
// 1 thread or 32 — i.e. serial timing semantics under parallel execution.
#pragma once

#include <chrono>

#if !defined(_WIN32)
#include <ctime>
#endif

namespace qubikos {

class stopwatch {
public:
    stopwatch() : start_(clock::now()) {}

    void reset() { start_ = clock::now(); }

    [[nodiscard]] double seconds() const {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

    [[nodiscard]] double millis() const { return seconds() * 1e3; }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

/// CPU time consumed by the calling thread since construction. Must be
/// read on the same thread that constructed it. Falls back to wall time
/// on platforms without a per-thread CPU clock.
class cpu_stopwatch {
public:
    cpu_stopwatch() : start_(now()) {}

    void reset() { start_ = now(); }

    [[nodiscard]] double seconds() const { return now() - start_; }

private:
    [[nodiscard]] static double now() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
        timespec ts{};
        if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
            return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
        }
#endif
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now().time_since_epoch())
            .count();
    }

    double start_;
};

}  // namespace qubikos
