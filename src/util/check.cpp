#include "util/check.hpp"

#include <cstdio>
#include <cstdlib>

namespace qubikos::check_detail {

std::string format_failure(const char* expr, const char* file, int line, const char* function,
                           const std::string& message) {
    std::string out = "qubikos: contract violated: ";
    out += expr;
    out += "\n  at ";
    out += file;
    out += ":";
    out += std::to_string(line);
    out += " in ";
    out += function;
    if (!message.empty()) {
        out += "\n  ";
        out += message;
    }
    out += "\n";
    return out;
}

void fail(const char* expr, const char* file, int line, const char* function,
          const std::string& message) {
    const std::string report = format_failure(expr, file, line, function, message);
    std::fwrite(report.data(), 1, report.size(), stderr);
    std::fflush(stderr);
    std::abort();
}

}  // namespace qubikos::check_detail
