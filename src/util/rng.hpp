// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (benchmark generation, router
// trials, placement annealing) draw from this engine so that a (seed,
// parameters) pair reproduces a benchmark bit-for-bit across platforms.
// std::mt19937 + std::uniform_int_distribution are avoided because the
// distribution implementations differ between standard libraries.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

namespace qubikos {

/// xoshiro256** engine seeded via splitmix64. Satisfies
/// UniformRandomBitGenerator.
class rng {
public:
    using result_type = std::uint64_t;

    explicit rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    void reseed(std::uint64_t seed) {
        // splitmix64 stream expands one word of seed into the full state.
        for (auto& word : state_) {
            seed += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }

    result_type operator()() {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform integer in [0, bound). bound must be positive.
    std::uint64_t below(std::uint64_t bound) {
        if (bound == 0) throw std::invalid_argument("rng::below: bound == 0");
        // Debiased modulo (Lemire-style rejection).
        const std::uint64_t threshold = (~bound + 1) % bound;
        for (;;) {
            const std::uint64_t r = (*this)();
            if (r >= threshold) return r % bound;
        }
    }

    /// Uniform integer in [lo, hi] inclusive.
    int range(int lo, int hi) {
        if (lo > hi) throw std::invalid_argument("rng::range: lo > hi");
        return lo + static_cast<int>(below(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /// Uniform double in [0, 1).
    double uniform() {
        return static_cast<double>((*this)() >> 11) * (1.0 / 9007199254740992.0);
    }

    bool chance(double p) { return uniform() < p; }

    /// Uniformly chosen element of a non-empty vector.
    template <typename T>
    const T& pick(const std::vector<T>& items) {
        if (items.empty()) throw std::invalid_argument("rng::pick: empty");
        return items[below(items.size())];
    }

    /// Fisher-Yates shuffle.
    template <typename T>
    void shuffle(std::vector<T>& items) {
        for (std::size_t i = items.size(); i > 1; --i) {
            std::swap(items[i - 1], items[below(i)]);
        }
    }

    /// Random permutation of 0..n-1.
    std::vector<int> permutation(int n) {
        std::vector<int> p(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) p[static_cast<std::size_t>(i)] = i;
        shuffle(p);
        return p;
    }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4]{};
};

}  // namespace qubikos
