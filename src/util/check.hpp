// Contract-checking macros for the determinism and legality invariants
// the library promises (see docs/determinism.md).
//
//   QUBIKOS_ASSERT(cond)            plain contract check
//   QUBIKOS_CHECK_MSG(cond, msg)    contract check with streamed context:
//                                   QUBIKOS_CHECK_MSG(a == b, "p=" << p)
//   QUBIKOS_DCHECK(cond)            heavyweight check (full-structure
//                                   scans); only ever on in !NDEBUG builds
//
// All three abort with context (expression, file:line, function, message)
// on violation, and all three are FULLY elided — the condition is not
// evaluated — unless checks are enabled. Enablement:
//
//   QUBIKOS_ENABLE_CHECKS=1   force-on  (the CI Debug+checks leg)
//   QUBIKOS_ENABLE_CHECKS=0   force-off
//   (undefined)               follow the build type: on iff !NDEBUG
//
// QUBIKOS_DCHECK additionally requires !NDEBUG: a Release+checks build
// runs the O(1)/O(log n) boundary contracts but not the O(n) scans.
//
// Contract failures are bugs, not runtime errors: the handler writes the
// context to stderr and aborts, so a fleet worker dies loudly at the
// violation site instead of writing a wrong record that a campaign merge
// would then trust.
#pragma once

#include <sstream>
#include <string>

namespace qubikos::check_detail {

/// Renders the failure report exactly as the abort path prints it.
/// Factored out so tests can assert on message capture without dying.
[[nodiscard]] std::string format_failure(const char* expr, const char* file, int line,
                                         const char* function, const std::string& message);

/// Prints the formatted report to stderr and aborts.
[[noreturn]] void fail(const char* expr, const char* file, int line, const char* function,
                       const std::string& message);

}  // namespace qubikos::check_detail

#if !defined(QUBIKOS_ENABLE_CHECKS)
#if defined(NDEBUG)
#define QUBIKOS_ENABLE_CHECKS 0
#else
#define QUBIKOS_ENABLE_CHECKS 1
#endif
#endif

namespace qubikos {
/// Compile-time visibility of the gate, so tests (and callers priming
/// expensive check inputs) can branch on it.
inline constexpr bool checks_enabled = QUBIKOS_ENABLE_CHECKS != 0;
#if !defined(NDEBUG)
inline constexpr bool dchecks_enabled = checks_enabled;
#else
inline constexpr bool dchecks_enabled = false;
#endif
}  // namespace qubikos

#if QUBIKOS_ENABLE_CHECKS

#define QUBIKOS_ASSERT(cond)                                                              \
    do {                                                                                  \
        if (!(cond)) {                                                                    \
            ::qubikos::check_detail::fail(#cond, __FILE__, __LINE__, __func__, {});       \
        }                                                                                 \
    } while (false)

#define QUBIKOS_CHECK_MSG(cond, msg)                                                      \
    do {                                                                                  \
        if (!(cond)) {                                                                    \
            std::ostringstream qubikos_check_stream_;                                     \
            qubikos_check_stream_ << msg; /* NOLINT(bugprone-macro-parentheses) */        \
            ::qubikos::check_detail::fail(#cond, __FILE__, __LINE__, __func__,            \
                                          qubikos_check_stream_.str());                   \
        }                                                                                 \
    } while (false)

#if !defined(NDEBUG)
#define QUBIKOS_DCHECK(cond) QUBIKOS_ASSERT(cond)
#else
#define QUBIKOS_DCHECK(cond) ((void)0)
#endif

#else  // checks disabled: conditions are never evaluated

#define QUBIKOS_ASSERT(cond) ((void)0)
#define QUBIKOS_CHECK_MSG(cond, msg) ((void)0)
#define QUBIKOS_DCHECK(cond) ((void)0)

#endif
