#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>

#include "obs/obs.hpp"
#include "obs/trace.hpp"

namespace qubikos {

namespace {

obs::metric_id pool_chunks_metric() {
    static const obs::metric_id id = obs::counter("pool.chunks_claimed");
    return id;
}

obs::metric_id pool_jobs_metric() {
    static const obs::metric_id id = obs::counter("pool.jobs");
    return id;
}

obs::timer_id pool_idle_metric() {
    static const obs::timer_id id = obs::timer("pool.idle");
    return id;
}

std::uint64_t mono_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

}  // namespace

/// One parallel_for invocation: a shared chunked index cursor plus
/// participation bookkeeping. Participants pull chunks with fetch_add
/// until the range is exhausted or the job is cancelled; the last worker
/// to leave wakes the waiting publisher. `joined` and `active_workers`
/// are guarded by the pool mutex (participation decisions happen under
/// the lock anyway); the cursor and cancellation flag are lock-free so
/// the steady-state claim path costs one atomic add.
struct thread_pool::job {
    std::atomic<std::size_t> next;
    std::size_t end;
    std::size_t chunk;
    const std::function<void(std::size_t, std::size_t)>* fn;
    std::size_t max_slots;
    std::size_t joined = 0;          // participants so far (slot source)
    std::size_t active_workers = 0;  // pool workers currently inside run()
    std::atomic<bool> cancelled{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;

    job(std::size_t begin, std::size_t end_, std::size_t chunk_, std::size_t max_slots_,
        const std::function<void(std::size_t, std::size_t)>* fn_)
        : next(begin), end(end_), chunk(chunk_), fn(fn_), max_slots(max_slots_) {}

    [[nodiscard]] bool joinable() const {
        return joined < max_slots && !cancelled.load(std::memory_order_relaxed) &&
               next.load(std::memory_order_relaxed) < end;
    }

    void run(std::size_t slot) {
        while (!cancelled.load(std::memory_order_relaxed)) {
            const std::size_t start = next.fetch_add(chunk, std::memory_order_relaxed);
            if (start >= end) return;
            obs::add(pool_chunks_metric());
            const std::size_t stop = std::min(end, start + chunk);
            for (std::size_t i = start; i < stop; ++i) {
                // Cancellation is checked before every index so a failed
                // job stops quickly even mid-chunk.
                if (cancelled.load(std::memory_order_relaxed)) return;
                try {
                    (*fn)(i, slot);
                } catch (...) {
                    {
                        const std::lock_guard<std::mutex> lock(error_mutex);
                        if (!first_error) first_error = std::current_exception();
                    }
                    cancelled.store(true, std::memory_order_relaxed);
                    return;
                }
            }
        }
    }
};

std::size_t thread_pool::resolve_threads(std::size_t requested) {
    if (requested > 0) return requested;
    if (const char* env = std::getenv("QUBIKOS_THREADS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed > 0) return static_cast<std::size_t>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

thread_pool& thread_pool::shared() {
    static thread_pool pool(0);
    return pool;
}

thread_pool::thread_pool(std::size_t threads) : size_(resolve_threads(threads)) {
    // size_ == 1 keeps everything inline on the calling thread.
    workers_.reserve(size_ > 1 ? size_ - 1 : 0);
    for (std::size_t i = 1; i < size_; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

thread_pool::~thread_pool() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    work_ready_.notify_all();
    for (auto& w : workers_) w.join();
}

void thread_pool::worker_loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        job* j = nullptr;
        // Time spent blocked waiting for work; published per wakeup so
        // `pool.idle.ns / pool.idle.calls` reads as mean wait.
        const bool timed = obs::enabled();
        const std::uint64_t wait_start = timed ? mono_ns() : 0;
        work_ready_.wait(lock, [&] {
            if (stop_) return true;
            // Drop stale entries while scanning so fully claimed or
            // cancelled jobs don't keep waking workers.
            for (std::size_t k = 0; k < jobs_.size();) {
                if (jobs_[k]->joinable()) {
                    j = jobs_[k];
                    return true;
                }
                jobs_[k] = jobs_.back();
                jobs_.pop_back();
            }
            return false;
        });
        if (timed) {
            const obs::timer_id idle = pool_idle_metric();
            obs::add(idle.ns, mono_ns() - wait_start);
            obs::add(idle.calls, 1);
        }
        if (stop_) return;
        const std::size_t slot = j->joined++;
        ++j->active_workers;
        lock.unlock();
        j->run(slot);
        lock.lock();
        if (--j->active_workers == 0) {
            // The publisher may be waiting on this job; predicate recheck
            // filters wakeups meant for other jobs.
            work_done_.notify_all();
        }
    }
}

void thread_pool::run_job(job& j) {
    obs::add(pool_jobs_metric());
    const obs::trace_span span("pool.job");
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        j.joined = 1;  // the caller takes slot 0
        jobs_.push_back(&j);
    }
    work_ready_.notify_all();

    j.run(0);  // The caller participates.

    {
        std::unique_lock<std::mutex> lock(mutex_);
        // No new workers may join; wait out the active ones.
        const auto it = std::find(jobs_.begin(), jobs_.end(), &j);
        if (it != jobs_.end()) {
            *it = jobs_.back();
            jobs_.pop_back();
        }
        work_done_.wait(lock, [&j] { return j.active_workers == 0; });
    }
    if (j.first_error) std::rethrow_exception(j.first_error);
}

void thread_pool::parallel_for_slots(std::size_t begin, std::size_t end,
                                     std::size_t max_workers,
                                     const std::function<void(std::size_t, std::size_t)>& fn,
                                     std::size_t chunk) {
    if (begin >= end) return;
    const std::size_t range = end - begin;
    const std::size_t width = std::min({max_workers == 0 ? size_ : max_workers, size_, range});
    if (chunk == 0) chunk = std::max<std::size_t>(1, range / (std::max<std::size_t>(width, 1) * 8));
    if (width <= 1 || range == 1) {
        for (std::size_t i = begin; i < end; ++i) fn(i, 0);
        return;
    }
    job j(begin, end, chunk, width, &fn);
    run_job(j);
}

void thread_pool::parallel_for(std::size_t begin, std::size_t end,
                               const std::function<void(std::size_t)>& fn) {
    if (begin >= end) return;
    if (size_ == 1 || end - begin == 1) {
        for (std::size_t i = begin; i < end; ++i) fn(i);
        return;
    }
    const std::function<void(std::size_t, std::size_t)> slotted =
        [&fn](std::size_t i, std::size_t) { fn(i); };
    job j(begin, end, /*chunk=*/1, size_, &slotted);
    run_job(j);
}

}  // namespace qubikos
