#include "util/thread_pool.hpp"

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <exception>

namespace qubikos {

/// One parallel_for invocation: a shared index cursor plus completion
/// bookkeeping. Participants pull indices with fetch_add until the range
/// is exhausted; the last worker to leave wakes the waiting caller.
struct thread_pool::job {
    std::atomic<std::size_t> next;
    std::size_t end;
    const std::function<void(std::size_t)>* fn;
    std::atomic<std::size_t> active_workers{0};
    std::exception_ptr first_error;
    std::mutex error_mutex;

    job(std::size_t begin, std::size_t end_, const std::function<void(std::size_t)>* fn_)
        : next(begin), end(end_), fn(fn_) {}

    void run() {
        for (;;) {
            const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= end) return;
            try {
                (*fn)(i);
            } catch (...) {
                const std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error) first_error = std::current_exception();
            }
        }
    }
};

std::size_t thread_pool::resolve_threads(std::size_t requested) {
    if (requested > 0) return requested;
    if (const char* env = std::getenv("QUBIKOS_THREADS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed > 0) return static_cast<std::size_t>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

thread_pool::thread_pool(std::size_t threads) : size_(resolve_threads(threads)) {
    // size_ == 1 keeps everything inline on the calling thread.
    workers_.reserve(size_ > 1 ? size_ - 1 : 0);
    for (std::size_t i = 1; i < size_; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

thread_pool::~thread_pool() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    work_ready_.notify_all();
    for (auto& w : workers_) w.join();
}

void thread_pool::worker_loop() {
    // Each published job carries a generation number so a worker joins a
    // given job at most once (the pointer alone could be reused by a
    // later stack-allocated job at the same address).
    std::uint64_t last_seen = 0;
    for (;;) {
        job* j = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_ready_.wait(lock, [&] {
                return stop_ || (job_ != nullptr && generation_ != last_seen);
            });
            if (stop_) return;
            last_seen = generation_;
            j = job_;
            j->active_workers.fetch_add(1, std::memory_order_relaxed);
        }
        j->run();
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            // Wake the caller only when it is already waiting (job_
            // cleared) and this was the last active worker.
            if (j->active_workers.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
                job_ == nullptr) {
                work_done_.notify_all();
            }
        }
    }
}

void thread_pool::parallel_for(std::size_t begin, std::size_t end,
                               const std::function<void(std::size_t)>& fn) {
    if (begin >= end) return;
    if (size_ == 1 || end - begin == 1) {
        for (std::size_t i = begin; i < end; ++i) fn(i);
        return;
    }

    job j(begin, end, &fn);
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        job_ = &j;
        ++generation_;
    }
    work_ready_.notify_all();

    j.run();  // The caller participates.

    {
        std::unique_lock<std::mutex> lock(mutex_);
        job_ = nullptr;  // No new workers may join; wait out the active ones.
        work_done_.wait(lock, [&j] {
            return j.active_workers.load(std::memory_order_acquire) == 0;
        });
    }
    if (j.first_error) std::rethrow_exception(j.first_error);
}

}  // namespace qubikos
