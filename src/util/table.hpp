// Aligned ASCII table printing for bench output.
//
// The figure/table benches print paper-style tables; this keeps the
// formatting in one place.
#pragma once

#include <string>
#include <vector>

namespace qubikos {

/// Collects rows of cells and renders them with padded columns.
class ascii_table {
public:
    explicit ascii_table(std::vector<std::string> header);

    void add_row(std::vector<std::string> row);

    template <typename... Ts>
    void add(const Ts&... cells) {
        add_row({cell(cells)...});
    }

    /// Renders the table with a header separator line.
    [[nodiscard]] std::string str() const;

    /// Formats a double with the given precision (helper for callers).
    [[nodiscard]] static std::string num(double v, int precision = 2);

private:
    static std::string cell(const std::string& s) { return s; }
    static std::string cell(const char* s) { return s; }
    static std::string cell(double d) { return num(d); }
    static std::string cell(int i) { return std::to_string(i); }
    static std::string cell(long i) { return std::to_string(i); }
    static std::string cell(long long i) { return std::to_string(i); }
    static std::string cell(std::size_t i) { return std::to_string(i); }

    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace qubikos
