#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace qubikos {

ascii_table::ascii_table(std::vector<std::string> header) : header_(std::move(header)) {
    if (header_.empty()) throw std::invalid_argument("table: empty header");
}

void ascii_table::add_row(std::vector<std::string> row) {
    if (row.size() != header_.size()) {
        throw std::invalid_argument("table: row width mismatch");
    }
    rows_.push_back(std::move(row));
}

std::string ascii_table::num(double v, int precision) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    return buf;
}

std::string ascii_table::str() const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
    for (const auto& row : rows_) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            widths[i] = std::max(widths[i], row[i].size());
        }
    }

    std::string out;
    const auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            out += "| ";
            out += row[i];
            out.append(widths[i] - row[i].size() + 1, ' ');
        }
        out += "|\n";
    };
    emit_row(header_);
    for (std::size_t i = 0; i < header_.size(); ++i) {
        out += "|";
        out.append(widths[i] + 2, '-');
    }
    out += "|\n";
    for (const auto& row : rows_) emit_row(row);
    return out;
}

}  // namespace qubikos
