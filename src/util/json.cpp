#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace qubikos::json {

const value& value::at(const std::string& key) const {
    const auto& obj = as_object();
    const auto it = obj.find(key);
    if (it == obj.end()) throw error("json: missing key '" + key + "'");
    return it->second;
}

bool value::contains(const std::string& key) const {
    return kind_ == kind::object && obj_->count(key) > 0;
}

void append_quoted(std::string& out, const std::string& s) {
    out += '"';
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

std::string quoted(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    append_quoted(out, s);
    return out;
}

namespace {

void write_number(std::string& out, double d) {
    if (!std::isfinite(d)) throw error("json: non-finite number");
    if (d == std::floor(d) && std::abs(d) < 1e15) {
        out += std::to_string(static_cast<long long>(d));
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out += buf;
}

void newline(std::string& out, int indent, int depth) {
    if (indent < 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

void value::write(std::string& out, int indent, int depth) const {
    switch (kind_) {
        case kind::null: out += "null"; return;
        case kind::boolean: out += bool_ ? "true" : "false"; return;
        case kind::number: write_number(out, num_); return;
        case kind::string: append_quoted(out, str_); return;
        case kind::array: {
            const auto& arr = *arr_;
            if (arr.empty()) {
                out += "[]";
                return;
            }
            out += '[';
            bool first = true;
            for (const auto& item : arr) {
                if (!first) out += ',';
                first = false;
                newline(out, indent, depth + 1);
                item.write(out, indent, depth + 1);
            }
            newline(out, indent, depth);
            out += ']';
            return;
        }
        case kind::object: {
            const auto& obj = *obj_;
            if (obj.empty()) {
                out += "{}";
                return;
            }
            out += '{';
            bool first = true;
            for (const auto& [key, val] : obj) {
                if (!first) out += ',';
                first = false;
                newline(out, indent, depth + 1);
                append_quoted(out, key);
                out += indent < 0 ? ":" : ": ";
                val.write(out, indent, depth + 1);
            }
            newline(out, indent, depth);
            out += '}';
            return;
        }
    }
}

std::string value::dump(int indent) const {
    std::string out;
    write(out, indent, 0);
    return out;
}

namespace {

class parser {
public:
    explicit parser(const std::string& text) : text_(text) {}

    value run() {
        skip_ws();
        value v = parse_value();
        skip_ws();
        if (pos_ != text_.size()) fail("trailing characters");
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& why) const {
        throw error("json parse error at offset " + std::to_string(pos_) + ": " + why);
    }

    char peek() const {
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    char take() {
        const char c = peek();
        ++pos_;
        return c;
    }

    void expect(char c) {
        if (take() != c) fail(std::string("expected '") + c + "'");
    }

    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
                text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool consume_keyword(const char* kw) {
        std::size_t len = 0;
        while (kw[len] != '\0') ++len;
        if (text_.compare(pos_, len, kw) == 0) {
            pos_ += len;
            return true;
        }
        return false;
    }

    value parse_value() {
        skip_ws();
        const char c = peek();
        switch (c) {
            case '{': return parse_object();
            case '[': return parse_array();
            case '"': return value(parse_string());
            case 't':
                if (consume_keyword("true")) return value(true);
                fail("bad keyword");
            case 'f':
                if (consume_keyword("false")) return value(false);
                fail("bad keyword");
            case 'n':
                if (consume_keyword("null")) return value(nullptr);
                fail("bad keyword");
            default: return parse_number();
        }
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        for (;;) {
            const char c = take();
            if (c == '"') return out;
            if (c == '\\') {
                const char esc = take();
                switch (esc) {
                    case '"': out += '"'; break;
                    case '\\': out += '\\'; break;
                    case '/': out += '/'; break;
                    case 'b': out += '\b'; break;
                    case 'f': out += '\f'; break;
                    case 'n': out += '\n'; break;
                    case 'r': out += '\r'; break;
                    case 't': out += '\t'; break;
                    case 'u': {
                        unsigned code = 0;
                        for (int i = 0; i < 4; ++i) {
                            const char h = take();
                            code <<= 4;
                            if (h >= '0' && h <= '9')
                                code |= static_cast<unsigned>(h - '0');
                            else if (h >= 'a' && h <= 'f')
                                code |= static_cast<unsigned>(h - 'a' + 10);
                            else if (h >= 'A' && h <= 'F')
                                code |= static_cast<unsigned>(h - 'A' + 10);
                            else
                                fail("bad \\u escape");
                        }
                        // Suite metadata is ASCII; encode BMP code points as UTF-8.
                        if (code < 0x80) {
                            out += static_cast<char>(code);
                        } else if (code < 0x800) {
                            out += static_cast<char>(0xc0 | (code >> 6));
                            out += static_cast<char>(0x80 | (code & 0x3f));
                        } else {
                            out += static_cast<char>(0xe0 | (code >> 12));
                            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
                            out += static_cast<char>(0x80 | (code & 0x3f));
                        }
                        break;
                    }
                    default: fail("bad escape");
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                fail("control character in string");
            } else {
                out += c;
            }
        }
    }

    value parse_number() {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
                text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start) fail("expected value");
        double out = 0;
        const auto result = std::from_chars(text_.data() + start, text_.data() + pos_, out);
        if (result.ec != std::errc{} || result.ptr != text_.data() + pos_) fail("bad number");
        return value(out);
    }

    value parse_array() {
        expect('[');
        array out;
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return value(std::move(out));
        }
        for (;;) {
            out.push_back(parse_value());
            skip_ws();
            const char c = take();
            if (c == ']') return value(std::move(out));
            if (c != ',') fail("expected ',' or ']'");
        }
    }

    value parse_object() {
        expect('{');
        object out;
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return value(std::move(out));
        }
        for (;;) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            out.emplace(std::move(key), parse_value());
            skip_ws();
            const char c = take();
            if (c == '}') return value(std::move(out));
            if (c != ',') fail("expected ',' or '}'");
        }
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

}  // namespace

value parse(const std::string& text) { return parser(text).run(); }

}  // namespace qubikos::json
