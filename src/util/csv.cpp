#include "util/csv.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace qubikos::csv {

writer::writer(std::vector<std::string> header) : header_(std::move(header)) {
    if (header_.empty()) throw std::invalid_argument("csv: empty header");
}

void writer::add_row(std::vector<std::string> row) {
    if (row.size() != header_.size()) {
        throw std::invalid_argument("csv: row width " + std::to_string(row.size()) +
                                    " != header width " + std::to_string(header_.size()));
    }
    rows_.push_back(std::move(row));
}

std::string writer::format(double d) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", d);
    return buf;
}

std::string escape(const std::string& cell) {
    if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
    std::string out = "\"";
    for (const char c : cell) {
        if (c == '"') out += '"';
        out += c;
    }
    out += '"';
    return out;
}

std::string writer::str() const {
    std::string out;
    const auto append_row = [&out](const std::vector<std::string>& row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i > 0) out += ',';
            out += escape(row[i]);
        }
        out += '\n';
    };
    append_row(header_);
    for (const auto& row : rows_) append_row(row);
    return out;
}

void writer::save(const std::string& path) const {
    std::ofstream file(path);
    if (!file) throw std::runtime_error("csv: cannot open " + path);
    file << str();
}

}  // namespace qubikos::csv
