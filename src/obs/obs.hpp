// Process-wide telemetry: a named counter/timer registry with
// thread-local slabs.
//
// Design goals, in order:
//   1. Telemetry must never perturb results. Nothing here touches RNG
//      state, iteration order or scheduling; instrumented code publishes
//      *after* computing, and the routed-output-bit-identical guarantee
//      is pinned by test (tests/test_obs.cpp).
//   2. Lock-free hot path, zero heap in steady state. Each thread owns a
//      fixed-size slab of relaxed atomics; add() is one thread-local
//      lookup plus one relaxed load/store on a cell only its owner ever
//      writes. The global mutex is taken only when a thread's slab is
//      created/retired or a snapshot is collected.
//   3. Cheap to turn off. When observability is disabled (QUBIKOS_OBS=off
//      or set_enabled(false)) every add() is a single relaxed bool load.
//
// Naming convention: dotted lowercase "component.metric"
// (e.g. "sabre.pass_decisions", "sat.propagations"). A timer is a pair
// of counters, "<name>.ns" (total nanoseconds) and "<name>.calls".
//
// Metric IDs are interned once (typically into a function-local static
// at the instrumentation site) and stay valid for the process lifetime.
// The registry is deliberately leaked so telemetry stays usable from
// thread-local destructors of threads (e.g. the shared pool's workers)
// that outlive ordinary static destruction order.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/json.hpp"

namespace qubikos::obs {

/// Index into every thread's slab; returned by counter()/timer().
using metric_id = std::size_t;

/// Capacity of one per-thread slab (and of the whole metric namespace).
inline constexpr std::size_t kMaxMetrics = 256;

/// Is telemetry collection on? Defaults from the QUBIKOS_OBS environment
/// variable, read once: unset/"on"/"1" = enabled, "off"/"0"/"false" =
/// disabled. (The value "metrics" additionally opts campaign workers
/// into persisting per-unit metrics records — see metrics_records().)
[[nodiscard]] bool enabled();

/// Runtime override of the cached environment default (tests, benches).
void set_enabled(bool on);

/// Should campaign workers persist per-unit metrics records?
/// QUBIKOS_OBS=metrics (or "full") turns this on; everything else off.
[[nodiscard]] bool metrics_records();

/// Interns `name` and returns its stable id; repeated calls with the
/// same name return the same id. Throws when the namespace (kMaxMetrics
/// distinct names) is exhausted — a programming error, not a load issue.
[[nodiscard]] metric_id counter(const char* name);

/// A timer's two counter ids ("<base>.ns" and "<base>.calls").
struct timer_id {
    metric_id ns = 0;
    metric_id calls = 0;
};

/// Interns "<base>.ns" + "<base>.calls" (convenience over counter()).
[[nodiscard]] timer_id timer(const char* base);

/// Adds `delta` to this thread's cell of `id`. Lock-free (first call on
/// a new thread registers its slab under the registry mutex once).
void add(metric_id id, std::uint64_t delta = 1);

/// RAII wall-clock timer: on destruction adds the elapsed nanoseconds to
/// "<base>.ns" and 1 to "<base>.calls". Reads no clock when telemetry is
/// disabled at construction.
class scoped_timer {
public:
    explicit scoped_timer(timer_id id);
    ~scoped_timer();

    scoped_timer(const scoped_timer&) = delete;
    scoped_timer& operator=(const scoped_timer&) = delete;

private:
    timer_id id_;
    std::uint64_t start_ns_ = 0;
    bool active_ = false;
};

/// One merged snapshot of every interned metric, name-sorted. Values sum
/// the live slab of every registered thread plus the retired totals of
/// threads that have exited.
struct snapshot {
    /// (name, total) for every interned metric, sorted by name.
    std::vector<std::pair<std::string, std::uint64_t>> counters;

    /// Value of `name`, 0 when absent.
    [[nodiscard]] std::uint64_t value(const std::string& name) const;
};

/// Collects a merged snapshot (registry mutex; safe concurrently with
/// add() on any thread — per-cell reads are atomic, the snapshot as a
/// whole is a consistent-enough sum for reporting, not a barrier).
[[nodiscard]] snapshot collect();

/// Zeroes every live slab cell and the retired totals (tests, benches).
/// Do not call concurrently with add() on other threads.
void reset();

/// Captures the *calling thread's* slab at construction; delta() /
/// to_json() report how much this thread added since. The campaign
/// worker wraps one work unit with this to attribute cost per unit —
/// valid because campaign tools execute serially on the claiming thread
/// (work a tool itself fans out to pool workers is not attributed).
class thread_delta {
public:
    thread_delta();

    /// Nonzero (current - base) deltas of this thread, name-sorted.
    [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> deltas() const;

    /// The deltas as a JSON object (deterministic key order); an empty
    /// object when nothing was added.
    [[nodiscard]] json::value to_json() const;

private:
    std::vector<std::uint64_t> base_;
};

}  // namespace qubikos::obs
