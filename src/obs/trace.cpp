#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <vector>

#include "util/json.hpp"

namespace qubikos::obs {

namespace {

struct trace_event {
    const char* name;
    std::uint64_t start_ns;
    std::uint64_t dur_ns;
    int tid;
};

/// One thread's bounded event buffer. Allocated to capacity up front so
/// recording never allocates. The per-ring mutex is uncontended in
/// steady state (only the owner pushes); flush_trace takes it briefly
/// while draining, which keeps the owner/flush handoff race-free.
struct trace_ring {
    std::mutex mu;
    int tid = 0;
    std::size_t used = 0;
    std::uint64_t dropped = 0;
    std::vector<trace_event> events;

    explicit trace_ring(int id) : tid(id) { events.resize(kTraceRingEvents); }

    void push(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns) {
        const std::lock_guard<std::mutex> lock(mu);
        if (used >= kTraceRingEvents) {
            ++dropped;
            return;
        }
        events[used++] = trace_event{name, start_ns, dur_ns, tid};
    }

    /// Moves buffered events into `out`; returns the drop count cleared.
    std::uint64_t drain_into(std::vector<trace_event>& out) {
        const std::lock_guard<std::mutex> lock(mu);
        out.insert(out.end(), events.begin(),
                   events.begin() + static_cast<std::ptrdiff_t>(used));
        const std::uint64_t d = dropped;
        used = 0;
        dropped = 0;
        return d;
    }
};

/// Global trace state; leaked for the same destruction-order reason as
/// the counter registry (pool workers retire rings from thread-local
/// destructors).
struct trace_state {
    std::mutex mu;
    bool configured_from_env = false;
    std::string path;
    std::atomic<bool> active{false};
    int next_tid = 0;
    std::vector<trace_ring*> live_rings;
    std::vector<trace_event> retired;
    std::uint64_t retired_dropped = 0;
};

trace_state& state() {
    static trace_state* s = new trace_state();
    return *s;
}

std::uint64_t process_t0_ns() {
    static const std::uint64_t t0 = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    return t0;
}

std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/// Reads QUBIKOS_TRACE once, the first time anything touches the trace
/// layer, and registers the exit flush when it names a path.
void ensure_env_config() {
    trace_state& s = state();
    const std::lock_guard<std::mutex> lock(s.mu);
    if (s.configured_from_env) {
        return;
    }
    s.configured_from_env = true;
    const char* v = std::getenv("QUBIKOS_TRACE");
    if (v != nullptr && v[0] != '\0') {
        s.path = v;
        s.active.store(true, std::memory_order_relaxed);
        std::atexit([] { flush_trace(); });
    }
}

struct ring_owner {
    trace_ring* ring;

    ring_owner() {
        trace_state& s = state();
        const std::lock_guard<std::mutex> lock(s.mu);
        ring = new trace_ring(s.next_tid++);
        s.live_rings.push_back(ring);
    }

    ~ring_owner() {
        trace_state& s = state();
        const std::lock_guard<std::mutex> lock(s.mu);
        s.retired_dropped += ring->drain_into(s.retired);
        std::erase(s.live_rings, ring);
        delete ring;
    }
};

trace_ring& local_ring() {
    static thread_local ring_owner owner;
    return *owner.ring;
}

void write_events(const std::string& path, std::vector<trace_event> events,
                  std::uint64_t dropped) {
    // Stable order (tid, start, longer-span-first) so nesting reads
    // naturally in viewers and in the well-formedness test.
    std::sort(events.begin(), events.end(),
              [](const trace_event& a, const trace_event& b) {
                  if (a.tid != b.tid) return a.tid < b.tid;
                  if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
                  return a.dur_ns > b.dur_ns;
              });
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        return;  // tracing is best-effort; never fail the workload
    }
    const std::uint64_t t0 = process_t0_ns();
    out << "[";
    char buf[128];
    bool first = true;
    // Span names come from instrumentation sites as literals today, but
    // the emitter must not rely on that: they pass through the shared
    // json escaping helper, never a raw %s.
    for (const trace_event& e : events) {
        std::snprintf(buf, sizeof(buf), ",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                      "\"pid\":1,\"tid\":%d}",
                      static_cast<double>(e.start_ns - t0) / 1000.0,
                      static_cast<double>(e.dur_ns) / 1000.0, e.tid);
        out << (first ? "" : ",") << "\n{\"name\":"
            << json::quoted(std::string(e.name)) << buf;
        first = false;
    }
    if (dropped > 0) {
        out << (first ? "" : ",") << "\n{\"name\":"
            << json::quoted("trace.dropped:" + std::to_string(dropped))
            << ",\"ph\":\"X\",\"ts\":0.000,\"dur\":0.000,\"pid\":1,\"tid\":0}";
    }
    out << "\n]\n";
}

}  // namespace

bool trace_enabled() {
    ensure_env_config();
    return state().active.load(std::memory_order_relaxed);
}

void set_trace_path(const std::string& path) {
    trace_state& s = state();
    const std::lock_guard<std::mutex> lock(s.mu);
    s.configured_from_env = true;  // runtime config wins over the env
    s.path = path;
    s.active.store(!path.empty(), std::memory_order_relaxed);
}

std::string trace_path() {
    ensure_env_config();
    trace_state& s = state();
    const std::lock_guard<std::mutex> lock(s.mu);
    return s.path;
}

void flush_trace() {
    trace_state& s = state();
    std::string path;
    std::vector<trace_event> events;
    std::uint64_t dropped = 0;
    {
        const std::lock_guard<std::mutex> lock(s.mu);
        if (s.path.empty()) {
            return;
        }
        path = s.path;
        events = std::move(s.retired);
        s.retired.clear();
        dropped = s.retired_dropped;
        s.retired_dropped = 0;
        for (trace_ring* ring : s.live_rings) {
            dropped += ring->drain_into(events);
        }
    }
    write_events(path, std::move(events), dropped);
}

trace_span::trace_span(const char* name)
    : name_(name), active_(trace_enabled()) {
    if (active_) {
        start_ns_ = now_ns();
    }
}

trace_span::~trace_span() {
    if (active_) {
        local_ring().push(name_, start_ns_, now_ns() - start_ns_);
    }
}

}  // namespace qubikos::obs
