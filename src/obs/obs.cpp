#include "obs/obs.hpp"

#include <array>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <stdexcept>

namespace qubikos::obs {

namespace {

using slab_cells = std::array<std::atomic<std::uint64_t>, kMaxMetrics>;

std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/// All mutable registry state behind one mutex. Intentionally leaked
/// (see obs.hpp): pool worker threads retire their slabs from
/// thread-local destructors that can run during static destruction, so
/// the registry must never be destroyed.
struct registry {
    std::mutex mu;
    std::vector<std::string> names;                  // id -> name
    std::map<std::string, metric_id> ids;            // name -> id
    std::vector<slab_cells*> live_slabs;             // one per live thread
    std::array<std::uint64_t, kMaxMetrics> retired{};  // folded exited threads
};

registry& reg() {
    static registry* r = new registry();
    return *r;
}

bool env_flag_off(const char* value) {
    return std::strcmp(value, "off") == 0 || std::strcmp(value, "0") == 0 ||
           std::strcmp(value, "false") == 0;
}

std::atomic<bool>& enabled_flag() {
    static std::atomic<bool> flag{[] {
        const char* v = std::getenv("QUBIKOS_OBS");
        return v == nullptr || !env_flag_off(v);
    }()};
    return flag;
}

/// Owns one thread's slab: registers it on construction, folds its
/// totals into the retired accumulator on thread exit.
struct slab_owner {
    slab_cells cells{};

    slab_owner() {
        registry& r = reg();
        const std::lock_guard<std::mutex> lock(r.mu);
        r.live_slabs.push_back(&cells);
    }

    ~slab_owner() {
        registry& r = reg();
        const std::lock_guard<std::mutex> lock(r.mu);
        for (std::size_t i = 0; i < kMaxMetrics; ++i) {
            r.retired[i] += cells[i].load(std::memory_order_relaxed);
        }
        std::erase(r.live_slabs, &cells);
    }
};

slab_cells& local_slab() {
    static thread_local slab_owner owner;
    return owner.cells;
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) { enabled_flag().store(on, std::memory_order_relaxed); }

bool metrics_records() {
    static const bool on = [] {
        const char* v = std::getenv("QUBIKOS_OBS");
        return v != nullptr &&
               (std::strcmp(v, "metrics") == 0 || std::strcmp(v, "full") == 0);
    }();
    return on && enabled();
}

metric_id counter(const char* name) {
    registry& r = reg();
    const std::lock_guard<std::mutex> lock(r.mu);
    const auto it = r.ids.find(name);
    if (it != r.ids.end()) {
        return it->second;
    }
    if (r.names.size() >= kMaxMetrics) {
        throw std::runtime_error("obs: metric namespace exhausted (kMaxMetrics)");
    }
    const metric_id id = r.names.size();
    r.names.emplace_back(name);
    r.ids.emplace(name, id);
    return id;
}

timer_id timer(const char* base) {
    const std::string b(base);
    timer_id id;
    id.ns = counter((b + ".ns").c_str());
    id.calls = counter((b + ".calls").c_str());
    return id;
}

void add(metric_id id, std::uint64_t delta) {
    if (!enabled() || id >= kMaxMetrics) {
        return;
    }
    // Owner-only write: no RMW needed, the collector tolerates reading
    // either the old or the new value.
    std::atomic<std::uint64_t>& cell = local_slab()[id];
    cell.store(cell.load(std::memory_order_relaxed) + delta,
               std::memory_order_relaxed);
}

scoped_timer::scoped_timer(timer_id id) : id_(id), active_(enabled()) {
    if (active_) {
        start_ns_ = now_ns();
    }
}

scoped_timer::~scoped_timer() {
    if (active_) {
        add(id_.ns, now_ns() - start_ns_);
        add(id_.calls, 1);
    }
}

std::uint64_t snapshot::value(const std::string& name) const {
    for (const auto& [n, v] : counters) {
        if (n == name) {
            return v;
        }
    }
    return 0;
}

snapshot collect() {
    registry& r = reg();
    const std::lock_guard<std::mutex> lock(r.mu);
    std::array<std::uint64_t, kMaxMetrics> totals = r.retired;
    for (const slab_cells* cells : r.live_slabs) {
        for (std::size_t i = 0; i < r.names.size(); ++i) {
            totals[i] += (*cells)[i].load(std::memory_order_relaxed);
        }
    }
    snapshot snap;
    // r.ids is name-sorted (std::map), so iterate it for sorted output.
    snap.counters.reserve(r.ids.size());
    for (const auto& [name, id] : r.ids) {
        snap.counters.emplace_back(name, totals[id]);
    }
    return snap;
}

void reset() {
    registry& r = reg();
    const std::lock_guard<std::mutex> lock(r.mu);
    r.retired.fill(0);
    for (slab_cells* cells : r.live_slabs) {
        for (auto& cell : *cells) {
            cell.store(0, std::memory_order_relaxed);
        }
    }
}

thread_delta::thread_delta() : base_(kMaxMetrics, 0) {
    const slab_cells& cells = local_slab();
    for (std::size_t i = 0; i < kMaxMetrics; ++i) {
        base_[i] = cells[i].load(std::memory_order_relaxed);
    }
}

std::vector<std::pair<std::string, std::uint64_t>> thread_delta::deltas() const {
    const slab_cells& cells = local_slab();
    std::array<std::uint64_t, kMaxMetrics> current{};
    for (std::size_t i = 0; i < kMaxMetrics; ++i) {
        current[i] = cells[i].load(std::memory_order_relaxed);
    }
    registry& r = reg();
    const std::lock_guard<std::mutex> lock(r.mu);
    std::vector<std::pair<std::string, std::uint64_t>> out;
    for (const auto& [name, id] : r.ids) {
        const std::uint64_t d = current[id] - base_[id];
        if (d != 0) {
            out.emplace_back(name, d);
        }
    }
    return out;
}

json::value thread_delta::to_json() const {
    json::object obj;
    for (const auto& [name, v] : deltas()) {
        // Counters fit a double exactly well past any realistic total
        // (< 2^53); JSON numbers keep the store format uniform.
        obj.emplace(name, json::value(static_cast<double>(v)));
    }
    return json::value(std::move(obj));
}

}  // namespace qubikos::obs
