// Span tracing: scoped begin/end events emitted as Chrome-trace /
// Perfetto-compatible JSON ("X" complete events).
//
// Disabled unless a trace path is configured — either the QUBIKOS_TRACE
// environment variable (read once, flush registered via atexit) or
// set_trace_path() at runtime (tests, tools). When disabled a trace_span
// costs one relaxed bool load; when enabled, a clock read at each end
// plus one push into a bounded per-thread ring buffer (kTraceRingEvents
// slots; overflow drops the oldest-free slot and counts the drop — the
// hot path never blocks and never allocates after the ring exists).
//
// Span names must be string literals (or otherwise outlive the process);
// the ring stores the pointer, not a copy.
#pragma once

#include <cstdint>
#include <string>

namespace qubikos::obs {

/// Events retained per thread; older events are kept, new ones dropped
/// on overflow (a full ring means the trace window is already rich).
inline constexpr std::size_t kTraceRingEvents = 8192;

/// Is a trace destination configured?
[[nodiscard]] bool trace_enabled();

/// Sets (or clears, with "") the trace output path at runtime,
/// overriding the QUBIKOS_TRACE default.
void set_trace_path(const std::string& path);

/// The currently configured destination ("" = tracing off).
[[nodiscard]] std::string trace_path();

/// Writes all buffered events to trace_path() as a Chrome-trace JSON
/// array and clears the buffers. No-op when tracing is off. Called
/// automatically at process exit when QUBIKOS_TRACE set it up.
void flush_trace();

/// RAII span: records one complete event [construction, destruction) on
/// the current thread. `name` must be a string literal.
class trace_span {
public:
    explicit trace_span(const char* name);
    ~trace_span();

    trace_span(const trace_span&) = delete;
    trace_span& operator=(const trace_span&) = delete;

private:
    const char* name_;
    std::uint64_t start_ns_ = 0;
    bool active_ = false;
};

}  // namespace qubikos::obs
