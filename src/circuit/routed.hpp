// Routed (transpiled) circuits and their validation.
//
// A QLS result is an initial mapping f: Q -> P plus a *physical* circuit:
// gate operands are physical qubits and SWAP gates permute the residency
// of program qubits (the C0·T0·C1·T1·...·Cn form of Sec. II). Every QLS
// tool in this repository — the exact solver and all four heuristics —
// returns this type, and everything downstream trusts results only after
// validate_routed passes.
#pragma once

#include <string>

#include "circuit/circuit.hpp"
#include "circuit/mapping.hpp"
#include "graph/graph.hpp"

namespace qubikos {

struct routed_circuit {
    mapping initial;
    circuit physical;

    [[nodiscard]] std::size_t swap_count() const { return physical.num_swap_gates(); }
};

struct validation_report {
    bool valid = false;
    std::string error;
    std::size_t swap_count = 0;

    explicit operator bool() const { return valid; }
};

/// Checks that `routed` implements `logical` on `coupling`:
///   1. the initial mapping is well-formed for (logical, coupling);
///   2. every two-qubit physical gate (swaps included) acts on
///      coupling-adjacent physical qubits;
///   3. replaying the physical circuit while tracking residency yields,
///      per program qubit, exactly the logical circuit's gate sequence
///      (kind, partner and angle) — i.e. dependencies are preserved and no
///      gate was dropped, duplicated or re-ordered across a shared qubit.
[[nodiscard]] validation_report validate_routed(const circuit& logical,
                                                const routed_circuit& routed,
                                                const graph& coupling);

}  // namespace qubikos
