#include "circuit/mapping.hpp"

#include <stdexcept>

namespace qubikos {

mapping::mapping(int num_program, int num_physical) {
    if (num_program < 0 || num_physical < 0 || num_program > num_physical) {
        throw std::invalid_argument("mapping: need 0 <= num_program <= num_physical");
    }
    q2p_.resize(static_cast<std::size_t>(num_program));
    p2q_.assign(static_cast<std::size_t>(num_physical), -1);
    for (int q = 0; q < num_program; ++q) {
        q2p_[static_cast<std::size_t>(q)] = q;
        p2q_[static_cast<std::size_t>(q)] = q;
    }
}

mapping mapping::identity(int num_program, int num_physical) {
    return mapping(num_program, num_physical);
}

mapping mapping::random(int num_program, int num_physical, rng& random) {
    mapping m;
    std::vector<int> perm;
    random_into(m, num_program, num_physical, random, perm);
    return m;
}

void mapping::random_into(mapping& out, int num_program, int num_physical, rng& random,
                          std::vector<int>& perm_scratch) {
    if (num_program < 0 || num_physical < 0 || num_program > num_physical) {
        throw std::invalid_argument("mapping: need 0 <= num_program <= num_physical");
    }
    // Identical draws to rng::permutation: iota then a full Fisher-Yates
    // shuffle, regardless of how many leading entries are consumed.
    perm_scratch.resize(static_cast<std::size_t>(num_physical));
    for (int i = 0; i < num_physical; ++i) perm_scratch[static_cast<std::size_t>(i)] = i;
    random.shuffle(perm_scratch);
    out.q2p_.resize(static_cast<std::size_t>(num_program));
    out.p2q_.assign(static_cast<std::size_t>(num_physical), -1);
    for (int q = 0; q < num_program; ++q) {
        const int p = perm_scratch[static_cast<std::size_t>(q)];
        out.q2p_[static_cast<std::size_t>(q)] = p;
        out.p2q_[static_cast<std::size_t>(p)] = q;
    }
}

mapping mapping::from_program_to_physical(const std::vector<int>& q2p, int num_physical) {
    mapping m(0, num_physical);
    m.q2p_ = q2p;
    for (int q = 0; q < static_cast<int>(q2p.size()); ++q) {
        const int p = q2p[static_cast<std::size_t>(q)];
        if (p < 0 || p >= num_physical) {
            throw std::invalid_argument("mapping: physical index out of range");
        }
        if (m.p2q_[static_cast<std::size_t>(p)] != -1) {
            throw std::invalid_argument("mapping: not injective at physical " + std::to_string(p));
        }
        m.p2q_[static_cast<std::size_t>(p)] = q;
    }
    return m;
}

int mapping::physical(int q) const {
    if (q < 0 || q >= num_program()) throw std::out_of_range("mapping::physical: bad qubit");
    return q2p_[static_cast<std::size_t>(q)];
}

int mapping::program_at(int p) const {
    if (p < 0 || p >= num_physical()) throw std::out_of_range("mapping::program_at: bad qubit");
    return p2q_[static_cast<std::size_t>(p)];
}

bool mapping::is_consistent() const {
    const int programs = num_program();
    const int physicals = num_physical();
    if (programs > physicals) return false;
    for (int q = 0; q < programs; ++q) {
        const int p = q2p_[static_cast<std::size_t>(q)];
        if (p < 0 || p >= physicals) return false;
        if (p2q_[static_cast<std::size_t>(p)] != q) return false;
    }
    for (int p = 0; p < physicals; ++p) {
        const int q = p2q_[static_cast<std::size_t>(p)];
        if (q == -1) continue;
        if (q < 0 || q >= programs) return false;
        if (q2p_[static_cast<std::size_t>(q)] != p) return false;
    }
    return true;
}

void mapping::swap_physical(int p1, int p2) {
    if (p1 < 0 || p2 < 0 || p1 >= num_physical() || p2 >= num_physical()) {
        throw std::out_of_range("mapping::swap_physical: bad qubit");
    }
    if (p1 == p2) throw std::invalid_argument("mapping::swap_physical: identical qubits");
    const int q1 = p2q_[static_cast<std::size_t>(p1)];
    const int q2 = p2q_[static_cast<std::size_t>(p2)];
    p2q_[static_cast<std::size_t>(p1)] = q2;
    p2q_[static_cast<std::size_t>(p2)] = q1;
    if (q1 != -1) q2p_[static_cast<std::size_t>(q1)] = p2;
    if (q2 != -1) q2p_[static_cast<std::size_t>(q2)] = p1;
}

}  // namespace qubikos
