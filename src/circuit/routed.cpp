#include "circuit/routed.hpp"

#include <vector>

namespace qubikos {

namespace {

/// Per-qubit trace entry: what a qubit experiences, in order.
struct trace_event {
    gate_kind kind;
    int partner;  // program qubit partner for two-qubit gates, -1 otherwise
    double angle;

    friend bool operator==(const trace_event&, const trace_event&) = default;
};

/// Builds the per-program-qubit event sequences of a logical circuit.
std::vector<std::vector<trace_event>> logical_traces(const circuit& c) {
    std::vector<std::vector<trace_event>> traces(static_cast<std::size_t>(c.num_qubits()));
    for (const auto& g : c.gates()) {
        if (g.is_two_qubit()) {
            traces[static_cast<std::size_t>(g.q0)].push_back({g.kind, g.q1, g.angle});
            traces[static_cast<std::size_t>(g.q1)].push_back({g.kind, g.q0, g.angle});
        } else {
            traces[static_cast<std::size_t>(g.q0)].push_back({g.kind, -1, g.angle});
        }
    }
    return traces;
}

validation_report fail(std::string why) {
    validation_report r;
    r.valid = false;
    r.error = std::move(why);
    return r;
}

}  // namespace

validation_report validate_routed(const circuit& logical, const routed_circuit& routed,
                                  const graph& coupling) {
    if (routed.initial.num_program() != logical.num_qubits()) {
        return fail("initial mapping has " + std::to_string(routed.initial.num_program()) +
                    " program qubits, logical circuit has " +
                    std::to_string(logical.num_qubits()));
    }
    if (routed.initial.num_physical() != coupling.num_vertices()) {
        return fail("initial mapping covers " + std::to_string(routed.initial.num_physical()) +
                    " physical qubits, coupling graph has " +
                    std::to_string(coupling.num_vertices()));
    }
    if (routed.physical.num_qubits() != coupling.num_vertices()) {
        return fail("physical circuit qubit count differs from coupling graph");
    }

    const auto expected = logical_traces(logical);
    std::vector<std::size_t> progress(static_cast<std::size_t>(logical.num_qubits()), 0);
    mapping current = routed.initial;

    std::size_t swaps = 0;
    for (std::size_t i = 0; i < routed.physical.size(); ++i) {
        const gate& g = routed.physical[i];
        if (g.is_two_qubit() && !coupling.has_edge(g.q0, g.q1)) {
            return fail("gate #" + std::to_string(i) + " (" + g.str() +
                        ") acts on non-adjacent physical qubits");
        }
        if (g.is_swap()) {
            current.swap_physical(g.q0, g.q1);
            ++swaps;
            continue;
        }
        const int prog0 = current.program_at(g.q0);
        if (prog0 == -1) {
            return fail("gate #" + std::to_string(i) + " touches unoccupied physical qubit " +
                        std::to_string(g.q0));
        }
        if (g.is_two_qubit()) {
            const int prog1 = current.program_at(g.q1);
            if (prog1 == -1) {
                return fail("gate #" + std::to_string(i) +
                            " touches unoccupied physical qubit " + std::to_string(g.q1));
            }
            for (const auto& [self, partner] :
                 {std::pair{prog0, prog1}, std::pair{prog1, prog0}}) {
                auto& at = progress[static_cast<std::size_t>(self)];
                const auto& trace = expected[static_cast<std::size_t>(self)];
                if (at >= trace.size() ||
                    !(trace[at] == trace_event{g.kind, partner, g.angle})) {
                    return fail("gate #" + std::to_string(i) + " (" + g.str() +
                                ") does not match the logical trace of program qubit q" +
                                std::to_string(self));
                }
                ++at;
            }
        } else {
            auto& at = progress[static_cast<std::size_t>(prog0)];
            const auto& trace = expected[static_cast<std::size_t>(prog0)];
            if (at >= trace.size() || !(trace[at] == trace_event{g.kind, -1, g.angle})) {
                return fail("gate #" + std::to_string(i) + " (" + g.str() +
                            ") does not match the logical trace of program qubit q" +
                            std::to_string(prog0));
            }
            ++at;
        }
    }

    for (int q = 0; q < logical.num_qubits(); ++q) {
        if (progress[static_cast<std::size_t>(q)] != expected[static_cast<std::size_t>(q)].size()) {
            return fail("program qubit q" + std::to_string(q) + " executed " +
                        std::to_string(progress[static_cast<std::size_t>(q)]) + " of " +
                        std::to_string(expected[static_cast<std::size_t>(q)].size()) + " gates");
        }
    }

    validation_report r;
    r.valid = true;
    r.swap_count = swaps;
    return r;
}

}  // namespace qubikos
