// Gate dependency DAG D(G2, EG) (Sec. II of the paper).
//
// Nodes are the two-qubit gates of a circuit in circuit order; an edge
// (g, g') exists when g' is the next two-qubit gate after g on a shared
// qubit. Single-qubit gates impose no connectivity constraints and are
// excluded. Prev(g) — everything that must execute before g — is the
// ancestor set in this DAG.
#pragma once

#include <vector>

#include "circuit/circuit.hpp"

namespace qubikos {

class gate_dag {
public:
    /// Builds the DAG over the two-qubit gates (including swaps) of c.
    explicit gate_dag(const circuit& c);

    [[nodiscard]] int num_nodes() const { return static_cast<int>(gates_.size()); }
    /// The node's gate. Nodes are indexed 0..num_nodes()-1 in circuit
    /// order, which is already a topological order.
    [[nodiscard]] const gate& node_gate(int node) const;
    /// Index of the node's gate in the original circuit's gate list.
    [[nodiscard]] std::size_t circuit_index(int node) const;

    [[nodiscard]] const std::vector<int>& preds(int node) const;
    [[nodiscard]] const std::vector<int>& succs(int node) const;

    /// Nodes with no predecessors (the initial execution front).
    [[nodiscard]] std::vector<int> front_layer() const;

    /// Bitmap over nodes: ancestors[i] != 0 iff i is in Prev(node).
    [[nodiscard]] std::vector<char> ancestors(int node) const;

    /// True iff there is a dependency path from `earlier` to `later`.
    [[nodiscard]] bool depends_on(int later, int earlier) const;

    /// ASAP level per node (sources are level 0).
    [[nodiscard]] std::vector<int> asap_levels() const;

    /// Total count of immediate dependency edges.
    [[nodiscard]] std::size_t num_edges() const;

private:
    void check_node(int node) const;

    std::vector<gate> gates_;
    std::vector<std::size_t> circuit_indices_;
    std::vector<std::vector<int>> preds_;
    std::vector<std::vector<int>> succs_;
};

}  // namespace qubikos
