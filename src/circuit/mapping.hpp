// Qubit mapping f: Q -> P from program qubits to physical qubits.
//
// Kept as a pair of mutually inverse arrays so that both directions are
// O(1); SWAP gates act on *physical* qubit pairs and exchange the program
// qubits residing there.
#pragma once

#include <vector>

#include "util/rng.hpp"

namespace qubikos {

class mapping {
public:
    mapping() = default;
    /// Identity-prefix mapping: program qubit q sits on physical qubit q.
    /// Requires num_program <= num_physical.
    mapping(int num_program, int num_physical);

    [[nodiscard]] static mapping identity(int num_program, int num_physical);
    [[nodiscard]] static mapping random(int num_program, int num_physical, rng& random);
    /// random() rewritten onto caller storage: fills `out` in place and
    /// uses `perm_scratch` for the permutation draw, so steady-state
    /// trial loops allocate nothing. Consumes exactly the same rng
    /// stream as random() and produces the identical mapping.
    static void random_into(mapping& out, int num_program, int num_physical, rng& random,
                            std::vector<int>& perm_scratch);
    /// Builds from an explicit program->physical array; validates
    /// injectivity and range.
    [[nodiscard]] static mapping from_program_to_physical(const std::vector<int>& q2p,
                                                          int num_physical);

    [[nodiscard]] int num_program() const { return static_cast<int>(q2p_.size()); }
    [[nodiscard]] int num_physical() const { return static_cast<int>(p2q_.size()); }

    /// Physical location of program qubit q.
    [[nodiscard]] int physical(int q) const;
    /// Program qubit residing on physical qubit p, or -1 when empty.
    [[nodiscard]] int program_at(int p) const;

    /// Exchanges the occupants of physical qubits p1, p2 (either or both
    /// may be empty).
    void swap_physical(int p1, int p2);

    /// The same mapping expressed as program->physical vector.
    [[nodiscard]] const std::vector<int>& program_to_physical() const { return q2p_; }

    /// Full-structure bijectivity scan: every program qubit sits on a
    /// distinct in-range physical qubit and the inverse array agrees.
    /// O(num_physical) — contract-check material (QUBIKOS_DCHECK), not
    /// hot-path material.
    [[nodiscard]] bool is_consistent() const;

    friend bool operator==(const mapping&, const mapping&) = default;

private:
    std::vector<int> q2p_;
    std::vector<int> p2q_;
};

}  // namespace qubikos
