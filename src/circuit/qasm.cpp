#include "circuit/qasm.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace qubikos::qasm {

std::string write(const circuit& c) {
    std::string out;
    out += "OPENQASM 2.0;\n";
    out += "include \"qelib1.inc\";\n";
    out += "qreg q[" + std::to_string(c.num_qubits()) + "];\n";
    for (const auto& g : c.gates()) {
        out += gate_name(g.kind);
        if (is_rotation_kind(g.kind)) {
            char buf[40];
            std::snprintf(buf, sizeof buf, "(%.12g)", g.angle);
            out += buf;
        }
        out += " q[" + std::to_string(g.q0) + "]";
        if (g.is_two_qubit()) out += ",q[" + std::to_string(g.q1) + "]";
        out += ";\n";
    }
    return out;
}

namespace {

[[noreturn]] void fail(int line, const std::string& why) {
    throw std::runtime_error("qasm: line " + std::to_string(line) + ": " + why);
}

/// Strips // comments and surrounding whitespace.
std::string clean(std::string text) {
    const auto comment = text.find("//");
    if (comment != std::string::npos) text.erase(comment);
    const auto begin = text.find_first_not_of(" \t\r\n");
    if (begin == std::string::npos) return {};
    const auto end = text.find_last_not_of(" \t\r\n");
    return text.substr(begin, end - begin + 1);
}

struct statement {
    std::string name;
    std::string params;           // inside (...) if present
    std::vector<int> qubits;      // q[i] operand indices
};

statement parse_statement(const std::string& stmt, int line) {
    statement out;
    std::size_t pos = 0;
    while (pos < stmt.size() &&
           (std::isalnum(static_cast<unsigned char>(stmt[pos])) || stmt[pos] == '_')) {
        ++pos;
    }
    out.name = stmt.substr(0, pos);
    if (out.name.empty()) fail(line, "expected statement name");
    if (pos < stmt.size() && stmt[pos] == '(') {
        const auto close = stmt.find(')', pos);
        if (close == std::string::npos) fail(line, "unterminated parameter list");
        out.params = stmt.substr(pos + 1, close - pos - 1);
        pos = close + 1;
    }
    // Operands: comma-separated q[index] terms.
    while (pos < stmt.size()) {
        while (pos < stmt.size() && (stmt[pos] == ' ' || stmt[pos] == ',' || stmt[pos] == '\t')) {
            ++pos;
        }
        if (pos >= stmt.size()) break;
        const auto open = stmt.find('[', pos);
        if (open == std::string::npos) fail(line, "expected '[' in operand");
        const auto close = stmt.find(']', open);
        if (close == std::string::npos) fail(line, "expected ']' in operand");
        try {
            out.qubits.push_back(std::stoi(stmt.substr(open + 1, close - open - 1)));
        } catch (const std::exception&) {
            fail(line, "bad qubit index");
        }
        pos = close + 1;
    }
    return out;
}

double parse_angle(const std::string& params, int line) {
    // Supports plain numbers plus the common "pi", "pi/N", "N*pi/M" forms
    // emitted by other toolchains.
    std::string s = params;
    s.erase(std::remove(s.begin(), s.end(), ' '), s.end());
    if (s.empty()) fail(line, "empty rotation parameter");
    constexpr double kPi = 3.14159265358979323846;
    double numerator = 1.0;
    double denominator = 1.0;
    bool negative = false;
    std::size_t pos = 0;
    if (s[0] == '-') {
        negative = true;
        pos = 1;
    }
    const auto pi_pos = s.find("pi", pos);
    if (pi_pos == std::string::npos) {
        try {
            return std::stod(s);
        } catch (const std::exception&) {
            fail(line, "bad rotation parameter '" + params + "'");
        }
    }
    if (pi_pos > pos) {
        // leading coefficient like "3*" or "0.5*"
        std::string coeff = s.substr(pos, pi_pos - pos);
        if (!coeff.empty() && coeff.back() == '*') coeff.pop_back();
        try {
            numerator = std::stod(coeff);
        } catch (const std::exception&) {
            fail(line, "bad rotation coefficient '" + params + "'");
        }
    }
    std::size_t after = pi_pos + 2;
    if (after < s.size()) {
        if (s[after] != '/') fail(line, "bad rotation parameter '" + params + "'");
        try {
            denominator = std::stod(s.substr(after + 1));
        } catch (const std::exception&) {
            fail(line, "bad rotation denominator '" + params + "'");
        }
    }
    const double angle = numerator * kPi / denominator;
    return negative ? -angle : angle;
}

}  // namespace

circuit parse(const std::string& text) {
    std::istringstream in(text);
    std::string raw_line;
    std::string pending;
    int line_number = 0;

    bool saw_header = false;
    int num_qubits = -1;
    circuit out;

    std::vector<std::pair<std::string, int>> statements;
    while (std::getline(in, raw_line)) {
        ++line_number;
        const std::string cleaned = clean(raw_line);
        if (!pending.empty() && !cleaned.empty()) pending += ' ';
        pending += cleaned;
        // Statements may span lines until ';'.
        std::size_t semi;
        while ((semi = pending.find(';')) != std::string::npos) {
            const std::string stmt = clean(pending.substr(0, semi));
            pending.erase(0, semi + 1);
            if (!stmt.empty()) statements.emplace_back(stmt, line_number);
        }
    }
    if (!clean(pending).empty()) fail(line_number, "missing ';' at end of input");

    for (const auto& [stmt, line] : statements) {
        if (stmt.rfind("OPENQASM", 0) == 0) {
            saw_header = true;
            continue;
        }
        if (stmt.rfind("include", 0) == 0) continue;
        if (stmt.rfind("creg", 0) == 0) continue;
        if (stmt.rfind("barrier", 0) == 0) continue;
        if (stmt.rfind("measure", 0) == 0) continue;
        if (stmt.rfind("qreg", 0) == 0) {
            if (num_qubits != -1) fail(line, "multiple qreg declarations unsupported");
            const auto open = stmt.find('[');
            const auto close = stmt.find(']');
            if (open == std::string::npos || close == std::string::npos || close < open) {
                fail(line, "malformed qreg");
            }
            try {
                num_qubits = std::stoi(stmt.substr(open + 1, close - open - 1));
            } catch (const std::exception&) {
                fail(line, "bad qreg size");
            }
            out = circuit(num_qubits);
            continue;
        }
        // Gate application.
        if (num_qubits == -1) fail(line, "gate before qreg declaration");
        const statement s = parse_statement(stmt, line);
        gate_kind kind;
        try {
            kind = gate_kind_from_name(s.name);
        } catch (const std::exception&) {
            fail(line, "unsupported gate '" + s.name + "'");
        }
        const bool two = is_two_qubit_kind(kind);
        if (two && s.qubits.size() != 2) fail(line, "two-qubit gate needs 2 operands");
        if (!two && s.qubits.size() != 1) fail(line, "single-qubit gate needs 1 operand");
        try {
            if (two) {
                out.append(gate::two(kind, s.qubits[0], s.qubits[1]));
            } else {
                const double angle =
                    is_rotation_kind(kind) ? parse_angle(s.params, line) : 0.0;
                out.append(gate::single(kind, s.qubits[0], angle));
            }
        } catch (const std::exception& e) {
            fail(line, e.what());
        }
    }
    if (!saw_header) throw std::runtime_error("qasm: missing OPENQASM header");
    if (num_qubits == -1) throw std::runtime_error("qasm: missing qreg declaration");
    return out;
}

void save(const circuit& c, const std::string& path) {
    std::ofstream file(path);
    if (!file) throw std::runtime_error("qasm: cannot open " + path);
    file << write(c);
}

circuit load(const std::string& path) {
    std::ifstream file(path);
    if (!file) throw std::runtime_error("qasm: cannot open " + path);
    std::ostringstream buffer;
    buffer << file.rdbuf();
    return parse(buffer.str());
}

}  // namespace qubikos::qasm
