#include "circuit/gate.hpp"

#include <stdexcept>

namespace qubikos {

bool is_two_qubit_kind(gate_kind kind) {
    switch (kind) {
        case gate_kind::cx:
        case gate_kind::cz:
        case gate_kind::swap: return true;
        default: return false;
    }
}

bool is_rotation_kind(gate_kind kind) {
    switch (kind) {
        case gate_kind::rx:
        case gate_kind::ry:
        case gate_kind::rz: return true;
        default: return false;
    }
}

const char* gate_name(gate_kind kind) {
    switch (kind) {
        case gate_kind::h: return "h";
        case gate_kind::x: return "x";
        case gate_kind::y: return "y";
        case gate_kind::z: return "z";
        case gate_kind::s: return "s";
        case gate_kind::sdg: return "sdg";
        case gate_kind::t: return "t";
        case gate_kind::tdg: return "tdg";
        case gate_kind::rx: return "rx";
        case gate_kind::ry: return "ry";
        case gate_kind::rz: return "rz";
        case gate_kind::cx: return "cx";
        case gate_kind::cz: return "cz";
        case gate_kind::swap: return "swap";
    }
    return "?";
}

gate_kind gate_kind_from_name(const std::string& name) {
    static const struct {
        const char* name;
        gate_kind kind;
    } table[] = {
        {"h", gate_kind::h},     {"x", gate_kind::x},     {"y", gate_kind::y},
        {"z", gate_kind::z},     {"s", gate_kind::s},     {"sdg", gate_kind::sdg},
        {"t", gate_kind::t},     {"tdg", gate_kind::tdg}, {"rx", gate_kind::rx},
        {"ry", gate_kind::ry},   {"rz", gate_kind::rz},   {"cx", gate_kind::cx},
        {"cz", gate_kind::cz},   {"swap", gate_kind::swap},
    };
    for (const auto& entry : table) {
        if (name == entry.name) return entry.kind;
    }
    throw std::invalid_argument("unknown gate name: " + name);
}

gate gate::single(gate_kind kind, int q, double angle) {
    if (is_two_qubit_kind(kind)) {
        throw std::invalid_argument("gate::single called with two-qubit kind");
    }
    if (q < 0) throw std::invalid_argument("gate::single: negative qubit");
    gate g;
    g.kind = kind;
    g.q0 = q;
    g.angle = angle;
    return g;
}

gate gate::two(gate_kind kind, int q0, int q1) {
    if (!is_two_qubit_kind(kind)) {
        throw std::invalid_argument("gate::two called with single-qubit kind");
    }
    if (q0 < 0 || q1 < 0) throw std::invalid_argument("gate::two: negative qubit");
    if (q0 == q1) throw std::invalid_argument("gate::two: identical operands");
    gate g;
    g.kind = kind;
    g.q0 = q0;
    g.q1 = q1;
    return g;
}

std::string gate::str() const {
    std::string out = gate_name(kind);
    if (is_rotation_kind(kind)) {
        out += '(';
        out += std::to_string(angle);
        out += ')';
    }
    out += " q";
    out += std::to_string(q0);
    if (is_two_qubit()) {
        out += ", q";
        out += std::to_string(q1);
    }
    return out;
}

}  // namespace qubikos
