#include "circuit/dag.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace qubikos {

gate_dag::gate_dag(const circuit& c) {
    // Last DAG node seen per qubit while sweeping the circuit.
    std::vector<int> last(static_cast<std::size_t>(c.num_qubits()), -1);
    for (std::size_t i = 0; i < c.size(); ++i) {
        const gate& g = c[i];
        if (!g.is_two_qubit()) continue;
        const int node = static_cast<int>(gates_.size());
        gates_.push_back(g);
        circuit_indices_.push_back(i);
        preds_.emplace_back();
        succs_.emplace_back();
        for (const int q : {g.q0, g.q1}) {
            const int prev = last[static_cast<std::size_t>(q)];
            if (prev != -1 &&
                std::find(preds_[static_cast<std::size_t>(node)].begin(),
                          preds_[static_cast<std::size_t>(node)].end(),
                          prev) == preds_[static_cast<std::size_t>(node)].end()) {
                preds_[static_cast<std::size_t>(node)].push_back(prev);
                succs_[static_cast<std::size_t>(prev)].push_back(node);
            }
            last[static_cast<std::size_t>(q)] = node;
        }
    }
}

void gate_dag::check_node(int node) const {
    if (node < 0 || node >= num_nodes()) {
        throw std::out_of_range("gate_dag: node " + std::to_string(node) + " out of range");
    }
}

const gate& gate_dag::node_gate(int node) const {
    check_node(node);
    return gates_[static_cast<std::size_t>(node)];
}

std::size_t gate_dag::circuit_index(int node) const {
    check_node(node);
    return circuit_indices_[static_cast<std::size_t>(node)];
}

const std::vector<int>& gate_dag::preds(int node) const {
    check_node(node);
    return preds_[static_cast<std::size_t>(node)];
}

const std::vector<int>& gate_dag::succs(int node) const {
    check_node(node);
    return succs_[static_cast<std::size_t>(node)];
}

std::vector<int> gate_dag::front_layer() const {
    std::vector<int> front;
    for (int node = 0; node < num_nodes(); ++node) {
        if (preds_[static_cast<std::size_t>(node)].empty()) front.push_back(node);
    }
    return front;
}

std::vector<char> gate_dag::ancestors(int node) const {
    check_node(node);
    std::vector<char> seen(static_cast<std::size_t>(num_nodes()), 0);
    std::deque<int> queue{node};
    while (!queue.empty()) {
        const int cur = queue.front();
        queue.pop_front();
        for (const int p : preds_[static_cast<std::size_t>(cur)]) {
            if (!seen[static_cast<std::size_t>(p)]) {
                seen[static_cast<std::size_t>(p)] = 1;
                queue.push_back(p);
            }
        }
    }
    return seen;
}

bool gate_dag::depends_on(int later, int earlier) const {
    check_node(later);
    check_node(earlier);
    if (earlier >= later) return false;  // circuit order is topological
    const auto anc = ancestors(later);
    return anc[static_cast<std::size_t>(earlier)] != 0;
}

std::vector<int> gate_dag::asap_levels() const {
    std::vector<int> level(static_cast<std::size_t>(num_nodes()), 0);
    for (int node = 0; node < num_nodes(); ++node) {
        for (const int p : preds_[static_cast<std::size_t>(node)]) {
            level[static_cast<std::size_t>(node)] =
                std::max(level[static_cast<std::size_t>(node)],
                         level[static_cast<std::size_t>(p)] + 1);
        }
    }
    return level;
}

std::size_t gate_dag::num_edges() const {
    std::size_t total = 0;
    for (const auto& p : preds_) total += p.size();
    return total;
}

}  // namespace qubikos
