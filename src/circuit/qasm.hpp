// OpenQASM 2.0 subset reader/writer.
//
// QUBIKOS/QUEKO benchmark artifacts are distributed as QASM files; the
// suite serializer uses this module. The subset covers the gate kinds in
// gate.hpp, one quantum register, comments, and ignores barrier/measure/
// classical registers on input.
#pragma once

#include <string>

#include "circuit/circuit.hpp"

namespace qubikos::qasm {

/// Renders the circuit as an OpenQASM 2.0 program (register name "q").
[[nodiscard]] std::string write(const circuit& c);

/// Parses the supported subset; throws std::runtime_error with a line
/// number on malformed input.
[[nodiscard]] circuit parse(const std::string& text);

/// File helpers.
void save(const circuit& c, const std::string& path);
[[nodiscard]] circuit load(const std::string& path);

}  // namespace qubikos::qasm
