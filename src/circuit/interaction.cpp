#include "circuit/interaction.hpp"

#include <stdexcept>

namespace qubikos {

graph interaction_graph(const circuit& c) { return interaction_graph(c, 0, c.size()); }

graph interaction_graph(const circuit& c, std::size_t first, std::size_t last) {
    if (first > last || last > c.size()) {
        throw std::out_of_range("interaction_graph: bad gate range");
    }
    graph g(c.num_qubits());
    for (std::size_t i = first; i < last; ++i) {
        const gate& gt = c[i];
        if (gt.is_two_qubit()) g.add_edge_if_absent(gt.q0, gt.q1);
    }
    return g;
}

graph interaction_graph_of_edges(int num_qubits, const std::vector<edge>& pairs) {
    graph g(num_qubits);
    for (const auto& e : pairs) g.add_edge_if_absent(e.a, e.b);
    return g;
}

}  // namespace qubikos
