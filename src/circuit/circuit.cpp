#include "circuit/circuit.hpp"

#include <algorithm>
#include <stdexcept>

namespace qubikos {

circuit::circuit(int num_qubits) : num_qubits_(num_qubits) {
    if (num_qubits < 0) throw std::invalid_argument("circuit: negative qubit count");
}

void circuit::check_gate(const gate& g) const {
    if (g.q0 < 0 || g.q0 >= num_qubits_ || (g.is_two_qubit() && (g.q1 < 0 || g.q1 >= num_qubits_))) {
        throw std::out_of_range("circuit: gate operand out of range: " + g.str());
    }
}

void circuit::append(const gate& g) {
    check_gate(g);
    gates_.push_back(g);
}

void circuit::insert(std::size_t index, const gate& g) {
    if (index > gates_.size()) throw std::out_of_range("circuit::insert: bad index");
    check_gate(g);
    gates_.insert(gates_.begin() + static_cast<std::ptrdiff_t>(index), g);
}

void circuit::extend(const circuit& other) {
    if (other.num_qubits() > num_qubits_) {
        throw std::invalid_argument("circuit::extend: other circuit has more qubits");
    }
    for (const auto& g : other.gates()) append(g);
}

std::size_t circuit::num_two_qubit_gates() const {
    return static_cast<std::size_t>(
        std::count_if(gates_.begin(), gates_.end(), [](const gate& g) { return g.is_two_qubit(); }));
}

std::size_t circuit::num_swap_gates() const {
    return static_cast<std::size_t>(
        std::count_if(gates_.begin(), gates_.end(), [](const gate& g) { return g.is_swap(); }));
}

std::size_t circuit::num_single_qubit_gates() const {
    return gates_.size() - num_two_qubit_gates();
}

std::vector<std::size_t> circuit::two_qubit_gate_indices() const {
    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < gates_.size(); ++i) {
        if (gates_[i].is_two_qubit()) indices.push_back(i);
    }
    return indices;
}

circuit circuit::without_swaps() const {
    circuit out(num_qubits_);
    for (const auto& g : gates_) {
        if (!g.is_swap()) out.append(g);
    }
    return out;
}

int circuit::depth() const {
    std::vector<int> ready(static_cast<std::size_t>(num_qubits_), 0);
    int depth = 0;
    for (const auto& g : gates_) {
        int start = ready[static_cast<std::size_t>(g.q0)];
        if (g.is_two_qubit()) start = std::max(start, ready[static_cast<std::size_t>(g.q1)]);
        const int finish = start + 1;
        ready[static_cast<std::size_t>(g.q0)] = finish;
        if (g.is_two_qubit()) ready[static_cast<std::size_t>(g.q1)] = finish;
        depth = std::max(depth, finish);
    }
    return depth;
}

}  // namespace qubikos
