// Quantum gate model.
//
// Layout synthesis only cares about which qubits a gate couples, so gates
// carry a kind, one or two qubit operands and an optional rotation angle.
// Single-qubit gates never constrain QLS (Sec. II of the paper) but are
// kept in the IR so circuits round-trip through QASM unchanged.
#pragma once

#include <string>

namespace qubikos {

enum class gate_kind {
    // single-qubit
    h,
    x,
    y,
    z,
    s,
    sdg,
    t,
    tdg,
    rx,
    ry,
    rz,
    // two-qubit
    cx,
    cz,
    swap,
};

[[nodiscard]] bool is_two_qubit_kind(gate_kind kind);
[[nodiscard]] bool is_rotation_kind(gate_kind kind);
/// Lower-case QASM mnemonic ("cx", "rz", ...).
[[nodiscard]] const char* gate_name(gate_kind kind);
/// Inverse of gate_name; throws std::invalid_argument on unknown names.
[[nodiscard]] gate_kind gate_kind_from_name(const std::string& name);

struct gate {
    gate_kind kind = gate_kind::h;
    int q0 = 0;
    /// Second operand for two-qubit gates; -1 otherwise.
    int q1 = -1;
    /// Rotation angle for rx/ry/rz; 0 otherwise.
    double angle = 0.0;

    [[nodiscard]] bool is_two_qubit() const { return is_two_qubit_kind(kind); }
    [[nodiscard]] bool is_swap() const { return kind == gate_kind::swap; }
    /// True when the gate touches qubit q.
    [[nodiscard]] bool acts_on(int q) const { return q0 == q || (is_two_qubit() && q1 == q); }

    [[nodiscard]] std::string str() const;

    // Named constructors keep call sites free of operand-order mistakes.
    static gate single(gate_kind kind, int q, double angle = 0.0);
    static gate two(gate_kind kind, int q0, int q1);
    static gate h(int q) { return single(gate_kind::h, q); }
    static gate x(int q) { return single(gate_kind::x, q); }
    static gate rz(int q, double angle) { return single(gate_kind::rz, q, angle); }
    static gate cx(int control, int target) { return two(gate_kind::cx, control, target); }
    static gate cz(int a, int b) { return two(gate_kind::cz, a, b); }
    static gate swap_gate(int a, int b) { return two(gate_kind::swap, a, b); }

    friend bool operator==(const gate&, const gate&) = default;
};

}  // namespace qubikos
