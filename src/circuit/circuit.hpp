// Quantum circuit: a qubit count plus an ordered gate sequence.
#pragma once

#include <vector>

#include "circuit/gate.hpp"

namespace qubikos {

class circuit {
public:
    circuit() = default;
    explicit circuit(int num_qubits);

    [[nodiscard]] int num_qubits() const { return num_qubits_; }
    [[nodiscard]] std::size_t size() const { return gates_.size(); }
    [[nodiscard]] bool empty() const { return gates_.empty(); }
    [[nodiscard]] const std::vector<gate>& gates() const { return gates_; }
    [[nodiscard]] const gate& operator[](std::size_t i) const { return gates_[i]; }

    /// Appends a gate; throws if an operand is out of range.
    void append(const gate& g);
    /// Inserts a gate before position `index` (index == size() appends).
    void insert(std::size_t index, const gate& g);
    /// Appends every gate of `other` (qubit counts must not shrink).
    void extend(const circuit& other);

    /// Removes every gate, keeping the qubit count and the gate storage
    /// capacity — the reuse hook of per-trial emission arenas.
    void clear_gates() { gates_.clear(); }

    [[nodiscard]] std::size_t num_two_qubit_gates() const;
    [[nodiscard]] std::size_t num_swap_gates() const;
    [[nodiscard]] std::size_t num_single_qubit_gates() const;

    /// Indices (into gates()) of the two-qubit gates, in circuit order.
    [[nodiscard]] std::vector<std::size_t> two_qubit_gate_indices() const;

    /// Copy with every swap gate removed (used to recover the logical
    /// circuit from a transpiled one in tests).
    [[nodiscard]] circuit without_swaps() const;

    /// Circuit depth counting every gate as one time step (gates on
    /// disjoint qubits may share a step).
    [[nodiscard]] int depth() const;

private:
    void check_gate(const gate& g) const;

    int num_qubits_ = 0;
    std::vector<gate> gates_;
};

}  // namespace qubikos
