// Interaction graph GI(Q, EQ) of a circuit (Sec. II of the paper): one
// vertex per program qubit, an edge (q, q') for every pair coupled by at
// least one two-qubit gate.
#pragma once

#include <cstddef>

#include "circuit/circuit.hpp"
#include "graph/graph.hpp"

namespace qubikos {

/// Interaction graph of the whole circuit.
[[nodiscard]] graph interaction_graph(const circuit& c);

/// Interaction graph of the gate index range [first, last) only.
[[nodiscard]] graph interaction_graph(const circuit& c, std::size_t first, std::size_t last);

/// Interaction graph spanned by an explicit list of two-qubit pairs over
/// `num_qubits` vertices.
[[nodiscard]] graph interaction_graph_of_edges(int num_qubits, const std::vector<edge>& pairs);

}  // namespace qubikos
