// Exact quantum layout synthesis via SAT (OLSQ2-style transition model).
//
// Reproduces the role OLSQ2 [Lin et al., DAC'23] plays in the paper's
// Sec. IV-A optimality study: decide, for increasing k, whether a circuit
// can be executed on a coupling graph with at most k SWAP gates. The
// encoding is the transition-based model: k+1 mapping "blocks" connected
// by single-SWAP transitions, with every two-qubit gate assigned to one
// block where its qubits must be adjacent, respecting the gate dependency
// DAG.
//
// feasible(k) is monotone in k (unused trailing swaps are always legal),
// so the smallest satisfiable k is the provably optimal SWAP count; the
// result also reports that k-1 was proven UNSAT.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/routed.hpp"
#include "graph/graph.hpp"

namespace qubikos::exact {

enum class feasibility { feasible, infeasible, unknown };

struct olsq_options {
    /// Largest swap count to try before giving up.
    int max_swaps = 16;
    /// Per-SAT-call conflict budget (0 = unlimited).
    std::uint64_t conflict_limit = 0;
    /// Start the search at this k (use when a lower bound is known).
    int min_swaps = 0;
};

struct olsq_result {
    /// True when an optimal count was established (SAT at k, UNSAT at k-1
    /// or k == min_swaps).
    bool solved = false;
    /// True when a conflict/size budget aborted the search.
    bool aborted = false;
    int optimal_swaps = -1;
    /// Witness synthesis extracted from the SAT model.
    routed_circuit witness;
    /// Conflicts spent per attempted k (index 0 = min_swaps).
    std::vector<std::uint64_t> conflicts_per_k;
};

/// Single decision: is `c` routable on `coupling` with at most k swaps?
/// `witness` (optional) receives a routed circuit when feasible.
[[nodiscard]] feasibility check_swap_count(const circuit& c, const graph& coupling, int k,
                                           std::uint64_t conflict_limit = 0,
                                           routed_circuit* witness = nullptr);

/// Minimal swap count by iterating check_swap_count upward from
/// options.min_swaps.
[[nodiscard]] olsq_result solve_optimal(const circuit& c, const graph& coupling,
                                        const olsq_options& options = {});

}  // namespace qubikos::exact
