// Brute-force exact layout synthesis for tiny instances.
//
// Independent cross-check for the SAT-based solver: breadth-first search
// over (mapping, executed-gate-set) states, starting from *every* initial
// mapping at cost 0 (the initial mapping is free), with greedy closure
// (executing an executable gate is never harmful for swap count). The
// minimal BFS depth that executes all gates is the optimal SWAP count.
//
// Complexity is factorial in qubit count — intended for <= ~7 physical
// qubits and <= 64 two-qubit gates, i.e. unit tests.
#pragma once

#include <cstddef>

#include "circuit/circuit.hpp"
#include "graph/graph.hpp"

namespace qubikos::exact {

struct brute_options {
    int max_swaps = 8;
    /// Abort (solved=false) when the visited-state set exceeds this.
    std::size_t max_states = 5'000'000;
};

struct brute_result {
    bool solved = false;
    int optimal_swaps = -1;
    std::size_t states_explored = 0;
};

[[nodiscard]] brute_result brute_force_optimal_swaps(const circuit& c, const graph& coupling,
                                                     const brute_options& options = {});

}  // namespace qubikos::exact
