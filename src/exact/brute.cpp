#include "exact/brute.hpp"

#include <cstdint>
#include <deque>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "circuit/dag.hpp"

namespace qubikos::exact {

namespace {

struct state {
    std::uint64_t placement;  // q2p packed 4 bits per program qubit
    std::uint64_t executed;   // bitmask over DAG nodes

    friend bool operator==(const state&, const state&) = default;
};

struct state_hash {
    std::size_t operator()(const state& s) const {
        std::uint64_t h = s.placement * 0x9e3779b97f4a7c15ULL;
        h ^= s.executed + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
        return static_cast<std::size_t>(h);
    }
};

std::uint64_t pack(const std::vector<int>& q2p) {
    std::uint64_t out = 0;
    for (std::size_t q = 0; q < q2p.size(); ++q) {
        out |= static_cast<std::uint64_t>(q2p[q]) << (4 * q);
    }
    return out;
}

void unpack(std::uint64_t placement, std::vector<int>& q2p) {
    for (std::size_t q = 0; q < q2p.size(); ++q) {
        q2p[q] = static_cast<int>((placement >> (4 * q)) & 0xf);
    }
}

/// Executes every DAG-ready, coupling-adjacent gate until fixpoint.
std::uint64_t closure(const gate_dag& dag, const graph& coupling, const std::vector<int>& q2p,
                      std::uint64_t executed) {
    bool progress = true;
    while (progress) {
        progress = false;
        for (int g = 0; g < dag.num_nodes(); ++g) {
            if ((executed >> g) & 1) continue;
            bool ready = true;
            for (const int p : dag.preds(g)) {
                if (((executed >> p) & 1) == 0) {
                    ready = false;
                    break;
                }
            }
            if (!ready) continue;
            const gate& gt = dag.node_gate(g);
            if (coupling.has_edge(q2p[static_cast<std::size_t>(gt.q0)],
                                  q2p[static_cast<std::size_t>(gt.q1)])) {
                executed |= std::uint64_t{1} << g;
                progress = true;
            }
        }
    }
    return executed;
}

}  // namespace

brute_result brute_force_optimal_swaps(const circuit& c, const graph& coupling,
                                       const brute_options& options) {
    const int num_program = c.num_qubits();
    const int num_physical = coupling.num_vertices();
    if (num_physical > 16) {
        throw std::invalid_argument("brute_force_optimal_swaps: > 16 physical qubits");
    }
    if (num_program > num_physical) {
        throw std::invalid_argument("brute_force_optimal_swaps: more program than physical");
    }
    const gate_dag dag(c);
    if (dag.num_nodes() > 64) {
        throw std::invalid_argument("brute_force_optimal_swaps: > 64 two-qubit gates");
    }
    const std::uint64_t all_executed =
        dag.num_nodes() == 64 ? ~std::uint64_t{0}
                              : (std::uint64_t{1} << dag.num_nodes()) - 1;

    brute_result result;
    std::unordered_set<state, state_hash> seen;
    std::deque<state> frontier;

    // Seed with every injective placement (free choice of initial mapping).
    std::vector<int> q2p(static_cast<std::size_t>(num_program), -1);
    std::vector<char> used(static_cast<std::size_t>(num_physical), 0);
    bool done_at_zero = false;
    const auto seed = [&](auto&& self, int q) -> void {
        if (done_at_zero) return;
        if (q == num_program) {
            const std::uint64_t executed = closure(dag, coupling, q2p, 0);
            const state s{pack(q2p), executed};
            if (executed == all_executed) {
                done_at_zero = true;
                return;
            }
            if (seen.insert(s).second) frontier.push_back(s);
            return;
        }
        for (int p = 0; p < num_physical; ++p) {
            if (used[static_cast<std::size_t>(p)]) continue;
            used[static_cast<std::size_t>(p)] = 1;
            q2p[static_cast<std::size_t>(q)] = p;
            self(self, q + 1);
            used[static_cast<std::size_t>(p)] = 0;
        }
    };
    seed(seed, 0);
    if (done_at_zero) {
        result.solved = true;
        result.optimal_swaps = 0;
        result.states_explored = seen.size();
        return result;
    }

    // Level-order BFS: one level per SWAP.
    std::vector<int> p2q(static_cast<std::size_t>(num_physical), -1);
    std::vector<int> scratch(static_cast<std::size_t>(num_program), -1);
    for (int depth = 1; depth <= options.max_swaps; ++depth) {
        std::size_t level_size = frontier.size();
        if (level_size == 0) break;
        while (level_size-- > 0) {
            const state cur = frontier.front();
            frontier.pop_front();
            unpack(cur.placement, scratch);
            for (const auto& e : coupling.edges()) {
                // Swap occupants of physical e.a / e.b.
                std::fill(p2q.begin(), p2q.end(), -1);
                for (int q = 0; q < num_program; ++q) {
                    p2q[static_cast<std::size_t>(scratch[static_cast<std::size_t>(q)])] = q;
                }
                const int qa = p2q[static_cast<std::size_t>(e.a)];
                const int qb = p2q[static_cast<std::size_t>(e.b)];
                std::vector<int> next = scratch;
                if (qa != -1) next[static_cast<std::size_t>(qa)] = e.b;
                if (qb != -1) next[static_cast<std::size_t>(qb)] = e.a;
                const std::uint64_t executed = closure(dag, coupling, next, cur.executed);
                const state ns{pack(next), executed};
                if (executed == all_executed) {
                    result.solved = true;
                    result.optimal_swaps = depth;
                    result.states_explored = seen.size();
                    return result;
                }
                if (seen.size() >= options.max_states) {
                    result.states_explored = seen.size();
                    return result;  // aborted
                }
                if (seen.insert(ns).second) frontier.push_back(ns);
            }
        }
    }
    result.states_explored = seen.size();
    return result;  // not solvable within max_swaps
}

}  // namespace qubikos::exact
