#include "exact/olsq.hpp"

#include <stdexcept>

#include "circuit/dag.hpp"
#include "sat/encodings.hpp"
#include "sat/solver.hpp"

namespace qubikos::exact {

namespace {

using sat::lit;
using sat::neg;
using sat::pos;
using sat::var;

/// Variable bookkeeping for one (circuit, coupling, k) encoding.
struct encoding {
    int num_program;
    int num_physical;
    int num_blocks;  // k + 1
    int num_gates;
    int num_edges;

    // x[t][q][p], y[g][t], sigma[t][e] flattened.
    std::vector<var> x, y, sigma;

    [[nodiscard]] var map_var(int t, int q, int p) const {
        return x[(static_cast<std::size_t>(t) * static_cast<std::size_t>(num_program) +
                  static_cast<std::size_t>(q)) *
                     static_cast<std::size_t>(num_physical) +
                 static_cast<std::size_t>(p)];
    }
    [[nodiscard]] var gate_var(int g, int t) const {
        return y[static_cast<std::size_t>(g) * static_cast<std::size_t>(num_blocks) +
                 static_cast<std::size_t>(t)];
    }
    [[nodiscard]] var swap_var(int t, int e) const {
        return sigma[static_cast<std::size_t>(t) * static_cast<std::size_t>(num_edges) +
                     static_cast<std::size_t>(e)];
    }
};

encoding build(sat::solver& s, const circuit& c, const gate_dag& dag, const graph& coupling,
               int k) {
    encoding enc;
    enc.num_program = c.num_qubits();
    enc.num_physical = coupling.num_vertices();
    enc.num_blocks = k + 1;
    enc.num_gates = dag.num_nodes();
    enc.num_edges = coupling.num_edges();

    const auto make_vars = [&s](std::size_t count) {
        std::vector<var> out(count);
        for (auto& v : out) v = s.new_var();
        return out;
    };
    enc.x = make_vars(static_cast<std::size_t>(enc.num_blocks) *
                      static_cast<std::size_t>(enc.num_program) *
                      static_cast<std::size_t>(enc.num_physical));
    enc.y = make_vars(static_cast<std::size_t>(enc.num_gates) *
                      static_cast<std::size_t>(enc.num_blocks));
    enc.sigma = make_vars(static_cast<std::size_t>(k) * static_cast<std::size_t>(enc.num_edges));

    // 1. Each program qubit sits on exactly one physical qubit per block.
    for (int t = 0; t < enc.num_blocks; ++t) {
        for (int q = 0; q < enc.num_program; ++q) {
            std::vector<lit> row;
            row.reserve(static_cast<std::size_t>(enc.num_physical));
            for (int p = 0; p < enc.num_physical; ++p) row.push_back(pos(enc.map_var(t, q, p)));
            sat::exactly_one(s, row);
        }
        // 2. No physical qubit hosts two program qubits.
        for (int p = 0; p < enc.num_physical; ++p) {
            std::vector<lit> col;
            col.reserve(static_cast<std::size_t>(enc.num_program));
            for (int q = 0; q < enc.num_program; ++q) col.push_back(pos(enc.map_var(t, q, p)));
            sat::at_most_one(s, col);
        }
    }

    // 3. Exactly one swap per transition.
    for (int t = 0; t < k; ++t) {
        std::vector<lit> swaps;
        swaps.reserve(static_cast<std::size_t>(enc.num_edges));
        for (int e = 0; e < enc.num_edges; ++e) swaps.push_back(pos(enc.swap_var(t, e)));
        sat::exactly_one(s, swaps);
    }

    // 4. Transition consistency: the chosen swap exchanges its endpoints'
    //    occupants and fixes everything else.
    for (int t = 0; t < k; ++t) {
        for (int e = 0; e < enc.num_edges; ++e) {
            const lit sw = pos(enc.swap_var(t, e));
            const int pa = coupling.edges()[static_cast<std::size_t>(e)].a;
            const int pb = coupling.edges()[static_cast<std::size_t>(e)].b;
            for (int q = 0; q < enc.num_program; ++q) {
                // x[t+1][q][pa] <-> x[t][q][pb]
                s.add_clause(~sw, neg(enc.map_var(t, q, pb)), pos(enc.map_var(t + 1, q, pa)));
                s.add_clause(~sw, pos(enc.map_var(t, q, pb)), neg(enc.map_var(t + 1, q, pa)));
                // x[t+1][q][pb] <-> x[t][q][pa]
                s.add_clause(~sw, neg(enc.map_var(t, q, pa)), pos(enc.map_var(t + 1, q, pb)));
                s.add_clause(~sw, pos(enc.map_var(t, q, pa)), neg(enc.map_var(t + 1, q, pb)));
                // Everything else stays put.
                for (int p = 0; p < enc.num_physical; ++p) {
                    if (p == pa || p == pb) continue;
                    s.add_clause(~sw, neg(enc.map_var(t, q, p)), pos(enc.map_var(t + 1, q, p)));
                    s.add_clause(~sw, pos(enc.map_var(t, q, p)), neg(enc.map_var(t + 1, q, p)));
                }
            }
        }
    }

    // 5. Each gate executes in exactly one block.
    for (int g = 0; g < enc.num_gates; ++g) {
        std::vector<lit> blocks;
        blocks.reserve(static_cast<std::size_t>(enc.num_blocks));
        for (int t = 0; t < enc.num_blocks; ++t) blocks.push_back(pos(enc.gate_var(g, t)));
        sat::exactly_one(s, blocks);
    }

    // 6. Executability: a gate's qubits must be coupling-adjacent in its
    //    block.
    for (int g = 0; g < enc.num_gates; ++g) {
        const gate& gt = dag.node_gate(g);
        for (int t = 0; t < enc.num_blocks; ++t) {
            const lit yg = pos(enc.gate_var(g, t));
            for (int p = 0; p < enc.num_physical; ++p) {
                // y[g][t] & x[t][q0][p] -> OR_{p' in N(p)} x[t][q1][p']
                std::vector<lit> clause{~yg, neg(enc.map_var(t, gt.q0, p))};
                for (const int pn : coupling.neighbors(p)) {
                    clause.push_back(pos(enc.map_var(t, gt.q1, pn)));
                }
                s.add_clause(std::move(clause));
            }
        }
    }

    // 7. Dependencies: an immediate successor may not run in an earlier
    //    block than its predecessor.
    for (int g = 0; g < enc.num_gates; ++g) {
        for (const int succ : dag.succs(g)) {
            for (int t = 1; t < enc.num_blocks; ++t) {
                for (int tp = 0; tp < t; ++tp) {
                    s.add_clause(neg(enc.gate_var(g, t)), neg(enc.gate_var(succ, tp)));
                }
            }
        }
    }

    return enc;
}

/// Reconstructs a routed circuit from a SAT model.
routed_circuit decode(const sat::solver& s, const encoding& enc, const circuit& c,
                      const gate_dag& dag, const graph& coupling, int k) {
    routed_circuit out;

    std::vector<int> q2p(static_cast<std::size_t>(enc.num_program), -1);
    for (int q = 0; q < enc.num_program; ++q) {
        for (int p = 0; p < enc.num_physical; ++p) {
            if (s.model_value(enc.map_var(0, q, p))) {
                q2p[static_cast<std::size_t>(q)] = p;
                break;
            }
        }
    }
    out.initial = mapping::from_program_to_physical(q2p, enc.num_physical);

    // Block of each gate.
    std::vector<int> block(static_cast<std::size_t>(enc.num_gates), -1);
    for (int g = 0; g < enc.num_gates; ++g) {
        for (int t = 0; t < enc.num_blocks; ++t) {
            if (s.model_value(enc.gate_var(g, t))) {
                block[static_cast<std::size_t>(g)] = t;
                break;
            }
        }
    }

    // Single-qubit gates do not constrain the encoding; replay each one in
    // the block of the next two-qubit gate on the same qubit (or the last
    // block), just before that gate, preserving per-qubit order.
    std::vector<int> block_of_circuit_gate(c.size(), enc.num_blocks - 1);
    for (int g = 0; g < enc.num_gates; ++g) {
        block_of_circuit_gate[dag.circuit_index(g)] = block[static_cast<std::size_t>(g)];
    }
    {
        // Sweep backwards: a 1q gate inherits the block of the next gate
        // on its qubit.
        std::vector<int> next_block(static_cast<std::size_t>(c.num_qubits()),
                                    enc.num_blocks - 1);
        for (std::size_t i = c.size(); i-- > 0;) {
            const gate& gt = c[i];
            if (gt.is_two_qubit()) {
                next_block[static_cast<std::size_t>(gt.q0)] = block_of_circuit_gate[i];
                next_block[static_cast<std::size_t>(gt.q1)] = block_of_circuit_gate[i];
            } else {
                block_of_circuit_gate[i] = next_block[static_cast<std::size_t>(gt.q0)];
            }
        }
    }

    circuit physical(enc.num_physical);
    mapping current = out.initial;
    for (int t = 0; t < enc.num_blocks; ++t) {
        // Gates of block t in original circuit order (a topological order).
        for (std::size_t i = 0; i < c.size(); ++i) {
            if (block_of_circuit_gate[i] != t) continue;
            const gate& gt = c[i];
            if (gt.is_two_qubit()) {
                physical.append(
                    gate::two(gt.kind, current.physical(gt.q0), current.physical(gt.q1)));
            } else {
                physical.append(gate::single(gt.kind, current.physical(gt.q0), gt.angle));
            }
        }
        if (t < k) {
            for (int e = 0; e < enc.num_edges; ++e) {
                if (!s.model_value(enc.swap_var(t, e))) continue;
                const auto& edge = coupling.edges()[static_cast<std::size_t>(e)];
                physical.append(gate::swap_gate(edge.a, edge.b));
                current.swap_physical(edge.a, edge.b);
                break;
            }
        }
    }
    out.physical = std::move(physical);
    return out;
}

}  // namespace

feasibility check_swap_count(const circuit& c, const graph& coupling, int k,
                             std::uint64_t conflict_limit, routed_circuit* witness) {
    if (k < 0) throw std::invalid_argument("check_swap_count: negative k");
    if (c.num_qubits() > coupling.num_vertices()) {
        throw std::invalid_argument("check_swap_count: more program than physical qubits");
    }
    const gate_dag dag(c);
    sat::solver s;
    if (conflict_limit != 0) s.set_conflict_limit(conflict_limit);
    const encoding enc = build(s, c, dag, coupling, k);
    const sat::status st = s.solve();
    if (st == sat::status::unknown) return feasibility::unknown;
    if (st == sat::status::unsat) return feasibility::infeasible;
    if (witness != nullptr) *witness = decode(s, enc, c, dag, coupling, k);
    return feasibility::feasible;
}

olsq_result solve_optimal(const circuit& c, const graph& coupling, const olsq_options& options) {
    olsq_result result;
    for (int k = options.min_swaps; k <= options.max_swaps; ++k) {
        routed_circuit witness;
        const feasibility f = check_swap_count(c, coupling, k, options.conflict_limit, &witness);
        result.conflicts_per_k.push_back(0);  // per-call stats kept simple
        if (f == feasibility::unknown) {
            result.aborted = true;
            return result;
        }
        if (f == feasibility::feasible) {
            result.solved = true;
            result.optimal_swaps = k;
            result.witness = std::move(witness);
            return result;
        }
    }
    return result;  // not solvable within max_swaps
}

}  // namespace qubikos::exact
