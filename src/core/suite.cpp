#include "core/suite.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "circuit/qasm.hpp"
#include "util/json.hpp"

namespace qubikos::core {

namespace {

std::string instance_name(int swap_count, int index) {
    return "qubikos_s" + std::to_string(swap_count) + "_i" + std::to_string(index);
}

json::value edge_to_json(const edge& e) { return json::array{e.a, e.b}; }

edge edge_from_json(const json::value& v) {
    const auto& arr = v.as_array();
    if (arr.size() != 2) throw std::runtime_error("suite: malformed edge");
    return edge(arr[0].as_int(), arr[1].as_int());
}

json::value instance_metadata(const benchmark_instance& instance) {
    json::object meta;
    meta["arch"] = instance.arch_name;
    meta["seed"] = static_cast<std::int64_t>(instance.seed);
    meta["optimal_swaps"] = instance.optimal_swaps;

    json::array q2p;
    for (const int p : instance.answer.initial.program_to_physical()) q2p.push_back(p);
    meta["initial_mapping"] = std::move(q2p);

    json::array sections;
    for (const auto& section : instance.sections) {
        json::object s;
        json::array body;
        for (const auto& e : section.body) body.push_back(edge_to_json(e));
        s["body"] = std::move(body);
        s["special"] = edge_to_json(section.special);
        s["swap_physical"] = edge_to_json(section.swap_physical);
        json::array indices;
        for (const std::size_t i : section.body_gate_indices) indices.push_back(i);
        s["body_gate_indices"] = std::move(indices);
        s["special_gate_index"] = instance.sections.empty()
                                      ? json::value(0)
                                      : json::value(section.special_gate_index);
        sections.push_back(json::value(std::move(s)));
    }
    meta["sections"] = std::move(sections);
    return json::value(std::move(meta));
}

benchmark_instance instance_from_disk(const std::filesystem::path& dir, const std::string& name,
                                      int num_physical) {
    benchmark_instance instance;
    instance.logical = qasm::load((dir / (name + ".qasm")).string());

    std::ifstream meta_file(dir / (name + ".json"));
    if (!meta_file) throw std::runtime_error("suite: missing metadata for " + name);
    std::ostringstream buffer;
    buffer << meta_file.rdbuf();
    const json::value meta = json::parse(buffer.str());

    instance.arch_name = meta.at("arch").as_string();
    instance.seed = static_cast<std::uint64_t>(meta.at("seed").as_number());
    instance.optimal_swaps = meta.at("optimal_swaps").as_int();

    std::vector<int> q2p;
    for (const auto& v : meta.at("initial_mapping").as_array()) q2p.push_back(v.as_int());
    instance.answer.initial = mapping::from_program_to_physical(q2p, num_physical);
    instance.answer.physical = qasm::load((dir / (name + ".answer.qasm")).string());

    for (const auto& sv : meta.at("sections").as_array()) {
        section_info section;
        for (const auto& ev : sv.at("body").as_array()) {
            section.body.push_back(edge_from_json(ev));
        }
        section.special = edge_from_json(sv.at("special"));
        section.swap_physical = edge_from_json(sv.at("swap_physical"));
        for (const auto& iv : sv.at("body_gate_indices").as_array()) {
            section.body_gate_indices.push_back(static_cast<std::size_t>(iv.as_number()));
        }
        section.special_gate_index =
            static_cast<std::size_t>(sv.at("special_gate_index").as_number());
        instance.sections.push_back(std::move(section));
    }
    return instance;
}

}  // namespace

suite generate_suite(const arch::architecture& device, const suite_spec& spec) {
    suite out;
    out.spec = spec;
    std::uint64_t seed = spec.base_seed;
    for (const int swaps : spec.swap_counts) {
        for (int i = 0; i < spec.circuits_per_count; ++i) {
            generator_options options;
            options.num_swaps = swaps;
            options.total_two_qubit_gates = spec.total_two_qubit_gates;
            options.single_qubit_rate = spec.single_qubit_rate;
            options.seed = seed++;
            out.instances.push_back(generate(device, options));
        }
    }
    return out;
}

void save_suite(const suite& s, const std::string& directory) {
    const std::filesystem::path dir(directory);
    std::filesystem::create_directories(dir);

    json::object manifest;
    manifest["arch"] = s.spec.arch_name;
    manifest["circuits_per_count"] = s.spec.circuits_per_count;
    manifest["total_two_qubit_gates"] = s.spec.total_two_qubit_gates;
    manifest["single_qubit_rate"] = s.spec.single_qubit_rate;
    manifest["base_seed"] = static_cast<std::int64_t>(s.spec.base_seed);
    json::array counts;
    for (const int c : s.spec.swap_counts) counts.push_back(c);
    manifest["swap_counts"] = std::move(counts);

    json::array names;
    std::size_t index = 0;
    for (const auto& instance : s.instances) {
        // Reconstruct the (swap_count, i) pair from generation order.
        const std::size_t batch = index / static_cast<std::size_t>(s.spec.circuits_per_count);
        const int within = static_cast<int>(index % static_cast<std::size_t>(s.spec.circuits_per_count));
        const std::string name =
            instance_name(s.spec.swap_counts[batch], within);
        names.push_back(name);

        qasm::save(instance.logical, (dir / (name + ".qasm")).string());
        qasm::save(instance.answer.physical, (dir / (name + ".answer.qasm")).string());
        std::ofstream meta(dir / (name + ".json"));
        if (!meta) throw std::runtime_error("suite: cannot write metadata for " + name);
        meta << instance_metadata(instance).dump(2) << "\n";
        ++index;
    }
    manifest["instances"] = std::move(names);

    std::ofstream mf(dir / "manifest.json");
    if (!mf) throw std::runtime_error("suite: cannot write manifest");
    mf << json::value(std::move(manifest)).dump(2) << "\n";
}

suite load_suite(const std::string& directory) {
    const std::filesystem::path dir(directory);
    std::ifstream mf(dir / "manifest.json");
    if (!mf) throw std::runtime_error("suite: missing manifest in " + directory);
    std::ostringstream buffer;
    buffer << mf.rdbuf();
    const json::value manifest = json::parse(buffer.str());

    suite out;
    out.spec.arch_name = manifest.at("arch").as_string();
    out.spec.circuits_per_count = manifest.at("circuits_per_count").as_int();
    out.spec.total_two_qubit_gates =
        static_cast<std::size_t>(manifest.at("total_two_qubit_gates").as_number());
    out.spec.single_qubit_rate = manifest.at("single_qubit_rate").as_number();
    out.spec.base_seed = static_cast<std::uint64_t>(manifest.at("base_seed").as_number());
    for (const auto& v : manifest.at("swap_counts").as_array()) {
        out.spec.swap_counts.push_back(v.as_int());
    }

    const auto device = arch::by_name(out.spec.arch_name);
    for (const auto& nv : manifest.at("instances").as_array()) {
        out.instances.push_back(
            instance_from_disk(dir, nv.as_string(), device.coupling.num_vertices()));
    }
    return out;
}

}  // namespace qubikos::core
