// Benchmark suite generation and on-disk format.
//
// A suite is the unit the paper's experiments run on: a batch of QUBIKOS
// instances for one architecture across several designed SWAP counts
// (Sec. IV generates 100 circuits per count for the optimality study and
// 10 per count for the tool evaluation). On disk a suite is a directory:
//   manifest.json               - spec + per-instance index
//   <name>.qasm                 - the logical benchmark circuit
//   <name>.answer.qasm          - the reference optimal transpilation
//   <name>.json                 - metadata (mapping, sections, seed)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/architectures.hpp"
#include "core/qubikos.hpp"

namespace qubikos::core {

struct suite_spec {
    std::string arch_name;
    /// Designed optimal swap counts, one sub-batch per entry.
    std::vector<int> swap_counts;
    int circuits_per_count = 10;
    /// Two-qubit gate padding target per circuit (0 = backbone only).
    std::size_t total_two_qubit_gates = 0;
    double single_qubit_rate = 0.0;
    std::uint64_t base_seed = 1;
};

struct suite {
    suite_spec spec;
    std::vector<benchmark_instance> instances;
};

/// Generates spec.swap_counts.size() * spec.circuits_per_count instances
/// with deterministic per-instance seeds derived from base_seed.
[[nodiscard]] suite generate_suite(const arch::architecture& device, const suite_spec& spec);

/// Serializes a suite into `directory` (created if absent).
void save_suite(const suite& s, const std::string& directory);

/// Loads a previously saved suite; the architecture is reconstructed by
/// name via arch::by_name.
[[nodiscard]] suite load_suite(const std::string& directory);

}  // namespace qubikos::core
