#include "core/quekno.hpp"

#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace qubikos::core {

quekno_instance generate_quekno(const arch::architecture& device,
                                const quekno_options& options) {
    if (options.num_transitions < 0) throw std::invalid_argument("quekno: negative transitions");
    if (options.gates_per_epoch < 1) throw std::invalid_argument("quekno: need gates per epoch");
    const graph& coupling = device.coupling;
    const int n = coupling.num_vertices();
    if (coupling.num_edges() == 0) throw std::invalid_argument("quekno: no coupling edges");

    rng random(options.seed);
    const mapping initial = mapping::random(n, n, random);
    mapping current = initial;

    circuit logical(n);
    circuit physical(n);

    const auto emit_edge = [&](const edge& physical_edge) {
        const int qa = current.program_at(physical_edge.a);
        const int qb = current.program_at(physical_edge.b);
        logical.append(gate::cx(qa, qb));
        physical.append(gate::cx(physical_edge.a, physical_edge.b));
    };

    // A new interaction enabled by swapping (a,b): the qubit moved onto
    // `a` can now reach a neighbor of `a` that was not reachable from
    // `b`. Emitting that pair right after the transition makes the swap
    // plausibly necessary (though, unlike QUBIKOS, nothing proves it).
    const auto fresh_interaction = [&](const edge& swapped) -> edge {
        for (const auto& [to, from] : {std::pair{swapped.a, swapped.b},
                                       std::pair{swapped.b, swapped.a}}) {
            for (const int pn : coupling.neighbors(to)) {
                if (pn != from && !coupling.has_edge(pn, from)) return edge(to, pn);
            }
        }
        return swapped;  // dense graphs: fall back to the swap edge itself
    };

    edge last_swap;
    for (int epoch = 0; epoch <= options.num_transitions; ++epoch) {
        for (int i = 0; i < options.gates_per_epoch; ++i) {
            if (epoch > 0 && i == 0) {
                emit_edge(fresh_interaction(last_swap));
                continue;
            }
            emit_edge(coupling.edges()[random.below(coupling.edges().size())]);
        }
        if (epoch < options.num_transitions) {
            last_swap = coupling.edges()[random.below(coupling.edges().size())];
            physical.append(gate::swap_gate(last_swap.a, last_swap.b));
            current.swap_physical(last_swap.a, last_swap.b);
        }
    }

    quekno_instance out;
    out.logical = std::move(logical);
    out.construction.initial = initial;
    out.construction.physical = std::move(physical);
    out.construction_swaps = options.num_transitions;
    return out;
}

}  // namespace qubikos::core
