#include "core/qubikos.hpp"

#include <algorithm>
#include <set>

#include "graph/bfs.hpp"
#include "graph/connectivity.hpp"
#include "util/rng.hpp"

namespace qubikos::core {

namespace {

/// One forcing-swap choice: the coupling edge, the anchor endpoint p and
/// the new-neighbor endpoint p'' (a neighbor of the other endpoint that is
/// neither p nor adjacent to p).
struct swap_choice {
    edge coupling_edge;
    int anchor;         // p
    int new_neighbor;   // p''
};

/// Enumerates every (edge, anchor, new-neighbor) combination that forces a
/// swap: swapping the edge must give the anchor's occupant a neighbor it
/// could not reach before.
std::vector<swap_choice> enumerate_swap_choices(const graph& coupling) {
    std::vector<swap_choice> choices;
    for (const auto& e : coupling.edges()) {
        for (const auto& [p, other] : {std::pair{e.a, e.b}, std::pair{e.b, e.a}}) {
            for (const int candidate : coupling.neighbors(other)) {
                if (candidate == p) continue;
                if (coupling.has_edge(candidate, p)) continue;
                choices.push_back({e, p, candidate});
            }
        }
    }
    return choices;
}

/// Algorithm 1: physical edge set of one section body. The anchor's full
/// star plus the full star of every physical qubit with strictly larger
/// degree (deduplicated).
std::vector<edge> section_body_physical(const graph& coupling, int anchor) {
    std::set<edge> body;
    for (const int pn : coupling.neighbors(anchor)) body.insert(edge(anchor, pn));
    const int anchor_degree = coupling.degree(anchor);
    for (int p = 0; p < coupling.num_vertices(); ++p) {
        if (coupling.degree(p) <= anchor_degree) continue;
        for (const int pn : coupling.neighbors(p)) body.insert(edge(p, pn));
    }
    return {body.begin(), body.end()};
}

/// Pulls a physical edge back through the mapping to program qubits.
edge to_program(const mapping& f, const edge& physical) {
    return edge(f.program_at(physical.a), f.program_at(physical.b));
}

/// The coupling graph expressed over program qubits under mapping f: the
/// edges executable without any swap.
graph pulled_back_coupling(const graph& coupling, const mapping& f) {
    graph g(coupling.num_vertices());
    for (const auto& e : coupling.edges()) {
        const edge pe = to_program(f, e);
        g.add_edge(pe.a, pe.b);
    }
    return g;
}

/// A logical gate tagged with the index of the mapping it executes under
/// in the reference answer (body of section i -> i, special of section
/// i -> i+1, tail padding -> n), plus provenance for the verifier.
struct tagged_gate {
    gate g;
    int exec;
    int section = -1;        // -1 for padding/decoration gates
    bool is_special = false;
};

}  // namespace

benchmark_instance generate(const arch::architecture& device, const generator_options& options) {
    const graph& coupling = device.coupling;
    const int num_qubits = coupling.num_vertices();
    if (num_qubits < 3) throw generator_error("qubikos: device needs at least 3 qubits");
    if (options.num_swaps < 0) throw generator_error("qubikos: negative swap count");
    if (options.single_qubit_rate < 0.0) throw generator_error("qubikos: negative 1q rate");

    rng random(options.seed);
    const auto choices = enumerate_swap_choices(coupling);
    if (options.num_swaps > 0 && choices.empty()) {
        throw generator_error("qubikos: coupling graph admits no forcing swap (complete graph?)");
    }

    benchmark_instance out;
    out.arch_name = device.name;
    out.seed = options.seed;
    out.optimal_swaps = options.num_swaps;

    // Mapping after i swaps; mappings[0] is the initial mapping.
    std::vector<mapping> mappings;
    mappings.push_back(mapping::random(num_qubits, num_qubits, random));

    std::vector<tagged_gate> tagged;
    std::vector<edge> swap_edges;  // physical, one per section

    edge previous_special;  // program-qubit pair of the last special gate
    bool have_previous = false;

    for (int i = 0; i < options.num_swaps; ++i) {
        const mapping& f = mappings.back();
        const swap_choice choice = choices[random.below(choices.size())];

        section_info section;
        section.swap_physical = choice.coupling_edge;

        // Body (program-qubit pairs) executable under f.
        std::vector<edge> body;
        for (const auto& pe : section_body_physical(coupling, choice.anchor)) {
            body.push_back(to_program(f, pe));
        }
        const int q_star = f.program_at(choice.anchor);
        const int q_new = f.program_at(choice.new_neighbor);
        section.special = edge(q_star, q_new);

        // Connectivity patch: executable edges joining the body's
        // components (and the previous special gate's endpoints) so the
        // BFS orders below cover every gate.
        const graph allowed = pulled_back_coupling(coupling, f);
        std::vector<int> terminals;
        for (const auto& e : body) {
            terminals.push_back(e.a);
            terminals.push_back(e.b);
        }
        if (have_previous) {
            terminals.push_back(previous_special.a);
            terminals.push_back(previous_special.b);
        }
        std::sort(terminals.begin(), terminals.end());
        terminals.erase(std::unique(terminals.begin(), terminals.end()), terminals.end());
        const auto patch = connect_components(allowed, body, terminals);
        body.insert(body.end(), patch.begin(), patch.end());
        section.body = body;

        // Algorithm 2: gate order = BFS edge order from the previous
        // special gate, then reversed BFS edge order toward this section's
        // special gate, then the special gate itself.
        graph body_graph(num_qubits);
        for (const auto& e : body) body_graph.add_edge_if_absent(e.a, e.b);

        std::vector<edge> ordered;
        if (have_previous) {
            const auto prefix =
                bfs_edge_order(body_graph, {previous_special.a, previous_special.b});
            if (prefix.size() != static_cast<std::size_t>(body_graph.num_edges())) {
                throw generator_error("qubikos: internal error: prefix BFS missed edges");
            }
            ordered.insert(ordered.end(), prefix.begin(), prefix.end());
        }
        auto suffix = bfs_edge_order(body_graph, {q_star, q_new});
        if (suffix.size() != static_cast<std::size_t>(body_graph.num_edges())) {
            throw generator_error("qubikos: internal error: suffix BFS missed edges");
        }
        std::reverse(suffix.begin(), suffix.end());
        ordered.insert(ordered.end(), suffix.begin(), suffix.end());

        for (const auto& e : ordered) tagged.push_back({gate::cx(e.a, e.b), i, i, false});
        tagged.push_back({gate::cx(q_star, q_new), i + 1, i, true});  // special gate

        out.sections.push_back(std::move(section));

        previous_special = edge(q_star, q_new);
        have_previous = true;

        mapping next = f;
        next.swap_physical(choice.coupling_edge.a, choice.coupling_edge.b);
        mappings.push_back(std::move(next));
        swap_edges.push_back(choice.coupling_edge);
    }

    // Algorithm 3, padding phase: insert redundant gates executable under
    // the mapping active at the insertion point. Execution tags stay
    // monotone, so insertion positions for tag r span
    // [lower_bound(r), upper_bound(r)].
    const int num_regions = options.num_swaps + 1;
    std::size_t two_qubit_count = tagged.size();
    while (two_qubit_count < options.total_two_qubit_gates) {
        const int region = random.range(0, num_regions - 1);
        const mapping& f = mappings[static_cast<std::size_t>(region)];
        const auto& ce = coupling.edges()[random.below(coupling.edges().size())];
        const edge pe = to_program(f, ce);

        const auto tag_less = [](const tagged_gate& tg, int r) { return tg.exec < r; };
        const auto tag_greater = [](int r, const tagged_gate& tg) { return r < tg.exec; };
        const auto lo = std::lower_bound(tagged.begin(), tagged.end(), region, tag_less);
        const auto hi = std::upper_bound(tagged.begin(), tagged.end(), region, tag_greater);
        const std::size_t lo_index = static_cast<std::size_t>(lo - tagged.begin());
        const std::size_t hi_index = static_cast<std::size_t>(hi - tagged.begin());
        const std::size_t position =
            lo_index + random.below(hi_index - lo_index + 1);
        tagged.insert(tagged.begin() + static_cast<std::ptrdiff_t>(position),
                      {gate::cx(pe.a, pe.b), region, -1, false});
        ++two_qubit_count;
    }

    // Optional single-qubit decoration (never constrains QLS).
    if (options.single_qubit_rate > 0.0) {
        const auto count = static_cast<std::size_t>(options.single_qubit_rate *
                                                    static_cast<double>(two_qubit_count));
        for (std::size_t i = 0; i < count; ++i) {
            const std::size_t position = random.below(tagged.size() + 1);
            const int exec = position < tagged.size()
                                 ? tagged[position].exec
                                 : num_regions - 1;
            const int q = random.range(0, num_qubits - 1);
            const gate g = random.chance(0.5)
                               ? gate::h(q)
                               : gate::rz(q, random.uniform() * 3.14159265358979323846);
            tagged.insert(tagged.begin() + static_cast<std::ptrdiff_t>(position),
                          {g, exec, -1, false});
        }
    }

    // Materialize the logical circuit and the reference answer.
    circuit logical(num_qubits);
    circuit physical(num_qubits);
    int current = 0;
    for (const auto& tg : tagged) {
        logical.append(tg.g);
        while (current < tg.exec) {
            physical.append(gate::swap_gate(swap_edges[static_cast<std::size_t>(current)].a,
                                            swap_edges[static_cast<std::size_t>(current)].b));
            ++current;
        }
        const mapping& f = mappings[static_cast<std::size_t>(tg.exec)];
        if (tg.g.is_two_qubit()) {
            physical.append(gate::two(tg.g.kind, f.physical(tg.g.q0), f.physical(tg.g.q1)));
        } else {
            physical.append(gate::single(tg.g.kind, f.physical(tg.g.q0), tg.g.angle));
        }
    }
    // Trailing swaps (possible when the last section's special gate is the
    // final gate and num_swaps regions were never entered — cannot happen
    // for generated instances, but keep the walk total anyway).
    while (current < options.num_swaps) {
        physical.append(gate::swap_gate(swap_edges[static_cast<std::size_t>(current)].a,
                                        swap_edges[static_cast<std::size_t>(current)].b));
        ++current;
    }

    out.logical = std::move(logical);
    out.answer.initial = mappings.front();
    out.answer.physical = std::move(physical);

    // Collect per-section gate indices from the provenance tags (padding
    // gates interleave with the backbone, so ranges are not contiguous).
    for (std::size_t i = 0; i < tagged.size(); ++i) {
        const auto& tg = tagged[i];
        if (tg.section < 0) continue;
        auto& section = out.sections[static_cast<std::size_t>(tg.section)];
        if (tg.is_special) {
            section.special_gate_index = i;
        } else {
            section.body_gate_indices.push_back(i);
        }
    }

    return out;
}

}  // namespace qubikos::core
