// QUEKNO-style benchmarks (Li, Zhou, Feng [29]): known *near-optimal*
// transformation cost, no optimality proof.
//
// Construction: walk a sequence of mappings connected by random SWAPs;
// between transitions, emit gates executable under the current mapping,
// always including at least one gate that the *previous* mapping could
// not execute (so the walk's swaps are plausibly needed). The swap count
// of the walk is an upper bound on the optimum — the paper's point is
// that, unlike QUBIKOS, nothing certifies it as a lower bound, so
// optimality gaps measured against it are only approximate. Including
// this generator lets the benches contrast the two benchmark families.
#pragma once

#include <cstdint>

#include "arch/architectures.hpp"
#include "circuit/circuit.hpp"
#include "circuit/routed.hpp"

namespace qubikos::core {

struct quekno_options {
    /// Number of SWAP transitions in the construction walk.
    int num_transitions = 5;
    /// Two-qubit gates emitted per mapping epoch.
    int gates_per_epoch = 20;
    std::uint64_t seed = 1;
};

struct quekno_instance {
    circuit logical;
    /// The construction's transpilation (num_transitions swaps) — an
    /// upper bound on the optimum, NOT a certified optimum.
    routed_circuit construction;
    int construction_swaps = 0;
};

[[nodiscard]] quekno_instance generate_quekno(const arch::architecture& device,
                                              const quekno_options& options);

}  // namespace qubikos::core
