// QUEKO-style benchmarks (Tan & Cong [28]): known-optimal depth, zero
// SWAPs.
//
// A hidden mapping is drawn, then gates are emitted layer by layer using
// only coupling-adjacent pairs under that mapping, with each layer chained
// to the previous one so the depth cannot compress. The paper uses QUEKO
// as the contrast case: these circuits are solvable by subgraph
// isomorphism (VF2) alone, which is exactly what QUBIKOS circuits defeat.
#pragma once

#include <cstdint>

#include "arch/architectures.hpp"
#include "circuit/circuit.hpp"
#include "circuit/mapping.hpp"

namespace qubikos::core {

struct queko_options {
    /// Known-optimal circuit depth (>= 1).
    int depth = 10;
    /// Expected fraction of a random matching to fill per layer, in (0,1].
    double density = 0.5;
    std::uint64_t seed = 1;
};

struct queko_instance {
    circuit logical;
    /// A mapping under which every gate is executable in place (witness
    /// for the 0-SWAP optimum).
    mapping hidden_mapping;
    int optimal_depth = 0;
    static constexpr int optimal_swaps = 0;
};

[[nodiscard]] queko_instance generate_queko(const arch::architecture& device,
                                            const queko_options& options);

}  // namespace qubikos::core
