// Structural verifier for generated QUBIKOS instances.
//
// Mechanically checks the proof obligations of Sec. III-D on a concrete
// instance:
//   (V1) the reference answer is a valid routing of the logical circuit
//        and uses exactly `optimal_swaps` SWAP gates  (upper bound);
//   (V2) every section's interaction graph (body + special gate) is NOT
//        subgraph-monomorphic to the coupling graph     (Lemma 1);
//   (V3) within a section, every body gate precedes the special gate in
//        the dependency DAG                              (Lemma 2);
//   (V4) every gate of section i+1 depends on the special gate of
//        section i — sections execute serially           (Lemma 3);
//   (V5) body gates are executable in place under the section's mapping,
//        and the special gate is executable only after the swap.
// Together with an exact-solver check (tests / Sec. IV-A bench) this
// certifies the designed SWAP count is optimal.
#pragma once

#include <cstdint>
#include <string>

#include "arch/architectures.hpp"
#include "core/qubikos.hpp"

namespace qubikos::core {

struct verification_options {
    /// VF2 search budget per section; exceeding it fails verification as
    /// inconclusive rather than looping forever.
    std::uint64_t vf2_node_limit = 5'000'000;
};

struct verification_report {
    bool valid = false;
    std::string error;

    explicit operator bool() const { return valid; }
};

[[nodiscard]] verification_report verify_structure(const benchmark_instance& instance,
                                                   const arch::architecture& device,
                                                   const verification_options& options = {});

}  // namespace qubikos::core
