#include "core/verifier.hpp"

#include <deque>
#include <vector>

#include "circuit/dag.hpp"
#include "circuit/interaction.hpp"
#include "graph/vf2.hpp"

namespace qubikos::core {

namespace {

verification_report fail(std::string why) {
    verification_report r;
    r.valid = false;
    r.error = std::move(why);
    return r;
}

/// Descendant bitmap of a DAG node (everything that depends on it).
std::vector<char> descendants(const gate_dag& dag, int node) {
    std::vector<char> seen(static_cast<std::size_t>(dag.num_nodes()), 0);
    std::deque<int> queue{node};
    while (!queue.empty()) {
        const int cur = queue.front();
        queue.pop_front();
        for (const int s : dag.succs(cur)) {
            if (!seen[static_cast<std::size_t>(s)]) {
                seen[static_cast<std::size_t>(s)] = 1;
                queue.push_back(s);
            }
        }
    }
    return seen;
}

}  // namespace

namespace {
verification_report verify_structure_impl(const benchmark_instance& instance,
                                          const arch::architecture& device,
                                          const verification_options& options);
}  // namespace

verification_report verify_structure(const benchmark_instance& instance,
                                     const arch::architecture& device,
                                     const verification_options& options) {
    // A corrupted instance may hold out-of-range indices; the verifier's
    // contract is to report, never to throw.
    try {
        return verify_structure_impl(instance, device, options);
    } catch (const std::exception& e) {
        return fail(std::string("verification raised: ") + e.what());
    }
}

namespace {
verification_report verify_structure_impl(const benchmark_instance& instance,
                                          const arch::architecture& device,
                                          const verification_options& options) {
    const graph& coupling = device.coupling;

    // (V1) Reference answer validity and swap count.
    const auto routed = validate_routed(instance.logical, instance.answer, coupling);
    if (!routed) return fail("answer invalid: " + routed.error);
    if (routed.swap_count != static_cast<std::size_t>(instance.optimal_swaps)) {
        return fail("answer uses " + std::to_string(routed.swap_count) + " swaps, declared " +
                    std::to_string(instance.optimal_swaps));
    }
    if (static_cast<int>(instance.sections.size()) != instance.optimal_swaps) {
        return fail("section count != optimal swap count");
    }

    const gate_dag dag(instance.logical);
    // Map circuit gate index -> DAG node.
    std::vector<int> node_of(instance.logical.size(), -1);
    for (int node = 0; node < dag.num_nodes(); ++node) {
        node_of[dag.circuit_index(node)] = node;
    }

    // Replay mappings f_0 .. f_n.
    std::vector<mapping> mappings{instance.answer.initial};
    for (const auto& section : instance.sections) {
        mapping next = mappings.back();
        next.swap_physical(section.swap_physical.a, section.swap_physical.b);
        mappings.push_back(std::move(next));
    }

    for (std::size_t i = 0; i < instance.sections.size(); ++i) {
        const auto& section = instance.sections[i];
        const mapping& f = mappings[i];
        const mapping& f_next = mappings[i + 1];

        // (V5) Body executable in place; special only after the swap.
        for (const auto& e : section.body) {
            if (!coupling.has_edge(f.physical(e.a), f.physical(e.b))) {
                return fail("section " + std::to_string(i) + ": body edge (" +
                            std::to_string(e.a) + "," + std::to_string(e.b) +
                            ") not executable under its mapping");
            }
        }
        if (coupling.has_edge(f.physical(section.special.a), f.physical(section.special.b))) {
            return fail("section " + std::to_string(i) +
                        ": special gate already executable before the swap");
        }
        if (!coupling.has_edge(f_next.physical(section.special.a),
                               f_next.physical(section.special.b))) {
            return fail("section " + std::to_string(i) +
                        ": special gate not executable after the swap");
        }

        // (V2) Non-isomorphism of body + special.
        std::vector<edge> all_edges = section.body;
        all_edges.push_back(section.special);
        const graph gi =
            interaction_graph_of_edges(instance.logical.num_qubits(), all_edges);
        const auto vf2 =
            find_subgraph_monomorphism(gi, coupling, {options.vf2_node_limit});
        if (vf2.limit_hit) {
            return fail("section " + std::to_string(i) + ": VF2 node limit hit (inconclusive)");
        }
        if (vf2.found) {
            return fail("section " + std::to_string(i) +
                        ": interaction graph embeds into the coupling graph "
                        "(would not force a swap)");
        }

        // (V3) Every body gate precedes the special gate.
        const int special_node = node_of[section.special_gate_index];
        if (special_node < 0) return fail("section " + std::to_string(i) + ": bad special index");
        const auto special_ancestors = dag.ancestors(special_node);
        for (const std::size_t gi_index : section.body_gate_indices) {
            const int body_node = node_of[gi_index];
            if (body_node < 0) return fail("section " + std::to_string(i) + ": bad body index");
            if (!special_ancestors[static_cast<std::size_t>(body_node)]) {
                return fail("section " + std::to_string(i) + ": body gate #" +
                            std::to_string(gi_index) + " does not precede the special gate");
            }
        }

        // (V4) Serialization across sections.
        if (i > 0) {
            const int prev_special =
                node_of[instance.sections[i - 1].special_gate_index];
            const auto reachable = descendants(dag, prev_special);
            const auto requires_dependency = [&](std::size_t gate_index) {
                const int node = node_of[gate_index];
                return node >= 0 && reachable[static_cast<std::size_t>(node)] != 0;
            };
            for (const std::size_t gi_index : section.body_gate_indices) {
                if (!requires_dependency(gi_index)) {
                    return fail("section " + std::to_string(i) + ": body gate #" +
                                std::to_string(gi_index) +
                                " does not depend on the previous special gate");
                }
            }
            if (!requires_dependency(section.special_gate_index)) {
                return fail("section " + std::to_string(i) +
                            ": special gate does not depend on the previous special gate");
            }
        }
    }

    verification_report r;
    r.valid = true;
    return r;
}
}  // namespace

}  // namespace qubikos::core
