// QUBIKOS benchmark generator (Sec. III of the paper).
//
// Generates circuits whose optimal SWAP count on a given coupling graph is
// known by construction, together with the optimal transpilation witness:
//
//   1. (Algorithm 1) For each SWAP to be forced, pick a coupling edge
//      (p1,p2) and an anchor p in it such that the swap gives the program
//      qubit q* = f^-1(p) a *new* neighbor q''. Emit q*'s full physical
//      neighborhood as gates, plus the full neighborhoods of every
//      program qubit sitting on a physical qubit of degree > deg(p)
//      (occupying all higher-degree nodes), plus the *special gate*
//      (q*, q''). By a degree pigeonhole (Lemma 1) this interaction graph
//      embeds in no subgraph of the device, while everything except the
//      special gate executes in place under f.
//   2. (Algorithm 2) Order each section's gates by BFS edge-discovery
//      order from the previous special gate (prefix) and by reversed BFS
//      order toward the own special gate (suffix, special last), patching
//      in executable edges to connect components first. This serializes
//      sections in the dependency DAG (Lemmas 2-3), so optimal counts add
//      (Theorem 4).
//   3. (Algorithm 3) Concatenate n sections against the evolving mapping,
//      then pad with redundant gates that are executable under the mapping
//      active at their insertion point, which changes neither bound.
//
// The returned instance carries the logical circuit, the n-SWAP answer,
// and per-section metadata consumed by the structural verifier.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "arch/architectures.hpp"
#include "circuit/circuit.hpp"
#include "circuit/mapping.hpp"
#include "circuit/routed.hpp"
#include "graph/graph.hpp"

namespace qubikos::core {

class generator_error : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

struct generator_options {
    /// Number of forced SWAP gates (the known optimal count); >= 0.
    int num_swaps = 1;
    /// Pad the circuit with redundant executable gates up to this total
    /// two-qubit gate count (0 = backbone only; ignored when the backbone
    /// is already larger).
    std::size_t total_two_qubit_gates = 0;
    /// Expected single-qubit decoration gates per two-qubit gate (they
    /// never affect layout synthesis; default off).
    double single_qubit_rate = 0.0;
    std::uint64_t seed = 1;
};

/// Metadata of one backbone section (forces exactly one SWAP).
struct section_info {
    /// Program-qubit pairs executable under the section's mapping
    /// (anchor star + higher-degree stars + connectivity patch).
    std::vector<edge> body;
    /// The special gate (q*, q''): executable only after the swap.
    edge special;
    /// The physical coupling edge the forced SWAP acts on.
    edge swap_physical;
    /// Indices (into the logical circuit's gate list) of this section's
    /// backbone body gates, in order. Redundant padding gates interleave
    /// with these but are not part of any section.
    std::vector<std::size_t> body_gate_indices;
    /// Index of the special gate in the logical circuit.
    std::size_t special_gate_index = 0;
};

struct benchmark_instance {
    std::string arch_name;
    std::uint64_t seed = 0;
    /// The provably optimal SWAP count.
    int optimal_swaps = 0;
    /// The benchmark circuit (program qubits; |Q| = |P|).
    circuit logical;
    /// Reference optimal transpilation with exactly optimal_swaps SWAPs.
    routed_circuit answer;
    std::vector<section_info> sections;

    [[nodiscard]] const mapping& optimal_initial_mapping() const { return answer.initial; }
};

/// Generates one QUBIKOS instance. Throws generator_error when the device
/// admits no forcing swap (e.g. complete coupling graphs) or has fewer
/// than 3 qubits.
[[nodiscard]] benchmark_instance generate(const arch::architecture& device,
                                          const generator_options& options);

}  // namespace qubikos::core
