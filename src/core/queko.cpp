#include "core/queko.hpp"

#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace qubikos::core {

queko_instance generate_queko(const arch::architecture& device, const queko_options& options) {
    if (options.depth < 1) throw std::invalid_argument("queko: depth must be >= 1");
    if (options.density <= 0.0 || options.density > 1.0) {
        throw std::invalid_argument("queko: density must be in (0, 1]");
    }
    const graph& coupling = device.coupling;
    const int n = coupling.num_vertices();
    if (coupling.num_edges() == 0) throw std::invalid_argument("queko: no coupling edges");

    rng random(options.seed);
    queko_instance out;
    out.hidden_mapping = mapping::random(n, n, random);
    out.optimal_depth = options.depth;
    circuit c(n);

    // Physical qubits used by the previous layer (for depth chaining).
    std::vector<char> previous_layer(static_cast<std::size_t>(n), 0);

    for (int layer = 0; layer < options.depth; ++layer) {
        std::vector<char> used(static_cast<std::size_t>(n), 0);
        std::vector<edge> chosen;

        // Greedy random matching thinned by density.
        std::vector<edge> edges = coupling.edges();
        random.shuffle(edges);
        for (const auto& e : edges) {
            if (used[static_cast<std::size_t>(e.a)] || used[static_cast<std::size_t>(e.b)]) {
                continue;
            }
            if (!chosen.empty() && !random.chance(options.density)) continue;
            used[static_cast<std::size_t>(e.a)] = 1;
            used[static_cast<std::size_t>(e.b)] = 1;
            chosen.push_back(e);
        }

        // Chain to the previous layer so depth cannot compress: at least
        // one chosen edge must touch a qubit active in the previous layer.
        if (layer > 0) {
            bool chained = false;
            for (const auto& e : chosen) {
                if (previous_layer[static_cast<std::size_t>(e.a)] ||
                    previous_layer[static_cast<std::size_t>(e.b)]) {
                    chained = true;
                    break;
                }
            }
            if (!chained) {
                for (const auto& e : coupling.edges()) {
                    const bool touches_previous =
                        previous_layer[static_cast<std::size_t>(e.a)] ||
                        previous_layer[static_cast<std::size_t>(e.b)];
                    if (!touches_previous) continue;
                    if (used[static_cast<std::size_t>(e.a)] ||
                        used[static_cast<std::size_t>(e.b)]) {
                        continue;
                    }
                    used[static_cast<std::size_t>(e.a)] = 1;
                    used[static_cast<std::size_t>(e.b)] = 1;
                    chosen.push_back(e);
                    chained = true;
                    break;
                }
            }
            if (!chained) {
                // Fall back to a single-qubit gate on a previous-layer
                // qubit; it still blocks depth compression.
                for (int p = 0; p < n; ++p) {
                    if (previous_layer[static_cast<std::size_t>(p)]) {
                        c.append(gate::h(out.hidden_mapping.program_at(p)));
                        used[static_cast<std::size_t>(p)] = 1;
                        break;
                    }
                }
            }
        }

        std::fill(previous_layer.begin(), previous_layer.end(), 0);
        for (const auto& e : chosen) {
            c.append(gate::cx(out.hidden_mapping.program_at(e.a),
                              out.hidden_mapping.program_at(e.b)));
            previous_layer[static_cast<std::size_t>(e.a)] = 1;
            previous_layer[static_cast<std::size_t>(e.b)] = 1;
        }
        // Account for the fallback single-qubit chain gate.
        for (int p = 0; p < n; ++p) {
            if (used[static_cast<std::size_t>(p)]) previous_layer[static_cast<std::size_t>(p)] = 1;
        }
    }

    out.logical = std::move(c);
    return out;
}

}  // namespace qubikos::core
