#include "campaign/report.hpp"

#include <array>
#include <map>
#include <unordered_map>

#include "util/table.hpp"

namespace qubikos::campaign {

namespace {

/// Renders one tool's swap-ratio column: "n/a" where the denominator is
/// zero (QUEKO cells claim 0 optimal swaps), a ratio everywhere else.
std::string ratio_or_na(bool defined, double ratio) {
    return defined ? ascii_table::num(ratio, 4) + "x" : std::string("n/a");
}

/// Per-tool absolute sums across cells — the aggregate that stays finite
/// when ratios cannot (a 0-optimal-swaps suite never divides by zero).
struct tool_totals {
    std::size_t swaps = 0;
    long long optimal = 0;
};

tool_totals totals_for(const std::vector<eval::ratio_cell>& cells, const std::string& tool) {
    tool_totals totals;
    for (const auto& cell : cells) {
        if (cell.tool != tool) continue;
        totals.swaps += cell.total_swaps;
        totals.optimal += cell.total_optimal_swaps;
    }
    return totals;
}

/// The per-tool gap summary (mean/geomean over ratio-bearing cells plus
/// absolute totals), shared by the per-suite and cross-suite tables.
void render_gap_table(const std::vector<eval::ratio_cell>& cells,
                      const std::vector<std::string>& tools, std::string& out) {
    ascii_table gaps({"tool", "mean gap", "geomean gap", "total swaps", "total optimal"});
    for (const auto& tool : tools) {
        bool present = false;
        for (const auto& cell : cells) present = present || cell.tool == tool;
        if (!present) continue;
        const bool has_ratio = eval::has_ratio_cells(cells, tool);
        const tool_totals totals = totals_for(cells, tool);
        gaps.add(tool, ratio_or_na(has_ratio, has_ratio ? eval::mean_ratio(cells, tool) : 0.0),
                 ratio_or_na(has_ratio, has_ratio ? eval::geomean_ratio(cells, tool) : 0.0),
                 totals.swaps, totals.optimal);
    }
    out += gaps.str();
}

std::string suite_banner(std::size_t index, const campaign_suite& suite) {
    std::string counts;
    for (const int c : suite.swap_counts) {
        if (!counts.empty()) counts += ",";
        counts += std::to_string(c);
    }
    // The family tag only appears for non-qubikos suites, so v1 reports
    // keep their exact bytes.
    const std::string family = suite.family == benchmark_family::qubikos
                                   ? std::string()
                                   : std::string(" [") + family_name(suite.family) + "]";
    return "suite " + std::to_string(index) + ": " + suite.arch_name + family + " (counts {" +
           counts + "} x " + std::to_string(suite.circuits_per_count) + ", " +
           std::to_string(suite.total_two_qubit_gates) + "-gate padding, seed " +
           std::to_string(suite.base_seed) + ")\n";
}

void render_tools_suite(const campaign_suite& suite, std::size_t index,
                        const std::vector<eval::run_record>& records,
                        const std::vector<std::string>& tools, std::string& out,
                        std::vector<eval::ratio_cell>& all_cells) {
    out += suite_banner(index, suite);
    if (records.empty()) {
        out += "  (no records)\n\n";
        return;
    }
    const auto cells = eval::aggregate(records);
    ascii_table table({"tool", "designed n", "runs", "avg swaps", "swap ratio", "depth ratio"});
    for (const auto& cell : cells) {
        table.add(cell.tool, cell.designed_swaps, cell.runs,
                  ascii_table::num(cell.average_swaps, 2),
                  ratio_or_na(cell.has_ratio(), cell.swap_ratio),
                  ascii_table::num(cell.average_depth_ratio, 4) + "x");
    }
    out += table.str();

    render_gap_table(cells, tools, out);
    out += "\n";
    all_cells.insert(all_cells.end(), cells.begin(), cells.end());
}

void render_certify_suite(const campaign_suite& suite, std::size_t index,
                          const std::vector<stored_run>& runs, std::string& out) {
    out += suite_banner(index, suite);
    // Per designed count: recorded / SAT at n / UNSAT at n-1 / structure /
    // VF2-solvable / fully confirmed. The VF2 column only renders when
    // some run carries the probe, so pre-v2 certify reports keep their
    // exact bytes.
    bool any_vf2 = false;
    for (const auto& run : runs) any_vf2 = any_vf2 || run.vf2_solvable >= 0;
    std::map<int, std::array<int, 6>> counts;
    for (const auto& run : runs) {
        auto& c = counts[run.record.designed_swaps];
        ++c[0];
        if (run.sat_at_n == 1) ++c[1];
        if (run.unsat_below == 1) ++c[2];
        if (run.structure_ok == 1) ++c[3];
        if (run.record.valid) ++c[4];
        if (run.vf2_solvable == 1) ++c[5];
    }
    std::vector<std::string> header = {"designed n", "circuits", "SAT at n", "UNSAT at n-1",
                                       "structure ok"};
    if (any_vf2) header.push_back("VF2 solvable");
    header.push_back("confirmed");
    ascii_table table(header);
    for (const auto& [n, c] : counts) {
        const auto frac = [&](int k) { return std::to_string(k) + "/" + std::to_string(c[0]); };
        if (any_vf2) {
            table.add(n, c[0], frac(c[1]), frac(c[2]), frac(c[3]), frac(c[5]), frac(c[4]));
        } else {
            table.add(n, c[0], frac(c[1]), frac(c[2]), frac(c[3]), frac(c[4]));
        }
    }
    out += table.str();
    out += "\n";
}

}  // namespace

std::string render_report(const campaign_plan& plan, const merged_campaign& merged) {
    const campaign_spec& spec = plan.spec;
    std::string out;
    out += "campaign report: " + spec.name + " (mode " + mode_name(spec.mode) + ", fingerprint " +
           spec_fingerprint(spec) + ")\n";
    out += "units: " + std::to_string(merged.runs.size()) + "/" +
           std::to_string(plan.units.size()) + " recorded, " +
           std::to_string(merged.invalid_runs) + " invalid, " +
           std::to_string(merged.missing.size()) + " missing\n";
    if (!merged.missing.empty()) {
        out += "first missing:";
        for (std::size_t i = 0; i < merged.missing.size() && i < 5; ++i) {
            out += " " + merged.missing[i];
        }
        out += "\n";
    }
    // Rendered only when failures exist, so a drained (or fault-free)
    // campaign's report stays byte-identical to the clean reference.
    if (!merged.failed.empty()) {
        const int max_attempts = spec.max_attempts < 1 ? 1 : spec.max_attempts;
        std::size_t quarantined = 0;
        for (const auto& f : merged.failed) {
            if (f.attempts >= max_attempts) ++quarantined;
        }
        const std::size_t retryable = merged.failed.size() - quarantined;
        out += "failed units: " + std::to_string(quarantined) + " quarantined (re-open with "
               "`campaign run --retry-quarantined`), " + std::to_string(retryable) +
               " retryable (a plain `campaign run` retries them)\n";
        constexpr std::size_t listed = 5;
        for (std::size_t i = 0; i < merged.failed.size() && i < listed; ++i) {
            const auto& f = merged.failed[i];
            out += "  " + f.unit_id + " (attempts " + std::to_string(f.attempts) + "): " +
                   f.error + "\n";
        }
        if (merged.failed.size() > listed) {
            out += "  ... and " + std::to_string(merged.failed.size() - listed) + " more\n";
        }
    }
    out += "\n";

    // Group the plan-ordered runs by suite. merged.runs omits missing
    // units, so walk both sequences by unit ID.
    std::unordered_map<std::string, std::size_t> suite_of;
    suite_of.reserve(plan.units.size());
    for (const auto& unit : plan.units) suite_of.emplace(unit.id, unit.suite_index);
    std::vector<std::vector<stored_run>> per_suite(spec.suites.size());
    for (const auto& run : merged.runs) {
        per_suite[suite_of.at(run.unit_id)].push_back(run);
    }

    if (spec.mode == campaign_mode::certify) {
        int confirmed = 0;
        for (const auto& run : merged.runs) {
            if (run.record.valid) ++confirmed;
        }
        for (std::size_t i = 0; i < spec.suites.size(); ++i) {
            render_certify_suite(spec.suites[i], i, per_suite[i], out);
        }
        out += "confirmed " + std::to_string(confirmed) + "/" +
               std::to_string(merged.runs.size()) +
               " (paper: every circuit confirmed at exactly its designed count)\n";
        return out;
    }

    const std::vector<std::string> tools = resolved_tool_names(spec);
    std::vector<eval::ratio_cell> all_cells;
    for (std::size_t i = 0; i < spec.suites.size(); ++i) {
        std::vector<eval::run_record> records;
        records.reserve(per_suite[i].size());
        for (const auto& run : per_suite[i]) records.push_back(run.record);
        render_tools_suite(spec.suites[i], i, records, tools, out, all_cells);
    }

    if (spec.suites.size() > 1 && !all_cells.empty()) {
        out += "overall optimality gaps (all suites):\n";
        render_gap_table(all_cells, tools, out);
    }
    return out;
}

}  // namespace qubikos::campaign
