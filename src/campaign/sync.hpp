// Multi-machine store sync: collect segmented result stores into one.
//
// The campaign engine's distributed workflow is share-nothing: every
// machine runs its own disjoint shard(s) into its own store directory.
// `sync_stores` collects those directories into a destination store by
// copying record segments, and only the segments it is missing — each
// file is compared over its *durable* (record-valid) prefix, so an
// already-identical segment is skipped
// (re-sync is a no-op), a *grown* segment (the source writer appended
// since the last sync — the only legal way a segment's records change,
// since sealed segments are immutable and the open one is append-only)
// is prefix-verified and replaced, and durable prefixes that disagree
// are a hard error: append-only files that diverge mean two writers
// shared a (writer, seq) name, a corrupt disk, or mixed experiments —
// never something to paper over.
//
// Pulling from a *live* writer is safe: a segment copied mid-append can
// tear at most its final line, lands as the newest segment of that
// writer in the destination (exactly where the read path tolerates a
// torn tail), and is healed by a later sync once the writer has resumed
// (truncating the torn line) and appended past it — which is exactly why
// the content address covers only the record-valid prefix, not raw
// bytes. Head manifests
// are snapshotted before their segments are copied, so a head in the
// destination never claims more sealed bytes than the files beside it
// hold.
//
// Copies are atomic (temp + fsync + rename into the destination), so a
// killed sync leaves the destination a valid store — at worst missing
// files it would have copied next.
//
// Legacy v1 stores participate as sources: their single runs.jsonl is
// copied under the same grow-or-identical rule. Two distinct v1 sources
// collide on that name — merge those with `campaign merge` instead.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace qubikos::campaign {

struct sync_options {
    /// Per-file action lines on stdout.
    bool verbose = false;
};

struct sync_report {
    /// Record files the destination lacked entirely.
    std::size_t copied = 0;
    /// Existing record files replaced by a longer, prefix-identical
    /// version.
    std::size_t grown = 0;
    /// Record files already up to date (or newer in the destination).
    /// Head manifests never count here, so the three record counters sum
    /// to the record files examined.
    std::size_t unchanged = 0;
    /// Head manifests written or advanced (unadvanced ones are skipped
    /// without being counted anywhere).
    std::size_t heads = 0;

    /// True when the pass moved no record bytes (the idempotence check).
    [[nodiscard]] bool noop() const { return copied == 0 && grown == 0; }
};

/// Syncs every source store into `destination` (created if absent, spec
/// snapshot copied from the first source). All stores — sources and a
/// pre-existing destination — must carry the same spec fingerprint.
/// Throws on fingerprint mismatch, divergent same-name files, or a
/// source that is not a store.
sync_report sync_stores(const std::string& destination,
                        const std::vector<std::string>& sources,
                        const sync_options& options = {});

}  // namespace qubikos::campaign
