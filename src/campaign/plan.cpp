#include "campaign/plan.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/check.hpp"

namespace qubikos::campaign {

namespace {

/// Unit IDs are the resume keys of every store, so a plan whose IDs
/// collide (or drifted empty) would silently merge distinct work units.
/// O(n log n) scan — contract material, not a user-facing validation.
[[maybe_unused]] bool unit_ids_stable(const campaign_plan& plan) {
    std::vector<std::string> ids;
    ids.reserve(plan.units.size());
    for (const auto& unit : plan.units) {
        if (unit.id.empty()) return false;
        ids.push_back(unit.id);
    }
    std::sort(ids.begin(), ids.end());
    return std::adjacent_find(ids.begin(), ids.end()) == ids.end();
}

}  // namespace

campaign_plan expand_plan(const campaign_spec& spec) {
    if (spec.suites.empty()) throw std::invalid_argument("campaign: spec has no suites");
    campaign_plan plan;
    plan.spec = spec;
    const std::vector<std::string> tools = resolved_tool_names(spec);

    for (std::size_t suite_index = 0; suite_index < spec.suites.size(); ++suite_index) {
        const campaign_suite& suite = spec.suites[suite_index];
        if (suite.swap_counts.empty() || suite.circuits_per_count <= 0) {
            throw std::invalid_argument("campaign: empty suite in spec");
        }
        // The qubikos sweep axis is the designed count (>= 0 is valid: a
        // 0-swap circuit); queko sweeps depth and quekno transitions,
        // both of which must be positive to mean anything.
        if (suite.family != benchmark_family::qubikos) {
            for (const int v : suite.swap_counts) {
                if (v < 1) {
                    throw std::invalid_argument(
                        std::string("campaign: ") + family_name(suite.family) +
                        " sweep values must be >= 1");
                }
            }
        }
        // The family tag keeps IDs from different families disjoint; the
        // qubikos format stays exactly the v1 format so existing stores
        // keep resuming. Mirrors core::generate_suite seeding: instance k
        // gets seed base_seed + k, counts iterate outer, circuits inner.
        std::string family_tag;
        char sweep_letter = 'n';
        if (suite.family == benchmark_family::queko) {
            family_tag = "queko:";
            sweep_letter = 'd';  // depth
        } else if (suite.family == benchmark_family::quekno) {
            family_tag = "quekno:";
            sweep_letter = 't';  // transitions
        }
        std::size_t instance_index = 0;
        for (const int sweep : suite.swap_counts) {
            for (int i = 0; i < suite.circuits_per_count; ++i) {
                const std::uint64_t seed = suite.base_seed + instance_index;
                for (const auto& tool : tools) {
                    work_unit unit;
                    unit.id = "u";
                    unit.id += std::to_string(suite_index);
                    unit.id += ':';
                    unit.id += suite.arch_name;
                    unit.id += ':';
                    unit.id += family_tag;
                    unit.id += sweep_letter;
                    unit.id += std::to_string(sweep);
                    unit.id += ":i";
                    unit.id += std::to_string(i);
                    unit.id += ":seed";
                    unit.id += std::to_string(seed);
                    unit.id += ':';
                    unit.id += tool;
                    unit.suite_index = suite_index;
                    unit.instance_index = instance_index;
                    unit.tool = tool;
                    unit.family = suite.family;
                    unit.sweep_value = sweep;
                    unit.designed_swaps =
                        suite.family == benchmark_family::queko ? 0 : sweep;
                    unit.instance_seed = seed;
                    plan.units.push_back(std::move(unit));
                }
                ++instance_index;
            }
        }
    }
    QUBIKOS_DCHECK(unit_ids_stable(plan));
    return plan;
}

std::vector<std::size_t> shard_indices(std::size_t num_units, int shard, int num_shards) {
    if (num_shards < 1) throw std::invalid_argument("campaign: num_shards must be >= 1");
    if (shard < 0 || shard >= num_shards) {
        throw std::invalid_argument("campaign: shard must be in [0, num_shards)");
    }
    std::vector<std::size_t> out;
    for (std::size_t i = static_cast<std::size_t>(shard); i < num_units;
         i += static_cast<std::size_t>(num_shards)) {
        out.push_back(i);
    }
    return out;
}

}  // namespace qubikos::campaign
