// Campaign cost profile: aggregates the telemetry sidecar records of a
// store into per-(suite, tool) timing/counter tables.
//
// `campaign profile <store>` is to cost what `campaign report` is to
// quality: it answers "where did this campaign spend its effort?" —
// mapping passes, SAT propagations, VF2 nodes, per-unit CPU — from the
// "kind":"metrics" records workers persist when run with
// QUBIKOS_OBS=metrics. Like report, the rendering is byte-deterministic
// for a fixed store: units aggregate in plan order, metrics sort by
// name, and every number formats through one fixed-precision path.
#pragma once

#include <string>
#include <vector>

#include "campaign/plan.hpp"
#include "campaign/store.hpp"

namespace qubikos::campaign {

/// Renders the profile of `runs` (a store's records, metrics sidecars
/// included) against the plan. Stores without sidecar records render a
/// header plus a hint to re-run with QUBIKOS_OBS=metrics.
[[nodiscard]] std::string render_profile(const campaign_plan& plan,
                                         const std::vector<stored_run>& runs);

}  // namespace qubikos::campaign
