// Campaign specifications: the paper-scale experiment descriptions the
// campaign engine executes (Sec. IV run configurations as data).
//
// A campaign_spec names a set of suites (one per architecture sweep), the
// tools to run on them and the knobs (trial counts, seeds). It is pure
// data with a canonical JSON form, so the same spec file drives
//   qubikos_cli campaign plan | run | merge | report | status
// and every process that touches a campaign — a shard worker on another
// machine, the merger, a resumed run after a crash — can verify it is
// working on the *same* experiment via a stable fingerprint.
//
// Schema v2 adds the benchmark *family* per suite (the paper's contrast
// set: QUBIKOS certified optima vs QUEKO zero-swap / QUEKNO upper-bound
// circuits), fault-handling knobs (max_attempts) and the optional VF2
// solvability probe. A spec that uses none of the v2 features serializes
// in the v1 form byte for byte, so its fingerprint — and therefore every
// existing result store — is preserved.
//
// Schema v3 turns the tool axis into *variants*: a spec entry may name
// any registry tool (tools/registry.hpp) with inline JSON option
// overrides and a display label, so one campaign can compare, say,
// lightsabre at two trial counts against an ablated sabre — without
// recompiling anything. Plain string entries (and empty tools) keep the
// v1/v2 canonical form byte for byte, so every pre-v3 fingerprint and
// store survives.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/suite.hpp"
#include "util/json.hpp"

namespace qubikos::campaign {

/// What a work unit does:
///   tools   — run a heuristic QLS tool and record its swap count
///             (the Fig. 4 / Table II experiments);
///   certify — run the family's claim checks (exact solver, VF2,
///             structure) and record whether the claim is confirmed
///             (Sec. IV-A / the benchmark-contrast study).
enum class campaign_mode { tools, certify };

/// Benchmark family of a suite (Sec. I / Sec. III-C contrast set):
///   qubikos — certified optimal SWAP count (this paper);
///   queko   — known-optimal depth, 0 SWAPs, VF2-solvable (Tan & Cong);
///   quekno  — construction cost is an unproven upper bound (Li et al.).
enum class benchmark_family { qubikos, queko, quekno };

/// One suite of a campaign: a core::suite_spec plus the benchmark family
/// and the family-specific generator knobs. The meaning of `swap_counts`
/// follows the family: designed optimal SWAPs (qubikos), circuit depth
/// (queko), construction SWAP transitions = the claimed upper bound
/// (quekno). Implicitly convertible from core::suite_spec (family
/// qubikos), so v1 call sites stay source-compatible.
struct campaign_suite : core::suite_spec {
    campaign_suite() = default;
    campaign_suite(const core::suite_spec& base) : core::suite_spec(base) {}  // NOLINT(*-explicit-*)

    benchmark_family family = benchmark_family::qubikos;
    /// QUEKO: expected fraction of a random matching filled per layer.
    double queko_density = 0.5;
    /// QUEKNO: two-qubit gates emitted per mapping epoch.
    int quekno_gates_per_epoch = 20;
};

/// One tool column of a campaign: a registry tool name, optional inline
/// option overrides (validated against the tool's schema at plan/run
/// time) and the label the variant reports under — unit IDs, status and
/// report tables all carry the label, so two variants of one tool stay
/// distinguishable. Implicitly convertible from a plain name, so v1/v2
/// call sites (`spec.tools = {"lightsabre", "tket"}`) stay source-
/// compatible.
struct tool_variant {
    std::string name;
    /// Display label; empty = the name.
    std::string label;
    /// JSON object of option overrides; null = none.
    json::value options;

    tool_variant() = default;
    tool_variant(std::string tool_name) : name(std::move(tool_name)) {}  // NOLINT(*-explicit-*)
    tool_variant(const char* tool_name) : name(tool_name) {}             // NOLINT(*-explicit-*)
    tool_variant(std::string tool_name, json::value overrides, std::string display_label = "")
        : name(std::move(tool_name)),
          label(std::move(display_label)),
          options(std::move(overrides)) {}

    [[nodiscard]] const std::string& display() const { return label.empty() ? name : label; }
    [[nodiscard]] bool has_options() const {
        return !options.is_null() && !options.as_object().empty();
    }
    /// True when the entry is expressible in the v1/v2 schema (a bare
    /// tool name).
    [[nodiscard]] bool plain() const {
        return !has_options() && (label.empty() || label == name);
    }
};

struct campaign_spec {
    std::string name = "campaign";
    campaign_mode mode = campaign_mode::tools;
    /// One entry per (architecture, sweep); expanded in order.
    std::vector<campaign_suite> suites;
    /// Tool variants to run (any registry tool); empty = the paper's
    /// four. Ignored in certify mode (the single "exact" pseudo-tool
    /// runs).
    std::vector<tool_variant> tools;
    int sabre_trials = 32;
    std::uint64_t toolbox_seed = 1;
    /// Per-SAT-call conflict budget in certify mode (0 = unlimited).
    std::uint64_t conflict_limit = 0;
    /// Execution attempts a unit gets before it is quarantined (a failing
    /// unit is recorded with an error and retried; once quarantined it is
    /// skipped until a worker runs with retry_quarantined).
    int max_attempts = 2;
    /// Certify mode: also record whether VF2 subgraph monomorphism solves
    /// each instance (the QUEKO-vs-QUBIKOS contrast probe). QUEKO suites
    /// always run it — VF2 solvability *is* their claim.
    bool vf2_check = false;
};

[[nodiscard]] const char* mode_name(campaign_mode mode);
[[nodiscard]] campaign_mode mode_from_name(const std::string& name);

[[nodiscard]] const char* family_name(benchmark_family family);
[[nodiscard]] benchmark_family family_from_name(const std::string& name);

/// Canonical JSON form (round-trips exactly through spec_from_json).
/// Emits the lowest schema the spec's features allow — v1 unless a v2
/// feature is used (non-qubikos family, non-default max_attempts,
/// vf2_check), v3 only when a tool entry carries options or a custom
/// label — so every pre-existing fingerprint is stable.
[[nodiscard]] json::value spec_to_json(const campaign_spec& spec);
/// Accepts the v1, v2 and v3 schemas.
[[nodiscard]] campaign_spec spec_from_json(const json::value& v);

[[nodiscard]] campaign_spec load_spec(const std::string& path);
void save_spec(const campaign_spec& spec, const std::string& path);

/// Stable 64-bit FNV-1a fingerprint of the canonical JSON form, as a hex
/// string. Two processes agree on a fingerprint iff they run the same
/// experiment; the result store refuses to mix fingerprints.
[[nodiscard]] std::string spec_fingerprint(const campaign_spec& spec);

/// The tool-label column of the plan: spec.tools' display labels
/// (validated against the registry — unknown tool names and duplicate
/// labels throw) or the paper's four when empty; {"exact"} in certify
/// mode.
[[nodiscard]] std::vector<std::string> resolved_tool_names(const campaign_spec& spec);

/// The variants behind resolved_tool_names, in the same order (plain
/// paper entries when spec.tools is empty). Throws in certify mode —
/// the "exact" pseudo-tool is not a registry tool.
[[nodiscard]] std::vector<tool_variant> resolved_tool_variants(const campaign_spec& spec);

/// A small 2-architecture example spec (also used by the CI
/// mini-campaign): aspen4 + grid3x3, swap counts {2,3}, 2 circuits per
/// count, 40-gate padding, 4 SABRE trials.
[[nodiscard]] campaign_spec example_spec();

}  // namespace qubikos::campaign
