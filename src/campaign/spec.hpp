// Campaign specifications: the paper-scale experiment descriptions the
// campaign engine executes (Sec. IV run configurations as data).
//
// A campaign_spec names a set of suites (one per architecture sweep), the
// tools to run on them and the knobs (trial counts, seeds). It is pure
// data with a canonical JSON form, so the same spec file drives
//   qubikos_cli campaign plan | run | merge | report
// and every process that touches a campaign — a shard worker on another
// machine, the merger, a resumed run after a crash — can verify it is
// working on the *same* experiment via a stable fingerprint.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/suite.hpp"
#include "util/json.hpp"

namespace qubikos::campaign {

/// What a work unit does:
///   tools   — run a heuristic QLS tool and record its swap count
///             (the Fig. 4 / Table II experiments);
///   certify — run the exact solver at n and n-1 and record whether the
///             designed count is confirmed (the Sec. IV-A study).
enum class campaign_mode { tools, certify };

struct campaign_spec {
    std::string name = "campaign";
    campaign_mode mode = campaign_mode::tools;
    /// One entry per (architecture, sweep); expanded in order.
    std::vector<core::suite_spec> suites;
    /// Tool names to run (subset of the paper toolbox); empty = all four.
    /// Ignored in certify mode (the single "exact" pseudo-tool runs).
    std::vector<std::string> tools;
    int sabre_trials = 32;
    std::uint64_t toolbox_seed = 1;
    /// Per-SAT-call conflict budget in certify mode (0 = unlimited).
    std::uint64_t conflict_limit = 0;
};

[[nodiscard]] const char* mode_name(campaign_mode mode);
[[nodiscard]] campaign_mode mode_from_name(const std::string& name);

/// Canonical JSON form (round-trips exactly through spec_from_json).
[[nodiscard]] json::value spec_to_json(const campaign_spec& spec);
[[nodiscard]] campaign_spec spec_from_json(const json::value& v);

[[nodiscard]] campaign_spec load_spec(const std::string& path);
void save_spec(const campaign_spec& spec, const std::string& path);

/// Stable 64-bit FNV-1a fingerprint of the canonical JSON form, as a hex
/// string. Two processes agree on a fingerprint iff they run the same
/// experiment; the result store refuses to mix fingerprints.
[[nodiscard]] std::string spec_fingerprint(const campaign_spec& spec);

/// The tool-name column of the plan: spec.tools (validated against the
/// paper toolbox) or all four when empty; {"exact"} in certify mode.
[[nodiscard]] std::vector<std::string> resolved_tool_names(const campaign_spec& spec);

/// A small 2-architecture example spec (also used by the CI
/// mini-campaign): aspen4 + grid3x3, swap counts {2,3}, 2 circuits per
/// count, 40-gate padding, 4 SABRE trials.
[[nodiscard]] campaign_spec example_spec();

}  // namespace qubikos::campaign
