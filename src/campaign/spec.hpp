// Campaign specifications: the paper-scale experiment descriptions the
// campaign engine executes (Sec. IV run configurations as data).
//
// A campaign_spec names a set of suites (one per architecture sweep), the
// tools to run on them and the knobs (trial counts, seeds). It is pure
// data with a canonical JSON form, so the same spec file drives
//   qubikos_cli campaign plan | run | merge | report | status
// and every process that touches a campaign — a shard worker on another
// machine, the merger, a resumed run after a crash — can verify it is
// working on the *same* experiment via a stable fingerprint.
//
// Schema v2 adds the benchmark *family* per suite (the paper's contrast
// set: QUBIKOS certified optima vs QUEKO zero-swap / QUEKNO upper-bound
// circuits), fault-handling knobs (max_attempts) and the optional VF2
// solvability probe. A spec that uses none of the v2 features serializes
// in the v1 form byte for byte, so its fingerprint — and therefore every
// existing result store — is preserved.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/suite.hpp"
#include "util/json.hpp"

namespace qubikos::campaign {

/// What a work unit does:
///   tools   — run a heuristic QLS tool and record its swap count
///             (the Fig. 4 / Table II experiments);
///   certify — run the family's claim checks (exact solver, VF2,
///             structure) and record whether the claim is confirmed
///             (Sec. IV-A / the benchmark-contrast study).
enum class campaign_mode { tools, certify };

/// Benchmark family of a suite (Sec. I / Sec. III-C contrast set):
///   qubikos — certified optimal SWAP count (this paper);
///   queko   — known-optimal depth, 0 SWAPs, VF2-solvable (Tan & Cong);
///   quekno  — construction cost is an unproven upper bound (Li et al.).
enum class benchmark_family { qubikos, queko, quekno };

/// One suite of a campaign: a core::suite_spec plus the benchmark family
/// and the family-specific generator knobs. The meaning of `swap_counts`
/// follows the family: designed optimal SWAPs (qubikos), circuit depth
/// (queko), construction SWAP transitions = the claimed upper bound
/// (quekno). Implicitly convertible from core::suite_spec (family
/// qubikos), so v1 call sites stay source-compatible.
struct campaign_suite : core::suite_spec {
    campaign_suite() = default;
    campaign_suite(const core::suite_spec& base) : core::suite_spec(base) {}  // NOLINT(*-explicit-*)

    benchmark_family family = benchmark_family::qubikos;
    /// QUEKO: expected fraction of a random matching filled per layer.
    double queko_density = 0.5;
    /// QUEKNO: two-qubit gates emitted per mapping epoch.
    int quekno_gates_per_epoch = 20;
};

struct campaign_spec {
    std::string name = "campaign";
    campaign_mode mode = campaign_mode::tools;
    /// One entry per (architecture, sweep); expanded in order.
    std::vector<campaign_suite> suites;
    /// Tool names to run (subset of the paper toolbox); empty = all four.
    /// Ignored in certify mode (the single "exact" pseudo-tool runs).
    std::vector<std::string> tools;
    int sabre_trials = 32;
    std::uint64_t toolbox_seed = 1;
    /// Per-SAT-call conflict budget in certify mode (0 = unlimited).
    std::uint64_t conflict_limit = 0;
    /// Execution attempts a unit gets before it is quarantined (a failing
    /// unit is recorded with an error and retried; once quarantined it is
    /// skipped until a worker runs with retry_quarantined).
    int max_attempts = 2;
    /// Certify mode: also record whether VF2 subgraph monomorphism solves
    /// each instance (the QUEKO-vs-QUBIKOS contrast probe). QUEKO suites
    /// always run it — VF2 solvability *is* their claim.
    bool vf2_check = false;
};

[[nodiscard]] const char* mode_name(campaign_mode mode);
[[nodiscard]] campaign_mode mode_from_name(const std::string& name);

[[nodiscard]] const char* family_name(benchmark_family family);
[[nodiscard]] benchmark_family family_from_name(const std::string& name);

/// Canonical JSON form (round-trips exactly through spec_from_json).
/// Emits the v1 schema unless a v2 feature is used (non-qubikos family,
/// non-default max_attempts, vf2_check), so v1 fingerprints are stable.
[[nodiscard]] json::value spec_to_json(const campaign_spec& spec);
/// Accepts both the v1 and v2 schema.
[[nodiscard]] campaign_spec spec_from_json(const json::value& v);

[[nodiscard]] campaign_spec load_spec(const std::string& path);
void save_spec(const campaign_spec& spec, const std::string& path);

/// Stable 64-bit FNV-1a fingerprint of the canonical JSON form, as a hex
/// string. Two processes agree on a fingerprint iff they run the same
/// experiment; the result store refuses to mix fingerprints.
[[nodiscard]] std::string spec_fingerprint(const campaign_spec& spec);

/// The tool-name column of the plan: spec.tools (validated against the
/// paper toolbox) or all four when empty; {"exact"} in certify mode.
[[nodiscard]] std::vector<std::string> resolved_tool_names(const campaign_spec& spec);

/// A small 2-architecture example spec (also used by the CI
/// mini-campaign): aspen4 + grid3x3, swap counts {2,3}, 2 circuits per
/// count, 40-gate padding, 4 SABRE trials.
[[nodiscard]] campaign_spec example_spec();

}  // namespace qubikos::campaign
