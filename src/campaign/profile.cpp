#include "campaign/profile.hpp"

#include <map>
#include <string>
#include <unordered_map>
#include <utility>

#include "util/table.hpp"

namespace qubikos::campaign {

namespace {

/// Aggregate of one (suite, tool) cell: how many units contributed a
/// sidecar, and the summed counters. Totals are integral counts stored
/// as doubles (exact below 2^53), summed in plan order — deterministic
/// for a fixed store.
struct cell_profile {
    std::size_t units = 0;
    std::map<std::string, double> totals;
};

}  // namespace

std::string render_profile(const campaign_plan& plan, const std::vector<stored_run>& runs) {
    const campaign_spec& spec = plan.spec;

    std::unordered_map<std::string, std::pair<std::size_t, std::string>> cell_of;
    cell_of.reserve(plan.units.size());
    for (const auto& unit : plan.units) {
        cell_of.emplace(unit.id, std::make_pair(unit.suite_index, unit.tool));
    }

    // First pass: find each unit's first sidecar (workers write one per
    // successful unit; overlapping stores may repeat it — first wins,
    // matching merge).
    std::unordered_map<std::string, const stored_run*> sidecar_of;
    std::size_t completed = 0;
    for (const auto& run : runs) {
        if (run.is_metrics()) {
            if (cell_of.find(run.unit_id) != cell_of.end()) {
                sidecar_of.emplace(run.unit_id, &run);
            }
        } else if (!run.failed()) {
            ++completed;
        }
    }

    // Aggregate in plan order.
    std::map<std::pair<std::size_t, std::string>, cell_profile> cells;
    std::size_t profiled = 0;
    for (const auto& unit : plan.units) {
        const auto it = sidecar_of.find(unit.id);
        if (it == sidecar_of.end()) continue;
        ++profiled;
        cell_profile& cell = cells[{unit.suite_index, unit.tool}];
        ++cell.units;
        for (const auto& [name, v] : it->second->metrics.as_object()) {
            cell.totals[name] += v.as_number();
        }
    }

    std::string out;
    out += "campaign profile: " + spec.name + " (mode " + mode_name(spec.mode) +
           ", fingerprint " + spec_fingerprint(spec) + ")\n";
    out += "profiled units: " + std::to_string(profiled) + " of " + std::to_string(completed) +
           " completed (" + std::to_string(plan.units.size()) + " planned)\n";
    if (profiled == 0) {
        out += "no metrics records in this store; run the campaign with "
               "QUBIKOS_OBS=metrics to record per-unit telemetry\n";
        return out;
    }

    for (const auto& [key, cell] : cells) {
        const campaign_suite& suite = spec.suites[key.first];
        std::string label = std::to_string(key.first) + ":" + suite.arch_name;
        if (suite.family != benchmark_family::qubikos) {
            label += std::string(":") + family_name(suite.family);
        }
        out += "suite " + label + "  tool " + key.second + "  (" +
               std::to_string(cell.units) + " units)\n";
        ascii_table table({"metric", "total", "per unit"});
        for (const auto& [name, total] : cell.totals) {
            table.add(name,
                      std::to_string(static_cast<unsigned long long>(total)),
                      ascii_table::num(total / static_cast<double>(cell.units), 1));
        }
        out += table.str();
    }
    return out;
}

}  // namespace qubikos::campaign
