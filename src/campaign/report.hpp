// Report rendering: the paper's aggregate tables from a merged campaign.
//
// Tools mode reproduces the Fig. 4 tables (swap ratio per tool and
// designed count, one table per suite/architecture) plus the per-suite
// and cross-suite optimality-gap summaries (mean and geometric mean of
// the swap ratios — the per-architecture and abstract-level numbers —
// alongside absolute swap totals: total measured vs total claimed-
// optimal swaps per tool). Ratios of suites that claim 0 optimal swaps
// (QUEKO) render as "n/a"; their results live in the totals, which are
// always finite.
// Certify mode reproduces the Sec. IV-A confirmation table (SAT at n /
// UNSAT at n-1 / structure per count).
//
// The rendered text contains only deterministic fields — timings live in
// the store but are deliberately excluded here — so a report produced
// from merged shards is byte-identical to one produced from a
// single-process run of the same spec.
#pragma once

#include <string>

#include "campaign/merge.hpp"
#include "campaign/plan.hpp"

namespace qubikos::campaign {

/// Renders the full report (deterministic; see file comment).
[[nodiscard]] std::string render_report(const campaign_plan& plan,
                                        const merged_campaign& merged);

}  // namespace qubikos::campaign
