#include "campaign/store.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "util/check.hpp"

#if defined(_WIN32)
#include <io.h>
#else
#include <unistd.h>
#endif

namespace qubikos::campaign {

namespace {

constexpr std::uint64_t fnv_offset = 0xcbf29ce484222325ULL;

std::uint64_t fnv1a(std::uint64_t state, const char* data, std::size_t size) {
    for (std::size_t i = 0; i < size; ++i) {
        state ^= static_cast<unsigned char>(data[i]);
        state *= 0x100000001b3ULL;
    }
    return state;
}

std::string fnv_hex(std::uint64_t hash) {
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(hash));
    return buf;
}

void fsync_file(std::FILE* file) {
#if defined(_WIN32)
    _commit(_fileno(file));
#else
    if (::fsync(fileno(file)) != 0) {
        throw std::runtime_error(std::string("campaign: fsync failed: ") + std::strerror(errno));
    }
#endif
}

/// Splits JSONL content into parsed records. Returns the byte length of
/// the valid prefix (everything up to and including the last line that
/// parsed). A line that fails to parse is tolerated only when nothing but
/// that line follows it — the torn-tail signature of a crash mid-append;
/// corruption earlier in the file throws. Whether a torn tail is
/// *acceptable* for this particular file is the caller's decision.
std::size_t parse_runs(const std::string& content, const std::string& path,
                       std::vector<stored_run>& out) {
    std::size_t offset = 0;
    std::size_t valid_end = 0;
    std::size_t line_number = 0;
    while (offset < content.size()) {
        std::size_t newline = content.find('\n', offset);
        const bool final_line = newline == std::string::npos;
        const std::size_t end = final_line ? content.size() : newline;
        ++line_number;
        const std::string line = content.substr(offset, end - offset);
        const std::size_t next = final_line ? content.size() : newline + 1;
        if (line.find_first_not_of(" \t\r") != std::string::npos) {
            try {
                out.push_back(run_from_json(json::parse(line)));
            } catch (const std::exception&) {
                if (next >= content.size()) return valid_end;  // torn tail: discard
                throw std::runtime_error("campaign: corrupt record at " + path + ":" +
                                         std::to_string(line_number));
            }
        }
        valid_end = next;
        offset = next;
    }
    return valid_end;
}

/// Manifest the writer is about to publish: every sealed entry must be
/// one of this writer's own segments, strictly before the open seq, with
/// no duplicate names. Contract-scan material — a head violating this
/// would poison every later open, sync and merge of the store.
[[maybe_unused]] bool manifest_consistent(const std::vector<sealed_segment>& sealed, int writer,
                                          long open_seq) {
    for (std::size_t i = 0; i < sealed.size(); ++i) {
        int seg_writer = 0;
        long seg_seq = 0;
        if (!parse_segment_file_name(sealed[i].file, seg_writer, seg_seq)) return false;
        if (seg_writer != writer || seg_seq >= open_seq) return false;
        for (std::size_t j = i + 1; j < sealed.size(); ++j) {
            if (sealed[j].file == sealed[i].file) return false;
        }
    }
    return true;
}

/// All digits (and nonempty)?
bool all_digits(std::string_view s) {
    if (s.empty()) return false;
    return std::all_of(s.begin(), s.end(), [](char c) { return c >= '0' && c <= '9'; });
}

std::size_t resolve_segment_bytes(std::size_t requested) {
    if (requested > 0) return requested;
    if (const char* env = std::getenv("QUBIKOS_CAMPAIGN_SEGMENT_BYTES")) {
        char* end = nullptr;
        const unsigned long long value = std::strtoull(env, &end, 10);
        if (end != nullptr && *end == '\0' && value > 0) {
            return static_cast<std::size_t>(value);
        }
    }
    return std::size_t{8} << 20;  // 8 MiB
}

/// One record file of a store, parsed. `content` (the raw bytes) is
/// retained only for each writer's newest segment and the legacy file —
/// the files an appender may need to reopen; sealed segments keep just
/// their size + fingerprint, so peak memory is bounded by one segment
/// plus the open tails, not the whole store.
struct loaded_file {
    store_file info;
    std::string content;
    std::size_t size = 0;
    std::string fingerprint;
    std::size_t valid_end = 0;
    std::vector<stored_run> runs;
};

/// Reads and parses every record file of a store, enforcing the
/// torn-tail-only-on-newest rule and verifying every sealed segment
/// named by a head manifest against its recorded byte length and content
/// fingerprint. The single gateway of the read path: result_store's
/// replay and load_runs both go through it.
///
/// Heads are snapshotted BEFORE the segment bytes are read: a live
/// writer can seal a segment between the two reads, and a head claiming
/// more bytes than an earlier segment snapshot holds would look like
/// corruption. The stale direction is always safe — an old head's sealed
/// claims are immutable facts about bytes every later read will see —
/// which is what keeps `campaign status` (and sync pulls) safe against
/// stores that are actively being written.
std::vector<loaded_file> load_store_contents(const std::string& directory) {
    const std::vector<writer_head> heads = load_store_heads(directory);

    std::vector<loaded_file> out;
    for (const auto& info : scan_store_files(directory)) {
        loaded_file file;
        file.info = info;
        const std::filesystem::path path = std::filesystem::path(directory) / info.name;
        file.content = read_file_bytes(path);
        file.size = file.content.size();
        file.fingerprint = content_fingerprint(file.content);
        file.valid_end = parse_runs(file.content, path.string(), file.runs);
        if (!info.newest_of_writer && file.valid_end != file.size) {
            throw std::runtime_error("campaign: sealed segment " + path.string() +
                                     " has torn trailing bytes (only the newest segment of a "
                                     "writer may be torn)");
        }
        if (!info.newest_of_writer) {
            file.content = std::string();  // sealed: size + fingerprint suffice
        }
        out.push_back(std::move(file));
    }

    // Every sealed segment a head names must exist with exactly the
    // recorded bytes — sealed segments are immutable, so (with the
    // snapshot order above) any disagreement is corruption or
    // tampering, never a benign race.
    for (const auto& head : heads) {
        for (const auto& sealed : head.sealed) {
            const auto it =
                std::find_if(out.begin(), out.end(),
                             [&](const loaded_file& f) { return f.info.name == sealed.file; });
            if (it == out.end()) {
                throw std::runtime_error("campaign: " + head_file_name(head.writer) + " in " +
                                         directory + " names sealed segment " + sealed.file +
                                         " which is missing from the store");
            }
            if (it->size != sealed.bytes || it->fingerprint != sealed.fingerprint) {
                throw std::runtime_error(
                    "campaign: sealed segment " + sealed.file + " in " + directory +
                    " does not match its head manifest (corrupt or tampered store)");
            }
        }
    }
    return out;
}

}  // namespace

json::value run_to_json(const stored_run& run) {
    if (run.is_metrics()) {
        // Metrics sidecar record: a distinct kind, deliberately without
        // the result fields so old readers can't mistake it for a run
        // (pre-PR-7 readers throw on the missing "tool" key only if
        // handed such a store; metrics emission is opt-in).
        json::object o;
        o["kind"] = "metrics";
        o["metrics"] = run.metrics;
        o["unit_id"] = run.unit_id;
        return json::value(std::move(o));
    }
    json::object o;
    o["unit_id"] = run.unit_id;
    o["tool"] = run.record.tool;
    o["designed_swaps"] = run.record.designed_swaps;
    o["measured_swaps"] = run.record.measured_swaps;
    o["seconds"] = run.record.seconds;
    o["valid"] = run.record.valid;
    o["depth_ratio"] = run.record.depth_ratio;
    if (run.sat_at_n >= 0) o["sat_at_n"] = run.sat_at_n;
    if (run.unsat_below >= 0) o["unsat_below"] = run.unsat_below;
    if (run.structure_ok >= 0) o["structure_ok"] = run.structure_ok;
    // v2 fields are emitted only when they carry information: a
    // first-attempt success writes the v1 byte layout exactly, so a
    // fault-free v2 store is byte-comparable with a v1 store of the same
    // spec. Failed attempts always record their attempt number.
    if (run.vf2_solvable >= 0) o["vf2_solvable"] = run.vf2_solvable;
    if (run.attempt > 1 || (run.failed() && run.attempt > 0)) o["attempt"] = run.attempt;
    if (!run.error.empty()) o["error"] = run.error;
    // Router stats are emitted only when the tool reported them, so
    // records of non-reporting tools keep the exact v1 byte layout.
    if (run.record.has_router_stats()) {
        o["trials_run"] = static_cast<std::int64_t>(run.record.trials_run);
        o["trials_pruned"] = static_cast<std::int64_t>(run.record.trials_pruned);
        o["pass_decisions"] = static_cast<std::int64_t>(run.record.pass_decisions);
        o["arena_slots"] = static_cast<std::int64_t>(run.record.arena_slots);
    }
    return json::value(std::move(o));
}

stored_run run_from_json(const json::value& v) {
    stored_run run;
    if (v.contains("kind")) {
        if (v.at("kind").as_string() != "metrics") {
            throw std::runtime_error("campaign store: unknown record kind '" +
                                     v.at("kind").as_string() + "'");
        }
        run.unit_id = v.at("unit_id").as_string();
        run.metrics = v.at("metrics");
        return run;
    }
    run.unit_id = v.at("unit_id").as_string();
    run.record.tool = v.at("tool").as_string();
    run.record.designed_swaps = v.at("designed_swaps").as_int();
    run.record.measured_swaps = static_cast<std::size_t>(v.at("measured_swaps").as_number());
    run.record.seconds = v.at("seconds").as_number();
    run.record.valid = v.at("valid").as_bool();
    run.record.depth_ratio = v.at("depth_ratio").as_number();
    if (v.contains("sat_at_n")) run.sat_at_n = v.at("sat_at_n").as_int();
    if (v.contains("unsat_below")) run.unsat_below = v.at("unsat_below").as_int();
    if (v.contains("structure_ok")) run.structure_ok = v.at("structure_ok").as_int();
    if (v.contains("vf2_solvable")) run.vf2_solvable = v.at("vf2_solvable").as_int();
    if (v.contains("attempt")) run.attempt = v.at("attempt").as_int();
    if (v.contains("error")) run.error = v.at("error").as_string();
    if (v.contains("trials_run")) {
        run.record.trials_run = static_cast<long long>(v.at("trials_run").as_number());
        run.record.trials_pruned = static_cast<long long>(v.at("trials_pruned").as_number());
        run.record.pass_decisions = static_cast<long long>(v.at("pass_decisions").as_number());
        run.record.arena_slots = static_cast<long long>(v.at("arena_slots").as_number());
    }
    return run;
}

// --- segmented-layout vocabulary --------------------------------------------

std::string segment_file_name(int writer, long seq) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "runs-%d-%06ld.jsonl", writer, seq);
    return buf;
}

bool parse_segment_file_name(const std::string& name, int& writer, long& seq) {
    constexpr std::string_view prefix = "runs-";
    constexpr std::string_view suffix = ".jsonl";
    if (name.size() <= prefix.size() + suffix.size()) return false;
    if (name.compare(0, prefix.size(), prefix) != 0) return false;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) return false;
    const std::string_view middle(name.data() + prefix.size(),
                                  name.size() - prefix.size() - suffix.size());
    const std::size_t dash = middle.find('-');
    if (dash == std::string_view::npos) return false;
    const std::string_view writer_part = middle.substr(0, dash);
    const std::string_view seq_part = middle.substr(dash + 1);
    if (!all_digits(writer_part) || !all_digits(seq_part)) return false;
    writer = std::atoi(std::string(writer_part).c_str());
    seq = std::atol(std::string(seq_part).c_str());
    return true;
}

std::string head_file_name(int writer) {
    return "head-" + std::to_string(writer) + ".json";
}

bool parse_head_file_name(const std::string& name, int& writer) {
    constexpr std::string_view prefix = "head-";
    constexpr std::string_view suffix = ".json";
    if (name.size() <= prefix.size() + suffix.size()) return false;
    if (name.compare(0, prefix.size(), prefix) != 0) return false;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) return false;
    const std::string_view middle(name.data() + prefix.size(),
                                  name.size() - prefix.size() - suffix.size());
    if (!all_digits(middle)) return false;
    writer = std::atoi(std::string(middle).c_str());
    return true;
}

std::string content_fingerprint(const std::string& bytes) {
    return fnv_hex(fnv1a(fnv_offset, bytes.data(), bytes.size()));
}

std::size_t valid_record_prefix(const std::string& content) {
    std::vector<stored_run> discard;
    return parse_runs(content, "<buffer>", discard);
}

json::value head_to_json(const writer_head& head) {
    json::object o;
    o["schema"] = "qubikos.campaign_head.v1";
    o["writer"] = head.writer;
    o["open_seq"] = static_cast<std::int64_t>(head.open_seq);
    json::array sealed;
    for (const auto& s : head.sealed) {
        json::object e;
        e["file"] = s.file;
        e["bytes"] = s.bytes;
        e["fingerprint"] = s.fingerprint;
        sealed.push_back(json::value(std::move(e)));
    }
    o["sealed"] = std::move(sealed);
    return json::value(std::move(o));
}

writer_head head_from_json(const json::value& v) {
    writer_head head;
    head.writer = v.at("writer").as_int();
    head.open_seq = static_cast<long>(v.at("open_seq").as_number());
    for (const auto& e : v.at("sealed").as_array()) {
        sealed_segment s;
        s.file = e.at("file").as_string();
        s.bytes = static_cast<std::size_t>(e.at("bytes").as_number());
        s.fingerprint = e.at("fingerprint").as_string();
        head.sealed.push_back(std::move(s));
    }
    return head;
}

bool load_writer_head(const std::string& directory, int writer, writer_head& out) {
    const std::filesystem::path path =
        std::filesystem::path(directory) / head_file_name(writer);
    if (!std::filesystem::exists(path)) return false;
    out = head_from_json(json::parse(read_file_bytes(path)));
    return true;
}

std::vector<writer_head> load_store_heads(const std::string& directory) {
    std::vector<writer_head> out;
    if (!std::filesystem::is_directory(directory)) return out;
    for (const auto& entry : std::filesystem::directory_iterator(directory)) {
        int writer = 0;
        if (!entry.is_regular_file() ||
            !parse_head_file_name(entry.path().filename().string(), writer)) {
            continue;
        }
        out.push_back(head_from_json(json::parse(read_file_bytes(entry.path()))));
    }
    return out;
}

std::vector<store_file> scan_store_files(const std::string& directory) {
    std::vector<store_file> out;
    if (!std::filesystem::is_directory(directory)) return out;
    if (std::filesystem::exists(std::filesystem::path(directory) / "runs.jsonl")) {
        out.push_back({"runs.jsonl", -1, -1, true});
    }
    std::vector<store_file> segments;
    for (const auto& entry : std::filesystem::directory_iterator(directory)) {
        if (!entry.is_regular_file()) continue;
        store_file f;
        f.name = entry.path().filename().string();
        if (parse_segment_file_name(f.name, f.writer, f.seq)) segments.push_back(std::move(f));
    }
    std::sort(segments.begin(), segments.end(), [](const store_file& a, const store_file& b) {
        return a.writer != b.writer ? a.writer < b.writer : a.seq < b.seq;
    });
    for (std::size_t i = 0; i < segments.size(); ++i) {
        segments[i].newest_of_writer =
            i + 1 == segments.size() || segments[i + 1].writer != segments[i].writer;
        out.push_back(segments[i]);
    }
    return out;
}

std::string read_file_bytes(const std::filesystem::path& path) {
    std::ifstream file(path, std::ios::binary);
    if (!file) throw std::runtime_error("campaign: cannot read " + path.string());
    std::ostringstream buffer;
    buffer << file.rdbuf();
    return buffer.str();
}

void atomic_write_file(const std::filesystem::path& path, const std::string& bytes) {
    const std::filesystem::path tmp_path = path.string() + ".tmp";
    std::FILE* out = std::fopen(tmp_path.c_str(), "wb");
    if (out == nullptr) {
        throw std::runtime_error("campaign: cannot write " + tmp_path.string());
    }
    const bool ok = std::fwrite(bytes.data(), 1, bytes.size(), out) == bytes.size() &&
                    std::fflush(out) == 0;
    if (ok) fsync_file(out);
    std::fclose(out);
    if (!ok) throw std::runtime_error("campaign: write failed for " + tmp_path.string());
    std::filesystem::rename(tmp_path, path);
}

// --- result_store -----------------------------------------------------------

result_store::result_store(const std::string& directory, const campaign_spec& spec,
                           const store_options& options)
    : directory_(directory) {
    if (options.writer < 0) {
        throw std::invalid_argument("campaign: store writer id must be >= 0");
    }
    writer_ = options.writer;
    segment_bytes_ = resolve_segment_bytes(options.segment_bytes);

    const std::filesystem::path dir(directory);
    std::filesystem::create_directories(dir);
    const std::filesystem::path meta_path = dir / "meta.json";
    const std::string fingerprint = spec_fingerprint(spec);

    if (std::filesystem::exists(meta_path)) {
        const json::value meta = json::parse(read_file_bytes(meta_path));
        const std::string existing = meta.at("fingerprint").as_string();
        if (existing != fingerprint) {
            throw std::runtime_error("campaign: store " + directory +
                                     " belongs to a different spec (fingerprint " + existing +
                                     " != " + fingerprint + ")");
        }
    } else {
        json::object meta;
        meta["schema"] = "qubikos.campaign_store.v1";
        meta["name"] = spec.name;
        meta["fingerprint"] = fingerprint;
        meta["spec"] = spec_to_json(spec);
        // Written atomically (temp + fsync + rename): every later open
        // parses this file, so a crash mid-write must leave either no
        // meta.json or a complete one — a torn meta.json would brick the
        // resume path the store exists to provide.
        atomic_write_file(meta_path, json::value(std::move(meta)).dump(2) + "\n");
    }

    const std::vector<loaded_file> files = load_store_contents(directory);
    for (const auto& file : files) {
        for (const auto& run : file.runs) note(run);
    }

    const bool has_segments =
        std::any_of(files.begin(), files.end(),
                    [](const loaded_file& f) { return f.info.writer >= 0; });
    const bool has_legacy =
        std::any_of(files.begin(), files.end(),
                    [](const loaded_file& f) { return f.info.writer < 0; });

    // A lone runs.jsonl is a v1 store: keep appending to it so v1 stores
    // resume byte-for-byte as they always did. Everything else (fresh
    // store, segmented store, or a synced mix) appends to this writer's
    // segments, leaving any legacy file read-only.
    legacy_mode_ = has_legacy && !has_segments;
    if (legacy_mode_) {
        const loaded_file& legacy = files.front();
        runs_path_ = (dir / "runs.jsonl").string();
        // Truncate a torn tail so the next append starts on a clean line.
        if (legacy.valid_end < legacy.content.size()) {
            std::filesystem::resize_file(runs_path_, legacy.valid_end);
        }
        file_ = std::fopen(runs_path_.c_str(), "ab");
        if (file_ == nullptr) {
            throw std::runtime_error("campaign: cannot open " + runs_path_ + " for appending");
        }
        // An intact final record without its newline (externally edited
        // file) would otherwise concatenate with the next append.
        if (legacy.valid_end > 0 && legacy.content[legacy.valid_end - 1] != '\n') {
            buffer_ += '\n';
        }
        return;
    }

    // v2: find this writer's segments and decide which seq to open. A
    // head whose open_seq is past every existing segment marks a crash
    // between sealing and opening the next file; a newest segment the
    // head lists as sealed marks one between head write and fopen. Both
    // resume by opening the next (fresh) seq.
    std::vector<const loaded_file*> own;
    for (const auto& file : files) {
        if (file.info.writer == writer_) own.push_back(&file);
    }
    writer_head head;
    const bool have_head = load_writer_head(directory, writer_, head);

    long open_seq = 0;
    const loaded_file* reopen = nullptr;
    if (!own.empty()) {
        const loaded_file* newest = own.back();
        const bool newest_sealed =
            have_head &&
            std::any_of(head.sealed.begin(), head.sealed.end(), [&](const sealed_segment& s) {
                return s.file == newest->info.name;
            });
        if (have_head && head.open_seq > newest->info.seq) {
            open_seq = head.open_seq;
        } else if (newest_sealed) {
            open_seq = newest->info.seq + 1;
        } else {
            open_seq = newest->info.seq;
            reopen = newest;
        }
    } else if (have_head) {
        open_seq = head.open_seq;
    }

    // Rebuild this writer's sealed list from the verified on-disk bytes
    // (self-healing: a lost or stale head is regenerated here).
    for (const loaded_file* file : own) {
        if (file->info.seq >= open_seq) continue;
        sealed_.push_back({file->info.name, file->size, file->fingerprint});
    }

    if (reopen != nullptr) {
        const std::filesystem::path path = dir / reopen->info.name;
        if (reopen->valid_end < reopen->content.size()) {
            std::filesystem::resize_file(path, reopen->valid_end);
        }
        const bool needs_newline =
            reopen->valid_end > 0 && reopen->content[reopen->valid_end - 1] != '\n';
        open_segment(open_seq, reopen->valid_end,
                     fnv1a(fnv_offset, reopen->content.data(), reopen->valid_end),
                     needs_newline);
    } else {
        open_segment(open_seq, 0, fnv_offset, false);
    }
    write_head();
    if (current_bytes_ >= segment_bytes_) seal_and_rotate();
}

result_store::~result_store() {
    if (file_ != nullptr) {
        try {
            flush();
        } catch (...) {  // NOLINT: a destructor must not throw
        }
        std::fclose(file_);
    }
}

void result_store::open_segment(long seq, std::size_t resume_bytes, std::uint64_t resume_hash,
                                bool needs_newline) {
    // A fresh segment starts from the FNV offset basis; only a reopened
    // torn tail may carry bytes (and then must carry their hash).
    QUBIKOS_ASSERT(resume_bytes > 0 || resume_hash == fnv_offset);
    open_seq_ = seq;
    runs_path_ =
        (std::filesystem::path(directory_) / segment_file_name(writer_, seq)).string();
    file_ = std::fopen(runs_path_.c_str(), "ab");
    if (file_ == nullptr) {
        throw std::runtime_error("campaign: cannot open " + runs_path_ + " for appending");
    }
    current_bytes_ = resume_bytes;
    current_hash_ = resume_hash;
    if (needs_newline) buffer_ += '\n';
}

void result_store::seal_and_rotate() {
    QUBIKOS_ASSERT(file_ != nullptr && !legacy_mode_);
    std::fclose(file_);
    file_ = nullptr;
    sealed_.push_back(
        {segment_file_name(writer_, open_seq_), current_bytes_, fnv_hex(current_hash_)});
    // The head records the seal and the next open seq in one atomic
    // replace; a crash on either side of it reopens consistently (see
    // the constructor's open-seq decision).
    open_seq_ += 1;
    write_head();
    open_segment(open_seq_, 0, fnv_offset, false);
}

void result_store::write_head() const {
    QUBIKOS_CHECK_MSG(manifest_consistent(sealed_, writer_, open_seq_),
                      "writer " << writer_ << " about to publish a head manifest whose sealed "
                                << "list disagrees with its own segments (open seq " << open_seq_
                                << ", " << sealed_.size() << " sealed)");
    writer_head head;
    head.writer = writer_;
    head.open_seq = open_seq_;
    head.sealed = sealed_;
    atomic_write_file(std::filesystem::path(directory_) / head_file_name(writer_),
                      head_to_json(head).dump(2) + "\n");
}

void result_store::note(const stored_run& run) {
    if (run.is_metrics()) return;  // sidecar: never completes a unit
    fold_unit_status(statuses_[run.unit_id], run);
    if (!run.failed()) completed_.insert(run.unit_id);
}

unit_status result_store::status(const std::string& unit_id) const {
    const auto it = statuses_.find(unit_id);
    return it == statuses_.end() ? unit_status{} : it->second;
}

void result_store::append(const stored_run& run) {
    buffer_ += run_to_json(run).dump();
    buffer_ += '\n';
    note(run);
}

void result_store::flush() {
    if (buffer_.empty()) return;
    // Bytes handed to the FILE must never be written twice: drop them
    // from the buffer immediately, whatever happens next. On a short
    // write (disk full) the remainder stays buffered — a retry continues
    // exactly where the partial write stopped, so the worst outcome of
    // repeated failure is a torn tail, which reopen recovers from, never
    // a duplicated prefix mid-file, which it cannot.
    const std::size_t written = std::fwrite(buffer_.data(), 1, buffer_.size(), file_);
    current_hash_ = fnv1a(current_hash_, buffer_.data(), written);
    current_bytes_ += written;
    buffer_.erase(0, written);
    if (!buffer_.empty()) {
        throw std::runtime_error("campaign: short write to " + runs_path_);
    }
    if (std::fflush(file_) != 0) {
        throw std::runtime_error("campaign: flush failed for " + runs_path_);
    }
    fsync_file(file_);
    if (!legacy_mode_ && current_bytes_ >= segment_bytes_) seal_and_rotate();
}

std::vector<stored_run> result_store::load_runs(const std::string& directory) {
    std::vector<stored_run> out;
    for (auto& file : load_store_contents(directory)) {
        out.insert(out.end(), std::make_move_iterator(file.runs.begin()),
                   std::make_move_iterator(file.runs.end()));
    }
    return out;
}

campaign_spec result_store::load_meta_spec(const std::string& directory) {
    const std::filesystem::path path = std::filesystem::path(directory) / "meta.json";
    const json::value meta = json::parse(read_file_bytes(path));
    return spec_from_json(meta.at("spec"));
}

std::string result_store::load_meta_fingerprint(const std::string& directory) {
    const std::filesystem::path path = std::filesystem::path(directory) / "meta.json";
    const json::value meta = json::parse(read_file_bytes(path));
    return meta.at("fingerprint").as_string();
}

void fold_unit_status(unit_status& status, const stored_run& run) {
    if (run.is_metrics()) return;  // sidecar: neither success nor attempt
    if (run.failed()) {
        status.failed_attempts = std::max(status.failed_attempts + 1, run.attempt);
        status.last_error = run.error;
    } else {
        status.succeeded = true;
    }
}

std::unordered_map<std::string, unit_status> unit_statuses(const std::vector<stored_run>& runs) {
    std::unordered_map<std::string, unit_status> statuses;
    for (const auto& run : runs) fold_unit_status(statuses[run.unit_id], run);
    return statuses;
}

}  // namespace qubikos::campaign
