#include "campaign/store.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#if defined(_WIN32)
#include <io.h>
#else
#include <unistd.h>
#endif

namespace qubikos::campaign {

namespace {

void fsync_file(std::FILE* file) {
#if defined(_WIN32)
    _commit(_fileno(file));
#else
    if (::fsync(fileno(file)) != 0) {
        throw std::runtime_error(std::string("campaign: fsync failed: ") + std::strerror(errno));
    }
#endif
}

std::string read_file(const std::filesystem::path& path) {
    std::ifstream file(path, std::ios::binary);
    if (!file) throw std::runtime_error("campaign: cannot read " + path.string());
    std::ostringstream buffer;
    buffer << file.rdbuf();
    return buffer.str();
}

/// Splits runs.jsonl content into parsed records. Returns the byte
/// length of the valid prefix (everything up to and including the last
/// line that parsed). A line that fails to parse is tolerated only when
/// nothing but that line follows it — the torn-tail signature of a crash
/// mid-append; corruption earlier in the file throws.
std::size_t parse_runs(const std::string& content, const std::string& path,
                       std::vector<stored_run>& out) {
    std::size_t offset = 0;
    std::size_t valid_end = 0;
    std::size_t line_number = 0;
    while (offset < content.size()) {
        std::size_t newline = content.find('\n', offset);
        const bool final_line = newline == std::string::npos;
        const std::size_t end = final_line ? content.size() : newline;
        ++line_number;
        const std::string line = content.substr(offset, end - offset);
        const std::size_t next = final_line ? content.size() : newline + 1;
        if (line.find_first_not_of(" \t\r") != std::string::npos) {
            try {
                out.push_back(run_from_json(json::parse(line)));
            } catch (const std::exception&) {
                if (next >= content.size()) return valid_end;  // torn tail: discard
                throw std::runtime_error("campaign: corrupt record at " + path + ":" +
                                         std::to_string(line_number));
            }
        }
        valid_end = next;
        offset = next;
    }
    return valid_end;
}

}  // namespace

json::value run_to_json(const stored_run& run) {
    json::object o;
    o["unit_id"] = run.unit_id;
    o["tool"] = run.record.tool;
    o["designed_swaps"] = run.record.designed_swaps;
    o["measured_swaps"] = run.record.measured_swaps;
    o["seconds"] = run.record.seconds;
    o["valid"] = run.record.valid;
    o["depth_ratio"] = run.record.depth_ratio;
    if (run.sat_at_n >= 0) o["sat_at_n"] = run.sat_at_n;
    if (run.unsat_below >= 0) o["unsat_below"] = run.unsat_below;
    if (run.structure_ok >= 0) o["structure_ok"] = run.structure_ok;
    // v2 fields are emitted only when they carry information: a
    // first-attempt success writes the v1 byte layout exactly, so a
    // fault-free v2 store is byte-comparable with a v1 store of the same
    // spec. Failed attempts always record their attempt number.
    if (run.vf2_solvable >= 0) o["vf2_solvable"] = run.vf2_solvable;
    if (run.attempt > 1 || (run.failed() && run.attempt > 0)) o["attempt"] = run.attempt;
    if (!run.error.empty()) o["error"] = run.error;
    return json::value(std::move(o));
}

stored_run run_from_json(const json::value& v) {
    stored_run run;
    run.unit_id = v.at("unit_id").as_string();
    run.record.tool = v.at("tool").as_string();
    run.record.designed_swaps = v.at("designed_swaps").as_int();
    run.record.measured_swaps = static_cast<std::size_t>(v.at("measured_swaps").as_number());
    run.record.seconds = v.at("seconds").as_number();
    run.record.valid = v.at("valid").as_bool();
    run.record.depth_ratio = v.at("depth_ratio").as_number();
    if (v.contains("sat_at_n")) run.sat_at_n = v.at("sat_at_n").as_int();
    if (v.contains("unsat_below")) run.unsat_below = v.at("unsat_below").as_int();
    if (v.contains("structure_ok")) run.structure_ok = v.at("structure_ok").as_int();
    if (v.contains("vf2_solvable")) run.vf2_solvable = v.at("vf2_solvable").as_int();
    if (v.contains("attempt")) run.attempt = v.at("attempt").as_int();
    if (v.contains("error")) run.error = v.at("error").as_string();
    return run;
}

result_store::result_store(const std::string& directory, const campaign_spec& spec)
    : directory_(directory) {
    const std::filesystem::path dir(directory);
    std::filesystem::create_directories(dir);
    const std::filesystem::path meta_path = dir / "meta.json";
    const std::string fingerprint = spec_fingerprint(spec);

    if (std::filesystem::exists(meta_path)) {
        const json::value meta = json::parse(read_file(meta_path));
        const std::string existing = meta.at("fingerprint").as_string();
        if (existing != fingerprint) {
            throw std::runtime_error("campaign: store " + directory +
                                     " belongs to a different spec (fingerprint " + existing +
                                     " != " + fingerprint + ")");
        }
    } else {
        json::object meta;
        meta["schema"] = "qubikos.campaign_store.v1";
        meta["name"] = spec.name;
        meta["fingerprint"] = fingerprint;
        meta["spec"] = spec_to_json(spec);
        // Written atomically (temp + fsync + rename): every later open
        // parses this file, so a crash mid-write must leave either no
        // meta.json or a complete one — a torn meta.json would brick the
        // resume path the store exists to provide.
        const std::filesystem::path tmp_path = dir / "meta.json.tmp";
        {
            const std::string text = json::value(std::move(meta)).dump(2) + "\n";
            std::FILE* out = std::fopen(tmp_path.c_str(), "wb");
            if (out == nullptr) {
                throw std::runtime_error("campaign: cannot write " + tmp_path.string());
            }
            const bool ok = std::fwrite(text.data(), 1, text.size(), out) == text.size() &&
                            std::fflush(out) == 0;
            if (ok) fsync_file(out);
            std::fclose(out);
            if (!ok) throw std::runtime_error("campaign: write failed for meta.json");
        }
        std::filesystem::rename(tmp_path, meta_path);
    }

    runs_path_ = (dir / "runs.jsonl").string();
    bool needs_newline = false;
    if (std::filesystem::exists(runs_path_)) {
        const std::string content = read_file(runs_path_);
        std::vector<stored_run> runs;
        const std::size_t valid_end = parse_runs(content, runs_path_, runs);
        for (const auto& run : runs) note(run);
        // Truncate a torn tail so the next append starts on a clean line.
        if (valid_end < content.size()) {
            std::filesystem::resize_file(runs_path_, valid_end);
        }
        // An intact final record without its newline (externally edited
        // file) would otherwise concatenate with the next append.
        needs_newline = valid_end > 0 && content[valid_end - 1] != '\n';
    }

    file_ = std::fopen(runs_path_.c_str(), "ab");
    if (file_ == nullptr) {
        throw std::runtime_error("campaign: cannot open " + runs_path_ + " for appending");
    }
    if (needs_newline) buffer_ += '\n';
}

result_store::~result_store() {
    if (file_ != nullptr) {
        try {
            flush();
        } catch (...) {  // NOLINT: a destructor must not throw
        }
        std::fclose(file_);
    }
}

void result_store::note(const stored_run& run) {
    fold_unit_status(statuses_[run.unit_id], run);
    if (!run.failed()) completed_.insert(run.unit_id);
}

unit_status result_store::status(const std::string& unit_id) const {
    const auto it = statuses_.find(unit_id);
    return it == statuses_.end() ? unit_status{} : it->second;
}

void result_store::append(const stored_run& run) {
    buffer_ += run_to_json(run).dump();
    buffer_ += '\n';
    note(run);
}

void result_store::flush() {
    if (buffer_.empty()) return;
    // Bytes handed to the FILE must never be written twice: drop them
    // from the buffer immediately, whatever happens next. On a short
    // write (disk full) the remainder stays buffered — a retry continues
    // exactly where the partial write stopped, so the worst outcome of
    // repeated failure is a torn tail, which reopen recovers from, never
    // a duplicated prefix mid-file, which it cannot.
    const std::size_t written = std::fwrite(buffer_.data(), 1, buffer_.size(), file_);
    buffer_.erase(0, written);
    if (!buffer_.empty()) {
        throw std::runtime_error("campaign: short write to " + runs_path_);
    }
    if (std::fflush(file_) != 0) {
        throw std::runtime_error("campaign: flush failed for " + runs_path_);
    }
    fsync_file(file_);
}

std::vector<stored_run> result_store::load_runs(const std::string& directory) {
    const std::filesystem::path path = std::filesystem::path(directory) / "runs.jsonl";
    std::vector<stored_run> out;
    if (!std::filesystem::exists(path)) return out;
    const std::string content = read_file(path);
    parse_runs(content, path.string(), out);
    return out;
}

campaign_spec result_store::load_meta_spec(const std::string& directory) {
    const std::filesystem::path path = std::filesystem::path(directory) / "meta.json";
    const json::value meta = json::parse(read_file(path));
    return spec_from_json(meta.at("spec"));
}

std::string result_store::load_meta_fingerprint(const std::string& directory) {
    const std::filesystem::path path = std::filesystem::path(directory) / "meta.json";
    const json::value meta = json::parse(read_file(path));
    return meta.at("fingerprint").as_string();
}

void fold_unit_status(unit_status& status, const stored_run& run) {
    if (run.failed()) {
        status.failed_attempts = std::max(status.failed_attempts + 1, run.attempt);
        status.last_error = run.error;
    } else {
        status.succeeded = true;
    }
}

std::unordered_map<std::string, unit_status> unit_statuses(const std::vector<stored_run>& runs) {
    std::unordered_map<std::string, unit_status> statuses;
    for (const auto& run : runs) fold_unit_status(statuses[run.unit_id], run);
    return statuses;
}

}  // namespace qubikos::campaign
