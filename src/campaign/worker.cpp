#include "campaign/worker.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "arch/architectures.hpp"
#include "core/qubikos.hpp"
#include "core/verifier.hpp"
#include "eval/harness.hpp"
#include "exact/olsq.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace qubikos::campaign {

namespace {

/// Prebuilt read-only execution context shared by every unit of a run:
/// device graphs and the tool lineup are constructed once, units only
/// read them.
class unit_executor {
public:
    explicit unit_executor(const campaign_spec& spec) : spec_(&spec) {
        devices_.reserve(spec.suites.size());
        for (const auto& suite : spec.suites) devices_.push_back(arch::by_name(suite.arch_name));
        if (spec.mode == campaign_mode::tools) {
            eval::toolbox_options toolbox;
            toolbox.sabre_trials = spec.sabre_trials;
            toolbox.seed = spec.toolbox_seed;
            toolbox.sabre.threads = 1;  // suite-level parallelism only
            tools_ = eval::paper_toolbox(toolbox);
        }
    }

    [[nodiscard]] stored_run execute(const work_unit& unit) const {
        const core::suite_spec& suite = spec_->suites[unit.suite_index];
        const arch::architecture& device = devices_[unit.suite_index];

        core::generator_options generator;
        generator.num_swaps = unit.designed_swaps;
        generator.total_two_qubit_gates = suite.total_two_qubit_gates;
        generator.single_qubit_rate = suite.single_qubit_rate;
        generator.seed = unit.instance_seed;
        const core::benchmark_instance instance = core::generate(device, generator);

        stored_run run;
        run.unit_id = unit.id;
        run.record.tool = unit.tool;
        run.record.designed_swaps = instance.optimal_swaps;
        if (spec_->mode == campaign_mode::certify) {
            execute_certify(instance, device, run);
        } else {
            execute_tool(instance, device, unit, run);
        }
        return run;
    }

private:
    void execute_tool(const core::benchmark_instance& instance,
                      const arch::architecture& device, const work_unit& unit,
                      stored_run& run) const {
        const auto it = std::find_if(tools_.begin(), tools_.end(),
                                     [&](const eval::tool& t) { return t.name == unit.tool; });
        if (it == tools_.end()) {
            throw std::logic_error("campaign: plan references unknown tool " + unit.tool);
        }
        // The exact per-pair primitive of eval::evaluate_suite, so store
        // records and serial harness records agree by construction.
        run.record = eval::run_tool_record(*it, instance, device);
    }

    void execute_certify(const core::benchmark_instance& instance,
                         const arch::architecture& device, stored_run& run) const {
        const bool structure_ok = core::verify_structure(instance, device).valid;
        const int swaps = instance.optimal_swaps;
        cpu_stopwatch timer;
        const bool sat =
            exact::check_swap_count(instance.logical, device.coupling, swaps,
                                    spec_->conflict_limit) == exact::feasibility::feasible;
        const bool unsat =
            swaps == 0 ||
            exact::check_swap_count(instance.logical, device.coupling, swaps - 1,
                                    spec_->conflict_limit) == exact::feasibility::infeasible;
        run.record.seconds = timer.seconds();
        run.sat_at_n = sat ? 1 : 0;
        run.unsat_below = unsat ? 1 : 0;
        run.structure_ok = structure_ok ? 1 : 0;
        run.record.valid = sat && unsat && structure_ok;
        run.record.measured_swaps = sat ? static_cast<std::size_t>(swaps) : 0;
    }

    const campaign_spec* spec_;
    std::vector<arch::architecture> devices_;
    std::vector<eval::tool> tools_;
};

}  // namespace

stored_run execute_unit(const campaign_spec& spec, const work_unit& unit) {
    return unit_executor(spec).execute(unit);
}

worker_report run_campaign_shard(const campaign_plan& plan, const std::string& store_dir,
                                 const worker_options& options) {
    if (options.threads < 0) {
        throw std::invalid_argument("campaign: worker threads must be >= 0");
    }
    if (options.batch_size == 0) {
        throw std::invalid_argument("campaign: worker batch_size must be >= 1");
    }

    result_store store(store_dir, plan.spec);
    const std::vector<std::size_t> owned =
        shard_indices(plan.units.size(), options.shard, options.num_shards);

    std::vector<std::size_t> pending;
    pending.reserve(owned.size());
    for (const std::size_t index : owned) {
        if (!store.is_complete(plan.units[index].id)) pending.push_back(index);
    }

    worker_report report;
    report.assigned = owned.size();
    report.skipped = owned.size() - pending.size();
    const std::size_t limit =
        options.max_units == 0 ? pending.size() : std::min(options.max_units, pending.size());
    report.remaining = pending.size() - limit;
    if (limit == 0) return report;

    const unit_executor executor(plan.spec);
    thread_pool pool(
        std::min(thread_pool::resolve_threads(static_cast<std::size_t>(options.threads)),
                 std::min(options.batch_size, limit)));

    std::vector<stored_run> results;
    for (std::size_t start = 0; start < limit; start += options.batch_size) {
        const std::size_t end = std::min(start + options.batch_size, limit);
        results.assign(end - start, {});
        pool.parallel_for(start, end, [&](std::size_t i) {
            results[i - start] = executor.execute(plan.units[pending[i]]);
        });
        // Append in unit order and make the whole batch durable at once.
        for (const auto& run : results) {
            if (!run.record.valid) ++report.invalid_runs;
            store.append(run);
            if (options.verbose) {
                std::printf("  [%s] %s swaps=%zu valid=%d %.3fs\n", run.record.tool.c_str(),
                            run.unit_id.c_str(), run.record.measured_swaps,
                            run.record.valid ? 1 : 0, run.record.seconds);
            }
        }
        store.flush();
        report.executed += end - start;
    }
    return report;
}

}  // namespace qubikos::campaign
