#include "campaign/worker.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <map>
#include <mutex>
#include <stdexcept>

#include "arch/architectures.hpp"
#include "circuit/interaction.hpp"
#include "core/qubikos.hpp"
#include "core/queko.hpp"
#include "core/quekno.hpp"
#include "core/verifier.hpp"
#include "eval/harness.hpp"
#include "exact/olsq.hpp"
#include "graph/vf2.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "tools/context.hpp"
#include "tools/registry.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace qubikos::campaign {

namespace {

/// Deterministic fault hook for drills and CI: any unit whose ID contains
/// the value of QUBIKOS_CAMPAIGN_FAULT_UNIT throws instead of executing.
bool fault_injected(const work_unit& unit) {
    const char* pattern = std::getenv("QUBIKOS_CAMPAIGN_FAULT_UNIT");
    return pattern != nullptr && *pattern != '\0' && unit.id.find(pattern) != std::string::npos;
}

/// True when every two-qubit gate of `logical` acts on coupling-adjacent
/// physical qubits under `witness` — the QUEKO hidden mapping's claim.
bool witness_executes(const circuit& logical, const mapping& witness, const graph& coupling) {
    for (const auto& g : logical.gates()) {
        if (!g.is_two_qubit()) continue;
        if (!coupling.has_edge(witness.physical(g.q0), witness.physical(g.q1))) return false;
    }
    return true;
}

/// The spec-level knobs as registry overrides for one variant:
/// sabre_trials feeds lightsabre's trial count and toolbox_seed every
/// seeded tool — exactly what the pre-registry worker toolbox did — and
/// the variant's own overrides win on top.
json::value campaign_tool_overrides(const campaign_spec& spec, const tool_variant& variant) {
    const tools::tool_info& info = tools::tool_registry_info(variant.name);
    json::object merged;
    if (variant.name == "lightsabre" && info.find_option("trials") != nullptr) {
        merged["trials"] = spec.sabre_trials;
    }
    if (info.find_option("seed") != nullptr) {
        merged["seed"] = static_cast<std::int64_t>(spec.toolbox_seed);
    }
    if (variant.has_options()) {
        for (const auto& [key, value] : variant.options.as_object()) merged[key] = value;
    }
    return json::value(std::move(merged));
}

}  // namespace

struct unit_executor::impl {
    explicit impl(const campaign_spec& s) : spec(s) {
        devices.reserve(spec.suites.size());
        for (const auto& suite : spec.suites) devices.push_back(arch::by_name(suite.arch_name));
        if (spec.mode != campaign_mode::tools) return;

        // One routing context per distinct architecture — every variant
        // bound to a device shares its distance matrix — and one lineup
        // per suite (tools are device-bound through their context).
        std::map<std::string, std::shared_ptr<const tools::routing_context>> contexts;
        const auto variants = resolved_tool_variants(spec);
        suite_tools.resize(spec.suites.size());
        for (std::size_t i = 0; i < spec.suites.size(); ++i) {
            auto& context = contexts[spec.suites[i].arch_name];
            if (context == nullptr) {
                context = tools::make_routing_context(devices[i].coupling);
            }
            for (const auto& variant : variants) {
                eval::tool tool = tools::make_tool(
                    variant.name, campaign_tool_overrides(spec, variant), context);
                tool.name = variant.display();
                suite_tools[i].push_back(std::move(tool));
            }
        }
    }

    [[nodiscard]] const eval::tool& tool_named(std::size_t suite_index,
                                               const std::string& label) const {
        const auto& tools = suite_tools[suite_index];
        const auto it = std::find_if(tools.begin(), tools.end(),
                                     [&](const eval::tool& t) { return t.name == label; });
        if (it == tools.end()) {
            throw std::logic_error("campaign: plan references unknown tool " + label);
        }
        return *it;
    }

    void execute_qubikos(const work_unit& unit, const campaign_suite& suite,
                         const arch::architecture& device, stored_run& run) const {
        core::generator_options generator;
        generator.num_swaps = unit.sweep_value;
        generator.total_two_qubit_gates = suite.total_two_qubit_gates;
        generator.single_qubit_rate = suite.single_qubit_rate;
        generator.seed = unit.instance_seed;
        const core::benchmark_instance instance = core::generate(device, generator);
        // Never silently trust the generator: a claimed count that
        // contradicts the plan would poison every downstream ratio.
        if (instance.optimal_swaps != unit.designed_swaps) {
            throw std::runtime_error(
                "campaign: generator produced optimal_swaps=" +
                std::to_string(instance.optimal_swaps) + " for unit " + unit.id +
                " (plan says " + std::to_string(unit.designed_swaps) + ")");
        }

        if (spec.mode == campaign_mode::tools) {
            // The exact per-pair primitive of eval::evaluate_suite, so
            // store records and serial harness records agree by
            // construction (it fills tool and designed_swaps itself).
            run.record =
                eval::run_tool_record(tool_named(unit.suite_index, unit.tool), instance, device);
            return;
        }

        run.record.tool = unit.tool;
        run.record.designed_swaps = instance.optimal_swaps;
        const bool structure_ok = core::verify_structure(instance, device).valid;
        bool vf2_expectation_met = true;
        if (spec.vf2_check) {
            // QUBIKOS's claim is that plain subgraph monomorphism CANNOT
            // place these circuits (Sec. III-C).
            const bool vf2_ok =
                is_subgraph_monomorphic(interaction_graph(instance.logical), device.coupling);
            run.vf2_solvable = vf2_ok ? 1 : 0;
            vf2_expectation_met = !vf2_ok;
        }
        const int swaps = instance.optimal_swaps;
        cpu_stopwatch timer;
        const bool sat =
            exact::check_swap_count(instance.logical, device.coupling, swaps,
                                    spec.conflict_limit) == exact::feasibility::feasible;
        const bool unsat =
            swaps == 0 ||
            exact::check_swap_count(instance.logical, device.coupling, swaps - 1,
                                    spec.conflict_limit) == exact::feasibility::infeasible;
        run.record.seconds = timer.seconds();
        run.sat_at_n = sat ? 1 : 0;
        run.unsat_below = unsat ? 1 : 0;
        run.structure_ok = structure_ok ? 1 : 0;
        run.record.valid = sat && unsat && structure_ok && vf2_expectation_met;
        run.record.measured_swaps = sat ? static_cast<std::size_t>(swaps) : 0;
    }

    void execute_queko(const work_unit& unit, const campaign_suite& suite,
                       const arch::architecture& device, stored_run& run) const {
        core::queko_options options;
        options.depth = unit.sweep_value;
        options.density = suite.queko_density;
        options.seed = unit.instance_seed;
        const core::queko_instance instance = core::generate_queko(device, options);

        if (spec.mode == campaign_mode::tools) {
            // Tools route the logical circuit against QUEKO's claimed
            // count of 0: swap *ratios* are undefined (the aggregate
            // renders them n/a) and the family's numbers live in the
            // absolute totals — every measured swap is pure overhead.
            core::benchmark_instance shim;
            shim.arch_name = device.name;
            shim.seed = unit.instance_seed;
            shim.optimal_swaps = 0;
            shim.logical = instance.logical;
            run.record = eval::run_tool_record(tool_named(unit.suite_index, unit.tool), shim, device);
            return;
        }

        // QUEKO's claims (Tan & Cong): the hidden mapping executes every
        // gate in place (0 swaps), and VF2 alone recovers such a mapping.
        run.record.tool = unit.tool;
        run.record.designed_swaps = 0;
        const bool structure_ok =
            witness_executes(instance.logical, instance.hidden_mapping, device.coupling);
        const bool vf2_ok =
            is_subgraph_monomorphic(interaction_graph(instance.logical), device.coupling);
        run.vf2_solvable = vf2_ok ? 1 : 0;
        cpu_stopwatch timer;
        const bool sat = exact::check_swap_count(instance.logical, device.coupling, 0,
                                                 spec.conflict_limit) ==
                         exact::feasibility::feasible;
        run.record.seconds = timer.seconds();
        run.sat_at_n = sat ? 1 : 0;
        run.unsat_below = 1;  // vacuous at n = 0
        run.structure_ok = structure_ok ? 1 : 0;
        run.record.valid = sat && structure_ok && vf2_ok;
        run.record.measured_swaps = 0;
    }

    void execute_quekno(const work_unit& unit, const campaign_suite& suite,
                        const arch::architecture& device, stored_run& run) const {
        core::quekno_options options;
        options.num_transitions = unit.sweep_value;
        options.gates_per_epoch = suite.quekno_gates_per_epoch;
        options.seed = unit.instance_seed;
        const core::quekno_instance instance = core::generate_quekno(device, options);
        if (instance.construction_swaps != unit.designed_swaps) {
            throw std::runtime_error(
                "campaign: quekno construction used " +
                std::to_string(instance.construction_swaps) + " swaps for unit " + unit.id +
                " (plan says " + std::to_string(unit.designed_swaps) + ")");
        }

        if (spec.mode == campaign_mode::tools) {
            // Tools see the logical circuit; the "designed" denominator is
            // the construction's (unproven) upper bound, so ratios below
            // 1 are possible — exactly the family's weakness.
            core::benchmark_instance shim;
            shim.arch_name = device.name;
            shim.seed = unit.instance_seed;
            shim.optimal_swaps = instance.construction_swaps;
            shim.logical = instance.logical;
            run.record = eval::run_tool_record(tool_named(unit.suite_index, unit.tool), shim, device);
            return;
        }

        // Certify: verify the construction really is a valid routing at
        // the claimed cost (structure), find the true optimum under the
        // claimed bound (sat — the construction witnesses feasibility),
        // and record whether the bound is tight ("UNSAT below n").
        run.record.tool = unit.tool;
        run.record.designed_swaps = instance.construction_swaps;
        const auto construction_report =
            validate_routed(instance.logical, instance.construction, device.coupling);
        const bool structure_ok =
            construction_report.valid &&
            construction_report.swap_count ==
                static_cast<std::size_t>(instance.construction_swaps);
        if (spec.vf2_check) {
            run.vf2_solvable =
                is_subgraph_monomorphic(interaction_graph(instance.logical), device.coupling)
                    ? 1
                    : 0;
        }
        exact::olsq_options solver;
        solver.max_swaps = instance.construction_swaps;
        solver.conflict_limit = spec.conflict_limit;
        cpu_stopwatch timer;
        const auto exact = exact::solve_optimal(instance.logical, device.coupling, solver);
        run.record.seconds = timer.seconds();
        const bool sat = exact.solved;
        run.sat_at_n = sat ? 1 : 0;
        run.unsat_below = sat && exact.optimal_swaps == instance.construction_swaps ? 1 : 0;
        run.structure_ok = structure_ok ? 1 : 0;
        run.record.valid = sat && structure_ok;
        run.record.measured_swaps = sat ? static_cast<std::size_t>(exact.optimal_swaps) : 0;
    }

    campaign_spec spec;
    std::vector<arch::architecture> devices;
    /// Per-suite registry lineups (tools mode only), labels as names.
    std::vector<std::vector<eval::tool>> suite_tools;
};

unit_executor::unit_executor(const campaign_spec& spec) : impl_(std::make_unique<impl>(spec)) {}

unit_executor::~unit_executor() = default;

stored_run unit_executor::execute(const work_unit& unit) const {
    if (fault_injected(unit)) {
        throw std::runtime_error("campaign: injected fault for unit " + unit.id +
                                 " (QUBIKOS_CAMPAIGN_FAULT_UNIT)");
    }
    const campaign_suite& suite = impl_->spec.suites[unit.suite_index];
    const arch::architecture& device = impl_->devices[unit.suite_index];

    stored_run run;
    run.unit_id = unit.id;
    switch (unit.family) {
        case benchmark_family::qubikos: impl_->execute_qubikos(unit, suite, device, run); break;
        case benchmark_family::queko: impl_->execute_queko(unit, suite, device, run); break;
        case benchmark_family::quekno: impl_->execute_quekno(unit, suite, device, run); break;
    }
    return run;
}

stored_run unit_executor::execute_captured(const work_unit& unit, int attempt) const {
    const auto error_record = [&](const std::string& message) {
        stored_run run;
        run.unit_id = unit.id;
        run.record.tool = unit.tool;
        run.record.designed_swaps = unit.designed_swaps;
        run.record.valid = false;
        run.attempt = attempt;
        run.error = message;
        return run;
    };
    try {
        stored_run run = execute(unit);
        run.attempt = attempt;
        return run;
    } catch (const std::exception& e) {
        return error_record(e.what());
    } catch (...) {
        // The never-throws contract must hold for non-std exceptions
        // too, or one weird throw still kills the whole shard.
        return error_record("campaign: unit threw a non-std exception");
    }
}

stored_run execute_unit(const campaign_spec& spec, const work_unit& unit) {
    // One-off executions reuse the last-built context: rebuilding the
    // full toolbox and every device graph per call made single-unit use
    // (tests, spot checks) pay the whole campaign's setup each time.
    static std::mutex mutex;
    static std::string cached_fingerprint;                  // NOLINT: guarded by mutex
    static std::shared_ptr<const unit_executor> cached;     // NOLINT: guarded by mutex
    std::shared_ptr<const unit_executor> executor;
    const std::string fingerprint = spec_fingerprint(spec);
    {
        const std::lock_guard<std::mutex> lock(mutex);
        if (cached == nullptr || cached_fingerprint != fingerprint) {
            cached = std::make_shared<const unit_executor>(spec);
            cached_fingerprint = fingerprint;
        }
        executor = cached;
    }
    return executor->execute(unit);
}

worker_report run_campaign_shard(const campaign_plan& plan, const std::string& store_dir,
                                 const worker_options& options) {
    if (options.threads < 0) {
        throw std::invalid_argument("campaign: worker threads must be >= 0");
    }
    if (options.batch_size == 0) {
        throw std::invalid_argument("campaign: worker batch_size must be >= 1");
    }
    const int max_attempts = std::max(1, plan.spec.max_attempts);

    // The shard id doubles as the store writer id, so any number of
    // shards — in one process or on many machines — write disjoint
    // segment files and their stores sync/merge without collisions.
    store_options store_opts;
    store_opts.writer = options.shard;
    result_store store(store_dir, plan.spec, store_opts);
    const std::vector<std::size_t> owned =
        shard_indices(plan.units.size(), options.shard, options.num_shards);

    // A pending entry tracks how many attempts the unit has consumed and
    // how many it is allowed in total: max_attempts for fresh/retryable
    // units, one more max_attempts round on top of its history for a
    // re-opened quarantined unit.
    struct pending_unit {
        std::size_t unit_index;
        int attempts;
        int allowed;
    };
    std::deque<pending_unit> queue;

    worker_report report;
    report.assigned = owned.size();
    for (const std::size_t index : owned) {
        const unit_status status = store.status(plan.units[index].id);
        if (status.succeeded) {
            ++report.skipped;
            continue;
        }
        if (status.failed_attempts >= max_attempts && !options.retry_quarantined) {
            ++report.quarantined;
            continue;
        }
        const int allowed = status.failed_attempts >= max_attempts
                                ? status.failed_attempts + max_attempts
                                : max_attempts;
        queue.push_back({index, status.failed_attempts, allowed});
    }
    if (queue.empty()) return report;

    const unit_executor executor(plan.spec);
    const std::size_t workers =
        std::min(thread_pool::resolve_threads(static_cast<std::size_t>(options.threads)),
                 std::min(options.batch_size, queue.size()));

    std::vector<pending_unit> batch;
    std::vector<stored_run> results;
    const bool record_metrics = options.record_metrics < 0 ? obs::metrics_records()
                                                           : options.record_metrics > 0;
    std::vector<json::value> unit_metrics;
    while (!queue.empty() && (options.max_units == 0 || report.executed < options.max_units)) {
        std::size_t width = std::min(options.batch_size, queue.size());
        if (options.max_units != 0) {
            width = std::min(width, options.max_units - report.executed);
        }
        batch.assign(queue.begin(),
                     queue.begin() + static_cast<std::ptrdiff_t>(width));
        queue.erase(queue.begin(), queue.begin() + static_cast<std::ptrdiff_t>(width));
        results.assign(width, {});
        unit_metrics.assign(width, {});
        // execute_captured never throws, so one poisoned unit cannot
        // abort the parallel batch (or the shard).
        thread_pool::shared().parallel_for_slots(0, width, workers, [&](std::size_t i,
                                                                       std::size_t) {
            // The unit runs serially on the claiming thread, so a
            // thread-local counter delta around it attributes its cost
            // (the unit's own timer included — it closes before the
            // delta is read).
            static const obs::timer_id unit_timer = obs::timer("campaign.unit");
            const obs::thread_delta delta;
            {
                const obs::scoped_timer timing(unit_timer);
                const obs::trace_span span("campaign.unit");
                results[i] = executor.execute_captured(plan.units[batch[i].unit_index],
                                                       batch[i].attempts + 1);
            }
            if (record_metrics) unit_metrics[i] = delta.to_json();
        });
        // Append in unit order and make the whole batch durable at once.
        for (std::size_t i = 0; i < width; ++i) {
            const stored_run& run = results[i];
            if (run.failed()) {
                ++report.failed_attempts;
                if (run.attempt < batch[i].allowed) {
                    queue.push_back({batch[i].unit_index, run.attempt, batch[i].allowed});
                } else {
                    ++report.quarantined;
                }
            } else if (!run.record.valid) {
                ++report.invalid_runs;
            }
            store.append(run);
            if (record_metrics && !run.failed() && !unit_metrics[i].is_null() &&
                !unit_metrics[i].as_object().empty()) {
                stored_run metric;
                metric.unit_id = run.unit_id;
                metric.metrics = unit_metrics[i];
                store.append(metric);
            }
            if (options.verbose) {
                if (run.failed()) {
                    std::printf("  [%s] %s attempt=%d FAILED: %s\n", run.record.tool.c_str(),
                                run.unit_id.c_str(), run.attempt, run.error.c_str());
                } else {
                    std::printf("  [%s] %s swaps=%zu valid=%d %.3fs\n", run.record.tool.c_str(),
                                run.unit_id.c_str(), run.record.measured_swaps,
                                run.record.valid ? 1 : 0, run.record.seconds);
                }
            }
        }
        store.flush();
        report.executed += width;
    }
    report.remaining = queue.size();
    return report;
}

}  // namespace qubikos::campaign
