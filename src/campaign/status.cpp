#include "campaign/status.hpp"

#include <stdexcept>

#include "util/table.hpp"

namespace qubikos::campaign {

namespace {

enum class unit_state { done, retryable, quarantined, pending };

unit_state classify(const unit_status& status, int max_attempts) {
    if (status.succeeded) return unit_state::done;
    if (status.failed_attempts == 0) return unit_state::pending;
    return status.failed_attempts >= max_attempts ? unit_state::quarantined
                                                  : unit_state::retryable;
}

void count(status_counts& counts, unit_state state) {
    switch (state) {
        case unit_state::done: ++counts.done; break;
        case unit_state::retryable: ++counts.retryable; break;
        case unit_state::quarantined: ++counts.quarantined; break;
        case unit_state::pending: ++counts.pending; break;
    }
}

std::string counts_line(const status_counts& c) {
    return std::to_string(c.done) + " done, " + std::to_string(c.retryable) + " retryable, " +
           std::to_string(c.quarantined) + " quarantined, " + std::to_string(c.pending) +
           " pending";
}

}  // namespace

campaign_status probe_status(const campaign_plan& plan, const std::vector<stored_run>& runs,
                             const status_options& options) {
    if (options.num_shards < 1) {
        throw std::invalid_argument("campaign: status num_shards must be >= 1");
    }
    const int max_attempts = plan.spec.max_attempts < 1 ? 1 : plan.spec.max_attempts;
    const auto statuses = unit_statuses(runs);

    campaign_status status;
    status.shards.resize(static_cast<std::size_t>(options.num_shards));
    for (std::size_t index = 0; index < plan.units.size(); ++index) {
        const work_unit& unit = plan.units[index];
        unit_status per_unit;
        const auto it = statuses.find(unit.id);
        if (it != statuses.end()) per_unit = it->second;
        const unit_state state = classify(per_unit, max_attempts);
        count(status.totals, state);
        count(status.shards[index % status.shards.size()], state);
        count(status.cells[{unit.suite_index, unit.tool}], state);
        if (state == unit_state::quarantined) {
            status.quarantined_units.push_back(
                {unit.id, per_unit.failed_attempts, per_unit.last_error});
        }
    }
    return status;
}

std::string render_status(const campaign_plan& plan, const campaign_status& status,
                          const status_options& options) {
    const campaign_spec& spec = plan.spec;
    const int max_attempts = spec.max_attempts < 1 ? 1 : spec.max_attempts;

    std::string out;
    out += "campaign status: " + spec.name + " (mode " + mode_name(spec.mode) +
           ", fingerprint " + spec_fingerprint(spec) + ")\n";
    out += "units: " + counts_line(status.totals) + ", of " +
           std::to_string(status.totals.total()) + " total\n";

    if (status.shards.size() > 1) {
        out += "shards (" + std::to_string(status.shards.size()) + "):\n";
        for (std::size_t shard = 0; shard < status.shards.size(); ++shard) {
            const auto& c = status.shards[shard];
            out += "  shard " + std::to_string(shard) + "/" +
                   std::to_string(status.shards.size()) + ": " + counts_line(c) + "  (" +
                   std::to_string(c.total()) + " assigned)\n";
        }
    }

    ascii_table table({"suite", "tool", "done", "retryable", "quarantined", "pending"});
    for (const auto& [key, c] : status.cells) {
        const campaign_suite& suite = spec.suites[key.first];
        std::string label = std::to_string(key.first) + ":" + suite.arch_name;
        if (suite.family != benchmark_family::qubikos) {
            label += std::string(":") + family_name(suite.family);
        }
        table.add(label, key.second, std::to_string(c.done) + "/" + std::to_string(c.total()),
                  c.retryable, c.quarantined, c.pending);
    }
    out += table.str();

    if (!status.quarantined_units.empty()) {
        out += "quarantined units (attempt budget " + std::to_string(max_attempts) +
               " exhausted; re-open with `campaign run --retry-quarantined`):\n";
        const std::size_t limit = options.max_quarantined_listed == 0
                                      ? status.quarantined_units.size()
                                      : options.max_quarantined_listed;
        for (std::size_t i = 0; i < status.quarantined_units.size() && i < limit; ++i) {
            const auto& q = status.quarantined_units[i];
            out += "  " + q.unit_id + " (attempts " + std::to_string(q.attempts) + "): " +
                   q.error + "\n";
        }
        if (status.quarantined_units.size() > limit) {
            out += "  ... and " + std::to_string(status.quarantined_units.size() - limit) +
                   " more\n";
        }
    }
    return out;
}

json::value status_to_json(const campaign_plan& plan, const campaign_status& status) {
    const campaign_spec& spec = plan.spec;
    const auto counts_json = [](const status_counts& c) {
        json::object o;
        o["done"] = c.done;
        o["pending"] = c.pending;
        o["quarantined"] = c.quarantined;
        o["retryable"] = c.retryable;
        o["total"] = c.total();
        return json::value(std::move(o));
    };

    json::object doc;
    doc["campaign"] = spec.name;
    doc["complete"] = status.complete();
    doc["fingerprint"] = spec_fingerprint(spec);
    doc["mode"] = mode_name(spec.mode);
    doc["totals"] = counts_json(status.totals);

    json::array shards;
    for (std::size_t shard = 0; shard < status.shards.size(); ++shard) {
        json::object entry;
        entry["counts"] = counts_json(status.shards[shard]);
        entry["shard"] = shard;
        shards.push_back(json::value(std::move(entry)));
    }
    doc["shards"] = json::value(std::move(shards));

    json::array cells;
    for (const auto& [key, c] : status.cells) {
        const campaign_suite& suite = spec.suites[key.first];
        json::object cell;
        cell["arch"] = suite.arch_name;
        cell["counts"] = counts_json(c);
        cell["family"] = family_name(suite.family);
        cell["suite"] = key.first;
        cell["tool"] = key.second;
        cells.push_back(json::value(std::move(cell)));
    }
    doc["cells"] = json::value(std::move(cells));

    json::array quarantined;
    for (const auto& q : status.quarantined_units) {
        json::object entry;
        entry["attempts"] = q.attempts;
        entry["error"] = q.error;
        entry["unit_id"] = q.unit_id;
        quarantined.push_back(json::value(std::move(entry)));
    }
    doc["quarantined_units"] = json::value(std::move(quarantined));

    return json::value(std::move(doc));
}

}  // namespace qubikos::campaign
