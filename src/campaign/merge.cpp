#include "campaign/merge.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace qubikos::campaign {

namespace {

/// Every field two runs of the same unit must agree on (seconds is
/// thread-CPU time and legitimately varies).
bool deterministic_fields_agree(const stored_run& a, const stored_run& b) {
    return a.record.tool == b.record.tool &&
           a.record.designed_swaps == b.record.designed_swaps &&
           a.record.measured_swaps == b.record.measured_swaps &&
           a.record.valid == b.record.valid &&
           // depth_ratio round-trips JSON exactly (%.17g), so equality is
           // meaningful; tolerate only the last-ulp of a double division.
           std::abs(a.record.depth_ratio - b.record.depth_ratio) < 1e-12 &&
           a.sat_at_n == b.sat_at_n && a.unsat_below == b.unsat_below &&
           a.structure_ok == b.structure_ok && a.vf2_solvable == b.vf2_solvable;
}

}  // namespace

merged_campaign merge_stores(const campaign_plan& plan,
                             const std::vector<std::string>& store_dirs) {
    std::unordered_map<std::string, stored_run> by_id;
    by_id.reserve(plan.units.size());
    struct failure_info {
        /// Distinct attempt numbers seen, so the same error record loaded
        /// from overlapping stores (supported for successes, so it must
        /// be for failures too) doesn't inflate the attempt count.
        std::unordered_set<int> attempts;
        std::string error;

        [[nodiscard]] int attempt_count() const {
            int max_attempt = 0;
            // qubikos-lint: allow(DET-001) max over the set is order-independent
            for (const int a : attempts) max_attempt = std::max(max_attempt, a);
            return std::max(max_attempt, static_cast<int>(attempts.size()));
        }
    };
    std::unordered_map<std::string, failure_info> failures;
    std::unordered_map<std::string, stored_run> metrics_by_id;
    merged_campaign merged;

    const std::string fingerprint = spec_fingerprint(plan.spec);
    for (const auto& dir : store_dirs) {
        // The write path locks a store to its spec; the read path must
        // enforce the same thing, or results from a different experiment
        // whose unit IDs happen to collide (e.g. same suites, different
        // trial count) would silently mix into the report.
        const std::string stored = result_store::load_meta_fingerprint(dir);
        if (stored != fingerprint) {
            throw std::runtime_error("campaign: store " + dir +
                                     " belongs to a different spec (fingerprint " + stored +
                                     " != " + fingerprint + ")");
        }
        for (auto& run : result_store::load_runs(dir)) {
            if (run.is_metrics()) {
                // Keep the first sidecar seen per unit; values are
                // timings, so cross-store repeats are not conflicts.
                metrics_by_id.emplace(run.unit_id, std::move(run));
                continue;
            }
            if (run.failed()) {
                // A failed attempt is bookkeeping, not a result: it never
                // joins the merge, never conflicts, and a later success of
                // the same unit supersedes it entirely.
                auto& failure = failures[run.unit_id];
                failure.attempts.insert(run.attempt);
                failure.error = run.error;
                continue;
            }
            const auto it = by_id.find(run.unit_id);
            if (it == by_id.end()) {
                by_id.emplace(run.unit_id, std::move(run));
                continue;
            }
            if (!deterministic_fields_agree(it->second, run)) {
                throw std::runtime_error(
                    "campaign: conflicting records for unit " + run.unit_id + " (store " + dir +
                    " disagrees with an earlier store on a deterministic field)");
            }
            ++merged.duplicates;
        }
    }

    merged.runs.reserve(plan.units.size());
    for (const auto& unit : plan.units) {
        const auto it = by_id.find(unit.id);
        if (it == by_id.end()) {
            merged.missing.push_back(unit.id);
            const auto failure = failures.find(unit.id);
            if (failure != failures.end()) {
                merged.failed.push_back(
                    {unit.id, failure->second.attempt_count(), failure->second.error});
            }
            continue;
        }
        if (!it->second.record.valid) ++merged.invalid_runs;
        merged.runs.push_back(it->second);
        const auto metric = metrics_by_id.find(unit.id);
        if (metric != metrics_by_id.end()) merged.metrics.push_back(metric->second);
    }
    return merged;
}

void write_merged_store(const merged_campaign& merged, const campaign_spec& spec,
                        const std::string& directory) {
    result_store store(directory, spec);
    std::unordered_map<std::string, const stored_run*> metrics_by_id;
    for (const auto& m : merged.metrics) metrics_by_id.emplace(m.unit_id, &m);
    for (const auto& run : merged.runs) {
        if (store.is_complete(run.unit_id)) continue;
        store.append(run);
        // Interleave each unit's sidecar right after its result so the
        // written store reads like a fresh worker produced it.
        const auto metric = metrics_by_id.find(run.unit_id);
        if (metric != metrics_by_id.end()) store.append(*metric->second);
    }
    store.flush();
}

std::vector<eval::run_record> merged_records(const merged_campaign& merged) {
    std::vector<eval::run_record> records;
    records.reserve(merged.runs.size());
    for (const auto& run : merged.runs) records.push_back(run.record);
    return records;
}

}  // namespace qubikos::campaign
