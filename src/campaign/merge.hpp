// Merger: combines one or more result stores back into the plan order.
//
// Shards (or repeated, partially overlapping runs) each produced a store;
// the merger loads them all, drops duplicate unit IDs, verifies that any
// duplicates agree on every deterministic field (two honest runs of the
// same unit can only differ in CPU seconds — a disagreement means the
// stores came from diverging builds or a corrupted file, and is a hard
// error), and emits the surviving records ordered exactly as a
// single-process evaluation would have produced them. Aggregating the
// merged records therefore reproduces the serial tables byte for byte.
#pragma once

#include <string>
#include <vector>

#include "campaign/plan.hpp"
#include "campaign/store.hpp"

namespace qubikos::campaign {

/// A plan unit with failed attempts on record but no successful run.
struct failed_unit {
    std::string unit_id;
    int attempts = 0;
    std::string error;
};

struct merged_campaign {
    /// One entry per completed plan unit, in plan (= serial) order.
    /// Error records (failed attempts) never appear here: a unit that
    /// later succeeded contributes only its success, so a campaign that
    /// hit (and drained) faults merges identically to a fault-free one.
    std::vector<stored_run> runs;
    /// IDs of plan units no store had a *successful* record for, in plan
    /// order (units with only failed attempts are missing too).
    std::vector<std::string> missing;
    /// The subset of missing units that have failed attempts on record
    /// (quarantined or still retryable), in plan order.
    std::vector<failed_unit> failed;
    /// Duplicate records dropped (consistent repeats across stores).
    std::size_t duplicates = 0;
    int invalid_runs = 0;
    /// Metrics sidecar records, one per plan unit that had any, in plan
    /// order (first store to report a unit wins — values are timings, so
    /// duplicates are neither checked nor counted). Ignored by reports;
    /// `campaign profile` aggregates them.
    std::vector<stored_run> metrics;

    [[nodiscard]] bool complete() const { return missing.empty(); }
};

/// Loads and merges `store_dirs` against the plan. Every input store's
/// meta.json fingerprint must match the plan's spec (stores from a
/// different experiment throw, mirroring the write-path lock);
/// conflicting duplicates throw.
[[nodiscard]] merged_campaign merge_stores(const campaign_plan& plan,
                                           const std::vector<std::string>& store_dirs);

/// Writes a merged result back out as a normal single store (meta.json +
/// writer-0 segments in plan order), usable by report/resume like any
/// other.
void write_merged_store(const merged_campaign& merged, const campaign_spec& spec,
                        const std::string& directory);

/// The records alone, for eval::aggregate and friends.
[[nodiscard]] std::vector<eval::run_record> merged_records(const merged_campaign& merged);

}  // namespace qubikos::campaign
