#include "campaign/spec.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "tools/registry.hpp"

namespace qubikos::campaign {

namespace {

/// True when the spec uses any schema-v2 feature. v1 specs must keep
/// serializing in the v1 form so their fingerprints (and the stores keyed
/// by them) survive the schema extension.
bool uses_v2_features(const campaign_spec& spec) {
    if (spec.max_attempts != 2 || spec.vf2_check) return true;
    return std::any_of(spec.suites.begin(), spec.suites.end(), [](const campaign_suite& s) {
        return s.family != benchmark_family::qubikos;
    });
}

/// True when any tool entry needs the v3 representation (options or a
/// custom label). Plain-name specs keep the v1/v2 bytes and fingerprints.
bool uses_v3_features(const campaign_spec& spec) {
    return std::any_of(spec.tools.begin(), spec.tools.end(),
                       [](const tool_variant& t) { return !t.plain(); });
}

json::value tool_variant_to_json(const tool_variant& variant) {
    // Plain entries stay bare strings in every schema, so adding one
    // variant to a lineup doesn't reshape the others.
    if (variant.plain()) return json::value(variant.name);
    json::object o;
    o["name"] = variant.name;
    if (!variant.label.empty() && variant.label != variant.name) o["label"] = variant.label;
    if (variant.has_options()) o["options"] = variant.options;
    return json::value(std::move(o));
}

tool_variant tool_variant_from_json(const json::value& v) {
    if (v.type() == json::kind::string) return tool_variant(v.as_string());
    tool_variant variant;
    variant.name = v.at("name").as_string();
    if (v.contains("label")) variant.label = v.at("label").as_string();
    if (v.contains("options")) {
        if (v.at("options").type() != json::kind::object) {
            throw std::invalid_argument("campaign: tool options for '" + variant.name +
                                        "' must be a JSON object");
        }
        variant.options = v.at("options");
    }
    return variant;
}

json::value suite_spec_to_json(const campaign_suite& spec, bool v2) {
    json::object o;
    o["arch"] = spec.arch_name;
    json::array counts;
    for (const int c : spec.swap_counts) counts.push_back(c);
    o["swap_counts"] = std::move(counts);
    o["circuits_per_count"] = spec.circuits_per_count;
    o["total_two_qubit_gates"] = spec.total_two_qubit_gates;
    o["single_qubit_rate"] = spec.single_qubit_rate;
    o["base_seed"] = static_cast<std::int64_t>(spec.base_seed);
    if (v2) {
        o["family"] = family_name(spec.family);
        // Family knobs only where they mean something, so the canonical
        // form does not depend on stale values of the other family.
        if (spec.family == benchmark_family::queko) o["queko_density"] = spec.queko_density;
        if (spec.family == benchmark_family::quekno) {
            o["quekno_gates_per_epoch"] = spec.quekno_gates_per_epoch;
        }
    }
    return json::value(std::move(o));
}

campaign_suite suite_spec_from_json(const json::value& v) {
    campaign_suite spec;
    spec.arch_name = v.at("arch").as_string();
    for (const auto& c : v.at("swap_counts").as_array()) spec.swap_counts.push_back(c.as_int());
    spec.circuits_per_count = v.at("circuits_per_count").as_int();
    spec.total_two_qubit_gates =
        static_cast<std::size_t>(v.at("total_two_qubit_gates").as_number());
    spec.single_qubit_rate = v.at("single_qubit_rate").as_number();
    spec.base_seed = static_cast<std::uint64_t>(v.at("base_seed").as_number());
    if (v.contains("family")) spec.family = family_from_name(v.at("family").as_string());
    if (v.contains("queko_density")) spec.queko_density = v.at("queko_density").as_number();
    if (v.contains("quekno_gates_per_epoch")) {
        spec.quekno_gates_per_epoch = v.at("quekno_gates_per_epoch").as_int();
    }
    return spec;
}

}  // namespace

const char* mode_name(campaign_mode mode) {
    return mode == campaign_mode::tools ? "tools" : "certify";
}

campaign_mode mode_from_name(const std::string& name) {
    if (name == "tools") return campaign_mode::tools;
    if (name == "certify") return campaign_mode::certify;
    throw std::invalid_argument("campaign: unknown mode '" + name + "' (tools|certify)");
}

const char* family_name(benchmark_family family) {
    switch (family) {
        case benchmark_family::qubikos: return "qubikos";
        case benchmark_family::queko: return "queko";
        case benchmark_family::quekno: return "quekno";
    }
    return "qubikos";
}

benchmark_family family_from_name(const std::string& name) {
    if (name == "qubikos") return benchmark_family::qubikos;
    if (name == "queko") return benchmark_family::queko;
    if (name == "quekno") return benchmark_family::quekno;
    throw std::invalid_argument("campaign: unknown family '" + name +
                                "' (qubikos|queko|quekno)");
}

json::value spec_to_json(const campaign_spec& spec) {
    const bool v2 = uses_v2_features(spec);
    const bool v3 = uses_v3_features(spec);
    json::object o;
    o["schema"] = v3   ? "qubikos.campaign_spec.v3"
                  : v2 ? "qubikos.campaign_spec.v2"
                       : "qubikos.campaign_spec.v1";
    o["name"] = spec.name;
    o["mode"] = mode_name(spec.mode);
    json::array suites;
    for (const auto& s : spec.suites) suites.push_back(suite_spec_to_json(s, v2));
    o["suites"] = std::move(suites);
    json::array tools;
    for (const auto& t : spec.tools) tools.push_back(tool_variant_to_json(t));
    o["tools"] = std::move(tools);
    o["sabre_trials"] = spec.sabre_trials;
    o["toolbox_seed"] = static_cast<std::int64_t>(spec.toolbox_seed);
    o["conflict_limit"] = static_cast<std::int64_t>(spec.conflict_limit);
    if (v2) {
        o["max_attempts"] = spec.max_attempts;
        o["vf2_check"] = spec.vf2_check;
    }
    return json::value(std::move(o));
}

campaign_spec spec_from_json(const json::value& v) {
    const std::string schema = v.at("schema").as_string();
    if (schema != "qubikos.campaign_spec.v1" && schema != "qubikos.campaign_spec.v2" &&
        schema != "qubikos.campaign_spec.v3") {
        throw std::invalid_argument("campaign: unsupported spec schema '" + schema + "'");
    }
    campaign_spec spec;
    spec.name = v.at("name").as_string();
    spec.mode = mode_from_name(v.at("mode").as_string());
    for (const auto& s : v.at("suites").as_array()) spec.suites.push_back(suite_spec_from_json(s));
    for (const auto& t : v.at("tools").as_array()) {
        spec.tools.push_back(tool_variant_from_json(t));
    }
    spec.sabre_trials = v.at("sabre_trials").as_int();
    spec.toolbox_seed = static_cast<std::uint64_t>(v.at("toolbox_seed").as_number());
    spec.conflict_limit = static_cast<std::uint64_t>(v.at("conflict_limit").as_number());
    if (v.contains("max_attempts")) spec.max_attempts = v.at("max_attempts").as_int();
    if (v.contains("vf2_check")) spec.vf2_check = v.at("vf2_check").as_bool();
    if (spec.max_attempts < 1) {
        throw std::invalid_argument("campaign: max_attempts must be >= 1");
    }
    return spec;
}

campaign_spec load_spec(const std::string& path) {
    std::ifstream file(path);
    if (!file) throw std::runtime_error("campaign: cannot read spec file " + path);
    std::ostringstream buffer;
    buffer << file.rdbuf();
    return spec_from_json(json::parse(buffer.str()));
}

void save_spec(const campaign_spec& spec, const std::string& path) {
    const auto parent = std::filesystem::path(path).parent_path();
    if (!parent.empty()) std::filesystem::create_directories(parent);
    std::ofstream file(path);
    if (!file) throw std::runtime_error("campaign: cannot write spec file " + path);
    file << spec_to_json(spec).dump(2) << "\n";
    if (!file.good()) throw std::runtime_error("campaign: write failed for " + path);
}

std::string spec_fingerprint(const campaign_spec& spec) {
    const std::string canonical = spec_to_json(spec).dump();
    std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a 64-bit
    for (const char c : canonical) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ULL;
    }
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(hash));
    return buf;
}

std::vector<std::string> resolved_tool_names(const campaign_spec& spec) {
    if (spec.mode == campaign_mode::certify) return {"exact"};
    std::vector<std::string> labels;
    std::unordered_set<std::string> seen;
    for (const auto& variant : resolved_tool_variants(spec)) {
        labels.push_back(variant.display());
        if (!seen.insert(labels.back()).second) {
            throw std::invalid_argument("campaign: duplicate tool label '" + labels.back() +
                                        "' (give variants distinct labels)");
        }
    }
    return labels;
}

std::vector<tool_variant> resolved_tool_variants(const campaign_spec& spec) {
    if (spec.mode == campaign_mode::certify) {
        throw std::logic_error("campaign: certify mode has no registry tool variants");
    }
    std::vector<tool_variant> variants;
    if (spec.tools.empty()) {
        for (const auto& name : tools::paper_tool_names()) variants.emplace_back(name);
    } else {
        variants = spec.tools;
    }
    for (const auto& variant : variants) {
        // Registry lookup throws on unknown names; option keys/types are
        // validated too, so a bad spec dies at plan time, not mid-shard.
        (void)tools::resolve_options(tools::tool_registry_info(variant.name), variant.options);
    }
    return variants;
}

campaign_spec example_spec() {
    campaign_spec spec;
    spec.name = "mini";
    spec.sabre_trials = 4;
    core::suite_spec aspen;
    aspen.arch_name = "aspen4";
    aspen.swap_counts = {2, 3};
    aspen.circuits_per_count = 2;
    aspen.total_two_qubit_gates = 40;
    aspen.base_seed = 7;
    spec.suites.push_back(aspen);
    core::suite_spec grid;
    grid.arch_name = "grid3x3";
    grid.swap_counts = {2, 3};
    grid.circuits_per_count = 2;
    grid.total_two_qubit_gates = 30;
    grid.base_seed = 11;
    spec.suites.push_back(grid);
    return spec;
}

}  // namespace qubikos::campaign
