#include "campaign/spec.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace qubikos::campaign {

namespace {

const std::vector<std::string>& paper_tool_names() {
    static const std::vector<std::string> names = {"lightsabre", "mlqls", "qmap", "tket"};
    return names;
}

json::value suite_spec_to_json(const core::suite_spec& spec) {
    json::object o;
    o["arch"] = spec.arch_name;
    json::array counts;
    for (const int c : spec.swap_counts) counts.push_back(c);
    o["swap_counts"] = std::move(counts);
    o["circuits_per_count"] = spec.circuits_per_count;
    o["total_two_qubit_gates"] = spec.total_two_qubit_gates;
    o["single_qubit_rate"] = spec.single_qubit_rate;
    o["base_seed"] = static_cast<std::int64_t>(spec.base_seed);
    return json::value(std::move(o));
}

core::suite_spec suite_spec_from_json(const json::value& v) {
    core::suite_spec spec;
    spec.arch_name = v.at("arch").as_string();
    for (const auto& c : v.at("swap_counts").as_array()) spec.swap_counts.push_back(c.as_int());
    spec.circuits_per_count = v.at("circuits_per_count").as_int();
    spec.total_two_qubit_gates =
        static_cast<std::size_t>(v.at("total_two_qubit_gates").as_number());
    spec.single_qubit_rate = v.at("single_qubit_rate").as_number();
    spec.base_seed = static_cast<std::uint64_t>(v.at("base_seed").as_number());
    return spec;
}

}  // namespace

const char* mode_name(campaign_mode mode) {
    return mode == campaign_mode::tools ? "tools" : "certify";
}

campaign_mode mode_from_name(const std::string& name) {
    if (name == "tools") return campaign_mode::tools;
    if (name == "certify") return campaign_mode::certify;
    throw std::invalid_argument("campaign: unknown mode '" + name + "' (tools|certify)");
}

json::value spec_to_json(const campaign_spec& spec) {
    json::object o;
    o["schema"] = "qubikos.campaign_spec.v1";
    o["name"] = spec.name;
    o["mode"] = mode_name(spec.mode);
    json::array suites;
    for (const auto& s : spec.suites) suites.push_back(suite_spec_to_json(s));
    o["suites"] = std::move(suites);
    json::array tools;
    for (const auto& t : spec.tools) tools.push_back(t);
    o["tools"] = std::move(tools);
    o["sabre_trials"] = spec.sabre_trials;
    o["toolbox_seed"] = static_cast<std::int64_t>(spec.toolbox_seed);
    o["conflict_limit"] = static_cast<std::int64_t>(spec.conflict_limit);
    return json::value(std::move(o));
}

campaign_spec spec_from_json(const json::value& v) {
    if (v.at("schema").as_string() != "qubikos.campaign_spec.v1") {
        throw std::invalid_argument("campaign: unsupported spec schema");
    }
    campaign_spec spec;
    spec.name = v.at("name").as_string();
    spec.mode = mode_from_name(v.at("mode").as_string());
    for (const auto& s : v.at("suites").as_array()) spec.suites.push_back(suite_spec_from_json(s));
    for (const auto& t : v.at("tools").as_array()) spec.tools.push_back(t.as_string());
    spec.sabre_trials = v.at("sabre_trials").as_int();
    spec.toolbox_seed = static_cast<std::uint64_t>(v.at("toolbox_seed").as_number());
    spec.conflict_limit = static_cast<std::uint64_t>(v.at("conflict_limit").as_number());
    return spec;
}

campaign_spec load_spec(const std::string& path) {
    std::ifstream file(path);
    if (!file) throw std::runtime_error("campaign: cannot read spec file " + path);
    std::ostringstream buffer;
    buffer << file.rdbuf();
    return spec_from_json(json::parse(buffer.str()));
}

void save_spec(const campaign_spec& spec, const std::string& path) {
    const auto parent = std::filesystem::path(path).parent_path();
    if (!parent.empty()) std::filesystem::create_directories(parent);
    std::ofstream file(path);
    if (!file) throw std::runtime_error("campaign: cannot write spec file " + path);
    file << spec_to_json(spec).dump(2) << "\n";
    if (!file.good()) throw std::runtime_error("campaign: write failed for " + path);
}

std::string spec_fingerprint(const campaign_spec& spec) {
    const std::string canonical = spec_to_json(spec).dump();
    std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a 64-bit
    for (const char c : canonical) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ULL;
    }
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(hash));
    return buf;
}

std::vector<std::string> resolved_tool_names(const campaign_spec& spec) {
    if (spec.mode == campaign_mode::certify) return {"exact"};
    if (spec.tools.empty()) return paper_tool_names();
    const auto& known = paper_tool_names();
    for (const auto& name : spec.tools) {
        if (std::find(known.begin(), known.end(), name) == known.end()) {
            throw std::invalid_argument("campaign: unknown tool '" + name + "'");
        }
    }
    return spec.tools;
}

campaign_spec example_spec() {
    campaign_spec spec;
    spec.name = "mini";
    spec.sabre_trials = 4;
    core::suite_spec aspen;
    aspen.arch_name = "aspen4";
    aspen.swap_counts = {2, 3};
    aspen.circuits_per_count = 2;
    aspen.total_two_qubit_gates = 40;
    aspen.base_seed = 7;
    spec.suites.push_back(aspen);
    core::suite_spec grid;
    grid.arch_name = "grid3x3";
    grid.swap_counts = {2, 3};
    grid.circuits_per_count = 2;
    grid.total_two_qubit_gates = 30;
    grid.base_seed = 11;
    spec.suites.push_back(grid);
    return spec;
}

}  // namespace qubikos::campaign
