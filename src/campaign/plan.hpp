// Plan expansion and shard assignment.
//
// A campaign_spec expands deterministically into an ordered list of work
// units — one per (suite, instance, tool) triple, suite-major,
// instance-major, tool-minor, i.e. exactly the serial iteration order of
// eval::evaluate_suite over the concatenated suites. Every unit carries a
// stable human-readable ID derived from the spec alone, so any process
// holding the spec can tell which units a result store already covers
// without coordinating with the process that wrote it.
//
// Sharding is round-robin over the unit index: shard k of n owns units
// {i : i % n == k}. Round-robin (rather than contiguous blocks) spreads
// every swap count and architecture across all shards, which balances
// wall time when instance difficulty grows with the swap count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/spec.hpp"

namespace qubikos::campaign {

struct work_unit {
    /// Stable ID, e.g. "u0:aspen4:n5:i3:seed42:lightsabre" (qubikos) or
    /// "u0:grid3x3:queko:d8:i0:seed1:exact" (family-tagged).
    std::string id;
    std::size_t suite_index = 0;
    /// Index of the instance within its suite (generation order).
    std::size_t instance_index = 0;
    std::string tool;
    benchmark_family family = benchmark_family::qubikos;
    /// The suite's raw sweep value for this unit: designed SWAPs
    /// (qubikos), depth (queko) or construction transitions (quekno).
    int sweep_value = 0;
    /// The claimed SWAP count the family asserts for the instance:
    /// certified optimum (qubikos), 0 (queko) or the construction upper
    /// bound (quekno).
    int designed_swaps = 0;
    /// The generator seed of this unit's instance (base_seed + index).
    std::uint64_t instance_seed = 0;
};

struct campaign_plan {
    campaign_spec spec;
    /// Suite-major, instance-major, tool-minor.
    std::vector<work_unit> units;
};

/// Expands a spec into its full ordered unit list. Throws on empty
/// suites or unknown tool names.
[[nodiscard]] campaign_plan expand_plan(const campaign_spec& spec);

/// Unit indices owned by `shard` of `num_shards` (ascending). The n
/// shards partition [0, num_units) exactly. Throws unless
/// 0 <= shard < num_shards.
[[nodiscard]] std::vector<std::size_t> shard_indices(std::size_t num_units, int shard,
                                                     int num_shards);

}  // namespace qubikos::campaign
