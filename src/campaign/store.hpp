// Persistent result store: append-only JSON-lines with crash tolerance.
//
// On disk a store is a directory:
//   meta.json    - spec snapshot + fingerprint (written once at creation)
//   runs.jsonl   - one completed work unit per line, append-only
//
// The write path buffers records and flushes them in batches: each flush
// fwrites the buffered lines, fflushes and fsyncs, so a crash loses at
// most one unsynced batch and can tear at most the final line. The read
// path tolerates exactly that failure mode — an unparseable *final* line
// is discarded (and truncated away when the store is reopened for
// appending, so the next append starts on a clean line boundary); garbage
// anywhere else is a hard error.
//
// Opening a store checks the spec fingerprint in meta.json, so results
// from different experiments can never silently mix in one store.
#pragma once

#include <cstdio>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "campaign/spec.hpp"
#include "eval/metrics.hpp"

namespace qubikos::campaign {

/// One stored record: either a completed work unit, or one *failed
/// attempt* at a unit (`error` nonempty — the tool or generator threw;
/// the record carries the message and the attempt number instead of a
/// result). `record.seconds` is per-record thread-CPU time (see
/// eval::evaluate_suite) — the only nondeterministic field of a completed
/// unit; everything else must agree between any two runs of the same
/// unit, and the merger enforces that. attempt/error never participate in
/// that check (how often a unit failed before succeeding is not part of
/// the experiment). Records written before these fields existed (store
/// v1) simply lack the keys and load as attempt 0 / no error.
struct stored_run {
    std::string unit_id;
    eval::run_record record;
    /// Certify-mode detail (-1 when not a certify run): did the exact
    /// solver find the instance SAT at n / UNSAT at n-1, and did the
    /// structural verifier pass? For quekno units "UNSAT at n-1" means
    /// the construction bound is tight.
    int sat_at_n = -1;
    int unsat_below = -1;
    int structure_ok = -1;
    /// Certify-mode VF2 probe (-1 when not run): does plain subgraph
    /// monomorphism solve the instance with 0 swaps? Expected 1 for
    /// queko, 0 for qubikos.
    int vf2_solvable = -1;
    /// Which execution attempt produced this record (0 = pre-v2 record).
    int attempt = 0;
    /// Nonempty = this is a failed attempt, not a result.
    std::string error;

    [[nodiscard]] bool failed() const { return !error.empty(); }
};

/// What a store knows about one unit ID after replaying runs.jsonl.
struct unit_status {
    bool succeeded = false;
    /// Failed attempts on record (max of the attempt numbers seen and
    /// the count of error records, so hand-edited files stay sane).
    int failed_attempts = 0;
    std::string last_error;
};

[[nodiscard]] json::value run_to_json(const stored_run& run);
[[nodiscard]] stored_run run_from_json(const json::value& v);

class result_store {
public:
    /// Opens `directory` for appending, creating it (and meta.json) if
    /// absent. Replays runs.jsonl to learn which unit IDs are already
    /// complete; a torn final line is truncated away. Throws if the store
    /// belongs to a different spec (fingerprint mismatch).
    result_store(const std::string& directory, const campaign_spec& spec);
    ~result_store();

    result_store(const result_store&) = delete;
    result_store& operator=(const result_store&) = delete;

    [[nodiscard]] const std::string& directory() const { return directory_; }
    /// Unit IDs with a *successful* record (failed attempts don't count).
    [[nodiscard]] const std::unordered_set<std::string>& completed() const { return completed_; }
    [[nodiscard]] bool is_complete(const std::string& unit_id) const {
        return completed_.count(unit_id) > 0;
    }
    /// Per-unit success/attempt bookkeeping (only units with records).
    [[nodiscard]] const std::unordered_map<std::string, unit_status>& statuses() const {
        return statuses_;
    }
    /// Status of one unit (default-constructed when it has no records).
    [[nodiscard]] unit_status status(const std::string& unit_id) const;

    /// Buffers one record (not yet durable until flush()).
    void append(const stored_run& run);

    /// Writes the buffered records, fflushes and fsyncs. No-op when the
    /// buffer is empty.
    void flush();

    /// Reads every intact record of a store (no spec check). A torn
    /// final line is skipped; earlier corruption throws.
    [[nodiscard]] static std::vector<stored_run> load_runs(const std::string& directory);

    /// Reads the spec snapshot out of a store's meta.json.
    [[nodiscard]] static campaign_spec load_meta_spec(const std::string& directory);

    /// Reads the fingerprint a store was created under. Throws when
    /// meta.json is missing (not a store).
    [[nodiscard]] static std::string load_meta_fingerprint(const std::string& directory);

private:
    void note(const stored_run& run);

    std::string directory_;
    std::string runs_path_;
    std::FILE* file_ = nullptr;
    std::string buffer_;
    std::unordered_set<std::string> completed_;
    std::unordered_map<std::string, unit_status> statuses_;
};

/// Folds one record into a unit's status — THE attempt-counting rule
/// (failed_attempts = max of error-record count and attempt numbers
/// seen). Shared by the store's replay bookkeeping and unit_statuses so
/// resume admission, `campaign status` and the merge report can never
/// disagree on what counts as an attempt.
void fold_unit_status(unit_status& status, const stored_run& run);

/// Folds a run list into per-unit statuses (the read-only counterpart of
/// result_store's bookkeeping, for `campaign status` and the merger).
[[nodiscard]] std::unordered_map<std::string, unit_status> unit_statuses(
    const std::vector<stored_run>& runs);

}  // namespace qubikos::campaign
