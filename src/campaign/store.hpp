// Persistent result store: append-only JSON-lines with crash tolerance.
//
// On disk a store is a directory. Layout v2 (segmented, the default for
// new stores) is built for multi-machine collection:
//   meta.json                 - spec snapshot + fingerprint (written once)
//   runs-<writer>-<seq>.jsonl - record segments; <writer> is the shard id
//                               of the process that wrote them, <seq> a
//                               rotation counter. Only the highest-seq
//                               segment of a writer is ever open for
//                               appending; lower-seq segments are sealed
//                               and immutable.
//   head-<writer>.json        - tiny per-writer manifest, atomically
//                               replaced (temp + fsync + rename): which
//                               segment is open and the byte length +
//                               content fingerprint of every sealed one.
// Layout v1 is the same directory with a single runs.jsonl. A v1 store
// opened for appending keeps appending to runs.jsonl — its bytes, and
// therefore its crash-recovery story, are untouched by v2. The read path
// accepts both layouts (and their mix, which `campaign sync` can produce
// when collecting from v1 and v2 machines).
//
// The write path buffers records and flushes them in batches: each flush
// fwrites the buffered lines, fflushes and fsyncs, so a crash loses at
// most one unsynced batch and can tear at most the final line of the
// writer's open segment. The read path tolerates exactly that failure
// mode — an unparseable *final* line of the newest segment of a writer
// (or of the legacy runs.jsonl) is discarded; a torn or corrupt sealed
// segment is a hard error, as is garbage anywhere but the tail. Sealed
// segments named by a head manifest are verified against their recorded
// byte length and fingerprint on every load.
//
// Opening a store checks the spec fingerprint in meta.json, so results
// from different experiments can never silently mix in one store.
#pragma once

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "campaign/spec.hpp"
#include "eval/metrics.hpp"
#include "util/json.hpp"

namespace qubikos::campaign {

/// One stored record: either a completed work unit, or one *failed
/// attempt* at a unit (`error` nonempty — the tool or generator threw;
/// the record carries the message and the attempt number instead of a
/// result). `record.seconds` is per-record thread-CPU time (see
/// eval::evaluate_suite) — the only nondeterministic field of a completed
/// unit; everything else must agree between any two runs of the same
/// unit, and the merger enforces that. attempt/error never participate in
/// that check (how often a unit failed before succeeding is not part of
/// the experiment). Records written before these fields existed (store
/// v1) simply lack the keys and load as attempt 0 / no error.
struct stored_run {
    std::string unit_id;
    eval::run_record record;
    /// Certify-mode detail (-1 when not a certify run): did the exact
    /// solver find the instance SAT at n / UNSAT at n-1, and did the
    /// structural verifier pass? For quekno units "UNSAT at n-1" means
    /// the construction bound is tight.
    int sat_at_n = -1;
    int unsat_below = -1;
    int structure_ok = -1;
    /// Certify-mode VF2 probe (-1 when not run): does plain subgraph
    /// monomorphism solve the instance with 0 swaps? Expected 1 for
    /// queko, 0 for qubikos.
    int vf2_solvable = -1;
    /// Which execution attempt produced this record (0 = pre-v2 record).
    int attempt = 0;
    /// Nonempty = this is a failed attempt, not a result.
    std::string error;
    /// Non-null = this is a *metrics sidecar* record ("kind":"metrics"):
    /// the per-unit telemetry counters the worker captured around the
    /// unit's execution (QUBIKOS_OBS=metrics). It is not a result: it
    /// never marks a unit complete, never counts as an attempt, is
    /// excluded from merge's determinism checks (its values are timings)
    /// and from reports/status — only `campaign profile` reads it.
    json::value metrics;

    [[nodiscard]] bool failed() const { return !error.empty(); }
    [[nodiscard]] bool is_metrics() const { return !metrics.is_null(); }
};

/// What a store knows about one unit ID after replaying its records.
struct unit_status {
    bool succeeded = false;
    /// Failed attempts on record (max of the attempt numbers seen and
    /// the count of error records, so hand-edited files stay sane).
    int failed_attempts = 0;
    std::string last_error;
};

[[nodiscard]] json::value run_to_json(const stored_run& run);
[[nodiscard]] stored_run run_from_json(const json::value& v);

// --- segmented-layout vocabulary (shared with campaign sync) ----------------

/// "runs-<writer>-<seq>.jsonl" (seq zero-padded for sortable listings).
[[nodiscard]] std::string segment_file_name(int writer, long seq);
/// Parses a segment file name; false for anything else (incl. runs.jsonl).
[[nodiscard]] bool parse_segment_file_name(const std::string& name, int& writer, long& seq);
/// "head-<writer>.json".
[[nodiscard]] std::string head_file_name(int writer);
[[nodiscard]] bool parse_head_file_name(const std::string& name, int& writer);

/// FNV-1a-64 hex fingerprint of raw bytes — the content address `sync`
/// and the head manifests use to recognize identical / grown segments.
[[nodiscard]] std::string content_fingerprint(const std::string& bytes);

/// Byte length of the longest record-valid prefix of JSONL content: every
/// line up to and including the last one that parses as a record. An
/// unparseable *final* line (torn tail) is excluded; unparseable content
/// anywhere else throws. This is the durable part of a segment — what the
/// writer keeps on reopen and what `sync` compares across machines.
[[nodiscard]] std::size_t valid_record_prefix(const std::string& content);

/// One sealed (immutable) segment as recorded in a head manifest.
struct sealed_segment {
    std::string file;
    std::size_t bytes = 0;
    std::string fingerprint;
};

/// A writer's head manifest (head-<writer>.json).
struct writer_head {
    int writer = 0;
    /// Sequence number of the segment the writer has open (or will open).
    long open_seq = 0;
    std::vector<sealed_segment> sealed;
};

[[nodiscard]] json::value head_to_json(const writer_head& head);
[[nodiscard]] writer_head head_from_json(const json::value& v);
/// Loads head-<writer>.json into `out`; false when the file is absent.
[[nodiscard]] bool load_writer_head(const std::string& directory, int writer, writer_head& out);
/// Loads every head-<writer>.json manifest of a store directory.
[[nodiscard]] std::vector<writer_head> load_store_heads(const std::string& directory);

/// One record-bearing file of a store as the read path sees it.
struct store_file {
    /// File name within the store directory.
    std::string name;
    /// Writer (shard) id; -1 for the legacy runs.jsonl.
    int writer = -1;
    long seq = -1;
    /// Torn trailing bytes are tolerated only here: the newest segment of
    /// its writer, or the legacy file (each the one spot a live or killed
    /// writer can have been appending to).
    bool newest_of_writer = false;
};

/// Record-bearing files of a store in deterministic replay order: the
/// legacy runs.jsonl first (when present), then segments by (writer, seq).
[[nodiscard]] std::vector<store_file> scan_store_files(const std::string& directory);

/// Writes `bytes` to `path` atomically: sibling temp file, fsync, rename.
void atomic_write_file(const std::filesystem::path& path, const std::string& bytes);

/// Reads a whole file into a string (binary); throws when unreadable.
[[nodiscard]] std::string read_file_bytes(const std::filesystem::path& path);

/// Knobs for opening a store for appending.
struct store_options {
    /// Writer (shard) id — names the segments this process appends to.
    /// Writers of *different* ids can share one store directory safely.
    int writer = 0;
    /// Rotation threshold: the open segment is sealed once a flush leaves
    /// it at or past this many bytes. 0 = QUBIKOS_CAMPAIGN_SEGMENT_BYTES
    /// or the 8 MiB default. Segments may exceed the threshold by up to
    /// one batch (rotation happens only on flush boundaries).
    std::size_t segment_bytes = 0;
};

class result_store {
public:
    /// Opens `directory` for appending, creating it (and meta.json) if
    /// absent. Replays every record file to learn which unit IDs are
    /// already complete; a torn tail on the writer's open segment is
    /// truncated away. A v1 store (lone runs.jsonl) resumes appending to
    /// runs.jsonl unchanged; anything else appends to this writer's
    /// segments. Throws if the store belongs to a different spec
    /// (fingerprint mismatch) or a sealed segment fails verification.
    result_store(const std::string& directory, const campaign_spec& spec,
                 const store_options& options = {});
    ~result_store();

    result_store(const result_store&) = delete;
    result_store& operator=(const result_store&) = delete;

    [[nodiscard]] const std::string& directory() const { return directory_; }
    /// Unit IDs with a *successful* record (failed attempts don't count).
    [[nodiscard]] const std::unordered_set<std::string>& completed() const { return completed_; }
    [[nodiscard]] bool is_complete(const std::string& unit_id) const {
        return completed_.contains(unit_id);
    }
    /// Per-unit success/attempt bookkeeping (only units with records).
    [[nodiscard]] const std::unordered_map<std::string, unit_status>& statuses() const {
        return statuses_;
    }
    /// Status of one unit (default-constructed when it has no records).
    [[nodiscard]] unit_status status(const std::string& unit_id) const;

    /// Buffers one record (not yet durable until flush()).
    void append(const stored_run& run);

    /// Writes the buffered records, fflushes and fsyncs, then rotates the
    /// open segment if it crossed the size threshold. No-op when the
    /// buffer is empty.
    void flush();

    /// Reads every intact record of a store (no spec check), legacy file
    /// first then segments by (writer, seq). Torn tails are skipped only
    /// on the newest segment of each writer; corruption anywhere else —
    /// including a sealed segment disagreeing with its head manifest —
    /// throws.
    [[nodiscard]] static std::vector<stored_run> load_runs(const std::string& directory);

    /// Reads the spec snapshot out of a store's meta.json.
    [[nodiscard]] static campaign_spec load_meta_spec(const std::string& directory);

    /// Reads the fingerprint a store was created under. Throws when
    /// meta.json is missing (not a store).
    [[nodiscard]] static std::string load_meta_fingerprint(const std::string& directory);

private:
    void note(const stored_run& run);
    void open_segment(long seq, std::size_t resume_bytes, std::uint64_t resume_hash,
                      bool needs_newline);
    void seal_and_rotate();
    void write_head() const;

    std::string directory_;
    /// Path of the file currently open for appending (runs.jsonl in
    /// legacy mode, this writer's open segment otherwise).
    std::string runs_path_;
    std::FILE* file_ = nullptr;
    std::string buffer_;
    std::unordered_set<std::string> completed_;
    std::unordered_map<std::string, unit_status> statuses_;

    bool legacy_mode_ = false;
    int writer_ = 0;
    long open_seq_ = 0;
    std::size_t segment_bytes_ = 0;
    /// Bytes and running FNV-1a state of the open segment's content.
    std::size_t current_bytes_ = 0;
    std::uint64_t current_hash_ = 0;
    /// This writer's sealed segments (mirrored into head-<writer>.json).
    std::vector<sealed_segment> sealed_;
};

/// Folds one record into a unit's status — THE attempt-counting rule
/// (failed_attempts = max of error-record count and attempt numbers
/// seen). Shared by the store's replay bookkeeping and unit_statuses so
/// resume admission, `campaign status` and the merge report can never
/// disagree on what counts as an attempt.
void fold_unit_status(unit_status& status, const stored_run& run);

/// Folds a run list into per-unit statuses (the read-only counterpart of
/// result_store's bookkeeping, for `campaign status` and the merger).
[[nodiscard]] std::unordered_map<std::string, unit_status> unit_statuses(
    const std::vector<stored_run>& runs);

}  // namespace qubikos::campaign
