// Persistent result store: append-only JSON-lines with crash tolerance.
//
// On disk a store is a directory:
//   meta.json    - spec snapshot + fingerprint (written once at creation)
//   runs.jsonl   - one completed work unit per line, append-only
//
// The write path buffers records and flushes them in batches: each flush
// fwrites the buffered lines, fflushes and fsyncs, so a crash loses at
// most one unsynced batch and can tear at most the final line. The read
// path tolerates exactly that failure mode — an unparseable *final* line
// is discarded (and truncated away when the store is reopened for
// appending, so the next append starts on a clean line boundary); garbage
// anywhere else is a hard error.
//
// Opening a store checks the spec fingerprint in meta.json, so results
// from different experiments can never silently mix in one store.
#pragma once

#include <cstdio>
#include <string>
#include <unordered_set>
#include <vector>

#include "campaign/spec.hpp"
#include "eval/metrics.hpp"

namespace qubikos::campaign {

/// One completed work unit as stored on disk. `record.seconds` is
/// per-record thread-CPU time (see eval::evaluate_suite) — the only
/// nondeterministic field; everything else must agree between any two
/// runs of the same unit, and the merger enforces that.
struct stored_run {
    std::string unit_id;
    eval::run_record record;
    /// Certify-mode detail (-1 when not a certify run): did the exact
    /// solver find the instance SAT at n / UNSAT at n-1, and did the
    /// structural verifier pass?
    int sat_at_n = -1;
    int unsat_below = -1;
    int structure_ok = -1;
};

[[nodiscard]] json::value run_to_json(const stored_run& run);
[[nodiscard]] stored_run run_from_json(const json::value& v);

class result_store {
public:
    /// Opens `directory` for appending, creating it (and meta.json) if
    /// absent. Replays runs.jsonl to learn which unit IDs are already
    /// complete; a torn final line is truncated away. Throws if the store
    /// belongs to a different spec (fingerprint mismatch).
    result_store(const std::string& directory, const campaign_spec& spec);
    ~result_store();

    result_store(const result_store&) = delete;
    result_store& operator=(const result_store&) = delete;

    [[nodiscard]] const std::string& directory() const { return directory_; }
    [[nodiscard]] const std::unordered_set<std::string>& completed() const { return completed_; }
    [[nodiscard]] bool is_complete(const std::string& unit_id) const {
        return completed_.count(unit_id) > 0;
    }

    /// Buffers one record (not yet durable until flush()).
    void append(const stored_run& run);

    /// Writes the buffered records, fflushes and fsyncs. No-op when the
    /// buffer is empty.
    void flush();

    /// Reads every intact record of a store (no spec check). A torn
    /// final line is skipped; earlier corruption throws.
    [[nodiscard]] static std::vector<stored_run> load_runs(const std::string& directory);

    /// Reads the spec snapshot out of a store's meta.json.
    [[nodiscard]] static campaign_spec load_meta_spec(const std::string& directory);

    /// Reads the fingerprint a store was created under. Throws when
    /// meta.json is missing (not a store).
    [[nodiscard]] static std::string load_meta_fingerprint(const std::string& directory);

private:
    std::string directory_;
    std::string runs_path_;
    std::FILE* file_ = nullptr;
    std::string buffer_;
    std::unordered_set<std::string> completed_;
};

}  // namespace qubikos::campaign
