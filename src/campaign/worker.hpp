// Shard worker: executes a campaign plan's work units and streams the
// results into a persistent store.
//
// A worker owns one shard (k of n) of the plan. It skips every unit the
// store already holds a success for — so re-launching an interrupted
// shard resumes where the last fsync'd batch left off — and runs the
// remainder in batches on the shared thread pool (suite-level
// parallelism; the tools themselves stay serial). Batch results are
// appended to the store in unit order and fsync'd together, bounding
// both the fsync rate and the work a crash can lose.
//
// Fault isolation: a unit whose generator or tool throws never kills the
// shard. The failure is captured as a stored error record (message +
// attempt number) and the unit is retried — within the same invocation —
// until it succeeds or exhausts spec.max_attempts, at which point it is
// *quarantined*: later invocations skip it (so a poisoned unit cannot
// wedge a campaign) until a worker runs with retry_quarantined, which
// re-opens quarantined units for another max_attempts round.
//
// Faults vs. invalid results: only a *throw* is a fault. A unit that
// completes with record.valid = false (a tool emitting an invalid
// routing, a certify claim that fails its checks) is a deterministic
// *result* the paper's tables report — it is stored as a success, counted
// in invalid_runs, and never retried, exactly as eval::evaluate_suite
// records it (retrying a deterministic outcome cannot change it, and
// quarantining it would block campaign completion on a legitimate
// finding). A generator whose claimed count contradicts the plan *is* a
// fault — it throws rather than poisoning downstream ratios.
//
// Instances are regenerated on demand from the spec's seeds instead of
// being loaded from disk: the generators (QUBIKOS, QUEKO, QUEKNO — per
// the suite's family) are deterministic and cheap relative to routing,
// and it keeps a shard fully self-contained — spec in, results out, no
// shared suite directory to distribute.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "campaign/plan.hpp"
#include "campaign/store.hpp"

namespace qubikos::campaign {

struct worker_options {
    int shard = 0;
    int num_shards = 1;
    /// Thread-pool size for units within a batch (0 = auto via
    /// QUBIKOS_THREADS / hardware_concurrency, 1 = serial). Tools always
    /// run serial inside a unit.
    int threads = 1;
    /// Units per append-and-fsync batch (also the parallel batch width
    /// when larger than the pool).
    std::size_t batch_size = 16;
    /// Stop after this many unit executions (0 = no limit). Lets tests
    /// and drills interrupt a shard at a deterministic point.
    std::size_t max_units = 0;
    /// Re-open quarantined units (failed attempts >= spec.max_attempts)
    /// for another max_attempts round.
    bool retry_quarantined = false;
    /// Per-unit progress lines on stdout.
    bool verbose = false;
    /// Persist one telemetry sidecar record ("kind":"metrics", the
    /// counters the executing thread accumulated around the unit) after
    /// each *successful* unit. -1 = follow the environment
    /// (QUBIKOS_OBS=metrics|full), 0 = off, 1 = on.
    int record_metrics = -1;
};

struct worker_report {
    /// Units this shard owns under the plan.
    std::size_t assigned = 0;
    /// Owned units already succeeded in the store (resumed past).
    std::size_t skipped = 0;
    /// Unit executions performed by this invocation (retries included).
    std::size_t executed = 0;
    /// Owned units still unresolved afterwards (only when max_units cut
    /// the run short).
    std::size_t remaining = 0;
    /// Failed attempts recorded by this invocation.
    std::size_t failed_attempts = 0;
    /// Owned units left quarantined: attempt budget exhausted with no
    /// success (pre-existing quarantine included unless retried).
    std::size_t quarantined = 0;
    int invalid_runs = 0;
};

/// Prebuilt read-only execution context shared by every unit of a run:
/// device graphs and the tool lineup are constructed once, units only
/// read them. Owns a copy of the spec, so it outlives the caller's.
class unit_executor {
public:
    explicit unit_executor(const campaign_spec& spec);
    ~unit_executor();
    unit_executor(const unit_executor&) = delete;
    unit_executor& operator=(const unit_executor&) = delete;

    /// Executes one unit; throws when the generator or tool fails (or the
    /// generator's claimed count contradicts the plan).
    [[nodiscard]] stored_run execute(const work_unit& unit) const;

    /// Never-throwing wrapper: a failure becomes a stored error record
    /// carrying the exception message and `attempt`.
    [[nodiscard]] stored_run execute_captured(const work_unit& unit, int attempt) const;

private:
    struct impl;
    std::unique_ptr<const impl> impl_;
};

/// Runs shard `options.shard` of `options.num_shards` of the plan,
/// appending into the store at `store_dir` (created if absent; must
/// match the plan's spec fingerprint).
worker_report run_campaign_shard(const campaign_plan& plan, const std::string& store_dir,
                                 const worker_options& options = {});

/// Executes a single work unit (no store involved) — the primitive the
/// worker batches, exposed for tests and the merge-equals-serial check.
/// Reuses a cached unit_executor keyed by the spec fingerprint, so
/// repeated one-off calls don't rebuild the toolbox and device graphs.
[[nodiscard]] stored_run execute_unit(const campaign_spec& spec, const work_unit& unit);

}  // namespace qubikos::campaign
