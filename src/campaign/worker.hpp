// Shard worker: executes a campaign plan's work units and streams the
// results into a persistent store.
//
// A worker owns one shard (k of n) of the plan. It skips every unit the
// store already holds — so re-launching an interrupted shard resumes
// where the last fsync'd batch left off — and runs the remainder in
// batches on the shared thread pool (suite-level parallelism; the tools
// themselves stay serial). Batch results are appended to the store in
// unit order and fsync'd together, bounding both the fsync rate and the
// work a crash can lose.
//
// Instances are regenerated on demand from the spec's seeds instead of
// being loaded from disk: the generator is deterministic and cheap
// relative to routing, and it keeps a shard fully self-contained — spec
// in, results out, no shared suite directory to distribute.
#pragma once

#include <cstddef>
#include <string>

#include "campaign/plan.hpp"
#include "campaign/store.hpp"

namespace qubikos::campaign {

struct worker_options {
    int shard = 0;
    int num_shards = 1;
    /// Thread-pool size for units within a batch (0 = auto via
    /// QUBIKOS_THREADS / hardware_concurrency, 1 = serial). Tools always
    /// run serial inside a unit.
    int threads = 1;
    /// Units per append-and-fsync batch (also the parallel batch width
    /// when larger than the pool).
    std::size_t batch_size = 16;
    /// Stop after executing this many units (0 = no limit). Lets tests
    /// and drills interrupt a shard at a deterministic point.
    std::size_t max_units = 0;
    /// Per-unit progress lines on stdout.
    bool verbose = false;
};

struct worker_report {
    /// Units this shard owns under the plan.
    std::size_t assigned = 0;
    /// Owned units already present in the store (resumed past).
    std::size_t skipped = 0;
    /// Units executed and recorded by this invocation.
    std::size_t executed = 0;
    /// Owned units still missing afterwards (only when max_units cut the
    /// run short).
    std::size_t remaining = 0;
    int invalid_runs = 0;
};

/// Runs shard `options.shard` of `options.num_shards` of the plan,
/// appending into the store at `store_dir` (created if absent; must
/// match the plan's spec fingerprint).
worker_report run_campaign_shard(const campaign_plan& plan, const std::string& store_dir,
                                 const worker_options& options = {});

/// Executes a single work unit (no store involved) — the primitive the
/// worker batches, exposed for tests and the merge-equals-serial check.
[[nodiscard]] stored_run execute_unit(const campaign_spec& spec, const work_unit& unit);

}  // namespace qubikos::campaign
