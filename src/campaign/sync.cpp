#include "campaign/sync.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "campaign/store.hpp"

namespace qubikos::campaign {

namespace {

namespace fs = std::filesystem;

/// (open_seq, sealed count) ordering: the head that has sealed more —
/// or opened a later segment — is the newer snapshot of its writer.
bool head_advances(const writer_head& from, const writer_head& to) {
    if (to.open_seq != from.open_seq) return to.open_seq > from.open_seq;
    return to.sealed.size() > from.sealed.size();
}

/// Copies one record file from a source into the destination under the
/// append-only contract. The durable (record-valid) prefixes must nest:
/// a segment only ever changes by appending records — or by losing an
/// unparseable torn tail when its writer truncates it on resume — so the
/// copy with the longer valid prefix wins, a clean copy replaces a torn
/// one of equal prefix (healing junk a pull from a live writer picked
/// up), and valid prefixes that disagree are a hard error.
void sync_record_file(const fs::path& src_path, const fs::path& dest_path,
                      const std::string& name, const sync_options& options,
                      sync_report& report) {
    const std::string src_content = read_file_bytes(src_path);
    if (!fs::exists(dest_path)) {
        atomic_write_file(dest_path, src_content);
        ++report.copied;
        if (options.verbose) std::printf("  copy  %s (%zu bytes)\n", name.c_str(), src_content.size());
        return;
    }
    const std::string dest_content = read_file_bytes(dest_path);
    if (src_content == dest_content) {
        ++report.unchanged;
        if (options.verbose) std::printf("  keep  %s\n", name.c_str());
        return;
    }
    const std::size_t src_end = valid_record_prefix(src_content);
    const std::size_t dest_end = valid_record_prefix(dest_content);
    const std::size_t common = std::min(src_end, dest_end);
    const bool prefix_ok =
        std::equal(src_content.begin(),
                   src_content.begin() + static_cast<std::ptrdiff_t>(common),
                   dest_content.begin());
    if (!prefix_ok) {
        throw std::runtime_error(
            "campaign: sync: " + name + " in " + src_path.parent_path().string() +
            " diverges from the destination's copy (same name, different records — "
            "two writers shared a shard id, or the stores mix experiments)");
    }
    const bool src_clean = src_content.size() == src_end;
    const bool dest_torn = dest_content.size() > dest_end;
    if (src_end > dest_end || (src_end == dest_end && src_clean && dest_torn)) {
        atomic_write_file(dest_path, src_content);
        ++report.grown;
        if (options.verbose) {
            std::printf("  grow  %s (%zu -> %zu bytes)\n", name.c_str(), dest_content.size(),
                        src_content.size());
        }
    } else {
        ++report.unchanged;
        if (options.verbose) std::printf("  keep  %s\n", name.c_str());
    }
}

}  // namespace

sync_report sync_stores(const std::string& destination, const std::vector<std::string>& sources,
                        const sync_options& options) {
    if (sources.empty()) {
        throw std::invalid_argument("campaign: sync needs at least one source store");
    }

    // Every store involved must be the same experiment.
    std::string fingerprint;
    for (const auto& src : sources) {
        const std::string fp = result_store::load_meta_fingerprint(src);
        if (fingerprint.empty()) {
            fingerprint = fp;
        } else if (fp != fingerprint) {
            throw std::runtime_error("campaign: sync: source " + src +
                                     " belongs to a different spec (fingerprint " + fp +
                                     " != " + fingerprint + ")");
        }
    }
    const fs::path dest_dir(destination);
    const fs::path dest_meta = dest_dir / "meta.json";
    if (fs::exists(dest_meta)) {
        const std::string existing = result_store::load_meta_fingerprint(destination);
        if (existing != fingerprint) {
            throw std::runtime_error("campaign: sync: destination " + destination +
                                     " belongs to a different spec (fingerprint " + existing +
                                     " != " + fingerprint + ")");
        }
    } else {
        fs::create_directories(dest_dir);
        // Byte-for-byte copy of the first source's snapshot, so the
        // destination opens under the exact same meta a worker wrote.
        atomic_write_file(dest_meta, read_file_bytes(fs::path(sources[0]) / "meta.json"));
    }

    sync_report report;
    for (const auto& src : sources) {
        if (options.verbose) std::printf("sync %s -> %s\n", src.c_str(), destination.c_str());

        // Snapshot the source's head manifests BEFORE copying segments: a
        // live writer may seal a segment mid-pass, and a head claiming
        // bytes the copied files don't hold would fail verification in
        // the destination. The stale direction (head behind segments) is
        // always safe — sealed claims are immutable facts.
        struct head_snapshot {
            int writer;
            writer_head parsed;
            std::string bytes;
        };
        std::vector<head_snapshot> heads;
        for (const auto& entry : fs::directory_iterator(src)) {
            int writer = 0;
            if (!entry.is_regular_file() ||
                !parse_head_file_name(entry.path().filename().string(), writer)) {
                continue;
            }
            const std::string bytes = read_file_bytes(entry.path());
            heads.push_back({writer, head_from_json(json::parse(bytes)), bytes});
        }

        for (const auto& file : scan_store_files(src)) {
            sync_record_file(fs::path(src) / file.name, dest_dir / file.name, file.name,
                             options, report);
        }

        for (const auto& head : heads) {
            const fs::path dest_head = dest_dir / head_file_name(head.writer);
            if (fs::exists(dest_head)) {
                const writer_head existing =
                    head_from_json(json::parse(read_file_bytes(dest_head)));
                // A head that hasn't advanced is simply skipped — the
                // `unchanged` counter tracks record files only, so the
                // CLI summary reconciles against the store's file list.
                if (!head_advances(existing, head.parsed)) continue;
            }
            atomic_write_file(dest_head, head.bytes);
            ++report.heads;
            if (options.verbose) {
                std::printf("  head  %s (open seq %ld, %zu sealed)\n",
                            head_file_name(head.writer).c_str(), head.parsed.open_seq,
                            head.parsed.sealed.size());
            }
        }
    }
    return report;
}

}  // namespace qubikos::campaign
