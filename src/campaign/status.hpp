// Live campaign status: a read-only progress probe over a result store.
//
// `campaign status` answers "how far along is this store, and is anything
// stuck?" while shard workers are running. It must therefore never touch
// the write path: the probe reads the record files (legacy runs.jsonl
// and/or segments) via result_store::load_runs (torn tails skipped on
// each writer's newest segment) and the spec snapshot via load_meta_spec
// — it
// never opens the store for appending, creates nothing, and takes no
// fingerprint lock, so pointing it at a store another process is
// actively writing is always safe.
//
// Reported per shard and per (suite, tool) cell:
//   done        — units with a successful record;
//   retryable   — units with failed attempts left before quarantine
//                 (a plain re-run will retry them);
//   quarantined — units whose attempt budget is exhausted (only
//                 `campaign run --retry-quarantined` re-opens them);
//   pending     — units with no record at all.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "campaign/merge.hpp"
#include "campaign/plan.hpp"
#include "campaign/store.hpp"

namespace qubikos::campaign {

struct status_options {
    /// Shard split to report against (the probe itself is shard-blind).
    int num_shards = 1;
    /// Cap on quarantined-unit detail lines (0 = list all).
    std::size_t max_quarantined_listed = 10;
};

struct status_counts {
    std::size_t done = 0;
    std::size_t retryable = 0;
    std::size_t quarantined = 0;
    std::size_t pending = 0;

    [[nodiscard]] std::size_t total() const {
        return done + retryable + quarantined + pending;
    }
};

struct campaign_status {
    status_counts totals;
    /// One entry per shard of options.num_shards.
    std::vector<status_counts> shards;
    /// Per (suite index, tool) cell, keyed in (suite, tool-name) order.
    std::map<std::pair<std::size_t, std::string>, status_counts> cells;
    /// Quarantined units in plan order, with their recorded failure.
    std::vector<failed_unit> quarantined_units;

    [[nodiscard]] bool complete() const { return totals.done == totals.total(); }
};

/// Classifies every plan unit against the runs of a store — one pass
/// over the runs, one over the plan.
[[nodiscard]] campaign_status probe_status(const campaign_plan& plan,
                                           const std::vector<stored_run>& runs,
                                           const status_options& options = {});

/// Renders a probed status (totals, per-shard and per-(suite, tool)
/// tables, quarantined-unit details).
[[nodiscard]] std::string render_status(const campaign_plan& plan,
                                        const campaign_status& status,
                                        const status_options& options = {});

/// Machine-readable status (`campaign status --json`): the same probe as
/// a JSON document with stable key order (json::object is sorted), so
/// fleet scripts can stop scraping the text table. Includes what the
/// table omits: every quarantined unit's recorded error, uncapped.
[[nodiscard]] json::value status_to_json(const campaign_plan& plan,
                                         const campaign_status& status);

}  // namespace qubikos::campaign
