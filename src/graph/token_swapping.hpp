// Token swapping: realize a target permutation of tokens on a graph with
// (approximately) few swaps.
//
// QLS context: remapping the current qubit placement onto a desired one
// is exactly token swapping (Siraichi et al. [15] cast qubit allocation
// as subgraph isomorphism + token swapping). The library routers use it
// as an analysis primitive: the swap distance between a tool's chosen
// mapping and the planted optimal mapping measures placement quality
// (see eval/placement.hpp).
//
// Algorithm: the classic 4-approximation — repeatedly perform swaps that
// move at least one token strictly closer to its destination, preferring
// "happy" swaps that help both tokens; when only half-helpful swaps
// exist, cycle detection prevents livelock (Miltzow et al., ESA'16
// style).
#pragma once

#include <vector>

#include "graph/distance.hpp"
#include "graph/graph.hpp"

namespace qubikos {

/// Computes a swap sequence (edges of g) that transforms `current` into
/// `target`. Both are placements: index = token (program qubit), value =
/// vertex (physical qubit); -1-free and injective. Unplaced vertices hold
/// no token and may be used freely as intermediates.
/// Throws std::invalid_argument on malformed placements or disconnected
/// requirements.
[[nodiscard]] std::vector<edge> token_swapping_sequence(const graph& g,
                                                        const std::vector<int>& current,
                                                        const std::vector<int>& target);

/// Number of swaps token_swapping_sequence would emit (convenience).
[[nodiscard]] std::size_t token_swap_distance(const graph& g, const std::vector<int>& current,
                                              const std::vector<int>& target);

}  // namespace qubikos
