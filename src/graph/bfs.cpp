#include "graph/bfs.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <stdexcept>
#include <unordered_set>

namespace qubikos {

namespace {

void check_sources(const graph& g, const std::vector<int>& sources) {
    if (sources.empty()) throw std::invalid_argument("bfs: empty source set");
    for (const int s : sources) {
        if (s < 0 || s >= g.num_vertices()) {
            throw std::out_of_range("bfs: source " + std::to_string(s) + " out of range");
        }
    }
}

}  // namespace

std::vector<int> bfs_vertices(const graph& g, const std::vector<int>& sources) {
    check_sources(g, sources);
    std::vector<char> seen(static_cast<std::size_t>(g.num_vertices()), 0);
    std::deque<int> queue;
    std::vector<int> order;
    for (const int s : sources) {
        if (!seen[static_cast<std::size_t>(s)]) {
            seen[static_cast<std::size_t>(s)] = 1;
            queue.push_back(s);
            order.push_back(s);
        }
    }
    while (!queue.empty()) {
        const int u = queue.front();
        queue.pop_front();
        for (const int v : g.neighbors(u)) {
            if (!seen[static_cast<std::size_t>(v)]) {
                seen[static_cast<std::size_t>(v)] = 1;
                queue.push_back(v);
                order.push_back(v);
            }
        }
    }
    return order;
}

std::vector<edge> bfs_edge_order(const graph& g, const std::vector<int>& sources) {
    check_sources(g, sources);
    std::vector<char> seen(static_cast<std::size_t>(g.num_vertices()), 0);
    std::unordered_set<std::uint64_t> emitted;
    const auto key = [](int u, int v) {
        const auto lo = static_cast<std::uint64_t>(std::min(u, v));
        const auto hi = static_cast<std::uint64_t>(std::max(u, v));
        return (hi << 32) | lo;
    };

    std::deque<int> queue;
    for (const int s : sources) {
        if (!seen[static_cast<std::size_t>(s)]) {
            seen[static_cast<std::size_t>(s)] = 1;
            queue.push_back(s);
        }
    }
    std::vector<edge> order;
    while (!queue.empty()) {
        const int u = queue.front();
        queue.pop_front();
        for (const int v : g.neighbors(u)) {
            if (emitted.insert(key(u, v)).second) order.emplace_back(u, v);
            if (!seen[static_cast<std::size_t>(v)]) {
                seen[static_cast<std::size_t>(v)] = 1;
                queue.push_back(v);
            }
        }
    }
    return order;
}

std::vector<int> bfs_distances(const graph& g, const std::vector<int>& sources) {
    check_sources(g, sources);
    std::vector<int> dist(static_cast<std::size_t>(g.num_vertices()), -1);
    std::deque<int> queue;
    for (const int s : sources) {
        if (dist[static_cast<std::size_t>(s)] == -1) {
            dist[static_cast<std::size_t>(s)] = 0;
            queue.push_back(s);
        }
    }
    while (!queue.empty()) {
        const int u = queue.front();
        queue.pop_front();
        for (const int v : g.neighbors(u)) {
            if (dist[static_cast<std::size_t>(v)] == -1) {
                dist[static_cast<std::size_t>(v)] = dist[static_cast<std::size_t>(u)] + 1;
                queue.push_back(v);
            }
        }
    }
    return dist;
}

std::vector<int> shortest_path(const graph& g, int from, int to) {
    check_sources(g, {from, to});
    std::vector<int> parent(static_cast<std::size_t>(g.num_vertices()), -2);
    std::deque<int> queue;
    parent[static_cast<std::size_t>(from)] = -1;
    queue.push_back(from);
    while (!queue.empty() && parent[static_cast<std::size_t>(to)] == -2) {
        const int u = queue.front();
        queue.pop_front();
        for (const int v : g.neighbors(u)) {
            if (parent[static_cast<std::size_t>(v)] == -2) {
                parent[static_cast<std::size_t>(v)] = u;
                queue.push_back(v);
            }
        }
    }
    if (parent[static_cast<std::size_t>(to)] == -2) return {};
    std::vector<int> path;
    for (int v = to; v != -1; v = parent[static_cast<std::size_t>(v)]) path.push_back(v);
    std::reverse(path.begin(), path.end());
    return path;
}

}  // namespace qubikos
