#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace qubikos {

graph::graph(int num_vertices) {
    if (num_vertices < 0) throw std::invalid_argument("graph: negative vertex count");
    adjacency_.resize(static_cast<std::size_t>(num_vertices));
}

graph::graph(int num_vertices, const std::vector<edge>& edges) : graph(num_vertices) {
    for (const auto& e : edges) add_edge(e.a, e.b);
}

int graph::add_vertex() {
    adjacency_.emplace_back();
    return num_vertices() - 1;
}

void graph::check_vertex(int v, const char* who) const {
    if (v < 0 || v >= num_vertices()) {
        throw std::out_of_range(std::string(who) + ": vertex " + std::to_string(v) +
                                " out of range (n=" + std::to_string(num_vertices()) + ")");
    }
}

std::uint64_t graph::key(int u, int v) {
    const auto lo = static_cast<std::uint64_t>(u < v ? u : v);
    const auto hi = static_cast<std::uint64_t>(u < v ? v : u);
    return (hi << 32) | lo;
}

void graph::add_edge(int u, int v) {
    if (!add_edge_if_absent(u, v)) {
        throw std::invalid_argument("graph::add_edge: duplicate edge (" + std::to_string(u) +
                                    "," + std::to_string(v) + ")");
    }
}

bool graph::add_edge_if_absent(int u, int v) {
    check_vertex(u, "graph::add_edge");
    check_vertex(v, "graph::add_edge");
    if (u == v) throw std::invalid_argument("graph::add_edge: self-loop at " + std::to_string(u));
    if (!edge_set_.insert(key(u, v)).second) return false;
    adjacency_[static_cast<std::size_t>(u)].push_back(v);
    adjacency_[static_cast<std::size_t>(v)].push_back(u);
    edges_.emplace_back(u, v);
    return true;
}

bool graph::has_edge(int u, int v) const {
    if (u < 0 || v < 0 || u >= num_vertices() || v >= num_vertices() || u == v) return false;
    return edge_set_.contains(key(u, v));
}

int graph::degree(int v) const {
    check_vertex(v, "graph::degree");
    return static_cast<int>(adjacency_[static_cast<std::size_t>(v)].size());
}

const std::vector<int>& graph::neighbors(int v) const {
    check_vertex(v, "graph::neighbors");
    return adjacency_[static_cast<std::size_t>(v)];
}

int graph::max_degree() const {
    int best = 0;
    for (const auto& adj : adjacency_) best = std::max(best, static_cast<int>(adj.size()));
    return best;
}

int graph::count_degree_at_least(int k) const {
    int count = 0;
    for (const auto& adj : adjacency_) {
        if (static_cast<int>(adj.size()) >= k) ++count;
    }
    return count;
}

std::string graph::describe() const {
    return "graph(n=" + std::to_string(num_vertices()) + ", m=" + std::to_string(num_edges()) +
           ", max_deg=" + std::to_string(max_degree()) + ")";
}

}  // namespace qubikos
