#include "graph/distance.hpp"

#include <algorithm>
#include <stdexcept>

namespace qubikos {

distance_matrix::distance_matrix(const graph& g) : n_(g.num_vertices()) {
    // One allocation sized up front; each BFS writes its row in place,
    // using the row itself as the visited marker (-1 = unvisited) and a
    // single reusable frontier buffer. A BFS queue only grows, so two
    // cursors over a flat array replace a deque.
    const auto n = static_cast<std::size_t>(n_);
    dist_.assign(n * n, unreachable());
    std::vector<std::int32_t> frontier(n);
    for (int v = 0; v < n_; ++v) {
        std::int32_t* row = dist_.data() + static_cast<std::size_t>(v) * n;
        row[v] = 0;
        frontier[0] = v;
        std::size_t head = 0;
        std::size_t tail = 1;
        while (head < tail) {
            const std::int32_t u = frontier[head++];
            const std::int32_t du = row[u];
            for (const int w : g.neighbors(u)) {
                if (row[w] == unreachable()) {
                    row[w] = du + 1;
                    frontier[tail++] = static_cast<std::int32_t>(w);
                }
            }
        }
    }
}

int distance_matrix::at(int u, int v) const {
    if (u < 0 || v < 0 || u >= n_ || v >= n_) {
        throw std::out_of_range("distance_matrix::at: vertex out of range");
    }
    return (*this)(u, v);
}

int distance_matrix::diameter() const {
    int best = 0;
    for (const std::int32_t d : dist_) best = std::max(best, static_cast<int>(d));
    return best;
}

}  // namespace qubikos
