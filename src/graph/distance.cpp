#include "graph/distance.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/bfs.hpp"

namespace qubikos {

distance_matrix::distance_matrix(const graph& g) : n_(g.num_vertices()) {
    dist_.reserve(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_));
    for (int v = 0; v < n_; ++v) {
        const auto row = bfs_distances(g, {v});
        dist_.insert(dist_.end(), row.begin(), row.end());
    }
}

int distance_matrix::at(int u, int v) const {
    if (u < 0 || v < 0 || u >= n_ || v >= n_) {
        throw std::out_of_range("distance_matrix::at: vertex out of range");
    }
    return (*this)(u, v);
}

int distance_matrix::diameter() const {
    int best = 0;
    for (const int d : dist_) best = std::max(best, d);
    return best;
}

}  // namespace qubikos
