#include "graph/distance.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "util/thread_pool.hpp"

namespace qubikos {

namespace {

/// One BFS from `source` into `row` (length n, pre-filled with
/// unreachable()), using `frontier` (length >= n) as the queue. The row
/// itself is the visited marker. A BFS queue only grows, so two cursors
/// over a flat array replace a deque.
void bfs_row(const graph& g, int source, std::int32_t* row, std::int32_t* frontier) {
    row[source] = 0;
    frontier[0] = static_cast<std::int32_t>(source);
    std::size_t head = 0;
    std::size_t tail = 1;
    while (head < tail) {
        const std::int32_t u = frontier[head++];
        const std::int32_t du = row[u];
        for (const int w : g.neighbors(u)) {
            if (row[w] == distance_matrix::unreachable()) {
                row[w] = du + 1;
                frontier[tail++] = static_cast<std::int32_t>(w);
            }
        }
    }
}

/// Rows are independent BFS runs; below this count the dispatch
/// overhead exceeds the BFS work and the build stays serial.
constexpr int kParallelBuildThreshold = 64;

}  // namespace

distance_matrix::distance_matrix(const graph& g) : n_(g.num_vertices()) {
    // One allocation sized up front; each BFS writes its row in place.
    // Rows are disjoint and each is produced by the same serial BFS, so
    // the parallel build is bit-identical to the serial one.
    const auto n = static_cast<std::size_t>(n_);
    dist_.assign(n * n, unreachable());
    if (n_ >= kParallelBuildThreshold) {
        thread_pool& pool = thread_pool::shared();
        std::vector<std::vector<std::int32_t>> frontiers(pool.size(),
                                                         std::vector<std::int32_t>(n));
        pool.parallel_for_slots(
            0, n, pool.size(),
            [&](std::size_t v, std::size_t slot) {
                bfs_row(g, static_cast<int>(v), dist_.data() + v * n,
                        frontiers[slot].data());
            },
            /*chunk=*/8);
    } else {
        std::vector<std::int32_t> frontier(n);
        for (int v = 0; v < n_; ++v) {
            bfs_row(g, v, dist_.data() + static_cast<std::size_t>(v) * n, frontier.data());
        }
    }
}

int distance_matrix::at(int u, int v) const {
    if (u < 0 || v < 0 || u >= n_ || v >= n_) {
        throw std::out_of_range("distance_matrix::at: vertex out of range");
    }
    return (*this)(u, v);
}

int distance_matrix::diameter() const {
    int best = 0;
    for (const std::int32_t d : dist_) best = std::max(best, static_cast<int>(d));
    return best;
}

distance_options distance_options::from_env() {
    distance_options options;
    const char* raw = std::getenv("QUBIKOS_LAZY_DIST");
    if (raw == nullptr || *raw == '\0') return options;
    const std::string value(raw);
    if (value == "dense") {
        options.mode = storage_mode::dense;
    } else if (value == "lazy") {
        options.mode = storage_mode::lazy;
    } else {
        try {
            const int threshold = std::stoi(value);
            if (threshold > 0) options.lazy_threshold = threshold;
        } catch (const std::exception&) {
            // Unrecognized value: keep the automatic policy.
        }
    }
    return options;
}

distance_provider::distance_provider(const graph& g, distance_options options)
    : n_(g.num_vertices()) {
    if (options.use_lazy(n_)) {
        graph_ = g;
        rows_ = std::vector<std::atomic<const std::int32_t*>>(
            static_cast<std::size_t>(n_));
        for (auto& row : rows_) row.store(nullptr, std::memory_order_relaxed);
    } else {
        matrix_ = distance_matrix(g);
        dense_ = matrix_.data();
    }
}

const std::int32_t* distance_provider::lazy_row(int u) const {
    const std::int32_t* hit =
        rows_[static_cast<std::size_t>(u)].load(std::memory_order_acquire);
    if (hit != nullptr) return hit;
    const std::lock_guard<std::mutex> lock(slab_mutex_);
    hit = rows_[static_cast<std::size_t>(u)].load(std::memory_order_relaxed);
    if (hit != nullptr) return hit;
    slab_.emplace_back(static_cast<std::size_t>(n_),
                       static_cast<std::int32_t>(unreachable()));
    std::vector<std::int32_t>& row = slab_.back();
    std::vector<std::int32_t> frontier(static_cast<std::size_t>(n_));
    bfs_row(graph_, u, row.data(), frontier.data());
    rows_built_.fetch_add(1, std::memory_order_relaxed);
    rows_[static_cast<std::size_t>(u)].store(row.data(), std::memory_order_release);
    return row.data();
}

std::size_t distance_provider::rows_built() const {
    if (dense_ != nullptr) return static_cast<std::size_t>(n_);
    return rows_built_.load(std::memory_order_relaxed);
}

int distance_provider::diameter() const {
    const int cached = diameter_.load(std::memory_order_acquire);
    if (cached >= 0) return cached;
    int best = 0;
    if (dense_ != nullptr) {
        best = matrix_.diameter();
    } else {
        // One BFS per source with O(V) scratch: exact, never stores a
        // row. Must match the dense diameter bit-for-bit — the routers'
        // default release valve is derived from it.
        std::vector<std::int32_t> row(static_cast<std::size_t>(n_));
        std::vector<std::int32_t> frontier(static_cast<std::size_t>(n_));
        for (int v = 0; v < n_; ++v) {
            std::fill(row.begin(), row.end(),
                      static_cast<std::int32_t>(unreachable()));
            bfs_row(graph_, v, row.data(), frontier.data());
            for (const std::int32_t d : row) best = std::max(best, static_cast<int>(d));
        }
    }
    diameter_.store(best, std::memory_order_release);
    return best;
}

}  // namespace qubikos
