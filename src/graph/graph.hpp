// Undirected simple graph.
//
// Used for both device coupling graphs GC(P, EP) and program interaction
// graphs GI(Q, EQ). Vertices are dense integers 0..n-1; parallel edges and
// self-loops are rejected because neither graph kind permits them.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

namespace qubikos {

/// An undirected edge; normalized so that first < second.
struct edge {
    int a = 0;
    int b = 0;

    edge() = default;
    edge(int u, int v) : a(u < v ? u : v), b(u < v ? v : u) {}

    friend bool operator==(const edge&, const edge&) = default;
    friend auto operator<=>(const edge&, const edge&) = default;
};

class graph {
public:
    graph() = default;
    explicit graph(int num_vertices);
    graph(int num_vertices, const std::vector<edge>& edges);

    [[nodiscard]] int num_vertices() const { return static_cast<int>(adjacency_.size()); }
    [[nodiscard]] int num_edges() const { return static_cast<int>(edges_.size()); }

    /// Appends an isolated vertex and returns its index.
    int add_vertex();

    /// Adds edge (u,v); throws on out-of-range, self-loop or duplicate.
    void add_edge(int u, int v);

    /// Adds edge (u,v) unless it already exists; returns true if added.
    bool add_edge_if_absent(int u, int v);

    [[nodiscard]] bool has_edge(int u, int v) const;
    [[nodiscard]] int degree(int v) const;
    [[nodiscard]] const std::vector<int>& neighbors(int v) const;
    [[nodiscard]] const std::vector<edge>& edges() const { return edges_; }

    [[nodiscard]] int max_degree() const;
    /// Number of vertices whose degree is >= k (used by the Lemma-1
    /// pigeonhole argument).
    [[nodiscard]] int count_degree_at_least(int k) const;

    /// Human-readable one-line summary for diagnostics.
    [[nodiscard]] std::string describe() const;

private:
    void check_vertex(int v, const char* who) const;
    static std::uint64_t key(int u, int v);

    std::vector<std::vector<int>> adjacency_;
    std::vector<edge> edges_;
    std::unordered_set<std::uint64_t> edge_set_;
};

}  // namespace qubikos
