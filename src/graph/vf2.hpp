// VF2-style subgraph monomorphism.
//
// QLS context (Sec. III of the paper): a circuit segment is executable
// without SWAPs iff its interaction graph is monomorphic to a subgraph of
// the coupling graph. QUEKO circuits are solvable this way; QUBIKOS
// sections are constructed so that this test fails, and the verifier uses
// this module to prove it.
//
// The mapping searched for is a *monomorphism* (non-induced embedding):
// injective on vertices, every pattern edge lands on a target edge.
// Isolated pattern vertices are placed implicitly — they embed whenever
// enough spare target vertices remain.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace qubikos {

struct vf2_options {
    /// Abort after exploring this many search nodes (0 = unlimited).
    std::uint64_t node_limit = 0;
};

struct vf2_result {
    /// True iff an embedding was found.
    bool found = false;
    /// True iff the search stopped on node_limit before concluding.
    bool limit_hit = false;
    /// pattern vertex -> target vertex; isolated pattern vertices are
    /// assigned arbitrary spare targets. Empty unless found.
    std::vector<int> mapping;
    std::uint64_t nodes_explored = 0;
};

/// Searches for an embedding of `pattern` into `target`.
[[nodiscard]] vf2_result find_subgraph_monomorphism(const graph& pattern, const graph& target,
                                                    const vf2_options& options = {});

/// Convenience wrapper; throws std::runtime_error if node_limit aborts the
/// search inconclusively.
[[nodiscard]] bool is_subgraph_monomorphic(const graph& pattern, const graph& target,
                                           const vf2_options& options = {});

/// Exhaustive reference implementation for cross-checking VF2 in tests.
/// Exponential; only call with tiny graphs (<= ~8 pattern vertices).
[[nodiscard]] bool brute_force_monomorphic(const graph& pattern, const graph& target);

/// Checks that `mapping` (pattern vertex -> target vertex) is a valid
/// monomorphism witness.
[[nodiscard]] bool check_monomorphism(const graph& pattern, const graph& target,
                                      const std::vector<int>& mapping);

}  // namespace qubikos
