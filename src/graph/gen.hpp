// Parametric graph constructors.
//
// Regular families used by tests and by the architecture library, plus
// random connected graphs for property-based testing.
#pragma once

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace qubikos {

[[nodiscard]] graph path_graph(int n);
[[nodiscard]] graph cycle_graph(int n);
[[nodiscard]] graph star_graph(int leaves);
[[nodiscard]] graph complete_graph(int n);
/// rows x cols grid with rook-step adjacency.
[[nodiscard]] graph grid_graph(int rows, int cols);

/// Connected random graph: a random spanning tree plus `extra_edges`
/// additional distinct random edges (clamped to the complete graph).
[[nodiscard]] graph random_connected_graph(int n, int extra_edges, rng& random);

}  // namespace qubikos
