// All-pairs shortest-path distances on unweighted graphs.
//
// Every heuristic router scores SWAP candidates by coupling-graph
// distance; the matrix is computed once per architecture and shared.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace qubikos {

/// Dense APSP matrix computed by one BFS per vertex into one contiguous
/// int32 allocation (a row per source, written in place — no per-vertex
/// heap traffic). Distances of disconnected pairs are reported as
/// unreachable().
class distance_matrix {
public:
    distance_matrix() = default;
    explicit distance_matrix(const graph& g);

    [[nodiscard]] int operator()(int u, int v) const {
        return dist_[static_cast<std::size_t>(u) * static_cast<std::size_t>(n_) +
                     static_cast<std::size_t>(v)];
    }

    [[nodiscard]] int at(int u, int v) const;
    [[nodiscard]] int num_vertices() const { return n_; }
    [[nodiscard]] static constexpr int unreachable() { return -1; }

    /// Largest finite pairwise distance (0 for the empty graph).
    [[nodiscard]] int diameter() const;

private:
    int n_ = 0;
    std::vector<std::int32_t> dist_;
};

}  // namespace qubikos
