// All-pairs shortest-path distances on unweighted graphs.
//
// Every heuristic router scores SWAP candidates by coupling-graph
// distance. Small devices share one dense matrix computed up front;
// thousand-qubit synthetic devices go through the lazy provider below,
// which materializes only the BFS rows a route actually touches.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "graph/graph.hpp"

namespace qubikos {

/// Dense APSP matrix computed by one BFS per vertex into one contiguous
/// int32 allocation (a row per source, written in place — no per-vertex
/// heap traffic). Rows are independent, so above a row-count threshold
/// the build fans out over thread_pool::shared(); each row is produced
/// by the same serial BFS either way, so the matrix is bit-identical at
/// any thread count. Distances of disconnected pairs are reported as
/// unreachable().
class distance_matrix {
public:
    distance_matrix() = default;
    explicit distance_matrix(const graph& g);

    [[nodiscard]] int operator()(int u, int v) const {
        return dist_[static_cast<std::size_t>(u) * static_cast<std::size_t>(n_) +
                     static_cast<std::size_t>(v)];
    }

    [[nodiscard]] int at(int u, int v) const;
    [[nodiscard]] int num_vertices() const { return n_; }
    [[nodiscard]] static constexpr int unreachable() { return -1; }

    /// Contiguous row-major storage (n*n int32); the vectorized score
    /// kernel gathers directly from this base pointer.
    [[nodiscard]] const std::int32_t* data() const { return dist_.data(); }

    /// Row of distances from source u.
    [[nodiscard]] const std::int32_t* row(int u) const {
        return dist_.data() + static_cast<std::size_t>(u) * static_cast<std::size_t>(n_);
    }

    /// Largest finite pairwise distance (0 for the empty graph).
    [[nodiscard]] int diameter() const;

private:
    int n_ = 0;
    std::vector<std::int32_t> dist_;
};

/// Storage policy for distance_provider. `automatic` picks dense below
/// lazy_threshold vertices and lazy at or above it; `dense`/`lazy`
/// force a backend. The QUBIKOS_LAZY_DIST environment variable
/// overrides the default ("dense", "lazy", or a positive integer
/// threshold), and make_routing_context exposes the option to every
/// registry tool and the serve engine's device cache.
struct distance_options {
    enum class storage_mode { automatic, dense, lazy };

    storage_mode mode = storage_mode::automatic;
    /// Vertex count at which `automatic` switches to lazy rows. 512 is
    /// far above every physical device in the paper's evaluation
    /// (eagle127) but below the synthetic thousand-qubit sweeps.
    int lazy_threshold = 512;

    [[nodiscard]] bool use_lazy(int num_vertices) const {
        if (mode == storage_mode::dense) return false;
        if (mode == storage_mode::lazy) return true;
        return num_vertices >= lazy_threshold;
    }

    /// Defaults overlaid with QUBIKOS_LAZY_DIST (unrecognized values are
    /// ignored, keeping the automatic policy).
    [[nodiscard]] static distance_options from_env();
};

/// Uniform distance oracle over either backend.
///
/// Dense mode wraps a distance_matrix. Lazy mode keeps a copy of the
/// graph and computes per-source BFS rows on first use, caching them in
/// a mutex-protected slab with lock-free (acquire-load) hits — so a
/// heavy-hex device scaled to thousands of qubits routes without ever
/// materializing O(V^2), and concurrent trials share the same cache.
/// Both backends return identical values for every query, including
/// diameter(); routed output therefore never depends on the backend.
class distance_provider {
public:
    distance_provider() = default;
    explicit distance_provider(const graph& g,
                               distance_options options = distance_options::from_env());

    distance_provider(const distance_provider&) = delete;
    distance_provider& operator=(const distance_provider&) = delete;

    [[nodiscard]] int operator()(int u, int v) const {
        const std::int32_t* base = dense_;
        if (base != nullptr) {
            return base[static_cast<std::size_t>(u) * static_cast<std::size_t>(n_) +
                        static_cast<std::size_t>(v)];
        }
        return lazy_row(u)[v];
    }

    /// Row of distances from source u (built on demand in lazy mode).
    [[nodiscard]] const std::int32_t* row(int u) const {
        const std::int32_t* base = dense_;
        if (base != nullptr) {
            return base + static_cast<std::size_t>(u) * static_cast<std::size_t>(n_);
        }
        return lazy_row(u);
    }

    /// Contiguous n*n storage in dense mode, nullptr in lazy mode — the
    /// gather-based kernel path requires a dense base.
    [[nodiscard]] const std::int32_t* dense_data() const { return dense_; }

    [[nodiscard]] int num_vertices() const { return n_; }
    [[nodiscard]] bool is_lazy() const { return dense_ == nullptr; }
    [[nodiscard]] static constexpr int unreachable() { return distance_matrix::unreachable(); }

    /// BFS rows materialized so far (== num_vertices in dense mode).
    [[nodiscard]] std::size_t rows_built() const;

    /// Largest finite pairwise distance, identical to the dense value in
    /// both modes (lazy computes it with one O(V*(V+E)) scan the first
    /// time, caching the result — O(V) memory, no row materialization).
    /// Routers derive the stagnation release valve from this, so it must
    /// not depend on the backend.
    [[nodiscard]] int diameter() const;

private:
    [[nodiscard]] const std::int32_t* lazy_row(int u) const;

    int n_ = 0;
    distance_matrix matrix_;               // dense backend (empty when lazy)
    const std::int32_t* dense_ = nullptr;  // matrix_.data() or nullptr
    graph graph_;                          // lazy backend: owned copy for BFS

    // Lazy row cache. rows_ holds one atomic pointer per source; a row
    // is published with a release store after its slab vector is fully
    // written, so readers that acquire-load a non-null pointer see a
    // complete row without taking the mutex. The deque gives slab
    // entries stable addresses across growth.
    mutable std::vector<std::atomic<const std::int32_t*>> rows_;
    mutable std::mutex slab_mutex_;
    mutable std::deque<std::vector<std::int32_t>> slab_;
    mutable std::atomic<std::size_t> rows_built_{0};
    mutable std::atomic<int> diameter_{-1};
};

}  // namespace qubikos
