#include "graph/token_swapping.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/bfs.hpp"

namespace qubikos {

namespace {

struct state {
    const graph* g;
    const distance_matrix* dist;
    std::vector<int> pos;     // token -> vertex
    std::vector<int> target;  // token -> vertex
    std::vector<int> holder;  // vertex -> token or -1
    std::vector<edge> swaps;

    void apply(int u, int v) {
        const int tu = holder[static_cast<std::size_t>(u)];
        const int tv = holder[static_cast<std::size_t>(v)];
        holder[static_cast<std::size_t>(u)] = tv;
        holder[static_cast<std::size_t>(v)] = tu;
        if (tu != -1) pos[static_cast<std::size_t>(tu)] = v;
        if (tv != -1) pos[static_cast<std::size_t>(tv)] = u;
        swaps.emplace_back(u, v);
    }

    /// Change in token t's distance if it moved from u to v (0 for blank).
    [[nodiscard]] int delta(int token, int from, int to) const {
        if (token == -1) return 0;
        const int tgt = target[static_cast<std::size_t>(token)];
        return (*dist)(to, tgt) - (*dist)(from, tgt);
    }

    [[nodiscard]] long total_distance() const {
        long total = 0;
        for (std::size_t t = 0; t < pos.size(); ++t) {
            total += (*dist)(pos[t], target[t]);
        }
        return total;
    }
};

/// Realizes the remaining displacement exactly: decompose the required
/// permutation into transpositions and execute each transposition of
/// vertices (a,b) as swaps down the path and back (2k-1 swaps for a
/// length-k path). Provably terminating finisher for the greedy phase.
void finish_by_transpositions(state& s) {
    for (std::size_t t = 0; t < s.pos.size(); ++t) {
        const int from = s.pos[t];
        const int to = s.target[t];
        if (from == to) continue;
        const auto path = shortest_path(*s.g, from, to);
        if (path.size() < 2) {
            throw std::invalid_argument("token_swapping: targets not connected");
        }
        // Move the token to its destination...
        for (std::size_t i = 0; i + 1 < path.size(); ++i) s.apply(path[i], path[i + 1]);
        // ...and roll the displaced intermediates back one step.
        for (std::size_t i = path.size() - 1; i-- > 1;) s.apply(path[i - 1], path[i]);
    }
}

}  // namespace

std::vector<edge> token_swapping_sequence(const graph& g, const std::vector<int>& current,
                                          const std::vector<int>& target) {
    if (current.size() != target.size()) {
        throw std::invalid_argument("token_swapping: placement size mismatch");
    }
    const int n = g.num_vertices();
    state s;
    s.g = &g;
    const distance_matrix dist(g);
    s.dist = &dist;
    s.pos = current;
    s.target = target;
    s.holder.assign(static_cast<std::size_t>(n), -1);
    for (std::size_t t = 0; t < current.size(); ++t) {
        for (const int v : {current[t], target[t]}) {
            if (v < 0 || v >= n) throw std::invalid_argument("token_swapping: vertex range");
        }
        if (s.holder[static_cast<std::size_t>(current[t])] != -1) {
            throw std::invalid_argument("token_swapping: current placement not injective");
        }
        s.holder[static_cast<std::size_t>(current[t])] = static_cast<int>(t);
        if (dist(current[t], target[t]) == distance_matrix::unreachable()) {
            throw std::invalid_argument("token_swapping: target unreachable");
        }
    }
    {
        std::vector<char> seen(static_cast<std::size_t>(n), 0);
        for (const int v : target) {
            if (seen[static_cast<std::size_t>(v)]) {
                throw std::invalid_argument("token_swapping: target placement not injective");
            }
            seen[static_cast<std::size_t>(v)] = 1;
        }
    }

    long best_total = s.total_distance();
    int stagnation = 0;
    const int stagnation_limit = 2 * n + 8;

    while (s.total_distance() > 0) {
        bool acted = false;

        // Phase 1: happy swaps (both tokens strictly improve, net -2).
        for (const auto& e : g.edges()) {
            const int tu = s.holder[static_cast<std::size_t>(e.a)];
            const int tv = s.holder[static_cast<std::size_t>(e.b)];
            if (tu == -1 || tv == -1) continue;
            if (s.delta(tu, e.a, e.b) < 0 && s.delta(tv, e.b, e.a) < 0) {
                s.apply(e.a, e.b);
                acted = true;
                break;
            }
        }

        // Phase 2: move an unhappy token into an adjacent blank (net -1).
        if (!acted) {
            for (const auto& e : g.edges()) {
                const int tu = s.holder[static_cast<std::size_t>(e.a)];
                const int tv = s.holder[static_cast<std::size_t>(e.b)];
                if (tu != -1 && tv == -1 && s.delta(tu, e.a, e.b) < 0) {
                    s.apply(e.a, e.b);
                    acted = true;
                    break;
                }
                if (tv != -1 && tu == -1 && s.delta(tv, e.b, e.a) < 0) {
                    s.apply(e.a, e.b);
                    acted = true;
                    break;
                }
            }
        }

        // Phase 3: surf the farthest unhappy token one step along a
        // shortest path (net 0 at worst).
        if (!acted) {
            int worst = -1;
            for (std::size_t t = 0; t < s.pos.size(); ++t) {
                const int d = dist(s.pos[t], s.target[t]);
                if (d > 0 &&
                    (worst == -1 ||
                     d > dist(s.pos[static_cast<std::size_t>(worst)],
                              s.target[static_cast<std::size_t>(worst)]))) {
                    worst = static_cast<int>(t);
                }
            }
            const int u = s.pos[static_cast<std::size_t>(worst)];
            const int tgt = s.target[static_cast<std::size_t>(worst)];
            for (const int v : g.neighbors(u)) {
                if (dist(v, tgt) < dist(u, tgt)) {
                    s.apply(u, v);
                    acted = true;
                    break;
                }
            }
        }

        if (!acted) break;  // defensive; phase 3 always acts

        const long now = s.total_distance();
        if (now < best_total) {
            best_total = now;
            stagnation = 0;
        } else if (++stagnation > stagnation_limit) {
            break;  // greedy is cycling; hand over to the exact finisher
        }
    }

    if (s.total_distance() > 0) finish_by_transpositions(s);
    return std::move(s.swaps);
}

std::size_t token_swap_distance(const graph& g, const std::vector<int>& current,
                                const std::vector<int>& target) {
    return token_swapping_sequence(g, current, target).size();
}

}  // namespace qubikos
