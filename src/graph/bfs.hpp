// Breadth-first traversals.
//
// Algorithm 2 of the paper orders a section's gates by the sequence in
// which BFS discovers the corresponding interaction-graph edges: every
// emitted edge shares an endpoint with an earlier-emitted edge (or a
// source vertex), which is exactly what turns the sequence into a chain of
// dependencies in the gate DAG.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace qubikos {

/// Vertices in BFS order from the source set (sources first, ties by
/// adjacency-list order). Only the reachable part is returned.
[[nodiscard]] std::vector<int> bfs_vertices(const graph& g, const std::vector<int>& sources);

/// Edges in BFS emission order from the source set. When a vertex u is
/// processed, all incident not-yet-emitted edges are emitted. Every edge
/// reachable from the sources appears exactly once, and every emitted edge
/// shares an endpoint with an earlier-emitted edge or contains a source.
[[nodiscard]] std::vector<edge> bfs_edge_order(const graph& g, const std::vector<int>& sources);

/// BFS distance from the nearest source; -1 for unreachable vertices.
[[nodiscard]] std::vector<int> bfs_distances(const graph& g, const std::vector<int>& sources);

/// Shortest path between two vertices (inclusive); empty if disconnected.
[[nodiscard]] std::vector<int> shortest_path(const graph& g, int from, int to);

}  // namespace qubikos
