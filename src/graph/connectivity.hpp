// Connectivity queries and component-connecting utilities.
//
// The backbone builder (Algorithm 2) must make a section's interaction
// graph connected before the BFS gate ordering can cover every gate; it
// does so by adding edges that are executable under the current mapping,
// i.e. edges of an "allowed" graph. connect_components computes such a
// patch set of allowed edges.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace qubikos {

/// Component label (0..k-1) per vertex.
[[nodiscard]] std::vector<int> connected_components(const graph& g);

[[nodiscard]] bool is_connected(const graph& g);

/// Computes a set of edges from `allowed` that, added to `existing`,
/// connects every vertex of `terminals` into one component (paths may
/// route through non-terminal vertices of `allowed`). `existing` edges are
/// interpreted over the same vertex ids as `allowed`. Throws if the
/// terminals cannot be connected inside `allowed` (allowed graph
/// disconnected across them).
[[nodiscard]] std::vector<edge> connect_components(const graph& allowed,
                                                   const std::vector<edge>& existing,
                                                   const std::vector<int>& terminals);

}  // namespace qubikos
