#include "graph/connectivity.hpp"

#include <deque>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

namespace qubikos {

namespace {

/// Small union-find with path halving.
class dsu {
public:
    explicit dsu(int n) : parent_(static_cast<std::size_t>(n)) {
        std::iota(parent_.begin(), parent_.end(), 0);
    }

    int find(int v) {
        while (parent_[static_cast<std::size_t>(v)] != v) {
            parent_[static_cast<std::size_t>(v)] =
                parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(v)])];
            v = parent_[static_cast<std::size_t>(v)];
        }
        return v;
    }

    void unite(int a, int b) { parent_[static_cast<std::size_t>(find(a))] = find(b); }

private:
    std::vector<int> parent_;
};

}  // namespace

std::vector<int> connected_components(const graph& g) {
    const int n = g.num_vertices();
    std::vector<int> label(static_cast<std::size_t>(n), -1);
    int next = 0;
    std::deque<int> queue;
    for (int s = 0; s < n; ++s) {
        if (label[static_cast<std::size_t>(s)] != -1) continue;
        label[static_cast<std::size_t>(s)] = next;
        queue.push_back(s);
        while (!queue.empty()) {
            const int u = queue.front();
            queue.pop_front();
            for (const int v : g.neighbors(u)) {
                if (label[static_cast<std::size_t>(v)] == -1) {
                    label[static_cast<std::size_t>(v)] = next;
                    queue.push_back(v);
                }
            }
        }
        ++next;
    }
    return label;
}

bool is_connected(const graph& g) {
    if (g.num_vertices() <= 1) return true;
    const auto label = connected_components(g);
    for (const int l : label) {
        if (l != 0) return false;
    }
    return true;
}

std::vector<edge> connect_components(const graph& allowed, const std::vector<edge>& existing,
                                     const std::vector<int>& terminals) {
    if (terminals.empty()) return {};
    const int n = allowed.num_vertices();
    for (const int t : terminals) {
        if (t < 0 || t >= n) throw std::out_of_range("connect_components: bad terminal");
    }

    dsu components(n);
    for (const auto& e : existing) components.unite(e.a, e.b);

    std::vector<edge> patch;
    const auto all_joined = [&]() {
        const int root = components.find(terminals.front());
        for (const int t : terminals) {
            if (components.find(t) != root) return false;
        }
        return true;
    };

    while (!all_joined()) {
        const int target_root = components.find(terminals.front());
        // Roots of components that still hold an unjoined terminal.
        std::unordered_set<int> wanted_roots;
        for (const int t : terminals) {
            const int r = components.find(t);
            if (r != target_root) wanted_roots.insert(r);
        }

        // Multi-source BFS from the whole target component through `allowed`.
        std::vector<int> parent(static_cast<std::size_t>(n), -2);
        std::deque<int> queue;
        for (int v = 0; v < n; ++v) {
            if (components.find(v) == target_root) {
                parent[static_cast<std::size_t>(v)] = -1;
                queue.push_back(v);
            }
        }
        int hit = -1;
        while (!queue.empty() && hit == -1) {
            const int u = queue.front();
            queue.pop_front();
            for (const int v : allowed.neighbors(u)) {
                if (parent[static_cast<std::size_t>(v)] != -2) continue;
                parent[static_cast<std::size_t>(v)] = u;
                if (wanted_roots.contains(components.find(v))) {
                    hit = v;
                    break;
                }
                queue.push_back(v);
            }
        }
        if (hit == -1) {
            throw std::runtime_error(
                "connect_components: terminals not connectable within allowed graph");
        }
        for (int v = hit; parent[static_cast<std::size_t>(v)] != -1;
             v = parent[static_cast<std::size_t>(v)]) {
            const int u = parent[static_cast<std::size_t>(v)];
            patch.emplace_back(u, v);
            components.unite(u, v);
        }
    }
    return patch;
}

}  // namespace qubikos
