#include "graph/vf2.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/obs.hpp"
#include "obs/trace.hpp"

namespace qubikos {

namespace {

/// Necessary condition: sort degrees descending; every pattern degree must
/// be dominated by the matching target degree (an embedding maps each
/// pattern vertex to a target vertex of at least its degree).
bool degree_sequence_dominated(const graph& pattern, const graph& target) {
    std::vector<int> pd, td;
    pd.reserve(static_cast<std::size_t>(pattern.num_vertices()));
    td.reserve(static_cast<std::size_t>(target.num_vertices()));
    for (int v = 0; v < pattern.num_vertices(); ++v) pd.push_back(pattern.degree(v));
    for (int v = 0; v < target.num_vertices(); ++v) td.push_back(target.degree(v));
    std::sort(pd.rbegin(), pd.rend());
    std::sort(td.rbegin(), td.rend());
    for (std::size_t i = 0; i < pd.size(); ++i) {
        if (pd[i] > td[i]) return false;
    }
    return true;
}

/// Search order over the non-isolated pattern vertices: greedily take the
/// vertex with the most already-ordered neighbors (ties: higher degree).
/// Keeps the partial pattern connected whenever possible, which maximizes
/// constraint propagation.
std::vector<int> search_order(const graph& pattern) {
    const int n = pattern.num_vertices();
    std::vector<int> order;
    std::vector<char> placed(static_cast<std::size_t>(n), 0);
    std::vector<int> ordered_neighbors(static_cast<std::size_t>(n), 0);
    int remaining = 0;
    for (int v = 0; v < n; ++v) {
        if (pattern.degree(v) > 0) ++remaining;
    }
    while (remaining > 0) {
        int best = -1;
        for (int v = 0; v < n; ++v) {
            if (placed[static_cast<std::size_t>(v)] || pattern.degree(v) == 0) continue;
            if (best == -1 ||
                ordered_neighbors[static_cast<std::size_t>(v)] >
                    ordered_neighbors[static_cast<std::size_t>(best)] ||
                (ordered_neighbors[static_cast<std::size_t>(v)] ==
                     ordered_neighbors[static_cast<std::size_t>(best)] &&
                 pattern.degree(v) > pattern.degree(best))) {
                best = v;
            }
        }
        placed[static_cast<std::size_t>(best)] = 1;
        order.push_back(best);
        --remaining;
        for (const int w : pattern.neighbors(best)) {
            ++ordered_neighbors[static_cast<std::size_t>(w)];
        }
    }
    return order;
}

class matcher {
public:
    matcher(const graph& pattern, const graph& target, const vf2_options& options)
        : pattern_(pattern),
          target_(target),
          options_(options),
          order_(search_order(pattern)),
          mapping_(static_cast<std::size_t>(pattern.num_vertices()), -1),
          used_(static_cast<std::size_t>(target.num_vertices()), 0) {}

    vf2_result run() {
        vf2_result result;
        if (pattern_.num_vertices() > target_.num_vertices() ||
            pattern_.num_edges() > target_.num_edges() ||
            !degree_sequence_dominated(pattern_, target_)) {
            return result;
        }
        const int status = extend(0);
        result.nodes_explored = nodes_;
        if (status == kFound) {
            assign_isolated();
            result.found = true;
            result.mapping = mapping_;
        } else if (status == kAborted) {
            result.limit_hit = true;
        }
        return result;
    }

private:
    static constexpr int kFound = 1;
    static constexpr int kExhausted = 0;
    static constexpr int kAborted = -1;

    bool feasible(int v, int candidate) const {
        if (used_[static_cast<std::size_t>(candidate)]) return false;
        if (target_.degree(candidate) < pattern_.degree(v)) return false;
        for (const int w : pattern_.neighbors(v)) {
            const int mapped = mapping_[static_cast<std::size_t>(w)];
            if (mapped != -1 && !target_.has_edge(candidate, mapped)) return false;
        }
        return true;
    }

    int extend(std::size_t depth) {
        if (depth == order_.size()) return kFound;
        if (options_.node_limit != 0 && nodes_ >= options_.node_limit) return kAborted;
        ++nodes_;

        const int v = order_[depth];
        // Candidates: neighbors of an already-mapped pattern neighbor when
        // one exists (the search order makes this the common case), else
        // every unused target vertex.
        int anchor = -1;
        for (const int w : pattern_.neighbors(v)) {
            if (mapping_[static_cast<std::size_t>(w)] != -1) {
                anchor = mapping_[static_cast<std::size_t>(w)];
                break;
            }
        }
        if (anchor != -1) {
            for (const int candidate : target_.neighbors(anchor)) {
                const int status = try_candidate(v, candidate, depth);
                if (status != kExhausted) return status;
            }
        } else {
            for (int candidate = 0; candidate < target_.num_vertices(); ++candidate) {
                const int status = try_candidate(v, candidate, depth);
                if (status != kExhausted) return status;
            }
        }
        return kExhausted;
    }

    int try_candidate(int v, int candidate, std::size_t depth) {
        if (!feasible(v, candidate)) return kExhausted;
        mapping_[static_cast<std::size_t>(v)] = candidate;
        used_[static_cast<std::size_t>(candidate)] = 1;
        const int status = extend(depth + 1);
        if (status == kExhausted) {
            mapping_[static_cast<std::size_t>(v)] = -1;
            used_[static_cast<std::size_t>(candidate)] = 0;
        }
        return status;
    }

    /// Give every isolated pattern vertex a distinct spare target. Always
    /// possible because |pattern| <= |target| was checked upfront.
    void assign_isolated() {
        int next = 0;
        for (int v = 0; v < pattern_.num_vertices(); ++v) {
            if (mapping_[static_cast<std::size_t>(v)] != -1) continue;
            while (used_[static_cast<std::size_t>(next)]) ++next;
            mapping_[static_cast<std::size_t>(v)] = next;
            used_[static_cast<std::size_t>(next)] = 1;
        }
    }

    const graph& pattern_;
    const graph& target_;
    const vf2_options options_;
    std::vector<int> order_;
    std::vector<int> mapping_;
    std::vector<char> used_;
    std::uint64_t nodes_ = 0;
};

}  // namespace

vf2_result find_subgraph_monomorphism(const graph& pattern, const graph& target,
                                      const vf2_options& options) {
    const obs::trace_span span("vf2.match");
    const vf2_result result = matcher(pattern, target, options).run();
    if (obs::enabled()) {
        static const obs::metric_id calls = obs::counter("vf2.calls");
        static const obs::metric_id nodes = obs::counter("vf2.nodes_explored");
        static const obs::metric_id limit_hits = obs::counter("vf2.limit_hits");
        obs::add(calls);
        obs::add(nodes, result.nodes_explored);
        obs::add(limit_hits, result.limit_hit ? 1 : 0);
    }
    return result;
}

bool is_subgraph_monomorphic(const graph& pattern, const graph& target,
                             const vf2_options& options) {
    const auto result = find_subgraph_monomorphism(pattern, target, options);
    if (result.limit_hit) {
        throw std::runtime_error("is_subgraph_monomorphic: node limit hit before conclusion");
    }
    return result.found;
}

bool check_monomorphism(const graph& pattern, const graph& target,
                        const std::vector<int>& mapping) {
    if (static_cast<int>(mapping.size()) != pattern.num_vertices()) return false;
    std::vector<char> used(static_cast<std::size_t>(target.num_vertices()), 0);
    for (const int image : mapping) {
        if (image < 0 || image >= target.num_vertices()) return false;
        if (used[static_cast<std::size_t>(image)]) return false;
        used[static_cast<std::size_t>(image)] = 1;
    }
    for (const auto& e : pattern.edges()) {
        if (!target.has_edge(mapping[static_cast<std::size_t>(e.a)],
                             mapping[static_cast<std::size_t>(e.b)])) {
            return false;
        }
    }
    return true;
}

bool brute_force_monomorphic(const graph& pattern, const graph& target) {
    if (pattern.num_vertices() > target.num_vertices()) return false;
    // Permute target vertex subsets of pattern size via index selection.
    std::vector<int> mapping(static_cast<std::size_t>(pattern.num_vertices()), -1);
    std::vector<char> used(static_cast<std::size_t>(target.num_vertices()), 0);

    const auto recurse = [&](auto&& self, int v) -> bool {
        if (v == pattern.num_vertices()) return true;
        for (int c = 0; c < target.num_vertices(); ++c) {
            if (used[static_cast<std::size_t>(c)]) continue;
            bool ok = true;
            for (const int w : pattern.neighbors(v)) {
                if (w < v && !target.has_edge(c, mapping[static_cast<std::size_t>(w)])) {
                    ok = false;
                    break;
                }
            }
            if (!ok) continue;
            mapping[static_cast<std::size_t>(v)] = c;
            used[static_cast<std::size_t>(c)] = 1;
            if (self(self, v + 1)) return true;
            mapping[static_cast<std::size_t>(v)] = -1;
            used[static_cast<std::size_t>(c)] = 0;
        }
        return false;
    };
    return recurse(recurse, 0);
}

}  // namespace qubikos
