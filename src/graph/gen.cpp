#include "graph/gen.hpp"

#include <algorithm>
#include <stdexcept>

namespace qubikos {

graph path_graph(int n) {
    graph g(n);
    for (int i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
    return g;
}

graph cycle_graph(int n) {
    if (n < 3) throw std::invalid_argument("cycle_graph: need n >= 3");
    graph g = path_graph(n);
    g.add_edge(n - 1, 0);
    return g;
}

graph star_graph(int leaves) {
    if (leaves < 0) throw std::invalid_argument("star_graph: negative leaves");
    graph g(leaves + 1);
    for (int i = 1; i <= leaves; ++i) g.add_edge(0, i);
    return g;
}

graph complete_graph(int n) {
    graph g(n);
    for (int i = 0; i < n; ++i) {
        for (int j = i + 1; j < n; ++j) g.add_edge(i, j);
    }
    return g;
}

graph grid_graph(int rows, int cols) {
    if (rows < 1 || cols < 1) throw std::invalid_argument("grid_graph: empty grid");
    graph g(rows * cols);
    const auto id = [cols](int r, int c) { return r * cols + c; };
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
            if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
        }
    }
    return g;
}

graph random_connected_graph(int n, int extra_edges, rng& random) {
    if (n < 1) throw std::invalid_argument("random_connected_graph: need n >= 1");
    graph g(n);
    // Random spanning tree: attach each vertex (in shuffled order) to a
    // uniformly chosen earlier vertex.
    const auto order = random.permutation(n);
    for (int i = 1; i < n; ++i) {
        const int parent = order[static_cast<std::size_t>(
            random.below(static_cast<std::uint64_t>(i)))];
        g.add_edge(order[static_cast<std::size_t>(i)], parent);
    }
    const long long max_edges = static_cast<long long>(n) * (n - 1) / 2;
    long long budget = std::min<long long>(extra_edges, max_edges - g.num_edges());
    int attempts_left = static_cast<int>(budget) * 30 + 100;
    while (budget > 0 && attempts_left-- > 0) {
        const int u = random.range(0, n - 1);
        const int v = random.range(0, n - 1);
        if (u != v && g.add_edge_if_absent(u, v)) --budget;
    }
    return g;
}

}  // namespace qubikos
