// Optimality-gap metrics (Sec. IV-B of the paper).
//
// The paper's headline metric is the SWAP ratio:
//     ratio = (average SWAP count over a batch) / (optimal SWAP count),
// always >= 1, with 1 meaning the tool found the optimum. Per-architecture
// "optimality gap" figures aggregate the ratios across the swap-count
// sweep; the abstract's per-tool gaps aggregate across architectures.
#pragma once

#include <string>
#include <vector>

namespace qubikos::eval {

/// One tool run on one benchmark instance.
struct run_record {
    std::string tool;
    int designed_swaps = 0;
    std::size_t measured_swaps = 0;
    double seconds = 0.0;
    bool valid = false;
    /// Depth overhead: routed circuit depth / logical circuit depth
    /// (>= 1 in practice; swaps only add depth). 0 when not recorded.
    double depth_ratio = 0.0;

    /// Router-internal statistics for tools that report them (today the
    /// SABRE family via tool::run_stats); -1 = not reported. Serialized
    /// by campaign stores only when present, so records of non-reporting
    /// tools keep the v1 byte layout. Note pass_decisions is
    /// deterministic for serial tools but thread-count-dependent in
    /// portfolio mode (incumbent cut timing), so merge never treats
    /// these as identity-defining fields.
    long long trials_run = -1;
    long long trials_pruned = -1;
    long long pass_decisions = -1;
    long long arena_slots = -1;

    /// Did the tool report router stats into this record?
    [[nodiscard]] bool has_router_stats() const { return trials_run >= 0; }
};

/// Aggregate for one (tool, designed swap count) cell of Fig. 4.
struct ratio_cell {
    std::string tool;
    int designed_swaps = 0;
    int runs = 0;
    double average_swaps = 0.0;
    /// average_swaps / designed_swaps; 0 when the ratio is undefined
    /// (designed_swaps == 0 — check has_ratio() before using).
    double swap_ratio = 0.0;
    double average_seconds = 0.0;
    double average_depth_ratio = 0.0;
    /// Absolute sums — always finite, even where the ratio is undefined
    /// (the QUEKO family claims 0 optimal swaps): total measured swaps
    /// and total claimed-optimal swaps (runs x designed) of the cell.
    std::size_t total_swaps = 0;
    long long total_optimal_swaps = 0;

    /// True when swap_ratio is meaningful (a nonzero denominator).
    [[nodiscard]] bool has_ratio() const { return designed_swaps > 0; }
};

/// Groups records by (tool, designed count) and computes swap ratios and
/// absolute totals. Invalid runs are excluded (and counted separately by
/// callers if needed). A cell with designed_swaps == 0 carries totals
/// only (swap_ratio = 0, has_ratio() false) — never a division by zero.
[[nodiscard]] std::vector<ratio_cell> aggregate(const std::vector<run_record>& records);

/// Mean of the swap ratios of one tool across its ratio-bearing cells
/// (the per-architecture "optimality gap" number quoted in the paper).
/// Cells without a defined ratio are skipped; throws when the tool has
/// none at all (guard with has_ratio_cells).
[[nodiscard]] double mean_ratio(const std::vector<ratio_cell>& cells, const std::string& tool);

/// Geometric mean variant (more robust; reported alongside).
[[nodiscard]] double geomean_ratio(const std::vector<ratio_cell>& cells, const std::string& tool);

/// Does the tool have at least one cell with a defined swap ratio?
[[nodiscard]] bool has_ratio_cells(const std::vector<ratio_cell>& cells,
                                   const std::string& tool);

}  // namespace qubikos::eval
