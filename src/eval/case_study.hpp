// LightSABRE case study (Sec. IV-C, Fig. 5).
//
// The paper feeds a QUBIKOS instance's *optimal* initial mapping to
// SABRE's router and inspects the first decision where routing deviates
// from the known optimal swap sequence: both candidates tie on basic and
// decay cost, but the uniform extended-set lookahead scores the wrong swap
// lower (0.65 vs 0.70 in their example). This module reproduces that
// analysis for any instance, and quantifies the proposed fix (decaying
// lookahead weights) for the ablation bench.
#pragma once

#include <optional>
#include <vector>

#include "core/qubikos.hpp"
#include "graph/graph.hpp"
#include "router/sabre.hpp"

namespace qubikos::eval {

struct deviation_report {
    /// Position of the decision among all swap decisions of the run.
    std::size_t decision_index = 0;
    /// The swap SABRE chose, with its cost breakdown.
    router::swap_score chosen;
    /// The next swap of the known-optimal answer at that moment.
    edge optimal_swap;
    /// Cost breakdown of the optimal swap, when it was among the scored
    /// candidates (it is, whenever it touches a front-layer qubit).
    std::optional<router::swap_score> optimal_score;
    /// True when the two candidates tie on basic+decay and only the
    /// lookahead term separates them — the Fig. 5 situation.
    bool lookahead_decided = false;
};

struct case_study_result {
    /// SABRE's swap count from the optimal initial mapping.
    std::size_t sabre_swaps = 0;
    /// The known optimal count.
    int optimal_swaps = 0;
    /// First deviation from the optimal swap sequence (nullopt when SABRE
    /// reproduced the optimal routing).
    std::optional<deviation_report> deviation;
    /// Every decision SABRE made (for deeper inspection).
    std::vector<router::sabre_decision> decisions;
};

/// Routes `instance.logical` with SABRE from the instance's optimal
/// initial mapping and reports the first deviation from the reference
/// optimal swap sequence.
[[nodiscard]] case_study_result analyze_lightsabre(const core::benchmark_instance& instance,
                                                   const graph& coupling,
                                                   const router::sabre_options& options = {});

}  // namespace qubikos::eval
