#include "eval/placement.hpp"

#include <stdexcept>

#include "circuit/interaction.hpp"
#include "graph/token_swapping.hpp"

namespace qubikos::eval {

placement_quality compare_placements(const circuit& logical, const graph& coupling,
                                     const mapping& candidate, const mapping& reference) {
    if (candidate.num_program() != reference.num_program() ||
        candidate.num_physical() != reference.num_physical()) {
        throw std::invalid_argument("compare_placements: mapping shape mismatch");
    }
    const int num_program = candidate.num_program();

    placement_quality out;
    int matches = 0;
    for (int q = 0; q < num_program; ++q) {
        if (candidate.physical(q) == reference.physical(q)) ++matches;
    }
    out.exact_match = num_program == 0 ? 1.0 : static_cast<double>(matches) / num_program;

    out.token_swap_distance = token_swap_distance(
        coupling, candidate.program_to_physical(), reference.program_to_physical());

    const graph interactions = interaction_graph(logical);
    int realized_by_reference = 0;
    int also_by_candidate = 0;
    for (const auto& e : interactions.edges()) {
        if (!coupling.has_edge(reference.physical(e.a), reference.physical(e.b))) continue;
        ++realized_by_reference;
        if (coupling.has_edge(candidate.physical(e.a), candidate.physical(e.b))) {
            ++also_by_candidate;
        }
    }
    out.adjacency_preserved =
        realized_by_reference == 0
            ? 1.0
            : static_cast<double>(also_by_candidate) / realized_by_reference;
    return out;
}

}  // namespace qubikos::eval
