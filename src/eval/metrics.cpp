#include "eval/metrics.hpp"

#include <cmath>
#include <map>
#include <stdexcept>

namespace qubikos::eval {

std::vector<ratio_cell> aggregate(const std::vector<run_record>& records) {
    std::map<std::pair<std::string, int>, ratio_cell> cells;
    for (const auto& record : records) {
        if (!record.valid) continue;
        auto& cell = cells[{record.tool, record.designed_swaps}];
        cell.tool = record.tool;
        cell.designed_swaps = record.designed_swaps;
        ++cell.runs;
        cell.average_swaps += static_cast<double>(record.measured_swaps);
        cell.average_seconds += record.seconds;
        cell.average_depth_ratio += record.depth_ratio;
        cell.total_swaps += record.measured_swaps;
    }
    std::vector<ratio_cell> out;
    out.reserve(cells.size());
    for (auto& [key, cell] : cells) {
        (void)key;
        cell.average_swaps /= cell.runs;
        cell.average_seconds /= cell.runs;
        cell.average_depth_ratio /= cell.runs;
        cell.total_optimal_swaps =
            static_cast<long long>(cell.designed_swaps) * cell.runs;
        // A zero claimed count (QUEKO) leaves the ratio undefined, not
        // the cell broken: totals still aggregate, the renderers print
        // "n/a" for the ratio, and the gap means skip the cell.
        cell.swap_ratio = cell.has_ratio() ? cell.average_swaps / cell.designed_swaps : 0.0;
        out.push_back(cell);
    }
    return out;
}

double mean_ratio(const std::vector<ratio_cell>& cells, const std::string& tool) {
    double total = 0.0;
    int count = 0;
    for (const auto& cell : cells) {
        if (cell.tool != tool || !cell.has_ratio()) continue;
        total += cell.swap_ratio;
        ++count;
    }
    if (count == 0) throw std::invalid_argument("mean_ratio: no cells for tool " + tool);
    return total / count;
}

double geomean_ratio(const std::vector<ratio_cell>& cells, const std::string& tool) {
    double log_total = 0.0;
    int count = 0;
    for (const auto& cell : cells) {
        if (cell.tool != tool || !cell.has_ratio()) continue;
        log_total += std::log(cell.swap_ratio);
        ++count;
    }
    if (count == 0) throw std::invalid_argument("geomean_ratio: no cells for tool " + tool);
    return std::exp(log_total / count);
}

bool has_ratio_cells(const std::vector<ratio_cell>& cells, const std::string& tool) {
    for (const auto& cell : cells) {
        if (cell.tool == tool && cell.has_ratio()) return true;
    }
    return false;
}

}  // namespace qubikos::eval
