#include "eval/harness.hpp"

#include "util/stopwatch.hpp"

namespace qubikos::eval {

std::vector<tool> paper_toolbox(const toolbox_options& options) {
    std::vector<tool> tools;

    router::sabre_options sabre = options.sabre;
    sabre.trials = options.sabre_trials;
    sabre.seed = options.seed;
    tools.push_back({"lightsabre", [sabre](const circuit& c, const graph& g) {
                         return router::route_sabre(c, g, sabre);
                     }});

    router::mlqls_options mlqls = options.mlqls;
    mlqls.seed = options.seed;
    tools.push_back({"mlqls", [mlqls](const circuit& c, const graph& g) {
                         return router::route_mlqls(c, g, mlqls);
                     }});

    const router::qmap_options qmap = options.qmap;
    tools.push_back({"qmap", [qmap](const circuit& c, const graph& g) {
                         return router::route_qmap(c, g, qmap);
                     }});

    const router::tket_options tket = options.tket;
    tools.push_back({"tket", [tket](const circuit& c, const graph& g) {
                         return router::route_tket(c, g, tket);
                     }});

    return tools;
}

evaluation_result evaluate_suite(const core::suite& s, const arch::architecture& device,
                                 const std::vector<tool>& tools) {
    evaluation_result result;
    for (const auto& instance : s.instances) {
        for (const auto& t : tools) {
            stopwatch timer;
            const routed_circuit routed = t.run(instance.logical, device.coupling);
            run_record record;
            record.tool = t.name;
            record.designed_swaps = instance.optimal_swaps;
            record.seconds = timer.seconds();
            const auto report = validate_routed(instance.logical, routed, device.coupling);
            record.valid = report.valid;
            record.measured_swaps = report.swap_count;
            const int logical_depth = instance.logical.depth();
            if (logical_depth > 0) {
                record.depth_ratio = static_cast<double>(routed.physical.depth()) /
                                     static_cast<double>(logical_depth);
            }
            if (!record.valid) ++result.invalid_runs;
            result.records.push_back(std::move(record));
        }
    }
    result.cells = aggregate(result.records);
    return result;
}

}  // namespace qubikos::eval
