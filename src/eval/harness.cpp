#include "eval/harness.hpp"

#include <stdexcept>

#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace qubikos::eval {

std::vector<tool> paper_toolbox(const toolbox_options& options) {
    std::vector<tool> tools;

    router::sabre_options sabre = options.sabre;
    sabre.trials = options.sabre_trials;
    sabre.seed = options.seed;
    tools.push_back({"lightsabre", [sabre](const circuit& c, const graph& g) {
                         return router::route_sabre(c, g, sabre);
                     }});

    router::mlqls_options mlqls = options.mlqls;
    mlqls.seed = options.seed;
    tools.push_back({"mlqls", [mlqls](const circuit& c, const graph& g) {
                         return router::route_mlqls(c, g, mlqls);
                     }});

    const router::qmap_options qmap = options.qmap;
    tools.push_back({"qmap", [qmap](const circuit& c, const graph& g) {
                         return router::route_qmap(c, g, qmap);
                     }});

    const router::tket_options tket = options.tket;
    tools.push_back({"tket", [tket](const circuit& c, const graph& g) {
                         return router::route_tket(c, g, tket);
                     }});

    return tools;
}

run_record run_tool_record(const tool& t, const core::benchmark_instance& instance,
                           const arch::architecture& device) {
    run_record record;
    record.tool = t.name;
    record.designed_swaps = instance.optimal_swaps;
    cpu_stopwatch timer;
    const routed_circuit routed = t.run(instance.logical, device.coupling);
    record.seconds = timer.seconds();
    const auto report = validate_routed(instance.logical, routed, device.coupling);
    record.valid = report.valid;
    record.measured_swaps = report.swap_count;
    const int logical_depth = instance.logical.depth();
    if (logical_depth > 0) {
        record.depth_ratio = static_cast<double>(routed.physical.depth()) /
                             static_cast<double>(logical_depth);
    }
    return record;
}

evaluation_result evaluate_suite(const core::suite& s, const arch::architecture& device,
                                 const std::vector<tool>& tools, int threads) {
    if (threads < 0) throw std::invalid_argument("evaluate_suite: threads must be >= 0");
    evaluation_result result;
    const std::size_t num_tools = tools.size();
    const std::size_t num_pairs = s.instances.size() * num_tools;
    if (num_pairs == 0) return result;

    // Each (instance, tool) pair fills its preallocated slot; the slot
    // index encodes the serial iteration order (instance-major), so the
    // records come out identical to the serial loop regardless of
    // scheduling.
    result.records.resize(num_pairs);
    thread_pool pool(std::min(
        thread_pool::resolve_threads(static_cast<std::size_t>(threads)), num_pairs));
    pool.parallel_for(0, num_pairs, [&](std::size_t pair) {
        result.records[pair] =
            run_tool_record(tools[pair % num_tools], s.instances[pair / num_tools], device);
    });

    for (const auto& record : result.records) {
        if (!record.valid) ++result.invalid_runs;
    }
    result.cells = aggregate(result.records);
    return result;
}

}  // namespace qubikos::eval
