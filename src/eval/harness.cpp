#include "eval/harness.hpp"

#include <stdexcept>

#include "tools/registry.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace qubikos::eval {

namespace {

/// Maps the typed option structs onto the registry schemas, field by
/// field, so a toolbox_options caller loses nothing by the lineup living
/// in the registry. `options.seed` feeds every seeded tool, exactly as
/// the pre-registry lineup did.
json::value registry_overrides(const std::string& name, const toolbox_options& options) {
    json::object o;
    if (name == "lightsabre") {
        const router::sabre_options& s = options.sabre;
        o["trials"] = s.trials;
        o["threads"] = s.threads;
        o["seed"] = static_cast<std::int64_t>(options.seed);
        o["extended_set_size"] = s.extended_set_size;
        o["extended_set_weight"] = s.extended_set_weight;
        o["decay_increment"] = s.decay_increment;
        o["decay_reset_interval"] = s.decay_reset_interval;
        o["lookahead_decay"] = s.lookahead_decay;
        o["bidirectional"] = s.bidirectional;
        o["release_valve"] = s.release_valve;
        o["portfolio"] = s.portfolio;
        o["portfolio.wave"] = s.portfolio_wave;
        o["portfolio.budget_base"] = s.portfolio_budget_base;
        o["portfolio.budget_growth"] = s.portfolio_budget_growth;
        o["portfolio.patience"] = s.portfolio_patience;
        o["portfolio.target_swaps"] = s.portfolio_target_swaps;
    } else if (name == "mlqls") {
        const router::mlqls_options& m = options.mlqls;
        o["coarsest_size"] = m.coarsest_size;
        o["refine_sweeps"] = m.refine_sweeps;
        o["placement_trials"] = m.placement_trials;
        o["seed"] = static_cast<std::int64_t>(options.seed);
        o["routing_extended_set_size"] = m.routing.extended_set_size;
        o["routing_extended_set_weight"] = m.routing.extended_set_weight;
        o["routing_decay_increment"] = m.routing.decay_increment;
        o["routing_decay_reset_interval"] = m.routing.decay_reset_interval;
        o["routing_lookahead_decay"] = m.routing.lookahead_decay;
        o["routing_release_valve"] = m.routing.release_valve;
    } else if (name == "qmap") {
        const router::qmap_options& q = options.qmap;
        o["node_limit"] = q.node_limit;
        o["lookahead_weight"] = q.lookahead_weight;
        o["placement_window"] = q.placement_window;
    } else if (name == "tket") {
        const router::tket_options& t = options.tket;
        o["lookahead_slices"] = t.lookahead_slices;
        o["slice_discount"] = t.slice_discount;
        o["stagnation_limit"] = t.stagnation_limit;
        o["placement_window"] = t.placement_window;
    }
    return json::value(std::move(o));
}

}  // namespace

std::vector<tool> paper_toolbox(const toolbox_options& options,
                                std::shared_ptr<const tools::routing_context> context) {
    std::vector<tool> lineup;
    for (const auto& name : tools::paper_tool_names()) {
        lineup.push_back(tools::make_tool(name, registry_overrides(name, options), context));
    }
    return lineup;
}

run_record run_tool_record(const tool& t, const core::benchmark_instance& instance,
                           const arch::architecture& device) {
    run_record record;
    record.tool = t.name;
    record.designed_swaps = instance.optimal_swaps;
    cpu_stopwatch timer;
    routed_circuit routed;
    if (t.run_stats) {
        tool_run_stats stats;
        routed = t.run_stats(instance.logical, device.coupling, stats);
        record.seconds = timer.seconds();
        if (stats.present) {
            record.trials_run = stats.trials_run;
            record.trials_pruned = stats.trials_pruned;
            record.pass_decisions = stats.pass_decisions;
            record.arena_slots = stats.arena_slots;
        }
    } else {
        routed = t.run(instance.logical, device.coupling);
        record.seconds = timer.seconds();
    }
    const auto report = validate_routed(instance.logical, routed, device.coupling);
    record.valid = report.valid;
    record.measured_swaps = report.swap_count;
    const int logical_depth = instance.logical.depth();
    if (logical_depth > 0) {
        record.depth_ratio = static_cast<double>(routed.physical.depth()) /
                             static_cast<double>(logical_depth);
    }
    return record;
}

evaluation_result evaluate_suite(const core::suite& s, const arch::architecture& device,
                                 const std::vector<tool>& tools, int threads) {
    if (threads < 0) throw std::invalid_argument("evaluate_suite: threads must be >= 0");
    evaluation_result result;
    const std::size_t num_tools = tools.size();
    const std::size_t num_pairs = s.instances.size() * num_tools;
    if (num_pairs == 0) return result;

    // Each (instance, tool) pair fills its preallocated slot; the slot
    // index encodes the serial iteration order (instance-major), so the
    // records come out identical to the serial loop regardless of
    // scheduling.
    result.records.resize(num_pairs);
    const std::size_t width =
        std::min(thread_pool::resolve_threads(static_cast<std::size_t>(threads)), num_pairs);
    thread_pool::shared().parallel_for_slots(
        0, num_pairs, width,
        [&](std::size_t pair, std::size_t) {
            result.records[pair] =
                run_tool_record(tools[pair % num_tools], s.instances[pair / num_tools], device);
        });

    for (const auto& record : result.records) {
        if (!record.valid) ++result.invalid_runs;
    }
    result.cells = aggregate(result.records);
    return result;
}

}  // namespace qubikos::eval
