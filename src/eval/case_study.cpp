#include "eval/case_study.hpp"

#include <cmath>

namespace qubikos::eval {

case_study_result analyze_lightsabre(const core::benchmark_instance& instance,
                                     const graph& coupling,
                                     const router::sabre_options& options) {
    case_study_result result;
    result.optimal_swaps = instance.optimal_swaps;

    const auto observer = [&result](const router::sabre_decision& d) {
        result.decisions.push_back(d);
    };

    const routed_circuit routed = router::route_sabre_with_initial(
        instance.logical, coupling, instance.answer.initial, options, observer);
    result.sabre_swaps = routed.swap_count();

    // The reference optimal swap sequence, in order.
    std::vector<edge> optimal_sequence;
    optimal_sequence.reserve(instance.sections.size());
    for (const auto& section : instance.sections) {
        optimal_sequence.push_back(section.swap_physical);
    }

    for (std::size_t i = 0; i < result.decisions.size(); ++i) {
        const auto& decision = result.decisions[i];
        // While SABRE follows the optimal sequence, decision i consumes
        // optimal swap i.
        if (i < optimal_sequence.size() && decision.chosen == optimal_sequence[i]) continue;

        deviation_report dev;
        dev.decision_index = i;
        dev.optimal_swap = i < optimal_sequence.size() ? optimal_sequence[i] : edge{};
        for (const auto& score : decision.scores) {
            if (score.candidate == decision.chosen) dev.chosen = score;
            if (i < optimal_sequence.size() && score.candidate == optimal_sequence[i]) {
                dev.optimal_score = score;
            }
        }
        if (dev.optimal_score.has_value()) {
            const bool basic_tied =
                std::abs(dev.chosen.basic - dev.optimal_score->basic) < 1e-9;
            const bool decay_tied =
                std::abs(dev.chosen.decay_factor - dev.optimal_score->decay_factor) < 1e-12;
            dev.lookahead_decided =
                basic_tied && decay_tied &&
                dev.chosen.lookahead < dev.optimal_score->lookahead;
        }
        result.deviation = std::move(dev);
        break;
    }
    return result;
}

}  // namespace qubikos::eval
