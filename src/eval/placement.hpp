// Placement-quality analysis.
//
// The standalone-routing experiments show that on QUBIKOS the tools'
// optimality gap is dominated by *initial-mapping* quality, not routing
// (routing from the planted mapping is near-perfect). These metrics
// quantify how far a tool's chosen initial mapping is from the planted
// optimal one:
//   - exact-match fraction of program qubits;
//   - token-swap distance (swaps needed to morph one mapping into the
//     other on the coupling graph) — the operational cost of the
//     placement error;
//   - adjacency preservation: fraction of the planted mapping's realized
//     interaction edges that the tool's mapping also realizes.
#pragma once

#include "circuit/circuit.hpp"
#include "circuit/mapping.hpp"
#include "graph/graph.hpp"

namespace qubikos::eval {

struct placement_quality {
    /// Fraction of program qubits placed exactly as in the reference.
    double exact_match = 0.0;
    /// Swaps required to transform `candidate` into `reference` on the
    /// coupling graph (approximate token swapping).
    std::size_t token_swap_distance = 0;
    /// Of the interaction edges executable in place under `reference`,
    /// the fraction also executable in place under `candidate`.
    double adjacency_preserved = 0.0;
};

[[nodiscard]] placement_quality compare_placements(const circuit& logical,
                                                   const graph& coupling,
                                                   const mapping& candidate,
                                                   const mapping& reference);

}  // namespace qubikos::eval
