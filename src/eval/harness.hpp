// Tool-evaluation harness: runs QLS tools over a QUBIKOS suite and
// aggregates swap ratios (the Sec. IV-B experiment).
//
// Every routed result is validated before being counted; an invalid
// result is recorded but excluded from the aggregates (and loudly
// reported by the benches — none of the shipped tools produce one).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "arch/architectures.hpp"
#include "circuit/routed.hpp"
#include "core/suite.hpp"
#include "eval/metrics.hpp"
#include "router/mlqls.hpp"
#include "router/qmap.hpp"
#include "router/sabre.hpp"
#include "router/tket.hpp"

namespace qubikos::tools {
class routing_context;  // tools/context.hpp (tools/ sits above eval/)
}  // namespace qubikos::tools

namespace qubikos::eval {

/// Router statistics a tool may report alongside its routed circuit
/// (see tool::run_stats). Fields mirror run_record's router stats.
struct tool_run_stats {
    bool present = false;
    long long trials_run = 0;
    long long trials_pruned = 0;
    long long pass_decisions = 0;
    long long arena_slots = 0;
};

/// A named QLS tool: circuit + coupling graph -> routed circuit.
/// Tools that can report router-internal statistics additionally set
/// `run_stats`; the harness prefers it when present (identical routing —
/// same options, same seed — just with the stats surfaced instead of
/// dropped). Aggregate initialization `{"name", fn}` stays valid.
struct tool {
    std::string name;
    std::function<routed_circuit(const circuit&, const graph&)> run;
    std::function<routed_circuit(const circuit&, const graph&, tool_run_stats&)> run_stats;
};

/// The paper's four tools with knobs. `sabre.trials` is the LightSABRE
/// trial count — 32 by default here, 1000 in the paper (benches scale it
/// down and say so). It is the single source of truth for the trial
/// count: there is deliberately no separate sabre_trials member.
struct toolbox_options {
    std::uint64_t seed = 1;
    router::sabre_options sabre{.trials = 32};
    router::tket_options tket;
    router::qmap_options qmap;
    router::mlqls_options mlqls;
};

/// Builds the standard four-tool lineup (lightsabre, mlqls, qmap, tket)
/// by querying the tool registry (tools/registry.hpp) — the lineup,
/// docs and option schemas live there; this is a convenience wrapper
/// that maps the option structs onto registry overrides. A non-null
/// `context` (see tools::make_routing_context) lets every tool share one
/// precomputed distance matrix for the device it will run on.
[[nodiscard]] std::vector<tool> paper_toolbox(
    const toolbox_options& options = {},
    std::shared_ptr<const tools::routing_context> context = nullptr);

struct evaluation_result {
    std::vector<run_record> records;
    std::vector<ratio_cell> cells;
    int invalid_runs = 0;
};

/// Runs one tool on one instance and fills the complete run_record — the
/// per-pair primitive of evaluate_suite. The campaign worker calls this
/// same function, so a store record and a serial harness record agree
/// field for field by construction (seconds is thread-CPU time around
/// the tool invocation only; validation is untimed).
[[nodiscard]] run_record run_tool_record(const tool& t, const core::benchmark_instance& instance,
                                         const arch::architecture& device);

/// Runs every tool on every instance of the suite. The (tool x instance)
/// grid is embarrassingly parallel: pairs run on a thread pool sized by
/// `threads` (0 = auto via QUBIKOS_THREADS / hardware_concurrency, 1 =
/// serial) and each writes a preallocated record slot, so records keep
/// the serial order (instance-major, tool-minor) and identical swap
/// counts, validity and depth ratios for every thread count. `seconds`
/// is per-record *thread-CPU* time (serial timing semantics): it measures
/// what the tool invocation itself costs and does not inflate when
/// sibling records contend for cores, so records taken at any `threads`
/// are comparable. It still excludes nothing the tool does internally —
/// keep the tools themselves serial (sabre_options::threads = 1) when
/// parallelizing here, both to avoid oversubscription and so a tool's
/// own worker threads don't escape its timing.
[[nodiscard]] evaluation_result evaluate_suite(const core::suite& s,
                                               const arch::architecture& device,
                                               const std::vector<tool>& tools,
                                               int threads = 1);

}  // namespace qubikos::eval
