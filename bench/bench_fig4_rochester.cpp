// Fig. 4(c): tool evaluation on IBM Rochester (53 qubits, 1500 gates).
// Rochester's heavy-hex sparsity makes its gap ~6x Sycamore's despite the
// similar qubit count (Sec. IV-B).
#include "fig4_common.hpp"

int main() {
    using namespace qubikos;
    bench::fig4_config config{
        "Fig. 4(c) — Rochester, swap counts {5,10,15,20}, 1500 two-qubit gates",
        arch::rochester53(),
        1500,
        {{"lightsabre", "12.17x"},
         {"mlqls", "~optimal per paper"},
         {"qmap", "large (hundreds x)"},
         {"tket", "large (hundreds x)"}},
    };
    return bench::run_fig4(config);
}
