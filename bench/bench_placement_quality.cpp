// Placement-quality decomposition (extension analysis).
//
// The standalone-routing bench shows routing from the planted mapping is
// near-optimal, so the Fig. 4 gaps must come from placement. This bench
// quantifies that directly: for each tool, compare its *chosen* initial
// mapping against the planted optimal one — exact-match fraction,
// token-swap distance (operational cost of the placement error on the
// coupling graph) and preserved adjacency. It explains, mechanically, why
// trial count is LightSABRE's dominant lever on QUBIKOS.
#include <cstdio>

#include "arch/architectures.hpp"
#include "bench_common.hpp"
#include "core/qubikos.hpp"
#include "eval/placement.hpp"
#include "router/common.hpp"
#include "router/mlqls.hpp"
#include "router/sabre.hpp"
#include "util/table.hpp"

int main() {
    using namespace qubikos;
    bench::print_header("Placement quality vs the planted optimal mapping",
                        "extension analysis of Sec. IV-B/IV-C (placement dominates the gap)");

    int per_config = 5;
    int trials = 32;
    switch (bench::bench_scale()) {
        case bench::scale::smoke:
            per_config = 2;
            trials = 8;
            break;
        case bench::scale::standard: break;
        case bench::scale::paper:
            per_config = 20;
            trials = 1000;
            break;
    }

    ascii_table table({"arch", "placer", "exact match", "token-swap dist", "adjacency kept",
                       "swaps used"});
    csv::writer raw({"arch", "placer", "seed", "exact_match", "token_distance",
                     "adjacency", "swaps"});

    for (const auto& device : {arch::aspen4(), arch::sycamore54()}) {
        struct accumulator {
            double match = 0, adjacency = 0, swaps = 0;
            double distance = 0;
        };
        accumulator sabre_acc, mlqls_acc, greedy_acc;

        for (int seed = 1; seed <= per_config; ++seed) {
            core::generator_options options;
            options.num_swaps = 10;
            options.total_two_qubit_gates = device.num_qubits() > 20 ? 1000 : 300;
            options.seed = static_cast<std::uint64_t>(seed) * 31;
            const auto instance = core::generate(device, options);
            const mapping& planted = instance.answer.initial;

            const auto record = [&](const char* name, accumulator& acc,
                                    const mapping& chosen, std::size_t swaps) {
                const auto q = eval::compare_placements(instance.logical, device.coupling,
                                                        chosen, planted);
                acc.match += q.exact_match;
                acc.distance += static_cast<double>(q.token_swap_distance);
                acc.adjacency += q.adjacency_preserved;
                acc.swaps += static_cast<double>(swaps);
                raw.add(device.name, name, seed, q.exact_match, q.token_swap_distance,
                        q.adjacency_preserved, swaps);
            };

            router::sabre_options so;
            so.trials = trials;
            const auto sabre = router::route_sabre(instance.logical, device.coupling, so);
            record("lightsabre", sabre_acc, sabre.initial, sabre.swap_count());

            router::mlqls_options mo;
            const auto ml = router::route_mlqls(instance.logical, device.coupling, mo);
            record("mlqls", mlqls_acc, ml.initial, ml.swap_count());

            const distance_provider dist(device.coupling);
            const mapping greedy =
                router::greedy_placement(instance.logical, device.coupling, dist);
            const auto greedy_routed = router::route_sabre_with_initial(
                instance.logical, device.coupling, greedy);
            record("greedy+route", greedy_acc, greedy, greedy_routed.swap_count());
        }

        const auto row = [&](const char* name, const accumulator& acc) {
            table.add(device.name, name,
                      ascii_table::num(acc.match / per_config * 100.0, 1) + "%",
                      ascii_table::num(acc.distance / per_config, 1),
                      ascii_table::num(acc.adjacency / per_config * 100.0, 1) + "%",
                      ascii_table::num(acc.swaps / per_config, 1));
        };
        row("lightsabre", sabre_acc);
        row("mlqls", mlqls_acc);
        row("greedy+route", greedy_acc);
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("reading: a tool whose mapping preserves the planted adjacency needs few\n"
                "swaps; token-swap distance prices the placement error in SWAP units.\n");
    bench::save_results(raw, "placement_quality");
    return 0;
}
