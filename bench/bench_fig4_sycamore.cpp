// Fig. 4(b): tool evaluation on Google Sycamore (54 qubits, 1500 gates).
#include "fig4_common.hpp"

int main() {
    using namespace qubikos;
    bench::fig4_config config{
        "Fig. 4(b) — Sycamore, swap counts {5,10,15,20}, 1500 two-qubit gates",
        arch::sycamore54(),
        1500,
        {{"lightsabre", "1.95x"},
         {"mlqls", "close to lightsabre"},
         {"qmap", "large (hundreds x)"},
         {"tket", "large (hundreds x)"}},
    };
    return bench::run_fig4(config);
}
