// Fig. 4(a): tool evaluation on Rigetti Aspen-4 (16 qubits, 300 gates).
#include "fig4_common.hpp"

int main() {
    using namespace qubikos;
    bench::fig4_config config{
        "Fig. 4(a) — Aspen-4, swap counts {5,10,15,20}, 300 two-qubit gates",
        arch::aspen4(),
        300,
        {{"lightsabre", "~1x (optimal)"},
         {"mlqls", "~1x (optimal)"},
         {"qmap", "207x"},
         {"tket", "185x"}},
    };
    return bench::run_fig4(config);
}
