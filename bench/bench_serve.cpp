// bench_serve: the routing service under concurrent client load.
//
// Two questions, both regression-gated (scripts/bench_regression_gate.py
// --serve):
//
//   throughput  requests/sec of N concurrent clients against an
//               in-process server, with the per-device context cache on
//               vs off ("cold" rebuilds the routing_context on every
//               request). The workload is multi-device on large grids,
//               where the O(V*(V+E)) distance-matrix build dominates a
//               small routing call — the case the LRU cache exists for.
//               Gate: cached >= 2x cold.
//   latency     per-request round-trip p50/p99 for the cached run.
//
// Responses are also checked bit-identical between the cached and cold
// runs — the cache is an optimization, never an observable.
//
// Infrastructure bench (no paper figure). Raw data: BENCH_serve.json.
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "arch/architectures.hpp"
#include "bench_common.hpp"
#include "circuit/qasm.hpp"
#include "core/qubikos.hpp"
#include "serve/engine.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"
#include "util/json.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace qubikos {
namespace {

// Large enough that the distance-matrix build is the dominant
// per-request cost, small enough that lightsabre on a tiny circuit
// stays fast (grid24x24 routing is ~100x slower — a separate story, not
// this bench's).
const std::vector<std::string> kDevices = {"grid16x16", "grid18x18", "grid20x20"};

struct wire_request {
    std::string line;      ///< framed JSONL request (no newline)
    std::size_t index = 0; ///< position in the global workload order
};

struct client_share {
    std::vector<wire_request> requests;
    std::vector<std::string> responses;  ///< same order as requests
    std::vector<double> latency_seconds; ///< same order as requests
};

struct load_result {
    double seconds = 0.0;
    std::vector<std::string> responses; ///< global workload order
    std::vector<double> latencies;      ///< sorted ascending
    serve::engine::cache_stats stats;
    std::uint64_t served = 0;
};

/// One route request per (device, seed) with the circuit shipped as QASM
/// so request cost is parse + route (+ context build when cold); the
/// generator runs once here, not per request. Zero-swap instances keep
/// the routing term small and uniform across seeds (SABRE runtime on
/// instances that need swaps varies by 100x with the seed, which would
/// drown the context-build cost this bench isolates — router throughput
/// has its own benches).
std::vector<wire_request> build_workload(int per_device) {
    std::vector<wire_request> out;
    for (const auto& name : kDevices) {
        const auto device = arch::by_name(name);
        for (int i = 0; i < per_device; ++i) {
            core::generator_options options;
            options.num_swaps = 0;
            options.total_two_qubit_gates = 8;
            options.seed = static_cast<std::uint64_t>(i + 1);
            const auto instance = core::generate(device, options);

            json::object req;
            req["id"] = name + "-" + std::to_string(i);
            req["op"] = "route";
            req["device"] = name;
            req["tool"] = "lightsabre";
            json::object tool_options;
            tool_options["trials"] = 1;
            req["options"] = json::value(std::move(tool_options));
            req["qasm"] = qasm::write(instance.logical);

            wire_request wr;
            wr.line = json::value(std::move(req)).dump();
            wr.index = out.size();
            out.push_back(std::move(wr));
        }
    }
    return out;
}

bool send_all(int fd, const std::string& framed) {
    std::size_t off = 0;
    while (off < framed.size()) {
        const ssize_t n = ::send(fd, framed.data() + off, framed.size() - off, 0);
        if (n <= 0) return false;
        off += static_cast<std::size_t>(n);
    }
    return true;
}

std::string read_line(int fd) {
    std::string line;
    char b = 0;
    for (;;) {
        const ssize_t n = ::recv(fd, &b, 1, 0);
        if (n <= 0) return line;
        if (b == '\n') return line;
        line += b;
    }
}

/// Synchronous request/response loop: each round trip is one latency
/// sample (includes queue wait — that is the service's latency, not an
/// artifact to subtract).
void client_loop(int fd, client_share& share) {
    share.responses.reserve(share.requests.size());
    share.latency_seconds.reserve(share.requests.size());
    for (const auto& req : share.requests) {
        stopwatch timer;
        if (!send_all(fd, req.line + "\n")) break;
        share.responses.push_back(read_line(fd));
        share.latency_seconds.push_back(timer.seconds());
    }
    ::close(fd);
}

load_result run_load(bool cached, const std::vector<wire_request>& workload, int clients) {
    serve::engine_options eng_options;
    eng_options.cache_contexts = cached;
    eng_options.max_cached_devices = kDevices.size() + 1;
    serve::engine eng(eng_options);
    serve::server srv(eng);

    std::vector<client_share> shares(static_cast<std::size_t>(clients));
    for (const auto& req : workload) {
        shares[req.index % static_cast<std::size_t>(clients)].requests.push_back(req);
    }

    std::vector<int> fds;
    for (int c = 0; c < clients; ++c) {
        int pair[2] = {-1, -1};
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, pair) != 0) {
            std::perror("socketpair");
            std::exit(1);
        }
        fds.push_back(pair[0]);
        srv.add_client(pair[1]);
    }

    stopwatch wall;
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
        threads.emplace_back(client_loop, fds[static_cast<std::size_t>(c)],
                             std::ref(shares[static_cast<std::size_t>(c)]));
    }
    for (auto& t : threads) t.join();

    load_result result;
    result.seconds = wall.seconds();
    srv.stop();
    result.served = srv.requests_served();
    result.stats = eng.stats();

    result.responses.resize(workload.size());
    for (const auto& share : shares) {
        for (std::size_t i = 0; i < share.responses.size(); ++i) {
            result.responses[share.requests[i].index] = share.responses[i];
        }
        result.latencies.insert(result.latencies.end(), share.latency_seconds.begin(),
                                share.latency_seconds.end());
    }
    std::sort(result.latencies.begin(), result.latencies.end());
    return result;
}

double percentile(const std::vector<double>& sorted, double p) {
    if (sorted.empty()) return 0.0;
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

int run() {
    const bench::scale s = bench::bench_scale();
    const int reps = s == bench::scale::smoke ? 2 : (s == bench::scale::paper ? 8 : 4);
    const int per_device = s == bench::scale::smoke ? 6 : (s == bench::scale::paper ? 48 : 16);
    const int clients = 4;
    constexpr double kSpeedupThreshold = 2.0;

    bench::print_header("bench_serve: routing service under concurrent load",
                        "infrastructure (no paper figure)");
    std::printf("devices: ");
    for (const auto& d : kDevices) std::printf("%s ", d.c_str());
    std::printf("\nclients: %d   requests: %zu   reps: %d (best-of)\n\n", clients,
                kDevices.size() * static_cast<std::size_t>(per_device), reps);

    const auto workload = build_workload(per_device);
    const double n = static_cast<double>(workload.size());

    // Best-of-reps on throughput; latency distribution taken from the
    // best (least scheduler-noisy) rep.
    load_result best_cached;
    load_result best_cold;
    for (int r = 0; r < reps; ++r) {
        auto cached = run_load(true, workload, clients);
        if (r == 0 || cached.seconds < best_cached.seconds) best_cached = std::move(cached);
        auto cold = run_load(false, workload, clients);
        if (r == 0 || cold.seconds < best_cold.seconds) best_cold = std::move(cold);
    }

    bool ok = true;
    if (best_cached.served != workload.size() || best_cold.served != workload.size()) {
        std::printf("FAIL: served %llu cached / %llu cold, expected %zu\n",
                    static_cast<unsigned long long>(best_cached.served),
                    static_cast<unsigned long long>(best_cold.served), workload.size());
        ok = false;
    }
    const bool responses_match = best_cached.responses == best_cold.responses;
    if (!responses_match) {
        std::printf("FAIL: cached and cold responses differ — the cache is observable\n");
        ok = false;
    }
    for (const auto& line : best_cached.responses) {
        if (!json::parse(line).at("legal").as_bool()) {
            std::printf("FAIL: illegal routing in response: %s\n", line.c_str());
            ok = false;
            break;
        }
    }

    const double rps_cached = n / best_cached.seconds;
    const double rps_cold = n / best_cold.seconds;
    const double speedup = rps_cached / rps_cold;

    std::printf("throughput (requests/sec)\n");
    std::printf("  context cache on   %9.0f rps  (%zu hits, %zu misses)\n", rps_cached,
                best_cached.stats.hits, best_cached.stats.misses);
    std::printf("  cold per request   %9.0f rps  (%zu misses)\n", rps_cold,
                best_cold.stats.misses);
    std::printf("  speedup            %9.2fx  (gate: >= %.1fx)\n\n", speedup,
                kSpeedupThreshold);

    std::printf("latency, cached (per-request round trip)\n");
    std::printf("  p50  %8.3f ms\n", percentile(best_cached.latencies, 50.0) * 1e3);
    std::printf("  p99  %8.3f ms\n", percentile(best_cached.latencies, 99.0) * 1e3);
    std::printf("  max  %8.3f ms\n\n", best_cached.latencies.back() * 1e3);

    std::printf("responses bit-identical cached vs cold: %s\n",
                responses_match ? "yes" : "NO");

    json::object doc;
    doc["schema"] = "qubikos.bench_serve.v1";
    doc["scale"] = bench::scale_name(s);
    doc["resolved_threads"] = thread_pool::resolve_threads(0);
    doc["clients"] = clients;
    doc["requests"] = workload.size();
    doc["reps"] = reps;
    json::array devices;
    for (const auto& d : kDevices) devices.push_back(d);
    doc["devices"] = std::move(devices);
    doc["rps_cached"] = rps_cached;
    doc["rps_cold"] = rps_cold;
    doc["speedup"] = speedup;
    doc["speedup_threshold"] = kSpeedupThreshold;
    doc["speedup_ok"] = speedup >= kSpeedupThreshold;
    doc["responses_match"] = responses_match;
    doc["cached_hits"] = best_cached.stats.hits;
    doc["cached_misses"] = best_cached.stats.misses;
    doc["cold_misses"] = best_cold.stats.misses;
    doc["latency_p50_seconds"] = percentile(best_cached.latencies, 50.0);
    doc["latency_p99_seconds"] = percentile(best_cached.latencies, 99.0);
    doc["latency_max_seconds"] = best_cached.latencies.back();

    const std::string path = "BENCH_serve.json";
    std::ofstream file(path);
    file << json::value(std::move(doc)).dump(2) << "\n";
    file.flush();
    std::printf("\n[raw data: %s]\n", path.c_str());
    return file.good() && ok ? 0 : 1;
}

}  // namespace
}  // namespace qubikos

int main() { return qubikos::run(); }
