// Shared scaffolding for the figure/table benches.
//
// Every bench prints (1) the paper's reported numbers, (2) our measured
// numbers, (3) the run configuration. Paper scale (1000 SABRE trials, 10
// circuits per swap count, 100 circuits per count in the optimality
// study) is expensive; the default configuration is scaled down but
// shape-preserving. Set QUBIKOS_BENCH_SCALE=paper to run full scale, or
// QUBIKOS_BENCH_SCALE=smoke for CI-speed runs.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "util/csv.hpp"

namespace qubikos::bench {

enum class scale { smoke, standard, paper };

inline scale bench_scale() {
    const char* env = std::getenv("QUBIKOS_BENCH_SCALE");
    if (env == nullptr) return scale::standard;
    const std::string value(env);
    if (value == "paper") return scale::paper;
    if (value == "smoke") return scale::smoke;
    return scale::standard;
}

inline const char* scale_name(scale s) {
    switch (s) {
        case scale::smoke: return "smoke";
        case scale::standard: return "standard";
        case scale::paper: return "paper";
    }
    return "?";
}

/// Campaign store directory for a bench: <base>/<name>_<fingerprint>.
/// <base> defaults to bench_results/campaign next to the binary;
/// QUBIKOS_CAMPAIGN_STORE_DIR overrides it, which is how a fleet run
/// points every machine's benches at a local store root that
/// `qubikos_cli campaign pull` later collects (see README "Fleet-running
/// the benches"). The fingerprint suffix keeps scales/configs separate,
/// so a half-finished paper-scale store survives smoke runs.
inline std::string campaign_store_dir(const std::string& campaign_name,
                                      const std::string& fingerprint) {
    const char* base = std::getenv("QUBIKOS_CAMPAIGN_STORE_DIR");
    const std::string root =
        (base != nullptr && *base != '\0') ? base : "bench_results/campaign";
    return root + "/" + campaign_name + "_" + fingerprint;
}

/// Saves a CSV next to the binary under bench_results/.
inline void save_results(const csv::writer& w, const std::string& name) {
    std::filesystem::create_directories("bench_results");
    const std::string path = "bench_results/" + name + ".csv";
    w.save(path);
    std::printf("[raw data: %s]\n", path.c_str());
}

inline void print_header(const char* title, const char* paper_ref) {
    std::printf("==============================================================\n");
    std::printf("%s\n", title);
    std::printf("reproduces: %s\n", paper_ref);
    std::printf("scale: %s (QUBIKOS_BENCH_SCALE=smoke|standard|paper)\n",
                scale_name(bench_scale()));
    std::printf("==============================================================\n");
}

}  // namespace qubikos::bench
