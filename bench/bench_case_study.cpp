// Sec. IV-C / Fig. 5: LightSABRE case study.
//
// Paper setup: on an Aspen-4 QUBIKOS instance, SABRE — given the optimal
// initial mapping — deviates from the optimal routing because both
// candidate swaps tie on basic and decay cost and the uniform lookahead
// term prefers the wrong one (0.65 vs 0.70). The proposed fix is a decay
// factor on the lookahead weights.
//
// This bench (1) measures how often SABRE with the *optimal initial
// mapping* reproduces the optimal swap count (the standalone-router
// evaluation mode Sec. IV-C proposes), (2) prints the cost breakdown of
// the first deviation it finds, and (3) quantifies the decayed-lookahead
// fix on deviating instances.
#include <cstdio>
#include <optional>

#include "arch/architectures.hpp"
#include "bench_common.hpp"
#include "core/qubikos.hpp"
#include "eval/case_study.hpp"
#include "util/table.hpp"

int main() {
    using namespace qubikos;
    bench::print_header("LightSABRE case study: routing from the optimal initial mapping",
                        "Sec. IV-C / Fig. 5");

    int seeds = 40;
    switch (bench::bench_scale()) {
        case bench::scale::smoke: seeds = 8; break;
        case bench::scale::standard: seeds = 40; break;
        case bench::scale::paper: seeds = 200; break;
    }

    csv::writer raw({"arch", "seed", "optimal", "sabre_swaps", "deviated"});
    ascii_table table({"arch", "instances", "optimal routings", "deviations", "costly deviations"});
    std::optional<eval::deviation_report> showcase;
    std::string showcase_arch;

    for (const auto& device : {arch::aspen4(), arch::rochester53(), arch::sycamore54()}) {
        int optimal_routings = 0;
        int deviations = 0;
        int costly = 0;
        for (int seed = 1; seed <= seeds; ++seed) {
            core::generator_options options;
            options.num_swaps = 10;
            options.total_two_qubit_gates = device.num_qubits() > 20 ? 600 : 300;
            options.seed = static_cast<std::uint64_t>(seed);
            const auto instance = core::generate(device, options);

            router::sabre_options sabre;  // Qiskit constants
            sabre.seed = 1;
            const auto analysis = eval::analyze_lightsabre(instance, device.coupling, sabre);
            const bool deviated = analysis.deviation.has_value();
            const bool was_costly =
                analysis.sabre_swaps > static_cast<std::size_t>(analysis.optimal_swaps);
            if (analysis.sabre_swaps == static_cast<std::size_t>(analysis.optimal_swaps)) {
                ++optimal_routings;
            }
            if (deviated) ++deviations;
            if (was_costly) ++costly;
            if (!showcase.has_value() && deviated &&
                analysis.deviation->optimal_score.has_value()) {
                showcase = analysis.deviation;
                showcase_arch = device.name;
            }
            raw.add(device.name, seed, analysis.optimal_swaps, analysis.sabre_swaps,
                    deviated ? 1 : 0);
        }
        table.add(device.name, seeds, optimal_routings, deviations, costly);
    }
    std::printf("%s\n", table.str().c_str());

    if (showcase.has_value()) {
        std::printf("showcase deviation (%s): decision #%zu\n", showcase_arch.c_str(),
                    showcase->decision_index);
        std::printf("  chosen  SWAP(p%d,p%d): basic=%.4f lookahead=%.4f decay=%.4f "
                    "total=%.4f\n",
                    showcase->chosen.candidate.a, showcase->chosen.candidate.b,
                    showcase->chosen.basic, showcase->chosen.lookahead,
                    showcase->chosen.decay_factor, showcase->chosen.total());
        std::printf("  optimal SWAP(p%d,p%d): basic=%.4f lookahead=%.4f decay=%.4f "
                    "total=%.4f\n\n",
                    showcase->optimal_score->candidate.a, showcase->optimal_score->candidate.b,
                    showcase->optimal_score->basic, showcase->optimal_score->lookahead,
                    showcase->optimal_score->decay_factor, showcase->optimal_score->total());
    }

    std::printf("paper result:    SABRE can pick a suboptimal swap even from the optimal\n"
                "                 initial mapping, and the lookahead term is the culprit;\n"
                "                 QUBIKOS instances remain non-trivial for standalone routers.\n");
    std::printf("measured result: see deviation counts above — routing from the optimal\n"
                "                 mapping is near-perfect, so the Fig. 4 gaps are dominated\n"
                "                 by initial-mapping quality, with rare routing deviations\n"
                "                 of the Fig. 5 kind.\n");
    bench::save_results(raw, "case_study");
    return 0;
}
