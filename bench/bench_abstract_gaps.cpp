// Abstract / Sec. IV-B aggregate optimality gaps.
//
// The paper's headline numbers aggregate each tool's swap ratio across
// all four architectures: LightSABRE 63x, ML-QLS 117x, QMAP 250x,
// t|ket> 330x. This bench runs a reduced cross-architecture sweep and
// prints the measured per-tool aggregates alongside the paper's. What
// must be preserved is the ordering (sabre-family < qmap/tket) and the
// orders of magnitude, not the exact constants (they depend on trial
// counts and circuit draws).
#include <cstdio>
#include <map>

#include "arch/architectures.hpp"
#include "bench_common.hpp"
#include "core/suite.hpp"
#include "eval/harness.hpp"
#include "tools/context.hpp"
#include "util/table.hpp"

int main() {
    using namespace qubikos;
    bench::print_header("Aggregate optimality gaps across all four architectures",
                        "Abstract / Sec. IV-B (LightSABRE 63x, ML-QLS 117x, QMAP 250x, "
                        "t|ket> 330x)");

    int per_count = 2;
    int sabre_trials = 50;
    std::vector<int> swap_counts = {5, 15};
    switch (bench::bench_scale()) {
        case bench::scale::smoke:
            per_count = 1;
            sabre_trials = 8;
            swap_counts = {5};
            break;
        case bench::scale::standard: break;
        case bench::scale::paper:
            per_count = 10;
            sabre_trials = 1000;
            swap_counts = {5, 10, 15, 20};
            break;
    }

    const std::map<std::string, std::size_t> gate_targets = {
        {"aspen4", 300}, {"sycamore54", 1500}, {"rochester53", 1500}, {"eagle127", 3000}};
    const std::map<std::string, const char*> paper = {{"lightsabre", "63x"},
                                                      {"mlqls", "117x"},
                                                      {"qmap", "250x"},
                                                      {"tket", "330x"}};

    eval::toolbox_options toolbox;
    toolbox.sabre.trials = sabre_trials;
    const auto tools = eval::paper_toolbox(toolbox);

    std::map<std::string, double> gap_sum;
    std::map<std::string, int> gap_count;
    csv::writer raw({"arch", "tool", "designed_n", "swap_ratio"});

    ascii_table per_arch({"arch", "tool", "mean gap"});
    for (const auto& device : arch::paper_platforms()) {
        // Eagle at standard scale: one circuit per count, fewer trials.
        core::suite_spec spec;
        spec.arch_name = device.name;
        spec.swap_counts = swap_counts;
        spec.circuits_per_count =
            (bench::bench_scale() == bench::scale::standard && device.num_qubits() > 100)
                ? 1
                : per_count;
        spec.total_two_qubit_gates = gate_targets.at(device.name);
        spec.base_seed = 424242;
        const core::suite s = core::generate_suite(device, spec);

        eval::toolbox_options tb = toolbox;
        if (device.num_qubits() > 100 && bench::bench_scale() != bench::scale::paper) {
            tb.sabre.trials = 24;
        }
        // Shared per-device routing context: the 4-tool lineup reuses one
        // distance matrix across every circuit of the sweep.
        const auto result = eval::evaluate_suite(
            s, device,
            eval::paper_toolbox(tb, tools::make_routing_context(device.coupling)));
        if (result.invalid_runs != 0) {
            std::printf("ERROR: %d invalid routed circuits on %s\n", result.invalid_runs,
                        device.name.c_str());
            return 1;
        }
        for (const auto& tool : tools) {
            const double gap = eval::mean_ratio(result.cells, tool.name);
            per_arch.add(device.name, tool.name, ascii_table::num(gap, 2) + "x");
            gap_sum[tool.name] += gap;
            gap_count[tool.name] += 1;
        }
        for (const auto& cell : result.cells) {
            raw.add(device.name, cell.tool, cell.designed_swaps, cell.swap_ratio);
        }
    }
    std::printf("%s\n", per_arch.str().c_str());

    ascii_table summary({"tool", "measured aggregate gap", "paper aggregate gap"});
    for (const auto& tool : tools) {
        summary.add(tool.name,
                    ascii_table::num(gap_sum[tool.name] / gap_count[tool.name], 2) + "x",
                    paper.at(tool.name));
    }
    std::printf("%s\n", summary.str().c_str());
    bench::save_results(raw, "abstract_gaps");
    return 0;
}
