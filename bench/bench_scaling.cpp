// Scaling series: optimality gap vs architecture size (extension).
//
// Sec. IV-B observes the gap growing 1x -> 233.97x across its four
// devices. Because QUBIKOS works on any coupling graph, we can chart the
// trend as a dense series: square grids from 9 to 64 qubits, fixed
// designed swap count, LightSABRE at a fixed trial budget. The paper's
// connectivity claim is also probed by pairing each grid with a
// heavy-hex device of similar size (sparser; expected larger gap).
#include <chrono>
#include <cstdio>

#include "arch/architectures.hpp"
#include "bench_common.hpp"
#include "circuit/circuit.hpp"
#include "circuit/mapping.hpp"
#include "core/qubikos.hpp"
#include "graph/distance.hpp"
#include "router/sabre.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
    using namespace qubikos;
    bench::print_header("Scaling: LightSABRE optimality gap vs device size",
                        "extension of Sec. IV-B (gap grows with architecture size)");

    int per_size = 3;
    int trials = 32;
    switch (bench::bench_scale()) {
        case bench::scale::smoke:
            per_size = 1;
            trials = 8;
            break;
        case bench::scale::standard: break;
        case bench::scale::paper:
            per_size = 10;
            trials = 200;
            break;
    }
    constexpr int kSwaps = 8;

    ascii_table table({"device", "qubits", "couplers", "gap (mean over seeds)"});
    csv::writer raw({"device", "qubits", "seed", "swaps", "ratio"});

    std::vector<arch::architecture> devices;
    for (const int side : {3, 4, 5, 6, 7, 8}) devices.push_back(arch::grid(side, side));
    devices.push_back(arch::heavy_hex(3, 9));   // ~31 qubits, sparse
    devices.push_back(arch::heavy_hex(5, 11));  // ~65 qubits, sparse

    for (const auto& device : devices) {
        // One distance provider per device, shared across every seed —
        // the per-seed rebuild used to dominate the small grids.
        const distance_provider dist(device.coupling);
        double ratio_sum = 0.0;
        for (int seed = 1; seed <= per_size; ++seed) {
            core::generator_options options;
            options.num_swaps = kSwaps;
            options.total_two_qubit_gates =
                static_cast<std::size_t>(device.num_qubits()) * 12;
            options.seed = static_cast<std::uint64_t>(seed) * 101;
            const auto instance = core::generate(device, options);

            router::sabre_options sabre;
            sabre.trials = trials;
            const auto routed =
                router::route_sabre(instance.logical, device.coupling, dist, sabre);
            const auto report =
                validate_routed(instance.logical, routed, device.coupling);
            if (!report.valid) {
                std::printf("ERROR: invalid routing on %s\n", device.name.c_str());
                return 1;
            }
            const double ratio = static_cast<double>(report.swap_count) / kSwaps;
            ratio_sum += ratio;
            raw.add(device.name, device.num_qubits(), seed, report.swap_count, ratio);
        }
        table.add(device.name, device.num_qubits(), device.num_couplers(),
                  ascii_table::num(ratio_sum / per_size, 2) + "x");
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("paper claim:     the optimality gap grows with device size, and sparse\n"
                "                 (heavy-hex) connectivity amplifies it at equal size.\n");
    std::printf("measured:        the grid series should rise monotonically (up to draw\n"
                "                 noise), with each heavy-hex point above the similarly\n"
                "                 sized grid point.\n");
    bench::save_results(raw, "scaling");

    // Large-device sweep: a fixed 64-qubit workload routed on a growing
    // heavy-hex family through the automatic distance policy. Above the
    // lazy threshold the provider serves on-demand BFS rows, so the cost
    // of "a small circuit on a huge device" tracks the circuit, not the
    // device — the row counts below show how little of O(V^2) is touched.
    std::printf("\nLarge-device sweep: 64-qubit circuit, lazy distance provider\n");
    std::vector<std::pair<int, int>> hex_sizes = {{8, 14}, {16, 28}, {24, 42}, {32, 56}};
    if (bench::bench_scale() == bench::scale::smoke) {
        hex_sizes = {{16, 28}, {32, 56}};
    }
    constexpr int kSweepQubits = 64;
    rng sweep_rng(7);
    circuit sweep_circuit(kSweepQubits);
    for (int i = 0; i < 200; ++i) {
        const int a = static_cast<int>(sweep_rng.below(kSweepQubits));
        int b = static_cast<int>(sweep_rng.below(kSweepQubits - 1));
        if (b >= a) ++b;
        sweep_circuit.append(gate::cx(a, b));
    }

    ascii_table sweep_table({"device", "qubits", "mode", "rows built", "swaps", "ms"});
    csv::writer sweep_raw({"device", "qubits", "mode", "rows_built", "swaps", "seconds"});
    for (const auto& [rows, row_len] : hex_sizes) {
        const auto device = arch::heavy_hex(rows, row_len);
        const distance_provider dist(device.coupling);
        const mapping initial = mapping::identity(kSweepQubits, device.num_qubits());
        const auto start = std::chrono::steady_clock::now();
        const auto routed = router::route_sabre_with_initial(sweep_circuit, device.coupling,
                                                             dist, initial);
        const double seconds = std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() - start)
                                   .count();
        const auto report = validate_routed(sweep_circuit, routed, device.coupling);
        if (!report.valid) {
            std::printf("ERROR: invalid routing on %s\n", device.name.c_str());
            return 1;
        }
        const char* mode = dist.is_lazy() ? "lazy" : "dense";
        const std::string rows_built =
            dist.is_lazy() ? std::to_string(dist.rows_built()) + "/" +
                                 std::to_string(device.num_qubits())
                           : "all (dense)";
        sweep_table.add(device.name, device.num_qubits(), mode, rows_built,
                        report.swap_count, ascii_table::num(seconds * 1e3, 1));
        sweep_raw.add(device.name, device.num_qubits(), mode,
                      dist.is_lazy() ? dist.rows_built()
                                     : static_cast<std::size_t>(device.num_qubits()),
                      report.swap_count, seconds);
    }
    std::printf("%s\n", sweep_table.str().c_str());
    bench::save_results(sweep_raw, "scaling_lazy");
    return 0;
}
