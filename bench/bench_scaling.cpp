// Scaling series: optimality gap vs architecture size (extension).
//
// Sec. IV-B observes the gap growing 1x -> 233.97x across its four
// devices. Because QUBIKOS works on any coupling graph, we can chart the
// trend as a dense series: square grids from 9 to 64 qubits, fixed
// designed swap count, LightSABRE at a fixed trial budget. The paper's
// connectivity claim is also probed by pairing each grid with a
// heavy-hex device of similar size (sparser; expected larger gap).
#include <cstdio>

#include "arch/architectures.hpp"
#include "bench_common.hpp"
#include "core/qubikos.hpp"
#include "router/sabre.hpp"
#include "util/table.hpp"

int main() {
    using namespace qubikos;
    bench::print_header("Scaling: LightSABRE optimality gap vs device size",
                        "extension of Sec. IV-B (gap grows with architecture size)");

    int per_size = 3;
    int trials = 32;
    switch (bench::bench_scale()) {
        case bench::scale::smoke:
            per_size = 1;
            trials = 8;
            break;
        case bench::scale::standard: break;
        case bench::scale::paper:
            per_size = 10;
            trials = 200;
            break;
    }
    constexpr int kSwaps = 8;

    ascii_table table({"device", "qubits", "couplers", "gap (mean over seeds)"});
    csv::writer raw({"device", "qubits", "seed", "swaps", "ratio"});

    std::vector<arch::architecture> devices;
    for (const int side : {3, 4, 5, 6, 7, 8}) devices.push_back(arch::grid(side, side));
    devices.push_back(arch::heavy_hex(3, 9));   // ~31 qubits, sparse
    devices.push_back(arch::heavy_hex(5, 11));  // ~65 qubits, sparse

    for (const auto& device : devices) {
        double ratio_sum = 0.0;
        for (int seed = 1; seed <= per_size; ++seed) {
            core::generator_options options;
            options.num_swaps = kSwaps;
            options.total_two_qubit_gates =
                static_cast<std::size_t>(device.num_qubits()) * 12;
            options.seed = static_cast<std::uint64_t>(seed) * 101;
            const auto instance = core::generate(device, options);

            router::sabre_options sabre;
            sabre.trials = trials;
            const auto routed =
                router::route_sabre(instance.logical, device.coupling, sabre);
            const auto report =
                validate_routed(instance.logical, routed, device.coupling);
            if (!report.valid) {
                std::printf("ERROR: invalid routing on %s\n", device.name.c_str());
                return 1;
            }
            const double ratio = static_cast<double>(report.swap_count) / kSwaps;
            ratio_sum += ratio;
            raw.add(device.name, device.num_qubits(), seed, report.swap_count, ratio);
        }
        table.add(device.name, device.num_qubits(), device.num_couplers(),
                  ascii_table::num(ratio_sum / per_size, 2) + "x");
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("paper claim:     the optimality gap grows with device size, and sparse\n"
                "                 (heavy-hex) connectivity amplifies it at equal size.\n");
    std::printf("measured:        the grid series should rise monotonically (up to draw\n"
                "                 noise), with each heavy-hex point above the similarly\n"
                "                 sized grid point.\n");
    bench::save_results(raw, "scaling");
    return 0;
}
