// Sec. IV-A optimality study.
//
// Paper setup: 400 circuits per architecture (100 per SWAP count 1..4) on
// Rigetti Aspen-4 and a 3x3 grid, each limited to 30 two-qubit gates;
// OLSQ2 (exact SAT-based QLS) confirmed every circuit requires exactly
// its designed SWAP count, with no deviations.
//
// This bench regenerates that experiment with our generator and our exact
// solver: each instance must be SAT at n and UNSAT at n-1. The expected
// result, as in the paper, is 100% confirmation.
#include <cstdio>

#include "arch/architectures.hpp"
#include "bench_common.hpp"
#include "core/qubikos.hpp"
#include "core/verifier.hpp"
#include "exact/olsq.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

int main() {
    using namespace qubikos;
    bench::print_header("Optimality study: exact confirmation of designed SWAP counts",
                        "Sec. IV-A (100%% confirmation over 400 circuits/arch in the paper)");

    int per_count = 25;
    switch (bench::bench_scale()) {
        case bench::scale::smoke: per_count = 3; break;
        case bench::scale::standard: per_count = 25; break;
        case bench::scale::paper: per_count = 100; break;
    }
    std::printf("config: %d circuits per (arch, n), n in 1..4, <=30 two-qubit gates\n\n",
                per_count);

    ascii_table table({"arch", "designed n", "circuits", "SAT at n", "UNSAT at n-1",
                       "structure ok", "avg solve s"});
    csv::writer raw({"arch", "designed_n", "index", "sat_at_n", "unsat_below", "seconds"});

    bool all_confirmed = true;
    for (const auto& device : {arch::aspen4(), arch::grid(3, 3)}) {
        for (int swaps = 1; swaps <= 4; ++swaps) {
            int sat_at_n = 0;
            int unsat_below = 0;
            int structure_ok = 0;
            double total_seconds = 0.0;
            for (int i = 0; i < per_count; ++i) {
                core::generator_options options;
                options.num_swaps = swaps;
                options.total_two_qubit_gates = 30;
                options.seed = static_cast<std::uint64_t>(swaps) * 100000 + i;
                const auto instance = core::generate(device, options);

                if (core::verify_structure(instance, device).valid) ++structure_ok;

                stopwatch timer;
                const auto feasible_at_n =
                    exact::check_swap_count(instance.logical, device.coupling, swaps);
                const auto infeasible_below =
                    swaps == 0 ? exact::feasibility::infeasible
                               : exact::check_swap_count(instance.logical, device.coupling,
                                                         swaps - 1);
                const double seconds = timer.seconds();
                total_seconds += seconds;

                const bool sat = feasible_at_n == exact::feasibility::feasible;
                const bool unsat = infeasible_below == exact::feasibility::infeasible;
                if (sat) ++sat_at_n;
                if (unsat) ++unsat_below;
                raw.add(device.name, swaps, i, sat ? 1 : 0, unsat ? 1 : 0, seconds);
            }
            all_confirmed = all_confirmed && sat_at_n == per_count &&
                            unsat_below == per_count && structure_ok == per_count;
            table.add(device.name, swaps, per_count,
                      std::to_string(sat_at_n) + "/" + std::to_string(per_count),
                      std::to_string(unsat_below) + "/" + std::to_string(per_count),
                      std::to_string(structure_ok) + "/" + std::to_string(per_count),
                      ascii_table::num(total_seconds / per_count, 3));
        }
    }

    std::printf("%s\n", table.str().c_str());
    std::printf("paper result:    every circuit confirmed at exactly its designed count\n");
    std::printf("measured result: %s\n",
                all_confirmed ? "every circuit confirmed at exactly its designed count"
                              : "MISMATCH — see table");
    bench::save_results(raw, "optimality_study");
    return all_confirmed ? 0 : 1;
}
