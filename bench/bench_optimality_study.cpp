// Sec. IV-A optimality study.
//
// Paper setup: 400 circuits per architecture (100 per SWAP count 1..4) on
// Rigetti Aspen-4 and a 3x3 grid, each limited to 30 two-qubit gates;
// OLSQ2 (exact SAT-based QLS) confirmed every circuit requires exactly
// its designed SWAP count, with no deviations.
//
// The bench runs that experiment as a certify-mode campaign: each
// instance must be SAT at n and UNSAT at n-1 (plus pass the structural
// verifier), results stream into a persistent store under
// bench_results/campaign/, and an interrupted paper-scale run (800 exact
// solves) resumes instead of restarting. Instances solve in parallel on
// QUBIKOS_THREADS; solve times are per-record thread-CPU seconds. The
// expected result, as in the paper, is 100% confirmation.
#include <cstdio>

#include "bench_common.hpp"
#include "campaign/merge.hpp"
#include "campaign/plan.hpp"
#include "campaign/report.hpp"
#include "campaign/worker.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

int main() {
    using namespace qubikos;
    bench::print_header("Optimality study: exact confirmation of designed SWAP counts",
                        "Sec. IV-A (100%% confirmation over 400 circuits/arch in the paper)");

    int per_count = 25;
    switch (bench::bench_scale()) {
        case bench::scale::smoke: per_count = 3; break;
        case bench::scale::standard: per_count = 25; break;
        case bench::scale::paper: per_count = 100; break;
    }

    campaign::campaign_spec spec;
    spec.name = "optimality_study";
    spec.mode = campaign::campaign_mode::certify;
    for (const char* arch_name : {"aspen4", "grid3x3"}) {
        core::suite_spec suite;
        suite.arch_name = arch_name;
        suite.swap_counts = {1, 2, 3, 4};
        suite.circuits_per_count = per_count;
        suite.total_two_qubit_gates = 30;
        suite.base_seed = 20250613;
        spec.suites.push_back(suite);
    }

    const auto plan = campaign::expand_plan(spec);
    // QUBIKOS_CAMPAIGN_STORE_DIR overrides the store root for fleet runs
    // collected with `campaign pull`.
    const std::string store_dir =
        bench::campaign_store_dir(spec.name, campaign::spec_fingerprint(spec));
    std::printf("config: %d circuits per (arch, n), n in 1..4, <=30 two-qubit gates\n", per_count);
    std::printf("campaign store: %s (%zu units, %zu threads)\n\n", store_dir.c_str(),
                plan.units.size(), thread_pool::resolve_threads(0));

    campaign::worker_options worker;
    worker.threads = 0;
    const auto shard = campaign::run_campaign_shard(plan, store_dir, worker);
    if (shard.skipped != 0) {
        std::printf("resumed: %zu/%zu units already in the store\n\n", shard.skipped,
                    shard.assigned);
    }
    const auto merged = campaign::merge_stores(plan, {store_dir});
    if (!merged.complete()) {
        std::printf("ERROR: %zu units missing from the store\n", merged.missing.size());
        return 1;
    }

    // The deterministic confirmation tables, straight from the campaign
    // report; timing is summarized separately below (CPU seconds are
    // excluded from reports so shard merges stay byte-comparable).
    std::printf("%s", campaign::render_report(plan, merged).c_str());

    csv::writer raw({"arch", "designed_n", "instance", "sat_at_n", "unsat_below", "structure_ok",
                     "cpu_seconds"});
    double total_seconds = 0.0;
    for (std::size_t i = 0; i < merged.runs.size(); ++i) {
        const auto& run = merged.runs[i];
        const auto& unit = plan.units[i];
        raw.add(spec.suites[unit.suite_index].arch_name, run.record.designed_swaps,
                unit.instance_index, run.sat_at_n, run.unsat_below, run.structure_ok,
                run.record.seconds);
        total_seconds += run.record.seconds;
    }
    std::printf("avg exact-solve time: %.3f cpu-s over %zu instances\n",
                merged.runs.empty() ? 0.0 : total_seconds / merged.runs.size(),
                merged.runs.size());

    const bool all_confirmed = merged.invalid_runs == 0;
    std::printf("paper result:    every circuit confirmed at exactly its designed count\n");
    std::printf("measured result: %s\n",
                all_confirmed ? "every circuit confirmed at exactly its designed count"
                              : "MISMATCH — see table");
    bench::save_results(raw, "optimality_study");
    return all_confirmed ? 0 : 1;
}
