// Benchmark-family contrast (Sec. I / Sec. III-C of the paper).
//
// Why does QUBIKOS exist? Because the prior families cannot measure an
// optimality gap:
//   - QUEKO circuits are solvable with 0 swaps by plain subgraph
//     isomorphism (VF2) — they don't exercise routing at all;
//   - QUEKNO circuits come with a construction cost that is only an
//     upper bound — measured "gaps" can be negative w.r.t. the truth;
//   - QUBIKOS circuits carry a certified optimum: the exact solver
//     always lands exactly on the designed count, and VF2 provably
//     cannot solve them.
// This bench demonstrates all three claims mechanically on a small
// architecture where the exact solver is fast.
//
// The study runs as a *campaign* over three family suites (queko /
// quekno / qubikos) in certify mode with the VF2 probe enabled: every
// instance streams into a persistent store under
// bench_results/campaign/, so an interrupted paper-scale run resumes
// from the last fsync'd batch, and a unit whose generator or solver
// throws quarantines instead of killing the whole study.
#include <cstdio>

#include "arch/architectures.hpp"
#include "bench_common.hpp"
#include "campaign/merge.hpp"
#include "campaign/plan.hpp"
#include "campaign/spec.hpp"
#include "campaign/worker.hpp"
#include "util/table.hpp"

int main() {
    using namespace qubikos;
    bench::print_header("Benchmark-family contrast: QUEKO vs QUEKNO vs QUBIKOS",
                        "Sec. I motivation + Sec. III-C (why VF2 cannot solve QUBIKOS)");

    int per_family = 15;
    switch (bench::bench_scale()) {
        case bench::scale::smoke: per_family = 4; break;
        case bench::scale::standard: per_family = 15; break;
        case bench::scale::paper: per_family = 50; break;
    }

    campaign::campaign_spec spec;
    spec.name = "benchmark_contrast";
    spec.mode = campaign::campaign_mode::certify;
    spec.vf2_check = true;

    // Seeds 1..per_family per family (base_seed 1 + instance index), the
    // same instances the pre-campaign one-shot version of this bench ran.
    campaign::campaign_suite queko;
    queko.arch_name = "grid3x3";
    queko.family = campaign::benchmark_family::queko;
    queko.swap_counts = {8};  // depth
    queko.circuits_per_count = per_family;
    queko.queko_density = 0.6;
    queko.base_seed = 1;
    spec.suites.push_back(queko);

    campaign::campaign_suite quekno;
    quekno.arch_name = "grid3x3";
    quekno.family = campaign::benchmark_family::quekno;
    quekno.swap_counts = {2};  // construction transitions = claimed bound
    quekno.circuits_per_count = per_family;
    quekno.quekno_gates_per_epoch = 5;
    quekno.base_seed = 1;
    spec.suites.push_back(quekno);

    campaign::campaign_suite qubikos_suite;
    qubikos_suite.arch_name = "grid3x3";
    qubikos_suite.swap_counts = {2};  // designed optimal count
    qubikos_suite.circuits_per_count = per_family;
    qubikos_suite.total_two_qubit_gates = 25;
    qubikos_suite.base_seed = 1;
    spec.suites.push_back(qubikos_suite);

    const auto plan = campaign::expand_plan(spec);
    // One store per configuration (QUBIKOS_CAMPAIGN_STORE_DIR overrides
    // the root for fleet runs collected with `campaign pull`).
    const std::string store_dir =
        bench::campaign_store_dir(spec.name, campaign::spec_fingerprint(spec));

    campaign::worker_options worker;
    worker.threads = 0;  // suite-level parallelism
    std::printf("config: %d instances per family on grid3x3 (campaign store: %s, %zu units)\n\n",
                per_family, store_dir.c_str(), plan.units.size());

    const auto shard = campaign::run_campaign_shard(plan, store_dir, worker);
    if (shard.skipped != 0) {
        std::printf("resumed: %zu/%zu units already in the store\n\n", shard.skipped,
                    shard.assigned);
    }
    if (shard.quarantined != 0) {
        std::printf("ERROR: %zu units quarantined (run with --retry-quarantined via the CLI, "
                    "or inspect the store)\n",
                    shard.quarantined);
        return 1;
    }
    const auto merged = campaign::merge_stores(plan, {store_dir});
    if (!merged.complete()) {
        std::printf("ERROR: %zu units missing from the store\n", merged.missing.size());
        return 1;
    }

    // Fold the merged certify runs back into the contrast counters.
    csv::writer raw({"family", "seed", "claimed", "exact_optimal", "vf2_solvable"});
    int queko_vf2 = 0;
    int queko_exact_zero = 0;
    int quekno_loose = 0;
    int quekno_tight = 0;
    int quekno_unsolved = 0;
    int qubikos_exact_match = 0;
    int qubikos_vf2_defeated = 0;
    for (std::size_t i = 0; i < merged.runs.size(); ++i) {
        const auto& run = merged.runs[i];
        const auto& unit = plan.units[i];
        const long long seed = static_cast<long long>(unit.instance_seed);
        const bool solved = run.sat_at_n == 1;
        const int exact_optimal = solved ? static_cast<int>(run.record.measured_swaps) : -1;
        switch (unit.family) {
            case campaign::benchmark_family::queko:
                if (run.vf2_solvable == 1) ++queko_vf2;
                if (solved) ++queko_exact_zero;  // SAT at 0 = exact optimum is 0
                raw.add("queko", seed, 0, exact_optimal, run.vf2_solvable == 1 ? 1 : 0);
                break;
            case campaign::benchmark_family::quekno:
                // Count every instance: an unsolved one is *dropped* from
                // the loose/tight split, but loudly, never silently.
                if (!solved) {
                    ++quekno_unsolved;
                } else if (exact_optimal < run.record.designed_swaps) {
                    ++quekno_loose;
                } else {
                    ++quekno_tight;
                }
                raw.add("quekno", seed, run.record.designed_swaps, exact_optimal, 0);
                break;
            case campaign::benchmark_family::qubikos:
                // Confirmed at exactly the designed count (SAT at n and
                // UNSAT at n-1) = the solver matches the claim.
                if (run.sat_at_n == 1 && run.unsat_below == 1) ++qubikos_exact_match;
                if (run.vf2_solvable == 0) ++qubikos_vf2_defeated;
                raw.add("qubikos", seed, run.record.designed_swaps, exact_optimal, 0);
                break;
        }
    }

    ascii_table table({"family", "claim", "property measured", "result"});
    table.add("QUEKO", "0 swaps, depth-optimal", "VF2 finds a 0-swap mapping",
              std::to_string(queko_vf2) + "/" + std::to_string(per_family));
    table.add("QUEKO", "", "exact optimum is 0",
              std::to_string(queko_exact_zero) + "/" + std::to_string(per_family));
    table.add("QUEKNO", "near-optimal cost", "construction cost NOT optimal (loose)",
              std::to_string(quekno_loose) + "/" + std::to_string(quekno_loose + quekno_tight));
    table.add("QUBIKOS", "certified optimal count", "exact solver matches exactly",
              std::to_string(qubikos_exact_match) + "/" + std::to_string(per_family));
    table.add("QUBIKOS", "", "VF2 cannot solve (non-isomorphic)",
              std::to_string(qubikos_vf2_defeated) + "/" + std::to_string(per_family));
    std::printf("%s\n", table.str().c_str());

    if (quekno_loose + quekno_tight == 0) {
        std::fprintf(stderr,
                     "ERROR: all %d QUEKNO instances were unsolved — the loose-ratio "
                     "denominator is zero, so the contrast claim cannot be evaluated\n",
                     quekno_unsolved);
        return 1;
    }
    if (quekno_unsolved != 0) {
        std::printf("WARNING: %d/%d QUEKNO instances unsolved at the construction bound "
                    "(dropped from the loose/tight split above)\n",
                    quekno_unsolved, per_family);
    }

    std::printf("paper claims:    QUEKO is VF2-solvable; QUEKNO costs are unproven upper\n"
                "                 bounds; QUBIKOS counts are exact and VF2-proof.\n");
    const bool ok = queko_vf2 == per_family && queko_exact_zero == per_family &&
                    qubikos_exact_match == per_family && qubikos_vf2_defeated == per_family;
    std::printf("measured result: %s (QUEKNO loose on %d instances)\n",
                ok ? "all three claims hold" : "MISMATCH — see table", quekno_loose);
    bench::save_results(raw, "benchmark_contrast");
    return ok ? 0 : 1;
}
