// Benchmark-family contrast (Sec. I / Sec. III-C of the paper).
//
// Why does QUBIKOS exist? Because the prior families cannot measure an
// optimality gap:
//   - QUEKO circuits are solvable with 0 swaps by plain subgraph
//     isomorphism (VF2) — they don't exercise routing at all;
//   - QUEKNO circuits come with a construction cost that is only an
//     upper bound — measured "gaps" can be negative w.r.t. the truth;
//   - QUBIKOS circuits carry a certified optimum: the exact solver
//     always lands exactly on the designed count, and VF2 provably
//     cannot solve them.
// This bench demonstrates all three claims mechanically on a small
// architecture where the exact solver is fast.
#include <cstdio>

#include "arch/architectures.hpp"
#include "bench_common.hpp"
#include "circuit/interaction.hpp"
#include "core/qubikos.hpp"
#include "core/queko.hpp"
#include "core/quekno.hpp"
#include "exact/olsq.hpp"
#include "graph/vf2.hpp"
#include "util/table.hpp"

int main() {
    using namespace qubikos;
    bench::print_header("Benchmark-family contrast: QUEKO vs QUEKNO vs QUBIKOS",
                        "Sec. I motivation + Sec. III-C (why VF2 cannot solve QUBIKOS)");

    int per_family = 15;
    switch (bench::bench_scale()) {
        case bench::scale::smoke: per_family = 4; break;
        case bench::scale::standard: per_family = 15; break;
        case bench::scale::paper: per_family = 50; break;
    }

    const auto device = arch::grid(3, 3);
    csv::writer raw({"family", "seed", "claimed", "exact_optimal", "vf2_solvable"});

    // QUEKO: claimed 0 swaps, VF2-solvable.
    int queko_vf2 = 0;
    int queko_exact_zero = 0;
    for (int seed = 1; seed <= per_family; ++seed) {
        const auto instance = core::generate_queko(
            device, {.depth = 8, .density = 0.6, .seed = static_cast<std::uint64_t>(seed)});
        const graph gi = interaction_graph(instance.logical);
        const bool vf2_ok = is_subgraph_monomorphic(gi, device.coupling);
        if (vf2_ok) ++queko_vf2;
        const auto exact = exact::solve_optimal(instance.logical, device.coupling, {.max_swaps = 2});
        const bool zero = exact.solved && exact.optimal_swaps == 0;
        if (zero) ++queko_exact_zero;
        raw.add("queko", seed, 0, exact.optimal_swaps, vf2_ok ? 1 : 0);
    }

    // QUEKNO: claimed = construction swaps; exact can be strictly lower.
    int quekno_loose = 0;
    int quekno_tight = 0;
    for (int seed = 1; seed <= per_family; ++seed) {
        const auto instance = core::generate_quekno(
            device,
            {.num_transitions = 2, .gates_per_epoch = 5, .seed = static_cast<std::uint64_t>(seed)});
        const auto exact =
            exact::solve_optimal(instance.logical, device.coupling, {.max_swaps = 4});
        if (!exact.solved) continue;
        if (exact.optimal_swaps < instance.construction_swaps) {
            ++quekno_loose;
        } else {
            ++quekno_tight;
        }
        raw.add("quekno", seed, instance.construction_swaps, exact.optimal_swaps, 0);
    }

    // QUBIKOS: claimed = certified optimum; VF2 must fail on every section.
    int qubikos_exact_match = 0;
    int qubikos_vf2_defeated = 0;
    for (int seed = 1; seed <= per_family; ++seed) {
        core::generator_options options;
        options.num_swaps = 2;
        options.total_two_qubit_gates = 25;
        options.seed = static_cast<std::uint64_t>(seed);
        const auto instance = core::generate(device, options);
        const auto exact =
            exact::solve_optimal(instance.logical, device.coupling, {.max_swaps = 4});
        if (exact.solved && exact.optimal_swaps == instance.optimal_swaps) ++qubikos_exact_match;
        const graph gi = interaction_graph(instance.logical);
        if (!is_subgraph_monomorphic(gi, device.coupling)) ++qubikos_vf2_defeated;
        raw.add("qubikos", seed, instance.optimal_swaps,
                exact.solved ? exact.optimal_swaps : -1, 0);
    }

    ascii_table table({"family", "claim", "property measured", "result"});
    table.add("QUEKO", "0 swaps, depth-optimal", "VF2 finds a 0-swap mapping",
              std::to_string(queko_vf2) + "/" + std::to_string(per_family));
    table.add("QUEKO", "", "exact optimum is 0",
              std::to_string(queko_exact_zero) + "/" + std::to_string(per_family));
    table.add("QUEKNO", "near-optimal cost", "construction cost NOT optimal (loose)",
              std::to_string(quekno_loose) + "/" + std::to_string(quekno_loose + quekno_tight));
    table.add("QUBIKOS", "certified optimal count", "exact solver matches exactly",
              std::to_string(qubikos_exact_match) + "/" + std::to_string(per_family));
    table.add("QUBIKOS", "", "VF2 cannot solve (non-isomorphic)",
              std::to_string(qubikos_vf2_defeated) + "/" + std::to_string(per_family));
    std::printf("%s\n", table.str().c_str());

    std::printf("paper claims:    QUEKO is VF2-solvable; QUEKNO costs are unproven upper\n"
                "                 bounds; QUBIKOS counts are exact and VF2-proof.\n");
    const bool ok = queko_vf2 == per_family && queko_exact_zero == per_family &&
                    qubikos_exact_match == per_family && qubikos_vf2_defeated == per_family;
    std::printf("measured result: %s (QUEKNO loose on %d instances)\n",
                ok ? "all three claims hold" : "MISMATCH — see table", quekno_loose);
    bench::save_results(raw, "benchmark_contrast");
    return ok ? 0 : 1;
}
