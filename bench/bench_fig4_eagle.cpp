// Fig. 4(d): tool evaluation on IBM Eagle (127 qubits, 3000 gates) — the
// architecture where every tool's gap explodes (LightSABRE 233.97x,
// tket 846x, QMAP 930x in the paper).
#include "fig4_common.hpp"

int main() {
    using namespace qubikos;
    bench::fig4_config config{
        "Fig. 4(d) — Eagle, swap counts {5,10,15,20}, 3000 two-qubit gates",
        arch::eagle127(),
        3000,
        {{"lightsabre", "233.97x"},
         {"mlqls", "worse than lightsabre"},
         {"qmap", "930x"},
         {"tket", "846x"}},
    };
    return bench::run_fig4(config);
}
