// Microbenchmarks: throughput of the core components.
//
// Two layers:
//   1. Timed sections (always built) covering the hot paths this repo
//      optimizes — distance_matrix construction, a single routing pass,
//      and the 32-trial SABRE engine at 1, 2 and hardware_concurrency
//      threads — emitted as machine-readable BENCH_micro.json so the
//      perf trajectory is tracked PR over PR.
//   2. The original google-benchmark suite (built when the library is
//      available), skipped at smoke scale to keep CI fast.
//
// Scale via QUBIKOS_BENCH_SCALE=smoke|standard|paper (see bench_common).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <new>
#include <thread>
#include <vector>

#include "arch/architectures.hpp"
#include "bench_common.hpp"
#include "circuit/dag.hpp"
#include "circuit/mapping.hpp"
#include "core/qubikos.hpp"
#include "graph/distance.hpp"
#include "obs/obs.hpp"
#include "router/common.hpp"
#include "router/sabre.hpp"
#include "router/score_kernel.hpp"
#include "tools/context.hpp"
#include "tools/registry.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

#if defined(QUBIKOS_HAVE_GBENCH)
#include <benchmark/benchmark.h>

#include "circuit/interaction.hpp"
#include "core/verifier.hpp"
#include "exact/olsq.hpp"
#include "graph/vf2.hpp"
#include "router/mlqls.hpp"
#include "router/qmap.hpp"
#include "router/tket.hpp"
#endif

// --- allocation counter ------------------------------------------------------
//
// The trial_arena section proves the steady-state claim ("extra trials
// allocate nothing") by counting heap allocations, not by timing: a
// global operator new tally is immune to scheduler noise. Bench binary
// only; the library itself is untouched.

namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
    throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace qubikos;

const arch::architecture& device_by_index(int index) {
    static const auto platforms = arch::paper_platforms();
    return platforms[static_cast<std::size_t>(index)];
}

core::benchmark_instance make_instance(const arch::architecture& device, int swaps,
                                       std::size_t gates) {
    core::generator_options options;
    options.num_swaps = swaps;
    options.total_two_qubit_gates = gates;
    options.seed = 99;
    return core::generate(device, options);
}

// --- timed sections ---------------------------------------------------------

/// Best-of-`reps` wall time of fn() in seconds (min filters scheduler
/// noise better than the mean at these sub-second durations).
template <typename Fn>
double best_seconds(int reps, Fn&& fn) {
    double best = std::numeric_limits<double>::infinity();
    for (int r = 0; r < reps; ++r) {
        stopwatch timer;
        fn();
        best = std::min(best, timer.seconds());
    }
    return best;
}

json::array time_distance_matrix(int reps) {
    json::array out;
    for (int i = 0; i < 4; ++i) {
        const auto& device = device_by_index(i);
        volatile int sink = 0;
        const double seconds = best_seconds(reps, [&] {
            const distance_matrix dist(device.coupling);
            sink = dist.diameter();
        });
        (void)sink;
        std::printf("  distance_matrix  %-12s %9.1f us\n", device.name.c_str(),
                    seconds * 1e6);
        out.push_back(json::object{{"arch", device.name},
                                   {"reps", reps},
                                   {"seconds", seconds}});
    }
    return out;
}

json::value time_route_pass(int reps, std::size_t gates) {
    const auto device = arch::sycamore54();
    const auto instance = make_instance(device, 10, gates);
    const mapping initial =
        mapping::identity(instance.logical.num_qubits(), device.num_qubits());
    router::sabre_options options;
    std::size_t swaps = 0;
    const double seconds = best_seconds(reps, [&] {
        const auto routed =
            router::route_sabre_with_initial(instance.logical, device.coupling,
                                             initial, options);
        swaps = routed.swap_count();
    });
    std::printf("  route_pass       %-12s %9.1f us  (%zu gates, %zu swaps)\n",
                device.name.c_str(), seconds * 1e6, gates, swaps);
    return json::object{{"arch", device.name},
                        {"gates", gates},
                        {"reps", reps},
                        {"swaps", swaps},
                        {"seconds", seconds}};
}

json::value time_obs_overhead(int reps, std::size_t gates) {
    // Telemetry must be free on the hot path: counters batch-publish at
    // route boundaries, never per decision. This times the route_pass
    // workload with the registry enabled vs disabled; the gate script
    // enforces the recorded threshold on the ratio.
    const auto device = arch::sycamore54();
    const auto instance = make_instance(device, 10, gates);
    const mapping initial =
        mapping::identity(instance.logical.num_qubits(), device.num_qubits());
    router::sabre_options options;
    const int obs_reps = std::max(reps, 7);  // a few-% gate needs the extra noise filtering
    const bool was_enabled = obs::enabled();
    std::size_t swaps_on = 0;
    std::size_t swaps_off = 0;
    obs::set_enabled(true);
    const double seconds_enabled = best_seconds(obs_reps, [&] {
        swaps_on = router::route_sabre_with_initial(instance.logical, device.coupling,
                                                    initial, options)
                       .swap_count();
    });
    obs::set_enabled(false);
    const double seconds_disabled = best_seconds(obs_reps, [&] {
        swaps_off = router::route_sabre_with_initial(instance.logical, device.coupling,
                                                     initial, options)
                        .swap_count();
    });
    obs::set_enabled(was_enabled);
    // The absolute telemetry cost is a few counter flushes per route; the
    // vectorized score kernel shrank the route itself, so the same cost is
    // a larger fraction of a faster denominator — 5% keeps the gate about
    // as tight in absolute microseconds as the pre-kernel 3% was.
    const double threshold = 1.05;
    const double ratio =
        seconds_disabled > 0.0 ? seconds_enabled / seconds_disabled : 1.0;
    std::printf("  obs_overhead     %-12s %9.3fx (on %.1f us, off %.1f us, ceiling %.2fx)\n",
                device.name.c_str(), ratio, seconds_enabled * 1e6,
                seconds_disabled * 1e6, threshold);
    return json::object{{"arch", device.name},
                        {"gates", gates},
                        {"reps", obs_reps},
                        {"identical_swaps", swaps_on == swaps_off},
                        {"seconds_enabled", seconds_enabled},
                        {"seconds_disabled", seconds_disabled},
                        {"overhead_ratio", ratio},
                        {"threshold", threshold}};
}

json::value time_candidate_swaps(int reps, std::size_t gates) {
    // One representative decision point: the initial front layer of a
    // sycamore-sized instance under the identity mapping. The routers
    // call candidate_swaps once per emitted swap, so per-call cost is
    // the number that matters; `calls` per rep amortizes timer overhead.
    const auto device = arch::sycamore54();
    const auto instance = make_instance(device, 10, gates);
    const gate_dag dag(instance.logical);
    const router::dag_frontier frontier(dag);
    const mapping current =
        mapping::identity(instance.logical.num_qubits(), device.num_qubits());
    const int calls = 2000;
    std::vector<edge> out;  // reused across calls, as in the routers
    const double seconds = best_seconds(reps, [&] {
        for (int i = 0; i < calls; ++i) {
            router::candidate_swaps(frontier.front(), dag, device.coupling, current, out);
        }
    });
    const double per_call_us = seconds / calls * 1e6;
    std::printf("  candidate_swaps  %-12s %9.3f us/call  (front %zu gates, %zu candidates)\n",
                device.name.c_str(), per_call_us, frontier.front().size(), out.size());
    return json::object{{"arch", device.name},
                        {"front_gates", frontier.front().size()},
                        {"candidates", out.size()},
                        {"reps", reps},
                        {"calls", calls},
                        {"seconds_per_call", seconds / calls}};
}

json::value time_routing_context(int reps, bool& ok) {
    // The shared-routing-context win: small circuits on the biggest
    // device make the APSP build a visible fraction of each routing call —
    // exactly the fraction a per-device context amortizes away across a
    // (tool x instance) grid. A batch of instances per rep mirrors that
    // grid (one context, many calls) and averages out scheduler noise;
    // tket keeps the routing side of a call cheap and deterministic.
    // Both tools come from the registry; the only difference is the
    // bound context. The gate tracks seconds_shared (the registry hot
    // path); the rebuild column measures the fallback for contrast.
    const auto device = arch::eagle127();
    std::vector<core::benchmark_instance> batch;
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        core::generator_options options;
        options.num_swaps = 1;
        options.total_two_qubit_gates = 8;
        options.seed = 99 + seed;
        batch.push_back(core::generate(device, options));
    }
    const auto shared_tool =
        tools::make_tool("tket", {}, tools::make_routing_context(device.coupling));
    const auto rebuild_tool = tools::make_tool("tket");

    std::size_t swaps_shared = 0;
    std::size_t swaps_rebuild = 0;
    const auto run_batch = [&](const eval::tool& tool, std::size_t& swaps) {
        swaps = 0;
        for (const auto& instance : batch) {
            swaps += tool.run(instance.logical, device.coupling).swap_count();
        }
    };
    const double seconds_shared =
        best_seconds(reps, [&] { run_batch(shared_tool, swaps_shared); }) / batch.size();
    const double seconds_rebuild =
        best_seconds(reps, [&] { run_batch(rebuild_tool, swaps_rebuild); }) / batch.size();
    if (swaps_shared != swaps_rebuild) {
        // The shared context must be invisible in the results; a
        // divergence is a correctness bug, so the bench fails, not just
        // grumbles.
        std::printf("  routing_context  ERROR: shared/rebuild results diverge (%zu vs %zu)\n",
                    swaps_shared, swaps_rebuild);
        ok = false;
    }
    const double speedup = seconds_shared > 0.0 ? seconds_rebuild / seconds_shared : 0.0;
    std::printf(
        "  routing_context  %-12s %9.1f us/call shared, %9.1f us/call rebuilt (%.2fx)\n",
        device.name.c_str(), seconds_shared * 1e6, seconds_rebuild * 1e6, speedup);
    return json::object{{"arch", device.name},
                        {"reps", reps},
                        {"calls", batch.size()},
                        {"swaps", swaps_shared},
                        {"seconds_shared", seconds_shared},
                        {"seconds_rebuild", seconds_rebuild},
                        {"speedup", speedup}};
}

json::value time_sabre_trials(std::size_t gates, int trials) {
    const auto device = arch::sycamore54();
    const auto instance = make_instance(device, 10, gates);

    // How many threads a request can actually get: the shared pool's
    // size, itself capped by the machine. Speedup numbers measured with
    // fewer than 2 live workers are noise, so they carry an explicit
    // validity flag the regression gate keys off instead of silently
    // gating 1-core runs.
    const std::size_t max_workers = thread_pool::shared().size();
    // Two live workers timesharing one core cannot show a speedup, so
    // scaling is only measurable when the hardware has >= 2 cores too.
    const bool scaling_valid =
        max_workers >= 2 && std::thread::hardware_concurrency() >= 2;

    std::vector<std::size_t> thread_counts = {1, 2,
                                              thread_pool::resolve_threads(0)};
    std::sort(thread_counts.begin(), thread_counts.end());
    thread_counts.erase(std::unique(thread_counts.begin(), thread_counts.end()),
                        thread_counts.end());

    json::array entries;
    double serial_seconds = 0.0;
    for (const std::size_t threads : thread_counts) {
        router::sabre_options options;
        options.trials = trials;
        options.threads = static_cast<int>(threads);
        const std::size_t resolved =
            std::min({threads, max_workers, static_cast<std::size_t>(trials)});
        router::sabre_stats stats;
        stopwatch timer;
        const auto routed =
            router::route_sabre(instance.logical, device.coupling, options, &stats);
        const double seconds = timer.seconds();
        if (threads == 1) serial_seconds = seconds;
        const double speedup = seconds > 0.0 ? serial_seconds / seconds : 0.0;
        std::printf(
            "  route_sabre      %2d trials x %2zu threads (%zu live) %9.3f s  "
            "(speedup %.2fx, best trial %d: %zu swaps)\n",
            trials, threads, resolved, seconds, speedup, stats.best_trial,
            routed.swap_count());
        entries.push_back(json::object{{"threads", threads},
                                       {"resolved_threads", resolved},
                                       {"trials", trials},
                                       {"gates", gates},
                                       {"seconds", seconds},
                                       {"speedup_vs_serial", speedup},
                                       {"best_trial", stats.best_trial},
                                       {"best_swaps", stats.best_swaps}});
    }
    return json::object{{"max_workers", max_workers},
                        {"thread_scaling_valid", scaling_valid},
                        {"entries", std::move(entries)}};
}

json::value time_pool_dispatch(int reps) {
    // Cost of putting a job on the persistent shared pool: many
    // dispatches of a near-empty loop. Before the pool was persistent
    // this number included a pool's worth of thread spawns per call; the
    // gate tracks it so the dispatch path stays cheap.
    const std::size_t range = 64;
    const int calls = 200;
    std::vector<std::size_t> sink(thread_pool::shared().size(), 0);
    const double seconds = best_seconds(reps, [&] {
        for (int c = 0; c < calls; ++c) {
            thread_pool::shared().parallel_for_slots(
                0, range, 0, [&](std::size_t i, std::size_t slot) { sink[slot] += i; });
        }
    });
    const double per_dispatch_us = seconds / calls * 1e6;
    std::printf("  pool_dispatch    %zu workers %11.3f us/dispatch  (%zu indices)\n",
                thread_pool::shared().size(), per_dispatch_us, range);
    return json::object{{"workers", thread_pool::shared().size()},
                        {"indices", range},
                        {"reps", reps},
                        {"calls", calls},
                        {"seconds_per_dispatch", seconds / calls}};
}

json::value time_trial_arena(std::size_t gates, bool& ok) {
    // Steady-state allocation discipline: once a trial slot's arena is
    // warm, additional trials must allocate (almost) nothing. Measured as
    // the marginal heap allocations per extra trial between an 8-trial
    // and a 40-trial serial run — the 32 extra trials reuse one warm
    // arena, so the only allowed allocations are the rare best-trial
    // copies into a grown buffer.
    const auto device = arch::sycamore54();
    const auto instance = make_instance(device, 10, gates);
    const distance_provider dist(device.coupling);

    const auto count_allocs = [&](int trials) {
        router::sabre_options options;
        options.trials = trials;
        options.threads = 1;
        const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
        (void)router::route_sabre(instance.logical, device.coupling, dist, options);
        return g_alloc_count.load(std::memory_order_relaxed) - before;
    };

    const std::size_t allocs_small = count_allocs(8);
    const std::size_t allocs_large = count_allocs(40);
    const double per_extra_trial =
        allocs_large > allocs_small
            ? static_cast<double>(allocs_large - allocs_small) / 32.0
            : 0.0;
    // Generous vs the target of 0: a handful of best-copy reallocations
    // is fine, a per-trial emission_buffer/circuit rebuild (hundreds of
    // allocations each) is the regression this flags.
    const double threshold = 16.0;
    if (per_extra_trial > threshold) {
        std::printf("  trial_arena      ERROR: %.1f allocs per extra trial (limit %.0f)\n",
                    per_extra_trial, threshold);
        ok = false;
    } else {
        std::printf("  trial_arena      %6.2f allocs/extra trial  (8 trials: %zu, 40 trials: %zu)\n",
                    per_extra_trial, allocs_small, allocs_large);
    }
    return json::object{{"gates", gates},
                        {"allocs_8_trials", allocs_small},
                        {"allocs_40_trials", allocs_large},
                        {"allocs_per_extra_trial", per_extra_trial},
                        {"threshold", threshold}};
}

json::value time_sabre_portfolio(std::size_t gates, bool& ok) {
    // The portfolio acceptance check: on the bench circuit, portfolio
    // mode must reach the same best swap count as the plain 32-trial run
    // while spending at most 60% of its trial-pass work. Both runs are
    // serial so pass_decisions is exactly reproducible; the portfolio
    // result itself is thread-count-invariant either way.
    const auto device = arch::sycamore54();
    const auto instance = make_instance(device, 10, gates);
    const distance_provider dist(device.coupling);

    router::sabre_options plain;
    plain.trials = 32;
    plain.threads = 1;
    router::sabre_stats plain_stats;
    const double plain_seconds = best_seconds(1, [&] {
        (void)router::route_sabre(instance.logical, device.coupling, dist, plain, &plain_stats);
    });

    router::sabre_options portfolio = plain;
    portfolio.portfolio = true;
    portfolio.portfolio_patience = 0;  // schedule every trial; cuts do the saving
    router::sabre_stats port_stats;
    const double port_seconds = best_seconds(1, [&] {
        (void)router::route_sabre(instance.logical, device.coupling, dist, portfolio,
                                  &port_stats);
    });

    const double work_ratio =
        plain_stats.pass_decisions > 0
            ? static_cast<double>(port_stats.pass_decisions) /
                  static_cast<double>(plain_stats.pass_decisions)
            : 1.0;
    const bool parity = port_stats.best_swaps == plain_stats.best_swaps;
    std::printf(
        "  sabre_portfolio  %zu vs %zu swaps, work %.1f%% (%zu/%zu decisions), "
        "%zu run / %zu pruned / %zu skipped, %zu waves\n",
        port_stats.best_swaps, plain_stats.best_swaps, work_ratio * 100.0,
        port_stats.pass_decisions, plain_stats.pass_decisions, port_stats.trials_run,
        port_stats.trials_pruned, port_stats.trials_skipped, port_stats.waves);
    if (!parity) {
        std::printf("  sabre_portfolio  ERROR: portfolio lost quality parity\n");
        ok = false;
    }
    return json::object{{"gates", gates},
                        {"trials", 32},
                        {"plain_best_swaps", plain_stats.best_swaps},
                        {"portfolio_best_swaps", port_stats.best_swaps},
                        {"parity", parity},
                        {"plain_pass_decisions", plain_stats.pass_decisions},
                        {"portfolio_pass_decisions", port_stats.pass_decisions},
                        {"work_ratio", work_ratio},
                        {"trials_run", port_stats.trials_run},
                        {"trials_pruned", port_stats.trials_pruned},
                        {"trials_skipped", port_stats.trials_skipped},
                        {"waves", port_stats.waves},
                        {"plain_seconds", plain_seconds},
                        {"portfolio_seconds", port_seconds}};
}

json::value time_score_kernel(int reps, std::size_t gates, bool& ok) {
    // Two claims, measured separately:
    //   1. throughput — the dispatched kernel beats the forced-scalar
    //      baseline on a realistic decision shape (gated at 1.2x by
    //      bench_regression_gate when a vector backend is active);
    //   2. identity — scalar and dispatched backends produce the exact
    //      same scores and the exact same routed circuit.
    const auto device = arch::sycamore54();
    const distance_provider dist(device.coupling);
    const auto n = static_cast<std::uint64_t>(device.num_qubits());
    rng random(2024);

    // A representative decision point: every coupling edge as a
    // candidate, a wide front layer, a full extended set.
    constexpr std::size_t kFront = 24;
    constexpr std::size_t kExt = 20;
    std::vector<std::int32_t> front_p0(kFront);
    std::vector<std::int32_t> front_p1(kFront);
    std::vector<std::int32_t> ext_p0(kExt);
    std::vector<std::int32_t> ext_p1(kExt);
    for (auto& p : front_p0) p = static_cast<std::int32_t>(random.below(n));
    for (auto& p : front_p1) p = static_cast<std::int32_t>(random.below(n));
    for (auto& p : ext_p0) p = static_cast<std::int32_t>(random.below(n));
    for (auto& p : ext_p1) p = static_cast<std::int32_t>(random.below(n));
    const std::vector<double> ext_weight(kExt, 1.0);
    const std::vector<edge>& candidates = device.coupling.edges();

    router::score_batch batch;
    batch.front_p0 = front_p0.data();
    batch.front_p1 = front_p1.data();
    batch.front_gates = kFront;
    batch.ext_p0 = ext_p0.data();
    batch.ext_p1 = ext_p1.data();
    batch.ext_gates = kExt;
    batch.ext_weight = ext_weight.data();
    batch.ext_norm = static_cast<double>(kExt);
    batch.dist = &dist;

    std::vector<double> basic_scalar(candidates.size());
    std::vector<double> la_scalar(candidates.size());
    std::vector<double> basic_auto(candidates.size());
    std::vector<double> la_auto(candidates.size());
    std::vector<std::int32_t> scratch;

    const int calls = 2000;
    router::force_simd_backend(router::simd_backend::scalar);
    const double seconds_scalar = best_seconds(reps, [&] {
        for (int c = 0; c < calls; ++c) {
            router::score_candidates(batch, candidates.data(), candidates.size(),
                                     basic_scalar.data(), la_scalar.data(), scratch);
        }
    });
    router::reset_simd_backend_from_env();
    const router::simd_backend backend = router::active_simd_backend();
    const bool vectorized = backend != router::simd_backend::scalar;
    const double seconds_auto = best_seconds(reps, [&] {
        for (int c = 0; c < calls; ++c) {
            router::score_candidates(batch, candidates.data(), candidates.size(),
                                     basic_auto.data(), la_auto.data(), scratch);
        }
    });
    // Exact double comparison on purpose: the backends promise
    // bit-identical scores, not close ones.
    const bool identical_scores = basic_scalar == basic_auto && la_scalar == la_auto;

    const auto instance = make_instance(device, 10, gates);
    router::sabre_options options;
    options.trials = 4;
    options.threads = 1;
    router::force_simd_backend(router::simd_backend::scalar);
    const auto routed_scalar = router::route_sabre(instance.logical, device.coupling, dist, options);
    router::reset_simd_backend_from_env();
    const auto routed_auto = router::route_sabre(instance.logical, device.coupling, dist, options);
    const bool identical_swaps =
        routed_scalar.swap_count() == routed_auto.swap_count() &&
        routed_scalar.physical.gates() == routed_auto.physical.gates();

    const double speedup = seconds_auto > 0.0 ? seconds_scalar / seconds_auto : 1.0;
    const double floor = 1.2;
    std::printf("  score_kernel     backend %-6s %6.2fx vs scalar (%.0f ns -> %.0f ns per call)%s\n",
                router::simd_backend_name(backend), speedup,
                seconds_scalar / calls * 1e9, seconds_auto / calls * 1e9,
                identical_scores && identical_swaps ? "" : "  ERROR: backends disagree");
    if (!identical_scores || !identical_swaps) ok = false;
    return json::object{{"arch", device.name},
                        {"backend", router::simd_backend_name(backend)},
                        {"vectorized", vectorized},
                        {"candidates", candidates.size()},
                        {"front_gates", kFront},
                        {"ext_gates", kExt},
                        {"calls", calls},
                        {"seconds_scalar_per_call", seconds_scalar / calls},
                        {"seconds_auto_per_call", seconds_auto / calls},
                        {"speedup", speedup},
                        {"speedup_floor", floor},
                        {"identical_scores", identical_scores},
                        {"identical_swaps", identical_swaps},
                        {"swaps", routed_auto.swap_count()}};
}

json::value time_distance_lazy(bool& ok) {
    // Part 1 — equivalence: eagle127 routed through a forced-dense and a
    // forced-lazy provider must produce the identical circuit.
    const auto equiv_device = arch::eagle127();
    const auto instance = make_instance(equiv_device, 10, 400);
    router::sabre_options options;
    options.trials = 2;
    options.threads = 1;
    distance_options dense_opts;
    dense_opts.mode = distance_options::storage_mode::dense;
    distance_options lazy_opts;
    lazy_opts.mode = distance_options::storage_mode::lazy;
    const distance_provider dense_dist(equiv_device.coupling, dense_opts);
    const distance_provider lazy_dist(equiv_device.coupling, lazy_opts);
    const auto routed_dense =
        router::route_sabre(instance.logical, equiv_device.coupling, dense_dist, options);
    const auto routed_lazy =
        router::route_sabre(instance.logical, equiv_device.coupling, lazy_dist, options);
    const bool identical_swaps =
        routed_dense.swap_count() == routed_lazy.swap_count() &&
        routed_dense.physical.gates() == routed_lazy.physical.gates();

    // Part 2 — scale: a 64-qubit workload routed end-to-end on a
    // 2000+-qubit heavy-hex device. The automatic policy must pick the
    // lazy backend, and the route must touch only the rows near the
    // mapped region — never a dense O(V^2) build.
    const auto big = arch::heavy_hex(32, 56);
    const int big_n = big.num_qubits();
    constexpr int kCircuitQubits = 64;
    rng random(7);
    circuit logical(kCircuitQubits);
    for (int i = 0; i < 200; ++i) {
        const int a = static_cast<int>(random.below(kCircuitQubits));
        int b = static_cast<int>(random.below(kCircuitQubits - 1));
        if (b >= a) ++b;
        logical.append(gate::cx(a, b));
    }
    const mapping initial = mapping::identity(kCircuitQubits, big_n);
    const distance_provider big_dist(big.coupling);
    std::size_t big_swaps = 0;
    const double seconds_route = best_seconds(1, [&] {
        big_swaps = router::route_sabre_with_initial(logical, big.coupling, big_dist, initial)
                        .swap_count();
    });
    const double row_fraction =
        static_cast<double>(big_dist.rows_built()) / static_cast<double>(big_n);
    const double max_row_fraction = 0.5;
    const bool lazy_ok = big_dist.is_lazy() && row_fraction <= max_row_fraction;

    std::printf("  distance_lazy    %s: %s; %s (%d qubits): %zu/%d rows (%.1f%%), %.1f ms route%s\n",
                equiv_device.name.c_str(),
                identical_swaps ? "lazy==dense" : "ERROR: lazy!=dense", big.name.c_str(),
                big_n, big_dist.rows_built(), big_n, row_fraction * 100.0,
                seconds_route * 1e3, lazy_ok ? "" : "  ERROR: lazy policy violated");
    if (!identical_swaps || !lazy_ok) ok = false;
    return json::object{{"equiv_arch", equiv_device.name},
                        {"identical_swaps", identical_swaps},
                        {"equiv_swaps", routed_lazy.swap_count()},
                        {"big_arch", big.name},
                        {"big_qubits", big_n},
                        {"circuit_qubits", kCircuitQubits},
                        {"is_lazy", big_dist.is_lazy()},
                        {"rows_built", big_dist.rows_built()},
                        {"row_fraction", row_fraction},
                        {"max_row_fraction", max_row_fraction},
                        {"big_swaps", big_swaps},
                        {"seconds_route", seconds_route}};
}

int run_timed_sections() {
    const bench::scale s = bench::bench_scale();
    const int reps = s == bench::scale::smoke ? 3 : (s == bench::scale::paper ? 50 : 10);
    const std::size_t gates =
        s == bench::scale::smoke ? 300 : (s == bench::scale::paper ? 3000 : 1500);

    bench::print_header("bench_micro: hot-path timed sections",
                        "infrastructure (no paper figure)");
    std::printf("threads available: %zu (QUBIKOS_THREADS overrides)\n\n",
                thread_pool::resolve_threads(0));

    json::object doc;
    doc["schema"] = "qubikos.bench_micro.v2";
    doc["scale"] = bench::scale_name(s);
    // Both recorded: the machine's real core count, and what a thread
    // request of 0 resolves to here (differs when QUBIKOS_THREADS is
    // set) — trajectory comparisons need to tell the two apart.
    doc["hardware_concurrency"] =
        static_cast<std::size_t>(std::thread::hardware_concurrency());
    doc["resolved_threads"] = thread_pool::resolve_threads(0);
    bool ok = true;
    doc["distance_matrix"] = time_distance_matrix(reps);
    doc["candidate_swaps"] = time_candidate_swaps(reps, gates);
    doc["route_pass"] = time_route_pass(reps, gates);
    doc["obs_overhead"] = time_obs_overhead(reps, gates);
    doc["routing_context"] = time_routing_context(reps, ok);
    doc["pool_dispatch"] = time_pool_dispatch(reps);
    doc["trial_arena"] = time_trial_arena(gates, ok);
    doc["route_sabre_trials"] = time_sabre_trials(gates, 32);
    doc["sabre_portfolio"] = time_sabre_portfolio(gates, ok);
    doc["score_kernel"] = time_score_kernel(reps, gates, ok);
    doc["distance_lazy"] = time_distance_lazy(ok);

    const std::string path = "BENCH_micro.json";
    std::ofstream file(path);
    file << json::value(std::move(doc)).dump(2) << "\n";
    file.flush();  // surface deferred write errors before the good() check
    std::printf("\n[raw data: %s]\n", path.c_str());
    return file.good() && ok ? 0 : 1;
}

// --- google-benchmark suite (optional) --------------------------------------

#if defined(QUBIKOS_HAVE_GBENCH)

void bm_generate(benchmark::State& state) {
    const auto& device = device_by_index(static_cast<int>(state.range(0)));
    std::uint64_t seed = 1;
    for (auto _ : state) {
        core::generator_options options;
        options.num_swaps = 10;
        options.total_two_qubit_gates = 500;
        options.seed = seed++;
        benchmark::DoNotOptimize(core::generate(device, options));
    }
    state.SetLabel(device.name);
}
BENCHMARK(bm_generate)->DenseRange(0, 3);

void bm_verify_structure(benchmark::State& state) {
    const auto& device = device_by_index(static_cast<int>(state.range(0)));
    const auto instance = make_instance(device, 10, 500);
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::verify_structure(instance, device));
    }
    state.SetLabel(device.name);
}
BENCHMARK(bm_verify_structure)->DenseRange(0, 3);

void bm_vf2_nonisomorphism(benchmark::State& state) {
    const auto& device = device_by_index(static_cast<int>(state.range(0)));
    const auto instance = make_instance(device, 5, 300);
    std::vector<edge> edges = instance.sections.front().body;
    edges.push_back(instance.sections.front().special);
    const graph gi = interaction_graph_of_edges(device.num_qubits(), edges);
    for (auto _ : state) {
        benchmark::DoNotOptimize(find_subgraph_monomorphism(gi, device.coupling));
    }
    state.SetLabel(device.name);
}
BENCHMARK(bm_vf2_nonisomorphism)->DenseRange(0, 3);

void bm_distance_matrix(benchmark::State& state) {
    const auto& device = device_by_index(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(distance_matrix(device.coupling));
    }
    state.SetLabel(device.name);
}
BENCHMARK(bm_distance_matrix)->DenseRange(0, 3);

void bm_gate_dag(benchmark::State& state) {
    const auto instance = make_instance(arch::sycamore54(), 10, 1500);
    for (auto _ : state) {
        benchmark::DoNotOptimize(gate_dag(instance.logical));
    }
}
BENCHMARK(bm_gate_dag);

void bm_exact_solve_n2(benchmark::State& state) {
    const auto device = arch::aspen4();
    const auto instance = make_instance(device, 2, 30);
    for (auto _ : state) {
        exact::olsq_options options;
        options.max_swaps = 3;
        benchmark::DoNotOptimize(
            exact::solve_optimal(instance.logical, device.coupling, options));
    }
}
BENCHMARK(bm_exact_solve_n2);

void bm_route_sabre_1trial(benchmark::State& state) {
    const auto& device = device_by_index(static_cast<int>(state.range(0)));
    const auto instance =
        make_instance(device, 10, device.num_qubits() > 100 ? 3000 : 500);
    for (auto _ : state) {
        router::sabre_options options;
        options.trials = 1;
        benchmark::DoNotOptimize(
            router::route_sabre(instance.logical, device.coupling, options));
    }
    state.SetLabel(device.name);
}
BENCHMARK(bm_route_sabre_1trial)->DenseRange(0, 3);

void bm_route_tket(benchmark::State& state) {
    const auto device = arch::sycamore54();
    const auto instance = make_instance(device, 10, 1500);
    for (auto _ : state) {
        benchmark::DoNotOptimize(router::route_tket(instance.logical, device.coupling));
    }
}
BENCHMARK(bm_route_tket);

void bm_route_qmap(benchmark::State& state) {
    const auto device = arch::aspen4();
    const auto instance = make_instance(device, 10, 300);
    for (auto _ : state) {
        benchmark::DoNotOptimize(router::route_qmap(instance.logical, device.coupling));
    }
}
BENCHMARK(bm_route_qmap);

void bm_route_mlqls(benchmark::State& state) {
    const auto device = arch::sycamore54();
    const auto instance = make_instance(device, 10, 1500);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            router::route_mlqls(instance.logical, device.coupling, router::mlqls_options{}));
    }
}
BENCHMARK(bm_route_mlqls);

#endif  // QUBIKOS_HAVE_GBENCH

}  // namespace

int main(int argc, char** argv) {
    const int status = run_timed_sections();
    if (status != 0) return status;
#if defined(QUBIKOS_HAVE_GBENCH)
    if (bench::bench_scale() != bench::scale::smoke) {
        std::printf("\n");
        benchmark::Initialize(&argc, argv);
        if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
        benchmark::RunSpecifiedBenchmarks();
    }
#else
    (void)argc;
    (void)argv;
#endif
    return 0;
}
