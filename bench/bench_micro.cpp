// Microbenchmarks (google-benchmark): throughput of the core components.
// Not a paper table — evidence that generation and verification are cheap
// enough to produce suites at the paper's scale (and far beyond).
#include <benchmark/benchmark.h>

#include "arch/architectures.hpp"
#include "circuit/dag.hpp"
#include "circuit/interaction.hpp"
#include "core/qubikos.hpp"
#include "core/verifier.hpp"
#include "exact/olsq.hpp"
#include "graph/distance.hpp"
#include "graph/vf2.hpp"
#include "router/mlqls.hpp"
#include "router/qmap.hpp"
#include "router/sabre.hpp"
#include "router/tket.hpp"

namespace {

using namespace qubikos;

const arch::architecture& device_by_index(int index) {
    static const auto platforms = arch::paper_platforms();
    return platforms[static_cast<std::size_t>(index)];
}

core::benchmark_instance make_instance(const arch::architecture& device, int swaps,
                                       std::size_t gates) {
    core::generator_options options;
    options.num_swaps = swaps;
    options.total_two_qubit_gates = gates;
    options.seed = 99;
    return core::generate(device, options);
}

void bm_generate(benchmark::State& state) {
    const auto& device = device_by_index(static_cast<int>(state.range(0)));
    std::uint64_t seed = 1;
    for (auto _ : state) {
        core::generator_options options;
        options.num_swaps = 10;
        options.total_two_qubit_gates = 500;
        options.seed = seed++;
        benchmark::DoNotOptimize(core::generate(device, options));
    }
    state.SetLabel(device.name);
}
BENCHMARK(bm_generate)->DenseRange(0, 3);

void bm_verify_structure(benchmark::State& state) {
    const auto& device = device_by_index(static_cast<int>(state.range(0)));
    const auto instance = make_instance(device, 10, 500);
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::verify_structure(instance, device));
    }
    state.SetLabel(device.name);
}
BENCHMARK(bm_verify_structure)->DenseRange(0, 3);

void bm_vf2_nonisomorphism(benchmark::State& state) {
    const auto& device = device_by_index(static_cast<int>(state.range(0)));
    const auto instance = make_instance(device, 5, 300);
    std::vector<edge> edges = instance.sections.front().body;
    edges.push_back(instance.sections.front().special);
    const graph gi = interaction_graph_of_edges(device.num_qubits(), edges);
    for (auto _ : state) {
        benchmark::DoNotOptimize(find_subgraph_monomorphism(gi, device.coupling));
    }
    state.SetLabel(device.name);
}
BENCHMARK(bm_vf2_nonisomorphism)->DenseRange(0, 3);

void bm_distance_matrix(benchmark::State& state) {
    const auto& device = device_by_index(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(distance_matrix(device.coupling));
    }
    state.SetLabel(device.name);
}
BENCHMARK(bm_distance_matrix)->DenseRange(0, 3);

void bm_gate_dag(benchmark::State& state) {
    const auto instance = make_instance(arch::sycamore54(), 10, 1500);
    for (auto _ : state) {
        benchmark::DoNotOptimize(gate_dag(instance.logical));
    }
}
BENCHMARK(bm_gate_dag);

void bm_exact_solve_n2(benchmark::State& state) {
    const auto device = arch::aspen4();
    const auto instance = make_instance(device, 2, 30);
    for (auto _ : state) {
        exact::olsq_options options;
        options.max_swaps = 3;
        benchmark::DoNotOptimize(
            exact::solve_optimal(instance.logical, device.coupling, options));
    }
}
BENCHMARK(bm_exact_solve_n2);

void bm_route_sabre_1trial(benchmark::State& state) {
    const auto& device = device_by_index(static_cast<int>(state.range(0)));
    const auto instance =
        make_instance(device, 10, device.num_qubits() > 100 ? 3000 : 500);
    for (auto _ : state) {
        router::sabre_options options;
        options.trials = 1;
        benchmark::DoNotOptimize(
            router::route_sabre(instance.logical, device.coupling, options));
    }
    state.SetLabel(device.name);
}
BENCHMARK(bm_route_sabre_1trial)->DenseRange(0, 3);

void bm_route_tket(benchmark::State& state) {
    const auto device = arch::sycamore54();
    const auto instance = make_instance(device, 10, 1500);
    for (auto _ : state) {
        benchmark::DoNotOptimize(router::route_tket(instance.logical, device.coupling));
    }
}
BENCHMARK(bm_route_tket);

void bm_route_qmap(benchmark::State& state) {
    const auto device = arch::aspen4();
    const auto instance = make_instance(device, 10, 300);
    for (auto _ : state) {
        benchmark::DoNotOptimize(router::route_qmap(instance.logical, device.coupling));
    }
}
BENCHMARK(bm_route_qmap);

void bm_route_mlqls(benchmark::State& state) {
    const auto device = arch::sycamore54();
    const auto instance = make_instance(device, 10, 1500);
    for (auto _ : state) {
        benchmark::DoNotOptimize(router::route_mlqls(instance.logical, device.coupling, {}));
    }
}
BENCHMARK(bm_route_mlqls);

}  // namespace

BENCHMARK_MAIN();
