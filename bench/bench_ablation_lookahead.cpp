// Ablation: lookahead decay factor (the design change Sec. IV-C proposes).
//
// The paper's case study attributes a suboptimal SABRE decision to the
// *uniform* weighting of the 20-gate extended set, and suggests decaying
// the weight of far-away gates. This bench sweeps the decay factor
// lambda over QUBIKOS suites and reports the resulting optimality gap —
// quantifying whether (and where) the proposed fix helps the full tool.
#include <cstdio>

#include "arch/architectures.hpp"
#include "bench_common.hpp"
#include "core/suite.hpp"
#include "eval/harness.hpp"
#include "tools/context.hpp"
#include "tools/registry.hpp"
#include "util/table.hpp"

int main() {
    using namespace qubikos;
    bench::print_header("Ablation: extended-set (lookahead) decay factor in SABRE",
                        "design-choice ablation motivated by Sec. IV-C");

    int per_count = 3;
    int trials = 20;
    switch (bench::bench_scale()) {
        case bench::scale::smoke:
            per_count = 1;
            trials = 4;
            break;
        case bench::scale::standard: break;
        case bench::scale::paper:
            per_count = 10;
            trials = 200;
            break;
    }

    const double lambdas[] = {1.0, 0.9, 0.8, 0.6, 0.4};
    ascii_table table({"arch", "lambda", "mean gap", "avg s/circuit"});
    csv::writer raw({"arch", "lambda", "designed_n", "swap_ratio"});

    for (const auto& device : {arch::aspen4(), arch::sycamore54()}) {
        core::suite_spec spec;
        spec.arch_name = device.name;
        spec.swap_counts = {5, 10, 15, 20};
        spec.circuits_per_count = per_count;
        spec.total_two_qubit_gates = device.num_qubits() > 20 ? 1500 : 300;
        spec.base_seed = 777;
        const core::suite s = core::generate_suite(device, spec);

        // Every lambda variant shares the device's routing context, so
        // the sweep builds the distance matrix once per architecture.
        const auto context = tools::make_routing_context(device.coupling);
        for (const double lambda : lambdas) {
            // The ablation variant comes from the registry — the same
            // "sabre" entry a campaign spec or `--tool sabre:...` selects.
            const std::vector<eval::tool> tools = {tools::make_tool(
                "sabre",
                json::object{{"trials", trials}, {"lookahead_decay", lambda}}, context)};
            const auto result = eval::evaluate_suite(s, device, tools);
            if (result.invalid_runs != 0) {
                std::printf("ERROR: invalid routings at lambda=%.1f\n", lambda);
                return 1;
            }
            double seconds = 0.0;
            for (const auto& cell : result.cells) {
                seconds += cell.average_seconds;
                raw.add(device.name, lambda, cell.designed_swaps, cell.swap_ratio);
            }
            table.add(device.name, ascii_table::num(lambda, 1),
                      ascii_table::num(eval::mean_ratio(result.cells, "sabre"), 2) + "x",
                      ascii_table::num(seconds / 4.0, 3));
        }
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("interpretation: lambda = 1.0 is Qiskit's uniform extended set; smaller\n"
                "lambda emphasizes near-future gates as Sec. IV-C proposes. The effect is\n"
                "instance-dependent — QUBIKOS makes the comparison controlled because the\n"
                "optimum is known exactly.\n");
    bench::save_results(raw, "ablation_lookahead");
    return 0;
}
