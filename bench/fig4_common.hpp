// Shared driver for the four Fig. 4 benches (one per architecture).
//
// Paper setup per architecture: 40 QUBIKOS circuits (10 per designed SWAP
// count in {5,10,15,20}), two-qubit gate count 300 (Aspen-4), 1500
// (Sycamore, Rochester) or 3000 (Eagle); four tools; LightSABRE run with
// 1000 trials. The y-axis is the swap ratio avg/optimal.
//
// Scaled-down defaults preserve the shape (tool ordering and growth with
// architecture size); the banner states the exact configuration used.
#pragma once

#include <cstdio>
#include <map>
#include <string>

#include "arch/architectures.hpp"
#include "bench_common.hpp"
#include "core/suite.hpp"
#include "eval/harness.hpp"
#include "util/table.hpp"

namespace qubikos::bench {

struct fig4_config {
    const char* figure_id;
    arch::architecture device;
    std::size_t gate_target;
    /// Paper-reported per-architecture mean gaps, printed for comparison
    /// ("-" when the paper gives no explicit number for that tool).
    std::map<std::string, std::string> paper_gaps;
};

inline int run_fig4(const fig4_config& config) {
    print_header(("Fig. 4 tool evaluation on " + config.device.name).c_str(),
                 config.figure_id);

    int per_count = 3;
    int sabre_trials = 50;
    switch (bench_scale()) {
        case scale::smoke:
            per_count = 1;
            sabre_trials = 8;
            break;
        case scale::standard:
            per_count = 3;
            sabre_trials = 50;
            break;
        case scale::paper:
            per_count = 10;
            sabre_trials = 1000;
            break;
    }
    // Eagle is ~10x the work per circuit; trim the standard scale so the
    // whole bench suite stays minutes, not hours.
    if (bench_scale() == scale::standard && config.device.num_qubits() > 100) {
        per_count = 2;
        sabre_trials = 24;
    }

    core::suite_spec spec;
    spec.arch_name = config.device.name;
    spec.swap_counts = {5, 10, 15, 20};
    spec.circuits_per_count = per_count;
    spec.total_two_qubit_gates = config.gate_target;
    spec.base_seed = 20250611;

    std::printf("config: %d circuits per swap count, %zu-gate targets, sabre trials %d "
                "(paper: 10 circuits, 1000 trials)\n\n",
                per_count, config.gate_target, sabre_trials);

    const core::suite s = core::generate_suite(config.device, spec);

    eval::toolbox_options toolbox;
    toolbox.sabre_trials = sabre_trials;
    const auto tools = eval::paper_toolbox(toolbox);
    const auto result = eval::evaluate_suite(s, config.device, tools);

    if (result.invalid_runs != 0) {
        std::printf("ERROR: %d invalid routed circuits\n", result.invalid_runs);
        return 1;
    }

    ascii_table table({"tool", "designed n", "avg swaps", "swap ratio", "depth ratio", "avg s"});
    csv::writer raw(
        {"tool", "designed_n", "avg_swaps", "swap_ratio", "depth_ratio", "avg_seconds"});
    for (const auto& cell : result.cells) {
        table.add(cell.tool, cell.designed_swaps, ascii_table::num(cell.average_swaps, 1),
                  ascii_table::num(cell.swap_ratio, 2) + "x",
                  ascii_table::num(cell.average_depth_ratio, 2) + "x",
                  ascii_table::num(cell.average_seconds, 3));
        raw.add(cell.tool, cell.designed_swaps, cell.average_swaps, cell.swap_ratio,
                cell.average_depth_ratio, cell.average_seconds);
    }
    std::printf("%s\n", table.str().c_str());

    ascii_table summary({"tool", "measured mean gap", "paper-reported gap"});
    for (const auto& tool : tools) {
        const auto it = config.paper_gaps.find(tool.name);
        summary.add(tool.name,
                    ascii_table::num(eval::mean_ratio(result.cells, tool.name), 2) + "x",
                    it != config.paper_gaps.end() ? it->second : std::string("-"));
    }
    std::printf("%s\n", summary.str().c_str());
    std::printf("qualitative claims to preserve: sabre-family tools lead; qmap/tket trail by a "
                "wide margin; the gap grows with device size.\n");
    save_results(raw, std::string("fig4_") + config.device.name);
    return 0;
}

}  // namespace qubikos::bench
