// Shared driver for the four Fig. 4 benches (one per architecture).
//
// Paper setup per architecture: 40 QUBIKOS circuits (10 per designed SWAP
// count in {5,10,15,20}), two-qubit gate count 300 (Aspen-4), 1500
// (Sycamore, Rochester) or 3000 (Eagle); four tools; LightSABRE run with
// 1000 trials. The y-axis is the swap ratio avg/optimal.
//
// Scaled-down defaults preserve the shape (tool ordering and growth with
// architecture size); the banner states the exact configuration used.
//
// The bench drives the campaign engine rather than a one-shot
// evaluate_suite call: every (instance, tool) result streams into a
// persistent store under bench_results/campaign/, so an interrupted
// paper-scale run resumes from the last fsync'd batch instead of
// restarting. The (tool x instance) grid runs suite-level parallel on
// QUBIKOS_THREADS with the tools serial; per-record `seconds` is
// thread-CPU time, so the timing column is contention-free at any thread
// count.
#pragma once

#include <cstdio>
#include <map>
#include <string>

#include "arch/architectures.hpp"
#include "bench_common.hpp"
#include "campaign/merge.hpp"
#include "campaign/plan.hpp"
#include "campaign/worker.hpp"
#include "eval/harness.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace qubikos::bench {

struct fig4_config {
    const char* figure_id;
    arch::architecture device;
    std::size_t gate_target;
    /// Paper-reported per-architecture mean gaps, printed for comparison
    /// ("-" when the paper gives no explicit number for that tool).
    std::map<std::string, std::string> paper_gaps;
};

inline int run_fig4(const fig4_config& config) {
    print_header(("Fig. 4 tool evaluation on " + config.device.name).c_str(),
                 config.figure_id);

    int per_count = 3;
    int sabre_trials = 50;
    switch (bench_scale()) {
        case scale::smoke:
            per_count = 1;
            sabre_trials = 8;
            break;
        case scale::standard:
            per_count = 3;
            sabre_trials = 50;
            break;
        case scale::paper:
            per_count = 10;
            sabre_trials = 1000;
            break;
    }
    // Eagle is ~10x the work per circuit; trim the standard scale so the
    // whole bench suite stays minutes, not hours.
    if (bench_scale() == scale::standard && config.device.num_qubits() > 100) {
        per_count = 2;
        sabre_trials = 24;
    }

    campaign::campaign_spec spec;
    spec.name = "fig4_" + config.device.name;
    spec.sabre_trials = sabre_trials;
    core::suite_spec suite;
    suite.arch_name = config.device.name;
    suite.swap_counts = {5, 10, 15, 20};
    suite.circuits_per_count = per_count;
    suite.total_two_qubit_gates = config.gate_target;
    suite.base_seed = 20250611;
    spec.suites.push_back(suite);

    const auto plan = campaign::expand_plan(spec);
    // One store per configuration (QUBIKOS_CAMPAIGN_STORE_DIR overrides
    // the root for fleet runs collected with `campaign pull`).
    const std::string store_dir =
        campaign_store_dir(spec.name, campaign::spec_fingerprint(spec));

    campaign::worker_options worker;
    worker.threads = 0;  // suite-level parallelism; tools stay serial
    std::printf("config: %d circuits per swap count, %zu-gate targets, sabre trials %d "
                "(paper: 10 circuits, 1000 trials)\n",
                per_count, config.gate_target, sabre_trials);
    std::printf("campaign store: %s (%zu units, %zu threads)\n\n", store_dir.c_str(),
                plan.units.size(), thread_pool::resolve_threads(0));

    const auto shard = campaign::run_campaign_shard(plan, store_dir, worker);
    if (shard.skipped != 0) {
        std::printf("resumed: %zu/%zu units already in the store\n\n", shard.skipped,
                    shard.assigned);
    }
    const auto merged = campaign::merge_stores(plan, {store_dir});
    if (merged.invalid_runs != 0 || !merged.complete()) {
        std::printf("ERROR: %d invalid routed circuits, %zu missing units\n",
                    merged.invalid_runs, merged.missing.size());
        return 1;
    }
    const auto cells = eval::aggregate(campaign::merged_records(merged));

    ascii_table table(
        {"tool", "designed n", "avg swaps", "swap ratio", "depth ratio", "avg cpu-s"});
    csv::writer raw(
        {"tool", "designed_n", "avg_swaps", "swap_ratio", "depth_ratio", "avg_cpu_seconds"});
    for (const auto& cell : cells) {
        table.add(cell.tool, cell.designed_swaps, ascii_table::num(cell.average_swaps, 1),
                  ascii_table::num(cell.swap_ratio, 2) + "x",
                  ascii_table::num(cell.average_depth_ratio, 2) + "x",
                  ascii_table::num(cell.average_seconds, 3));
        raw.add(cell.tool, cell.designed_swaps, cell.average_swaps, cell.swap_ratio,
                cell.average_depth_ratio, cell.average_seconds);
    }
    std::printf("%s\n", table.str().c_str());

    ascii_table summary({"tool", "measured mean gap", "paper-reported gap"});
    for (const auto& tool : campaign::resolved_tool_names(spec)) {
        const auto it = config.paper_gaps.find(tool);
        summary.add(tool, ascii_table::num(eval::mean_ratio(cells, tool), 2) + "x",
                    it != config.paper_gaps.end() ? it->second : std::string("-"));
    }
    std::printf("%s\n", summary.str().c_str());
    std::printf("qualitative claims to preserve: sabre-family tools lead; qmap/tket trail by a "
                "wide margin; the gap grows with device size.\n");
    save_results(raw, std::string("fig4_") + config.device.name);
    return 0;
}

}  // namespace qubikos::bench
