// Standalone-router evaluation (Sec. IV-C, closing discussion).
//
// "QUBIKOS can also be utilized to evaluate standalone routers that
// require an initial mapping as input. [...] we can test the routers with
// the optimal initial mapping, and any non-optimal results from the
// routers directly relates to the design of the router itself rather than
// the initial mapping."
//
// This bench hands each router the instance's provably optimal initial
// mapping and measures pure routing quality, isolated from placement.
#include <cstdio>

#include "arch/architectures.hpp"
#include "bench_common.hpp"
#include "core/qubikos.hpp"
#include "router/qmap.hpp"
#include "router/sabre.hpp"
#include "router/tket.hpp"
#include "util/table.hpp"

int main() {
    using namespace qubikos;
    bench::print_header("Standalone-router evaluation from the optimal initial mapping",
                        "Sec. IV-C closing discussion (router-only optimality gaps)");

    int per_config = 10;
    switch (bench::bench_scale()) {
        case bench::scale::smoke: per_config = 3; break;
        case bench::scale::standard: per_config = 10; break;
        case bench::scale::paper: per_config = 40; break;
    }

    ascii_table table({"arch", "router", "designed n", "avg swaps", "routing-only gap"});
    csv::writer raw({"arch", "router", "designed_n", "seed", "swaps"});

    for (const auto& device : {arch::aspen4(), arch::rochester53()}) {
        for (const int swaps : {5, 10}) {
            double sabre_total = 0.0;
            double tket_total = 0.0;
            double qmap_total = 0.0;
            for (int seed = 1; seed <= per_config; ++seed) {
                core::generator_options options;
                options.num_swaps = swaps;
                options.total_two_qubit_gates = device.num_qubits() > 20 ? 600 : 300;
                options.seed =
                    static_cast<std::uint64_t>(seed) + static_cast<std::uint64_t>(swaps) * 1000;
                const auto instance = core::generate(device, options);
                const mapping& optimal_initial = instance.answer.initial;

                const auto sabre = router::route_sabre_with_initial(
                    instance.logical, device.coupling, optimal_initial);
                const auto tket = router::route_tket_with_initial(
                    instance.logical, device.coupling, optimal_initial);
                const auto qmap = router::route_qmap_with_initial(
                    instance.logical, device.coupling, optimal_initial);
                for (const auto& [name, routed] :
                     {std::pair{"sabre", &sabre}, {"tket", &tket}, {"qmap", &qmap}}) {
                    const auto report =
                        validate_routed(instance.logical, *routed, device.coupling);
                    if (!report.valid) {
                        std::printf("ERROR: %s produced invalid routing: %s\n", name,
                                    report.error.c_str());
                        return 1;
                    }
                    raw.add(device.name, name, swaps, seed, report.swap_count);
                }
                sabre_total += static_cast<double>(sabre.swap_count());
                tket_total += static_cast<double>(tket.swap_count());
                qmap_total += static_cast<double>(qmap.swap_count());
            }
            const auto row = [&](const char* name, double total) {
                const double avg = total / per_config;
                table.add(device.name, name, swaps, ascii_table::num(avg, 1),
                          ascii_table::num(avg / swaps, 2) + "x");
            };
            row("sabre", sabre_total);
            row("tket", tket_total);
            row("qmap", qmap_total);
        }
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("paper claim:     even with the optimal initial mapping, routing is\n"
                "                 non-trivial — tools can still deviate (Fig. 5).\n");
    std::printf("measured result: SABRE-style routing is near-optimal from the optimal\n"
                "                 mapping; slice/layer routers still pay overhead — the\n"
                "                 router design itself is what is being measured here.\n");
    bench::save_results(raw, "standalone_routing");
    return 0;
}
