// Concurrency-subsystem tests: the thread pool itself, and the promise
// that every parallel path (SABRE trials, suite evaluation, the flat
// distance matrix) is bit-identical to its serial counterpart.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "arch/architectures.hpp"
#include "core/qubikos.hpp"
#include "core/suite.hpp"
#include "eval/harness.hpp"
#include "graph/bfs.hpp"
#include "graph/distance.hpp"
#include "graph/gen.hpp"
#include "router/sabre.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace qubikos {
namespace {

// --- thread pool ------------------------------------------------------------

TEST(thread_pool, covers_every_index_exactly_once) {
    thread_pool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    constexpr std::size_t n = 10000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(0, n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(thread_pool, single_thread_runs_inline_in_order) {
    thread_pool pool(1);
    std::vector<std::size_t> order;
    pool.parallel_for(3, 8, [&](std::size_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<std::size_t>{3, 4, 5, 6, 7}));
}

TEST(thread_pool, empty_range_is_a_noop) {
    thread_pool pool(2);
    pool.parallel_for(5, 5, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(thread_pool, reusable_across_jobs) {
    thread_pool pool(3);
    for (int round = 0; round < 20; ++round) {
        std::atomic<std::size_t> sum{0};
        pool.parallel_for(0, 100, [&](std::size_t i) { sum.fetch_add(i); });
        EXPECT_EQ(sum.load(), 4950u);
    }
}

TEST(thread_pool, propagates_exceptions) {
    thread_pool pool(2);
    EXPECT_THROW(pool.parallel_for(0, 64,
                                   [](std::size_t i) {
                                       if (i == 13) throw std::runtime_error("boom");
                                   }),
                 std::runtime_error);
}

TEST(thread_pool, env_override_resolves_auto_size) {
    ASSERT_EQ(setenv("QUBIKOS_THREADS", "3", 1), 0);
    EXPECT_EQ(thread_pool::resolve_threads(0), 3u);
    EXPECT_EQ(thread_pool::resolve_threads(7), 7u);  // explicit beats env
    ASSERT_EQ(unsetenv("QUBIKOS_THREADS"), 0);
    EXPECT_GE(thread_pool::resolve_threads(0), 1u);
}

// --- parallel SABRE trials ---------------------------------------------------

TEST(parallel_sabre, identical_output_for_any_thread_count) {
    const auto device = arch::aspen4();
    core::generator_options gen;
    gen.num_swaps = 6;
    gen.total_two_qubit_gates = 120;
    gen.seed = 11;
    const auto instance = core::generate(device, gen);

    // 20 trials > the 16-slot recycling block, so the reduction crosses
    // a block boundary in both the serial and parallel configurations.
    router::sabre_options serial;
    serial.trials = 20;
    serial.seed = 5;
    serial.threads = 1;
    router::sabre_stats serial_stats;
    const auto serial_routed =
        router::route_sabre(instance.logical, device.coupling, serial, &serial_stats);

    for (const int threads : {2, 4}) {
        router::sabre_options parallel = serial;
        parallel.threads = threads;
        router::sabre_stats parallel_stats;
        const auto parallel_routed = router::route_sabre(instance.logical, device.coupling,
                                                         parallel, &parallel_stats);
        EXPECT_EQ(parallel_stats.best_trial, serial_stats.best_trial) << threads;
        EXPECT_EQ(parallel_stats.best_swaps, serial_stats.best_swaps) << threads;
        EXPECT_EQ(parallel_stats.force_routes, serial_stats.force_routes) << threads;
        EXPECT_EQ(parallel_routed.initial, serial_routed.initial) << threads;
        EXPECT_EQ(parallel_routed.physical.gates(), serial_routed.physical.gates())
            << threads;
    }
}

TEST(parallel_sabre, more_threads_than_trials) {
    const auto device = arch::grid(2, 3);
    core::generator_options gen;
    gen.num_swaps = 2;
    gen.seed = 4;
    const auto instance = core::generate(device, gen);

    router::sabre_options one_trial;
    one_trial.trials = 1;
    one_trial.threads = 8;
    router::sabre_options serial = one_trial;
    serial.threads = 1;
    const auto a = router::route_sabre(instance.logical, device.coupling, one_trial);
    const auto b = router::route_sabre(instance.logical, device.coupling, serial);
    EXPECT_EQ(a.initial, b.initial);
    EXPECT_EQ(a.physical.gates(), b.physical.gates());
}

TEST(parallel_sabre, rejects_negative_threads) {
    const auto device = arch::line(3);
    core::generator_options gen;
    gen.num_swaps = 1;
    gen.seed = 1;
    const auto instance = core::generate(device, gen);
    router::sabre_options options;
    options.threads = -1;
    EXPECT_THROW((void)router::route_sabre(instance.logical, device.coupling, options),
                 std::invalid_argument);
}

// --- flat distance matrix ----------------------------------------------------

TEST(flat_distance, matches_naive_bfs_on_random_graphs) {
    rng random(17);
    for (int round = 0; round < 20; ++round) {
        const int n = random.range(2, 40);
        const graph g = random_connected_graph(n, random.range(0, n), random);
        const distance_matrix dist(g);
        ASSERT_EQ(dist.num_vertices(), n);
        for (int v = 0; v < n; ++v) {
            const auto row = bfs_distances(g, {v});
            for (int u = 0; u < n; ++u) {
                ASSERT_EQ(dist(v, u), row[static_cast<std::size_t>(u)])
                    << "round " << round << " pair (" << v << "," << u << ")";
            }
        }
    }
}

TEST(flat_distance, disconnected_pairs_unreachable) {
    graph g(4);
    g.add_edge(0, 1);
    g.add_edge(2, 3);
    const distance_matrix dist(g);
    EXPECT_EQ(dist(0, 1), 1);
    EXPECT_EQ(dist(0, 2), distance_matrix::unreachable());
    EXPECT_EQ(dist(3, 1), distance_matrix::unreachable());
    EXPECT_EQ(dist.diameter(), 1);
}

// --- parallel suite evaluation ----------------------------------------------

TEST(parallel_eval, records_match_serial_order_and_values) {
    const auto device = arch::aspen4();
    core::suite_spec spec;
    spec.arch_name = device.name;
    spec.swap_counts = {2, 3};
    spec.circuits_per_count = 2;
    spec.total_two_qubit_gates = 50;
    spec.base_seed = 9;
    const auto s = core::generate_suite(device, spec);

    eval::toolbox_options toolbox;
    toolbox.sabre.trials = 2;
    toolbox.sabre.threads = 1;  // parallelism lives at the suite level here
    const auto tools = eval::paper_toolbox(toolbox);

    const auto serial = eval::evaluate_suite(s, device, tools, 1);
    const auto parallel = eval::evaluate_suite(s, device, tools, 4);

    EXPECT_EQ(parallel.invalid_runs, serial.invalid_runs);
    ASSERT_EQ(parallel.records.size(), serial.records.size());
    for (std::size_t i = 0; i < serial.records.size(); ++i) {
        EXPECT_EQ(parallel.records[i].tool, serial.records[i].tool) << i;
        EXPECT_EQ(parallel.records[i].designed_swaps, serial.records[i].designed_swaps)
            << i;
        EXPECT_EQ(parallel.records[i].measured_swaps, serial.records[i].measured_swaps)
            << i;
        EXPECT_EQ(parallel.records[i].valid, serial.records[i].valid) << i;
        EXPECT_DOUBLE_EQ(parallel.records[i].depth_ratio, serial.records[i].depth_ratio)
            << i;
    }
    ASSERT_EQ(parallel.cells.size(), serial.cells.size());
    for (std::size_t i = 0; i < serial.cells.size(); ++i) {
        EXPECT_EQ(parallel.cells[i].tool, serial.cells[i].tool) << i;
        EXPECT_DOUBLE_EQ(parallel.cells[i].swap_ratio, serial.cells[i].swap_ratio) << i;
    }
}

}  // namespace
}  // namespace qubikos
