// Concurrency-subsystem tests: the thread pool itself, and the promise
// that every parallel path (SABRE trials, suite evaluation, the flat
// distance matrix) is bit-identical to its serial counterpart.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "arch/architectures.hpp"
#include "core/qubikos.hpp"
#include "core/suite.hpp"
#include "eval/harness.hpp"
#include "graph/bfs.hpp"
#include "graph/distance.hpp"
#include "graph/gen.hpp"
#include "router/sabre.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace qubikos {
namespace {

// --- thread pool ------------------------------------------------------------

TEST(thread_pool, covers_every_index_exactly_once) {
    thread_pool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    constexpr std::size_t n = 10000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(0, n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(thread_pool, single_thread_runs_inline_in_order) {
    thread_pool pool(1);
    std::vector<std::size_t> order;
    pool.parallel_for(3, 8, [&](std::size_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<std::size_t>{3, 4, 5, 6, 7}));
}

TEST(thread_pool, empty_range_is_a_noop) {
    thread_pool pool(2);
    pool.parallel_for(5, 5, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(thread_pool, reusable_across_jobs) {
    thread_pool pool(3);
    for (int round = 0; round < 20; ++round) {
        std::atomic<std::size_t> sum{0};
        pool.parallel_for(0, 100, [&](std::size_t i) { sum.fetch_add(i); });
        EXPECT_EQ(sum.load(), 4950u);
    }
}

TEST(thread_pool, propagates_exceptions) {
    thread_pool pool(2);
    EXPECT_THROW(pool.parallel_for(0, 64,
                                   [](std::size_t i) {
                                       if (i == 13) throw std::runtime_error("boom");
                                   }),
                 std::runtime_error);
}

TEST(thread_pool, cancellation_skips_indices_after_a_throw) {
    // Two participants, two chunks of two. Whoever claims the chunk
    // {0, 1} throws at index 0; the cancellation check before every
    // index guarantees index 1 — same chunk, already claimed — never
    // runs. (The other chunk may or may not run, depending on timing.)
    thread_pool pool(2);
    std::vector<std::atomic<int>> hits(4);
    EXPECT_THROW(pool.parallel_for_slots(0, 4, 0,
                                         [&](std::size_t i, std::size_t) {
                                             if (i == 0) throw std::runtime_error("boom");
                                             hits[i].fetch_add(1);
                                         },
                                         /*chunk=*/2),
                 std::runtime_error);
    EXPECT_EQ(hits[1].load(), 0);
}

TEST(thread_pool, inline_path_stops_at_the_throw) {
    thread_pool pool(1);
    std::vector<int> hits(10, 0);
    EXPECT_THROW(pool.parallel_for(0, 10,
                                   [&](std::size_t i) {
                                       if (i == 5) throw std::runtime_error("boom");
                                       hits[i] = 1;
                                   }),
                 std::runtime_error);
    EXPECT_EQ(hits, (std::vector<int>{1, 1, 1, 1, 1, 0, 0, 0, 0, 0}));
}

TEST(thread_pool, slots_cover_indices_in_ascending_claim_order) {
    // Width-capped chunked dispatch: every index exactly once, slot ids
    // below the cap, and each slot's claims monotonically increasing —
    // the property the per-slot best reduction of route_sabre relies on.
    thread_pool pool(8);
    constexpr std::size_t n = 5000;
    constexpr std::size_t width = 3;
    std::vector<std::vector<std::size_t>> per_slot(width);
    pool.parallel_for_slots(
        0, n, width,
        [&](std::size_t i, std::size_t slot) {
            ASSERT_LT(slot, width);
            per_slot[slot].push_back(i);  // slot-local, no synchronization needed
        },
        /*chunk=*/7);
    std::vector<char> seen(n, 0);
    for (const auto& claimed : per_slot) {
        for (std::size_t k = 0; k < claimed.size(); ++k) {
            if (k > 0) EXPECT_LT(claimed[k - 1], claimed[k]);
            ASSERT_LT(claimed[k], n);
            EXPECT_EQ(seen[claimed[k]], 0) << claimed[k];
            seen[claimed[k]] = 1;
        }
    }
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(seen[i], 1) << i;
}

TEST(thread_pool, shared_pool_supports_nested_parallel_for) {
    // The hot paths all dispatch onto one process-wide pool; a nested
    // publish from inside a running job (evaluate_suite -> route_sabre)
    // must complete rather than deadlock, because publishers always
    // participate in their own jobs.
    auto& pool = thread_pool::shared();
    EXPECT_GE(pool.size(), 1u);
    std::atomic<std::size_t> total{0};
    pool.parallel_for(0, 8, [&](std::size_t) {
        pool.parallel_for(0, 100, [&](std::size_t i) { total.fetch_add(i); });
    });
    EXPECT_EQ(total.load(), 8u * 4950u);
}

TEST(thread_pool, env_override_resolves_auto_size) {
    ASSERT_EQ(setenv("QUBIKOS_THREADS", "3", 1), 0);
    EXPECT_EQ(thread_pool::resolve_threads(0), 3u);
    EXPECT_EQ(thread_pool::resolve_threads(7), 7u);  // explicit beats env
    ASSERT_EQ(unsetenv("QUBIKOS_THREADS"), 0);
    EXPECT_GE(thread_pool::resolve_threads(0), 1u);
}

// --- parallel SABRE trials ---------------------------------------------------

TEST(parallel_sabre, identical_output_for_any_thread_count) {
    const auto device = arch::aspen4();
    core::generator_options gen;
    gen.num_swaps = 6;
    gen.total_two_qubit_gates = 120;
    gen.seed = 11;
    const auto instance = core::generate(device, gen);

    // 20 trials > the 16-slot recycling block, so the reduction crosses
    // a block boundary in both the serial and parallel configurations.
    router::sabre_options serial;
    serial.trials = 20;
    serial.seed = 5;
    serial.threads = 1;
    router::sabre_stats serial_stats;
    const auto serial_routed =
        router::route_sabre(instance.logical, device.coupling, serial, &serial_stats);

    for (const int threads : {2, 4}) {
        router::sabre_options parallel = serial;
        parallel.threads = threads;
        router::sabre_stats parallel_stats;
        const auto parallel_routed = router::route_sabre(instance.logical, device.coupling,
                                                         parallel, &parallel_stats);
        EXPECT_EQ(parallel_stats.best_trial, serial_stats.best_trial) << threads;
        EXPECT_EQ(parallel_stats.best_swaps, serial_stats.best_swaps) << threads;
        EXPECT_EQ(parallel_stats.force_routes, serial_stats.force_routes) << threads;
        EXPECT_EQ(parallel_routed.initial, serial_routed.initial) << threads;
        EXPECT_EQ(parallel_routed.physical.gates(), serial_routed.physical.gates())
            << threads;
    }
}

TEST(parallel_sabre, more_threads_than_trials) {
    const auto device = arch::grid(2, 3);
    core::generator_options gen;
    gen.num_swaps = 2;
    gen.seed = 4;
    const auto instance = core::generate(device, gen);

    router::sabre_options one_trial;
    one_trial.trials = 1;
    one_trial.threads = 8;
    router::sabre_options serial = one_trial;
    serial.threads = 1;
    const auto a = router::route_sabre(instance.logical, device.coupling, one_trial);
    const auto b = router::route_sabre(instance.logical, device.coupling, serial);
    EXPECT_EQ(a.initial, b.initial);
    EXPECT_EQ(a.physical.gates(), b.physical.gates());
}

TEST(parallel_sabre, stats_report_live_arena_slots) {
    // Peak trial-result memory is O(min(threads, trials)): the engine
    // sizes its arenas to the live slots, not the trial count.
    const auto device = arch::aspen4();
    core::generator_options gen;
    gen.num_swaps = 3;
    gen.total_two_qubit_gates = 60;
    gen.seed = 21;
    const auto instance = core::generate(device, gen);

    router::sabre_options options;
    options.trials = 3;
    options.threads = 8;  // more threads than trials: slots clamp to trials
    router::sabre_stats stats;
    (void)router::route_sabre(instance.logical, device.coupling, options, &stats);
    EXPECT_EQ(stats.arena_slots, 3u);
    EXPECT_EQ(stats.trials_run, 3u);
    EXPECT_EQ(stats.trials_pruned, 0u);
    EXPECT_EQ(stats.trials_skipped, 0u);
    EXPECT_GT(stats.pass_decisions, 0u);

    options.trials = 20;
    options.threads = 2;
    (void)router::route_sabre(instance.logical, device.coupling, options, &stats);
    EXPECT_EQ(stats.arena_slots, 2u);
    EXPECT_EQ(stats.trials_run, 20u);
}

// --- portfolio trial scheduler -----------------------------------------------

core::benchmark_instance portfolio_instance() {
    const auto device = arch::sycamore54();
    core::generator_options gen;
    gen.num_swaps = 8;
    gen.total_two_qubit_gates = 200;
    gen.seed = 33;
    return core::generate(device, gen);
}

TEST(portfolio_sabre, deterministic_for_fixed_config_across_thread_counts) {
    const auto device = arch::sycamore54();
    const auto instance = portfolio_instance();

    router::sabre_options options;
    options.trials = 24;
    options.seed = 7;
    options.portfolio = true;
    options.portfolio_wave = 6;
    options.threads = 1;
    router::sabre_stats reference_stats;
    const auto reference =
        router::route_sabre(instance.logical, device.coupling, options, &reference_stats);

    for (const int threads : {2, 4}) {
        options.threads = threads;
        router::sabre_stats stats;
        const auto routed =
            router::route_sabre(instance.logical, device.coupling, options, &stats);
        EXPECT_EQ(stats.best_swaps, reference_stats.best_swaps) << threads;
        EXPECT_EQ(stats.best_trial, reference_stats.best_trial) << threads;
        EXPECT_EQ(stats.waves, reference_stats.waves) << threads;
        EXPECT_EQ(routed.initial, reference.initial) << threads;
        EXPECT_EQ(routed.physical.gates(), reference.physical.gates()) << threads;
    }
}

TEST(portfolio_sabre, incumbent_cuts_alone_preserve_the_plain_result) {
    // With budget cuts disabled and every wave scheduled, the only cut
    // left is the incumbent abort — which is provably sound, so the
    // portfolio must reproduce the plain run's winner exactly (same
    // seeds, same trial count).
    const auto device = arch::sycamore54();
    const auto instance = portfolio_instance();

    router::sabre_options plain;
    plain.trials = 16;
    plain.seed = 3;
    plain.threads = 1;
    router::sabre_stats plain_stats;
    const auto plain_routed =
        router::route_sabre(instance.logical, device.coupling, plain, &plain_stats);

    router::sabre_options portfolio = plain;
    portfolio.portfolio = true;
    portfolio.portfolio_patience = 0;                  // schedule every wave
    portfolio.portfolio_budget_base = 2147483647;      // disable budget cuts
    for (const int threads : {1, 2}) {
        portfolio.threads = threads;
        router::sabre_stats stats;
        const auto routed =
            router::route_sabre(instance.logical, device.coupling, portfolio, &stats);
        EXPECT_EQ(stats.best_swaps, plain_stats.best_swaps) << threads;
        EXPECT_EQ(stats.best_trial, plain_stats.best_trial) << threads;
        EXPECT_EQ(stats.trials_skipped, 0u) << threads;
        EXPECT_EQ(routed.initial, plain_routed.initial) << threads;
        EXPECT_EQ(routed.physical.gates(), plain_routed.physical.gates()) << threads;
        // The saved work shows up as pruned trials, never as a worse result.
        EXPECT_LE(stats.pass_decisions, plain_stats.pass_decisions) << threads;
    }
}

TEST(portfolio_sabre, accounts_for_every_requested_trial) {
    const auto device = arch::sycamore54();
    const auto instance = portfolio_instance();

    router::sabre_options options;
    options.trials = 24;
    options.seed = 5;
    options.threads = 1;
    options.portfolio = true;
    options.portfolio_wave = 4;
    options.portfolio_patience = 1;  // aggressive early stop: skips expected
    router::sabre_stats stats;
    (void)router::route_sabre(instance.logical, device.coupling, options, &stats);
    EXPECT_EQ(stats.trials_run + stats.trials_pruned + stats.trials_skipped, 24u);
    EXPECT_GE(stats.waves, 1u);
    EXPECT_LE(stats.waves, 6u);
    EXPECT_GT(stats.trials_run, 0u);
}

TEST(portfolio_sabre, target_swaps_stops_scheduling) {
    const auto device = arch::sycamore54();
    const auto instance = portfolio_instance();

    router::sabre_options options;
    options.trials = 32;
    options.seed = 5;
    options.threads = 1;
    options.portfolio = true;
    options.portfolio_wave = 4;
    options.portfolio_patience = 0;
    options.portfolio_target_swaps = 1000000;  // any result satisfies the target
    router::sabre_stats stats;
    (void)router::route_sabre(instance.logical, device.coupling, options, &stats);
    // One wave establishes an incumbent below the target; no further
    // waves are scheduled.
    EXPECT_EQ(stats.waves, 1u);
    EXPECT_EQ(stats.trials_skipped, 28u);
}

TEST(portfolio_sabre, rejects_shrinking_budget_growth) {
    const auto device = arch::line(3);
    core::generator_options gen;
    gen.num_swaps = 1;
    gen.seed = 1;
    const auto instance = core::generate(device, gen);
    router::sabre_options options;
    options.portfolio = true;
    options.portfolio_budget_growth = 0.5;
    EXPECT_THROW((void)router::route_sabre(instance.logical, device.coupling, options),
                 std::invalid_argument);
}

TEST(parallel_sabre, rejects_negative_threads) {
    const auto device = arch::line(3);
    core::generator_options gen;
    gen.num_swaps = 1;
    gen.seed = 1;
    const auto instance = core::generate(device, gen);
    router::sabre_options options;
    options.threads = -1;
    EXPECT_THROW((void)router::route_sabre(instance.logical, device.coupling, options),
                 std::invalid_argument);
}

// --- flat distance matrix ----------------------------------------------------

TEST(flat_distance, matches_naive_bfs_on_random_graphs) {
    rng random(17);
    for (int round = 0; round < 20; ++round) {
        const int n = random.range(2, 40);
        const graph g = random_connected_graph(n, random.range(0, n), random);
        const distance_matrix dist(g);
        ASSERT_EQ(dist.num_vertices(), n);
        for (int v = 0; v < n; ++v) {
            const auto row = bfs_distances(g, {v});
            for (int u = 0; u < n; ++u) {
                ASSERT_EQ(dist(v, u), row[static_cast<std::size_t>(u)])
                    << "round " << round << " pair (" << v << "," << u << ")";
            }
        }
    }
}

TEST(flat_distance, disconnected_pairs_unreachable) {
    graph g(4);
    g.add_edge(0, 1);
    g.add_edge(2, 3);
    const distance_matrix dist(g);
    EXPECT_EQ(dist(0, 1), 1);
    EXPECT_EQ(dist(0, 2), distance_matrix::unreachable());
    EXPECT_EQ(dist(3, 1), distance_matrix::unreachable());
    EXPECT_EQ(dist.diameter(), 1);
}

// --- parallel suite evaluation ----------------------------------------------

TEST(parallel_eval, records_match_serial_order_and_values) {
    const auto device = arch::aspen4();
    core::suite_spec spec;
    spec.arch_name = device.name;
    spec.swap_counts = {2, 3};
    spec.circuits_per_count = 2;
    spec.total_two_qubit_gates = 50;
    spec.base_seed = 9;
    const auto s = core::generate_suite(device, spec);

    eval::toolbox_options toolbox;
    toolbox.sabre.trials = 2;
    toolbox.sabre.threads = 1;  // parallelism lives at the suite level here
    const auto tools = eval::paper_toolbox(toolbox);

    const auto serial = eval::evaluate_suite(s, device, tools, 1);
    const auto parallel = eval::evaluate_suite(s, device, tools, 4);

    EXPECT_EQ(parallel.invalid_runs, serial.invalid_runs);
    ASSERT_EQ(parallel.records.size(), serial.records.size());
    for (std::size_t i = 0; i < serial.records.size(); ++i) {
        EXPECT_EQ(parallel.records[i].tool, serial.records[i].tool) << i;
        EXPECT_EQ(parallel.records[i].designed_swaps, serial.records[i].designed_swaps)
            << i;
        EXPECT_EQ(parallel.records[i].measured_swaps, serial.records[i].measured_swaps)
            << i;
        EXPECT_EQ(parallel.records[i].valid, serial.records[i].valid) << i;
        EXPECT_DOUBLE_EQ(parallel.records[i].depth_ratio, serial.records[i].depth_ratio)
            << i;
    }
    ASSERT_EQ(parallel.cells.size(), serial.cells.size());
    for (std::size_t i = 0; i < serial.cells.size(); ++i) {
        EXPECT_EQ(parallel.cells[i].tool, serial.cells[i].tool) << i;
        EXPECT_DOUBLE_EQ(parallel.cells[i].swap_ratio, serial.cells[i].swap_ratio) << i;
    }
}

}  // namespace
}  // namespace qubikos
