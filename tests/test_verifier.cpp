// The structural verifier must reject every corruption of a valid
// instance — these tests mutate instances in targeted ways and check the
// verifier catches each one.
#include <gtest/gtest.h>

#include "arch/architectures.hpp"
#include "core/qubikos.hpp"
#include "core/verifier.hpp"

namespace qubikos {
namespace {

core::benchmark_instance valid_instance() {
    core::generator_options options;
    options.num_swaps = 3;
    options.seed = 123;
    options.total_two_qubit_gates = 60;
    return core::generate(arch::aspen4(), options);
}

TEST(verifier, accepts_valid_instance) {
    const auto report = core::verify_structure(valid_instance(), arch::aspen4());
    EXPECT_TRUE(report.valid) << report.error;
}

TEST(verifier, rejects_wrong_declared_count) {
    auto instance = valid_instance();
    instance.optimal_swaps = 2;
    EXPECT_FALSE(core::verify_structure(instance, arch::aspen4()).valid);
    instance.optimal_swaps = 4;
    EXPECT_FALSE(core::verify_structure(instance, arch::aspen4()).valid);
}

TEST(verifier, rejects_answer_with_missing_swap) {
    auto instance = valid_instance();
    circuit stripped(instance.answer.physical.num_qubits());
    bool removed = false;
    for (const auto& g : instance.answer.physical.gates()) {
        if (!removed && g.is_swap()) {
            removed = true;
            continue;
        }
        stripped.append(g);
    }
    ASSERT_TRUE(removed);
    instance.answer.physical = std::move(stripped);
    EXPECT_FALSE(core::verify_structure(instance, arch::aspen4()).valid);
}

TEST(verifier, rejects_answer_with_dropped_gate) {
    auto instance = valid_instance();
    circuit truncated(instance.answer.physical.num_qubits());
    for (std::size_t i = 0; i + 1 < instance.answer.physical.size(); ++i) {
        truncated.append(instance.answer.physical[i]);
    }
    instance.answer.physical = std::move(truncated);
    EXPECT_FALSE(core::verify_structure(instance, arch::aspen4()).valid);
}

TEST(verifier, rejects_wrong_initial_mapping) {
    auto instance = valid_instance();
    auto q2p = instance.answer.initial.program_to_physical();
    std::swap(q2p[0], q2p[1]);
    instance.answer.initial = mapping::from_program_to_physical(
        q2p, arch::aspen4().coupling.num_vertices());
    EXPECT_FALSE(core::verify_structure(instance, arch::aspen4()).valid);
}

TEST(verifier, rejects_embeddable_section) {
    auto instance = valid_instance();
    // Replace a section's body+special with an embeddable pattern (a
    // single edge): VF2 will find an embedding and V2 must fail.
    auto& section = instance.sections[0];
    section.body = {edge(0, 1)};
    EXPECT_FALSE(core::verify_structure(instance, arch::aspen4()).valid);
}

TEST(verifier, rejects_mismatched_section_count) {
    auto instance = valid_instance();
    instance.sections.pop_back();
    EXPECT_FALSE(core::verify_structure(instance, arch::aspen4()).valid);
}

TEST(verifier, rejects_corrupted_swap_edge) {
    auto instance = valid_instance();
    // Point a section's swap at a different coupling edge: the special
    // gate executability / replayed mappings break.
    const auto device = arch::aspen4();
    const auto& edges = device.coupling.edges();
    for (const auto& e : edges) {
        if (!(e == instance.sections[0].swap_physical)) {
            instance.sections[0].swap_physical = e;
            break;
        }
    }
    EXPECT_FALSE(core::verify_structure(instance, arch::aspen4()).valid);
}

TEST(verifier, error_messages_are_informative) {
    auto instance = valid_instance();
    instance.optimal_swaps = 1;
    const auto report = core::verify_structure(instance, arch::aspen4());
    ASSERT_FALSE(report.valid);
    EXPECT_FALSE(report.error.empty());
    EXPECT_NE(report.error.find("swap"), std::string::npos);
}

}  // namespace
}  // namespace qubikos
