// Property tests for the QUBIKOS generator — the paper's own validation
// loop (Sec. IV-A): every generated instance must pass structural
// verification, and on small architectures both exact engines must
// confirm the designed SWAP count exactly.
#include <gtest/gtest.h>

#include "arch/architectures.hpp"
#include "circuit/qasm.hpp"
#include "core/qubikos.hpp"
#include "core/verifier.hpp"
#include "exact/brute.hpp"
#include "exact/olsq.hpp"

namespace qubikos {
namespace {

struct generator_case {
    const char* arch;
    int swaps;
    std::uint64_t seed;
};

void PrintTo(const generator_case& c, std::ostream* os) {
    *os << c.arch << "/n" << c.swaps << "/s" << c.seed;
}

class generator_small : public ::testing::TestWithParam<generator_case> {};

TEST_P(generator_small, designed_count_confirmed_by_both_exact_engines) {
    const auto& param = GetParam();
    const auto device = arch::by_name(param.arch);
    core::generator_options options;
    options.num_swaps = param.swaps;
    options.seed = param.seed;
    options.total_two_qubit_gates = 20;
    options.single_qubit_rate = 0.15;
    const auto instance = core::generate(device, options);

    const auto structure = core::verify_structure(instance, device);
    ASSERT_TRUE(structure.valid) << structure.error;

    const auto brute =
        exact::brute_force_optimal_swaps(instance.logical, device.coupling, {.max_swaps = 7});
    ASSERT_TRUE(brute.solved);
    EXPECT_EQ(brute.optimal_swaps, param.swaps);

    exact::olsq_options solver;
    solver.max_swaps = param.swaps + 1;
    const auto olsq = exact::solve_optimal(instance.logical, device.coupling, solver);
    ASSERT_TRUE(olsq.solved);
    EXPECT_EQ(olsq.optimal_swaps, param.swaps);
}

INSTANTIATE_TEST_SUITE_P(
    sweep, generator_small,
    ::testing::Values(generator_case{"line4", 1, 1}, generator_case{"line4", 2, 2},
                      generator_case{"line5", 1, 3}, generator_case{"line5", 3, 4},
                      generator_case{"ring5", 2, 5}, generator_case{"ring6", 2, 6},
                      generator_case{"grid2x3", 1, 7}, generator_case{"grid2x3", 2, 8},
                      generator_case{"grid2x3", 3, 9}, generator_case{"line6", 2, 10}));

class generator_platforms : public ::testing::TestWithParam<generator_case> {};

TEST_P(generator_platforms, structure_verified_on_paper_platforms) {
    const auto& param = GetParam();
    const auto device = arch::by_name(param.arch);
    core::generator_options options;
    options.num_swaps = param.swaps;
    options.seed = param.seed;
    options.total_two_qubit_gates = 400;
    const auto instance = core::generate(device, options);

    const auto structure = core::verify_structure(instance, device);
    EXPECT_TRUE(structure.valid) << structure.error;
    EXPECT_EQ(instance.optimal_swaps, param.swaps);
    EXPECT_GE(instance.logical.num_two_qubit_gates(), 400u);
    EXPECT_EQ(instance.sections.size(), static_cast<std::size_t>(param.swaps));
}

INSTANTIATE_TEST_SUITE_P(
    sweep, generator_platforms,
    ::testing::Values(generator_case{"aspen4", 5, 11}, generator_case{"aspen4", 10, 12},
                      generator_case{"sycamore54", 5, 13}, generator_case{"sycamore54", 15, 14},
                      generator_case{"rochester53", 10, 15}, generator_case{"eagle127", 5, 16},
                      generator_case{"grid3x3", 4, 17}));

TEST(generator, deterministic_for_equal_seeds) {
    const auto device = arch::aspen4();
    core::generator_options options;
    options.num_swaps = 3;
    options.seed = 77;
    options.total_two_qubit_gates = 100;
    const auto a = core::generate(device, options);
    const auto b = core::generate(device, options);
    ASSERT_EQ(a.logical.size(), b.logical.size());
    for (std::size_t i = 0; i < a.logical.size(); ++i) EXPECT_EQ(a.logical[i], b.logical[i]);
    EXPECT_EQ(a.answer.initial.program_to_physical(), b.answer.initial.program_to_physical());
    EXPECT_EQ(qasm::write(a.answer.physical), qasm::write(b.answer.physical));
}

TEST(generator, different_seeds_differ) {
    const auto device = arch::aspen4();
    core::generator_options options;
    options.num_swaps = 3;
    options.total_two_qubit_gates = 100;
    options.seed = 1;
    const auto a = core::generate(device, options);
    options.seed = 2;
    const auto b = core::generate(device, options);
    EXPECT_NE(qasm::write(a.logical), qasm::write(b.logical));
}

TEST(generator, padding_reaches_target_count) {
    const auto device = arch::sycamore54();
    core::generator_options options;
    options.num_swaps = 5;
    options.seed = 5;
    options.total_two_qubit_gates = 1500;
    const auto instance = core::generate(device, options);
    EXPECT_GE(instance.logical.num_two_qubit_gates(), 1500u);
    EXPECT_EQ(instance.logical.num_swap_gates(), 0u);  // logical circuit has no swaps
    EXPECT_EQ(instance.answer.physical.num_swap_gates(), 5u);
}

TEST(generator, single_qubit_decoration) {
    const auto device = arch::aspen4();
    core::generator_options options;
    options.num_swaps = 2;
    options.seed = 3;
    options.total_two_qubit_gates = 60;
    options.single_qubit_rate = 0.5;
    const auto instance = core::generate(device, options);
    EXPECT_GE(instance.logical.num_single_qubit_gates(), 25u);
    // Decoration must not break anything.
    const auto structure = core::verify_structure(instance, device);
    EXPECT_TRUE(structure.valid) << structure.error;
}

TEST(generator, zero_swaps_gives_executable_circuit) {
    const auto device = arch::grid(2, 3);
    core::generator_options options;
    options.num_swaps = 0;
    options.seed = 9;
    options.total_two_qubit_gates = 30;
    const auto instance = core::generate(device, options);
    EXPECT_EQ(instance.optimal_swaps, 0);
    const auto report =
        validate_routed(instance.logical, instance.answer, device.coupling);
    EXPECT_TRUE(report.valid) << report.error;
    EXPECT_EQ(report.swap_count, 0u);
    const auto brute = exact::brute_force_optimal_swaps(instance.logical, device.coupling);
    ASSERT_TRUE(brute.solved);
    EXPECT_EQ(brute.optimal_swaps, 0);
}

TEST(generator, rejects_bad_arguments) {
    const auto device = arch::line(4);
    core::generator_options options;
    options.num_swaps = -1;
    EXPECT_THROW((void)core::generate(device, options), core::generator_error);
    options.num_swaps = 1;
    options.single_qubit_rate = -0.5;
    EXPECT_THROW((void)core::generate(device, options), core::generator_error);

    // Complete graphs admit no forcing swap.
    arch::architecture complete{"k4", graph(4)};
    for (int i = 0; i < 4; ++i) {
        for (int j = i + 1; j < 4; ++j) complete.coupling.add_edge(i, j);
    }
    core::generator_options one;
    one.num_swaps = 1;
    EXPECT_THROW((void)core::generate(complete, one), core::generator_error);
}

TEST(generator, sections_record_swap_edges_in_order) {
    const auto device = arch::rochester53();
    core::generator_options options;
    options.num_swaps = 4;
    options.seed = 21;
    const auto instance = core::generate(device, options);
    ASSERT_EQ(instance.sections.size(), 4u);
    // The answer's swap gates must appear in section order.
    std::size_t section_index = 0;
    for (const auto& g : instance.answer.physical.gates()) {
        if (!g.is_swap()) continue;
        ASSERT_LT(section_index, instance.sections.size());
        EXPECT_EQ(edge(g.q0, g.q1), instance.sections[section_index].swap_physical);
        ++section_index;
    }
    EXPECT_EQ(section_index, 4u);
}

}  // namespace
}  // namespace qubikos
