// Routing-service tests: the typed request API, the engine's context
// cache, and the socket server.
//
// The load-bearing guarantees:
//   - a served response is byte-identical to the direct engine/CLI
//     execution of the same request (one code path, pinned here);
//   - malformed requests are rejected loudly with the right structured
//     error code, and never take the server down;
//   - the context cache is purely an optimization (identical responses
//     cached, cold, or evicting) and caches by identity (same
//     shared_ptr on a hit);
//   - concurrent clients each get their own responses, in their own
//     request order;
//   - stop() drains: every request a client got onto the wire before
//     shutdown is answered.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "circuit/qasm.hpp"
#include "core/qubikos.hpp"
#include "serve/engine.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"
#include "tools/registry.hpp"
#include "util/json.hpp"

namespace qubikos {
namespace {

/// Blocking line-oriented client on one end of a socketpair.
class test_client {
public:
    explicit test_client(serve::server& srv) {
        int fds[2] = {-1, -1};
        EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
        fd_ = fds[0];
        srv.add_client(fds[1]);
    }

    ~test_client() {
        if (fd_ >= 0) ::close(fd_);
    }

    void send_line(const std::string& line) {
        const std::string framed = line + "\n";
        std::size_t off = 0;
        while (off < framed.size()) {
            const ssize_t n = ::send(fd_, framed.data() + off, framed.size() - off, 0);
            ASSERT_GT(n, 0);
            off += static_cast<std::size_t>(n);
        }
    }

    /// Reads one '\n'-terminated line (without the newline); "" on EOF.
    std::string read_line() {
        std::string line;
        char b = 0;
        for (;;) {
            const ssize_t n = ::recv(fd_, &b, 1, 0);
            if (n <= 0) return line;
            if (b == '\n') return line;
            line += b;
        }
    }

    void half_close() { ::shutdown(fd_, SHUT_WR); }

private:
    int fd_ = -1;
};

std::string route_line(const std::string& id, const std::string& device, int seed,
                       const std::string& extra = {}) {
    return "{\"id\":\"" + id + "\",\"op\":\"route\",\"device\":\"" + device +
           "\",\"tool\":\"lightsabre\",\"options\":{\"trials\":4},"
           "\"generate\":{\"swaps\":3,\"gates\":40,\"seed\":" +
           std::to_string(seed) + "}" + extra + "}";
}

serve::route_request direct_request(const std::string& id, const std::string& device,
                                    int seed) {
    serve::route_request req;
    req.id = id;
    req.device = device;
    req.tool = "lightsabre";
    json::object options;
    options["trials"] = 4;
    req.options = json::value(std::move(options));
    serve::generator_params gen;
    gen.swaps = 3;
    gen.gates = 40;
    gen.seed = static_cast<std::uint64_t>(seed);
    req.generate = gen;
    return req;
}

std::string error_code_of(const std::string& line) {
    return json::parse(line).at("error").at("code").as_string();
}

// --- request parsing / validation ------------------------------------------

TEST(serve_request, parses_a_full_route_request) {
    const auto req = serve::parse_request(route_line("a1", "grid4x4", 7));
    EXPECT_EQ(req.which, serve::op::route);
    EXPECT_EQ(req.id, "a1");
    EXPECT_EQ(req.route.device, "grid4x4");
    EXPECT_EQ(req.route.tool, "lightsabre");
    ASSERT_TRUE(req.route.generate.has_value());
    EXPECT_EQ(req.route.generate->swaps, 3);
    EXPECT_EQ(req.route.generate->seed, 7u);
    EXPECT_FALSE(req.route.timing);
}

TEST(serve_request, malformed_requests_carry_structured_codes) {
    serve::engine eng;
    const std::vector<std::pair<std::string, std::string>> cases = {
        {"not json", "parse_error"},
        {"[1,2,3]", "parse_error"},
        {"{\"op\":\"route\"}", "bad_request"},                       // missing id
        {"{\"id\":\"\",\"op\":\"route\"}", "bad_request"},           // empty id
        {"{\"id\":\"x\",\"op\":\"frobnicate\"}", "unknown_op"},
        {"{\"id\":\"x\",\"op\":\"route\",\"device\":\"grid3x3\",\"tool\":\"nope\","
         "\"generate\":{\"swaps\":1}}",
         "unknown_tool"},
        {"{\"id\":\"x\",\"op\":\"route\",\"device\":\"grid3x3\",\"tool\":\"lightsabre\","
         "\"options\":{\"trails\":4},\"generate\":{\"swaps\":1}}",
         "bad_option"},  // unknown option key
        {"{\"id\":\"x\",\"op\":\"route\",\"device\":\"grid3x3\",\"tool\":\"lightsabre\","
         "\"options\":{\"trials\":true},\"generate\":{\"swaps\":1}}",
         "bad_option"},  // ill-typed option value
        {"{\"id\":\"x\",\"op\":\"route\",\"device\":\"grid3x3\",\"tool\":\"lightsabre\","
         "\"generate\":{\"swaps\":1.5}}",
         "bad_request"},  // non-integer generator field
        {"{\"id\":\"x\",\"op\":\"route\",\"device\":\"grid3x3\",\"tool\":\"lightsabre\"}",
         "bad_request"},  // neither qasm nor generate
        {"{\"id\":\"x\",\"op\":\"route\",\"device\":\"grid3x3\",\"tool\":\"lightsabre\","
         "\"qasm\":\"\",\"generate\":{\"swaps\":1}}",
         "bad_request"},  // both qasm and generate
        {"{\"id\":\"x\",\"op\":\"route\",\"device\":\"grid3x3\",\"tool\":\"lightsabre\","
         "\"generate\":{\"swaps\":1},\"frobnicate\":1}",
         "bad_request"},  // unknown top-level field
        {"{\"id\":\"x\",\"op\":\"tools\",\"extra\":true}", "bad_request"},
    };
    for (const auto& [line, code] : cases) {
        const std::string resp = serve::handle_line(eng, line);
        const auto doc = json::parse(resp);
        EXPECT_FALSE(doc.at("ok").as_bool()) << line;
        EXPECT_EQ(error_code_of(resp), code) << line;
    }
    // Validation failures after JSON parse still echo the request id.
    const std::string resp =
        serve::handle_line(eng, "{\"id\":\"echo-me\",\"op\":\"frobnicate\"}");
    EXPECT_EQ(json::parse(resp).at("id").as_string(), "echo-me");
}

TEST(serve_request, unknown_device_and_bad_qasm_reject_at_execution) {
    serve::engine eng;
    EXPECT_EQ(error_code_of(serve::handle_line(eng, route_line("x", "atlantis9000", 1))),
              "unknown_device");
    const std::string bad_qasm =
        "{\"id\":\"x\",\"op\":\"route\",\"device\":\"grid3x3\",\"tool\":\"lightsabre\","
        "\"qasm\":\"OPENQASM 2.0; garbage\"}";
    EXPECT_EQ(error_code_of(serve::handle_line(eng, bad_qasm)), "bad_request");
}

TEST(serve_request, response_is_deterministic_and_timing_is_opt_in) {
    serve::engine eng;
    const std::string a = serve::handle_line(eng, route_line("d1", "grid4x4", 7));
    const std::string b = serve::handle_line(eng, route_line("d1", "grid4x4", 7));
    EXPECT_EQ(a, b);  // byte-identical, no wall-clock noise
    EXPECT_EQ(a.find("seconds"), std::string::npos);

    const std::string timed =
        serve::handle_line(eng, route_line("d1", "grid4x4", 7, ",\"timing\":true"));
    EXPECT_NE(json::parse(timed).at("seconds").as_number(), -1.0);
}

TEST(serve_request, route_response_matches_direct_engine_execution) {
    serve::engine eng;
    const std::string wire = serve::handle_line(eng, route_line("m1", "grid4x4", 7));
    const std::string direct = eng.route(direct_request("m1", "grid4x4", 7)).to_json().dump();
    EXPECT_EQ(wire, direct);

    // And the response is truthful: re-derive the expected swap count
    // with a hand-built tool over the same instance.
    core::generator_options gen;
    gen.num_swaps = 3;
    gen.total_two_qubit_gates = 40;
    gen.seed = 7;
    const auto device = arch::by_name("grid4x4");
    const auto instance = core::generate(device, gen);
    json::object options;
    options["trials"] = 4;
    const auto tool = tools::make_tool("lightsabre", json::value(std::move(options)));
    const auto routed = tool.run(instance.logical, device.coupling);
    EXPECT_EQ(json::parse(wire).at("swaps").as_number(),
              static_cast<double>(routed.swap_count()));
    EXPECT_TRUE(json::parse(wire).at("legal").as_bool());
}

TEST(serve_request, emit_qasm_round_trips_the_routed_circuit) {
    serve::engine eng;
    const std::string wire =
        serve::handle_line(eng, route_line("q1", "grid3x3", 3, ",\"emit_qasm\":true"));
    const auto doc = json::parse(wire);
    const circuit physical = qasm::parse(doc.at("qasm").as_string());
    EXPECT_EQ(static_cast<double>(physical.num_swap_gates()), doc.at("swaps").as_number());
}

TEST(serve_request, tools_op_returns_the_registry_document) {
    serve::engine eng;
    const std::string wire = serve::handle_line(eng, "{\"id\":\"t\",\"op\":\"tools\"}");
    const auto doc = json::parse(wire);
    EXPECT_TRUE(doc.at("ok").as_bool());
    EXPECT_EQ(doc.at("registry").dump(), tools::registry_to_json().dump());
}

TEST(serve_request, certify_op_confirms_generated_instances) {
    serve::engine eng;
    const std::string wire = serve::handle_line(
        eng,
        "{\"id\":\"c\",\"op\":\"certify\",\"device\":\"grid3x3\","
        "\"generate\":{\"swaps\":2,\"gates\":20,\"seed\":1}}");
    const auto doc = json::parse(wire);
    EXPECT_TRUE(doc.at("ok").as_bool());
    EXPECT_TRUE(doc.at("confirmed").as_bool());
    EXPECT_EQ(doc.at("declared_swaps").as_number(), 2.0);
    EXPECT_EQ(doc.at("solver_swaps").as_number(), 2.0);
}

// --- engine context cache ---------------------------------------------------

TEST(serve_engine, context_cache_hits_by_identity_and_evicts_lru) {
    serve::engine_options options;
    options.max_cached_devices = 2;
    serve::engine eng(options);

    const auto a1 = eng.device_for("grid3x3");
    const auto a2 = eng.device_for("grid3x3");
    EXPECT_EQ(a1.get(), a2.get());  // cache hit = same entry
    EXPECT_EQ(a1->context.get(), a2->context.get());

    const auto b = eng.device_for("grid4x4");
    (void)b;
    const auto c = eng.device_for("line5");  // evicts grid3x3 (LRU)
    (void)c;
    const auto a3 = eng.device_for("grid3x3");
    EXPECT_NE(a1.get(), a3.get());  // rebuilt after eviction

    const auto stats = eng.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 4u);
    EXPECT_EQ(stats.evictions, 2u);
}

TEST(serve_engine, responses_identical_with_cache_on_and_off) {
    serve::engine cached;
    serve::engine_options cold_options;
    cold_options.cache_contexts = false;
    serve::engine cold(cold_options);

    for (const char* device : {"grid4x4", "grid3x3", "grid4x4"}) {
        const std::string line = route_line("x", device, 5);
        EXPECT_EQ(serve::handle_line(cached, line), serve::handle_line(cold, line)) << device;
    }
    EXPECT_EQ(cold.stats().hits, 0u);
    EXPECT_GT(cached.stats().hits, 0u);
}

// --- socket server ----------------------------------------------------------

TEST(serve_server, round_trips_requests_and_rejects_oversized_lines) {
    serve::engine eng;
    serve::server_options options;
    options.max_line_bytes = 4096;
    serve::server srv(eng, options);
    test_client client(srv);

    const std::string line = route_line("s1", "grid4x4", 7);
    client.send_line(line);
    EXPECT_EQ(client.read_line(), serve::handle_line(eng, line));

    client.send_line(std::string(5000, 'x'));
    EXPECT_EQ(error_code_of(client.read_line()), "oversized_line");

    // The connection survived the oversized line; framing is intact.
    client.send_line(line);
    EXPECT_EQ(client.read_line(), serve::handle_line(eng, line));
}

TEST(serve_server, concurrent_clients_get_ordered_matching_responses) {
    serve::engine eng;
    serve::server srv(eng);
    constexpr int kClients = 4;
    constexpr int kRequests = 6;

    // Expected bytes computed directly, before any serving.
    serve::engine reference;
    std::vector<std::vector<std::string>> expected(kClients);
    for (int c = 0; c < kClients; ++c) {
        for (int r = 0; r < kRequests; ++r) {
            const std::string device = (c + r) % 2 == 0 ? "grid4x4" : "grid3x3";
            expected[c].push_back(serve::handle_line(
                reference, route_line("c" + std::to_string(c) + "-" + std::to_string(r),
                                      device, c * 10 + r + 1)));
        }
    }

    std::vector<std::unique_ptr<test_client>> clients;
    for (int c = 0; c < kClients; ++c) clients.push_back(std::make_unique<test_client>(srv));
    std::vector<std::thread> threads;
    std::vector<int> mismatches(kClients, 0);
    for (int c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
            for (int r = 0; r < kRequests; ++r) {
                const std::string device = (c + r) % 2 == 0 ? "grid4x4" : "grid3x3";
                clients[static_cast<std::size_t>(c)]->send_line(
                    route_line("c" + std::to_string(c) + "-" + std::to_string(r), device,
                               c * 10 + r + 1));
            }
            // Responses come back in request order, bit-for-bit equal to
            // the direct execution.
            for (int r = 0; r < kRequests; ++r) {
                if (clients[static_cast<std::size_t>(c)]->read_line() !=
                    expected[static_cast<std::size_t>(c)][static_cast<std::size_t>(r)]) {
                    ++mismatches[static_cast<std::size_t>(c)];
                }
            }
        });
    }
    for (auto& t : threads) t.join();
    for (int c = 0; c < kClients; ++c) EXPECT_EQ(mismatches[static_cast<std::size_t>(c)], 0);
    EXPECT_EQ(srv.requests_served(), static_cast<std::uint64_t>(kClients * kRequests));
}

TEST(serve_server, stop_drains_queued_requests_before_closing) {
    serve::engine eng;
    serve::server srv(eng);
    test_client client(srv);

    serve::engine reference;
    constexpr int kRequests = 8;
    std::vector<std::string> expected;
    for (int r = 0; r < kRequests; ++r) {
        expected.push_back(
            serve::handle_line(reference, route_line("k" + std::to_string(r), "grid3x3", r + 1)));
    }
    for (int r = 0; r < kRequests; ++r) {
        client.send_line(route_line("k" + std::to_string(r), "grid3x3", r + 1));
    }
    client.half_close();  // everything is on the wire
    srv.stop();           // must answer all of it before closing

    for (int r = 0; r < kRequests; ++r) {
        EXPECT_EQ(client.read_line(), expected[static_cast<std::size_t>(r)]) << r;
    }
    EXPECT_EQ(client.read_line(), "");  // then EOF
}

}  // namespace
}  // namespace qubikos
