// End-to-end smoke tests: the generator's designed swap count must agree
// with both exact engines on small architectures. This is the paper's own
// validation loop (Sec. IV-A) in miniature.
#include <gtest/gtest.h>

#include "arch/architectures.hpp"
#include "core/qubikos.hpp"
#include "core/verifier.hpp"
#include "exact/brute.hpp"
#include "exact/olsq.hpp"

namespace qubikos {
namespace {

TEST(smoke, generator_line4_one_swap_verified_by_both_exact_engines) {
    const auto device = arch::line(4);
    core::generator_options options;
    options.num_swaps = 1;
    options.seed = 7;
    const auto instance = core::generate(device, options);

    const auto report = core::verify_structure(instance, device);
    ASSERT_TRUE(report.valid) << report.error;

    const auto brute = exact::brute_force_optimal_swaps(instance.logical, device.coupling);
    ASSERT_TRUE(brute.solved);
    EXPECT_EQ(brute.optimal_swaps, 1);

    const auto olsq = exact::solve_optimal(instance.logical, device.coupling, {.max_swaps = 3});
    ASSERT_TRUE(olsq.solved);
    EXPECT_EQ(olsq.optimal_swaps, 1);
}

TEST(smoke, generator_grid2x3_two_swaps_verified) {
    const auto device = arch::grid(2, 3);
    core::generator_options options;
    options.num_swaps = 2;
    options.seed = 3;
    const auto instance = core::generate(device, options);

    const auto report = core::verify_structure(instance, device);
    ASSERT_TRUE(report.valid) << report.error;

    const auto brute = exact::brute_force_optimal_swaps(instance.logical, device.coupling);
    ASSERT_TRUE(brute.solved);
    EXPECT_EQ(brute.optimal_swaps, 2);

    const auto olsq = exact::solve_optimal(instance.logical, device.coupling, {.max_swaps = 4});
    ASSERT_TRUE(olsq.solved);
    EXPECT_EQ(olsq.optimal_swaps, 2);
}

}  // namespace
}  // namespace qubikos
