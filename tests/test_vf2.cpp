// Tests for VF2 subgraph monomorphism, including a randomized
// cross-check against the exhaustive reference implementation.
#include <gtest/gtest.h>

#include "graph/gen.hpp"
#include "graph/vf2.hpp"
#include "util/rng.hpp"

namespace qubikos {
namespace {

TEST(vf2, path_embeds_into_grid) {
    const auto result = find_subgraph_monomorphism(path_graph(5), grid_graph(2, 3));
    ASSERT_TRUE(result.found);
    EXPECT_TRUE(check_monomorphism(path_graph(5), grid_graph(2, 3), result.mapping));
}

TEST(vf2, cycle_embeds_into_grid_only_if_even) {
    EXPECT_TRUE(is_subgraph_monomorphic(cycle_graph(4), grid_graph(2, 3)));
    // Grids are bipartite: odd cycles cannot embed.
    EXPECT_FALSE(is_subgraph_monomorphic(cycle_graph(3), grid_graph(3, 3)));
    EXPECT_FALSE(is_subgraph_monomorphic(cycle_graph(5), grid_graph(3, 3)));
    EXPECT_TRUE(is_subgraph_monomorphic(cycle_graph(6), grid_graph(3, 3)));
}

TEST(vf2, degree_obstruction) {
    // A degree-5 hub cannot embed into a max-degree-4 grid — the paper's
    // own example of a non-isomorphic interaction graph (Fig. 2(c)).
    EXPECT_FALSE(is_subgraph_monomorphic(star_graph(5), grid_graph(3, 3)));
    EXPECT_TRUE(is_subgraph_monomorphic(star_graph(4), grid_graph(3, 3)));
}

TEST(vf2, pigeonhole_obstruction) {
    // Two degree-3 hubs sharing no vertex vs a graph with only one
    // degree-3 vertex.
    graph pattern(8);
    for (int leaf = 1; leaf <= 3; ++leaf) pattern.add_edge(0, leaf);
    for (int leaf = 5; leaf <= 7; ++leaf) pattern.add_edge(4, leaf);
    const graph target = star_graph(6);  // one degree-6 hub; leaves degree 1
    EXPECT_FALSE(is_subgraph_monomorphic(pattern, target));
}

TEST(vf2, isolated_pattern_vertices_need_only_room) {
    graph pattern(4);
    pattern.add_edge(0, 1);  // vertices 2, 3 isolated
    EXPECT_TRUE(is_subgraph_monomorphic(pattern, path_graph(4)));
    graph small_target(3);
    small_target.add_edge(0, 1);
    small_target.add_edge(1, 2);
    EXPECT_FALSE(is_subgraph_monomorphic(pattern, small_target));  // not enough vertices
}

TEST(vf2, empty_pattern_embeds) {
    EXPECT_TRUE(is_subgraph_monomorphic(graph(0), path_graph(3)));
    EXPECT_TRUE(is_subgraph_monomorphic(graph(2), path_graph(3)));
}

TEST(vf2, mapping_witness_is_checked) {
    const auto result = find_subgraph_monomorphism(cycle_graph(4), grid_graph(3, 3));
    ASSERT_TRUE(result.found);
    EXPECT_TRUE(check_monomorphism(cycle_graph(4), grid_graph(3, 3), result.mapping));
    // Corrupt the witness.
    auto bad = result.mapping;
    bad[0] = bad[1];
    EXPECT_FALSE(check_monomorphism(cycle_graph(4), grid_graph(3, 3), bad));
    EXPECT_FALSE(check_monomorphism(cycle_graph(4), grid_graph(3, 3), {}));
}

TEST(vf2, node_limit_reports_abort) {
    // A hard instance with a tiny node budget must flag limit_hit instead
    // of concluding.
    rng random(3);
    const graph pattern = random_connected_graph(12, 6, random);
    const graph target = random_connected_graph(20, 40, random);
    vf2_options options;
    options.node_limit = 1;
    const auto result = find_subgraph_monomorphism(pattern, target, options);
    if (!result.found) {
        EXPECT_TRUE(result.limit_hit || result.nodes_explored <= 1);
    }
    EXPECT_THROW(
        {
            vf2_options strict;
            strict.node_limit = 1;
            // Only throws when the limit actually cut the search short.
            const bool answer = is_subgraph_monomorphic(pattern, target, strict);
            (void)answer;
            throw std::runtime_error("searched within one node");
        },
        std::runtime_error);
}

/// Randomized agreement with brute force over seed sweep.
class vf2_random : public ::testing::TestWithParam<int> {};

TEST_P(vf2_random, agrees_with_brute_force) {
    rng random(static_cast<std::uint64_t>(GetParam()));
    for (int trial = 0; trial < 25; ++trial) {
        const int pn = random.range(2, 6);
        const int tn = random.range(pn, 8);
        const graph pattern = random_connected_graph(pn, random.range(0, 4), random);
        const graph target = random_connected_graph(tn, random.range(0, 8), random);
        const auto fast = find_subgraph_monomorphism(pattern, target);
        ASSERT_FALSE(fast.limit_hit);
        const bool slow = brute_force_monomorphic(pattern, target);
        EXPECT_EQ(fast.found, slow) << pattern.describe() << " into " << target.describe();
        if (fast.found) {
            EXPECT_TRUE(check_monomorphism(pattern, target, fast.mapping));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, vf2_random, ::testing::Range(1, 9));

/// Planted embeddings must always be found.
class vf2_planted : public ::testing::TestWithParam<int> {};

TEST_P(vf2_planted, finds_planted_subgraph) {
    rng random(static_cast<std::uint64_t>(GetParam()) * 77);
    const graph target = random_connected_graph(random.range(6, 14), random.range(4, 14), random);
    // Sample a random subset of target edges as the pattern (relabeled).
    const auto relabel = random.permutation(target.num_vertices());
    graph pattern(target.num_vertices());
    for (const auto& e : target.edges()) {
        if (random.chance(0.5)) {
            pattern.add_edge(relabel[static_cast<std::size_t>(e.a)],
                             relabel[static_cast<std::size_t>(e.b)]);
        }
    }
    const auto result = find_subgraph_monomorphism(pattern, target);
    ASSERT_TRUE(result.found) << "planted embedding missed";
    EXPECT_TRUE(check_monomorphism(pattern, target, result.mapping));
}

INSTANTIATE_TEST_SUITE_P(seeds, vf2_planted, ::testing::Range(1, 13));

}  // namespace
}  // namespace qubikos
