// Determinism regression drills for the reporting pipeline (the DET-001
// guarantee): report and profile bytes must be invariant under the order
// records arrive in. Permuting the input order changes every internal
// unordered_map's insertion history — and therefore its iteration order —
// so any code path that iterates a hash table into the output shows up
// here as a byte diff.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "campaign/merge.hpp"
#include "campaign/plan.hpp"
#include "campaign/profile.hpp"
#include "campaign/report.hpp"
#include "campaign/spec.hpp"
#include "campaign/store.hpp"
#include "util/json.hpp"

namespace qubikos {
namespace {

campaign::campaign_spec small_spec() {
    campaign::campaign_spec spec;
    spec.name = "det-drill";
    spec.sabre_trials = 4;
    core::suite_spec suite;
    suite.arch_name = "grid3x3";
    suite.swap_counts = {1, 2};
    suite.circuits_per_count = 2;
    suite.total_two_qubit_gates = 25;
    suite.base_seed = 5;
    spec.suites.push_back(suite);
    return spec;
}

/// Fresh per-test scratch directory (removed up front, not after, so a
/// failing test leaves its store behind for inspection).
std::string scratch_dir(const std::string& name) {
    const auto dir = std::filesystem::temp_directory_path() / "qubikos_determinism_tests" / name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir.string();
}

/// One synthetic success record per plan unit, with deterministic
/// non-trivial metrics so aggregate cells differ from each other.
std::vector<campaign::stored_run> synthetic_runs(const campaign::campaign_plan& plan) {
    std::vector<campaign::stored_run> runs;
    for (std::size_t i = 0; i < plan.units.size(); ++i) {
        const auto& unit = plan.units[i];
        campaign::stored_run run;
        run.unit_id = unit.id;
        run.record.tool = unit.tool;
        run.record.designed_swaps = unit.designed_swaps;
        run.record.measured_swaps = static_cast<std::size_t>(unit.designed_swaps) + i % 3;
        run.record.seconds = 0.0;
        run.record.valid = true;
        run.record.depth_ratio = 1.5;
        run.attempt = 1;
        runs.push_back(std::move(run));
    }
    return runs;
}

/// A metrics sidecar per plan unit, as a worker running with
/// QUBIKOS_OBS=metrics would append.
std::vector<campaign::stored_run> synthetic_metrics(const campaign::campaign_plan& plan) {
    std::vector<campaign::stored_run> sidecars;
    for (std::size_t i = 0; i < plan.units.size(); ++i) {
        campaign::stored_run m;
        m.unit_id = plan.units[i].id;
        json::object obj;
        obj["cpu_seconds"] = json::value(0.25 + static_cast<double>(i));
        obj["sat_propagations"] = json::value(static_cast<double>(100 + i));
        m.metrics = json::value(std::move(obj));
        sidecars.push_back(std::move(m));
    }
    return sidecars;
}

TEST(Determinism, ProfileBytesInvariantUnderRecordOrder) {
    const auto spec = small_spec();
    const auto plan = campaign::expand_plan(spec);
    std::vector<campaign::stored_run> runs = synthetic_runs(plan);
    for (auto& m : synthetic_metrics(plan)) runs.push_back(std::move(m));

    const std::string baseline = campaign::render_profile(plan, runs);
    ASSERT_NE(baseline.find("campaign profile"), std::string::npos);

    std::vector<campaign::stored_run> reversed = runs;
    std::reverse(reversed.begin(), reversed.end());
    EXPECT_EQ(campaign::render_profile(plan, reversed), baseline);

    std::vector<campaign::stored_run> rotated = runs;
    std::rotate(rotated.begin(), rotated.begin() + static_cast<long>(rotated.size() / 3),
                rotated.end());
    EXPECT_EQ(campaign::render_profile(plan, rotated), baseline);
}

TEST(Determinism, ReportBytesInvariantUnderStoreAppendOrder) {
    const auto spec = small_spec();
    const auto plan = campaign::expand_plan(spec);
    const std::vector<campaign::stored_run> runs = synthetic_runs(plan);

    const std::string dir_forward = scratch_dir("store_forward");
    const std::string dir_reversed = scratch_dir("store_reversed");
    {
        campaign::result_store store(dir_forward, spec);
        for (const auto& run : runs) store.append(run);
        store.flush();
    }
    {
        campaign::result_store store(dir_reversed, spec);
        for (auto it = runs.rbegin(); it != runs.rend(); ++it) store.append(*it);
        store.flush();
    }

    const auto merged_forward = campaign::merge_stores(plan, {dir_forward});
    const auto merged_reversed = campaign::merge_stores(plan, {dir_reversed});
    ASSERT_TRUE(merged_forward.complete());
    ASSERT_TRUE(merged_reversed.complete());

    const std::string report_forward = campaign::render_report(plan, merged_forward);
    EXPECT_FALSE(report_forward.empty());
    EXPECT_EQ(campaign::render_report(plan, merged_reversed), report_forward);
}

}  // namespace
}  // namespace qubikos
