// Tests for the OpenQASM 2 subset reader/writer.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "circuit/qasm.hpp"
#include "util/rng.hpp"

namespace qubikos {
namespace {

circuit sample_circuit() {
    circuit c(4);
    c.append(gate::h(0));
    c.append(gate::cx(0, 1));
    c.append(gate::rz(2, 1.25));
    c.append(gate::swap_gate(1, 3));
    c.append(gate::cz(2, 3));
    c.append(gate::single(gate_kind::tdg, 1));
    return c;
}

TEST(qasm, write_contains_expected_statements) {
    const std::string text = qasm::write(sample_circuit());
    EXPECT_NE(text.find("OPENQASM 2.0;"), std::string::npos);
    EXPECT_NE(text.find("qreg q[4];"), std::string::npos);
    EXPECT_NE(text.find("cx q[0],q[1];"), std::string::npos);
    EXPECT_NE(text.find("rz(1.25) q[2];"), std::string::npos);
    EXPECT_NE(text.find("swap q[1],q[3];"), std::string::npos);
}

TEST(qasm, round_trip_preserves_gates) {
    const circuit original = sample_circuit();
    const circuit parsed = qasm::parse(qasm::write(original));
    ASSERT_EQ(parsed.size(), original.size());
    EXPECT_EQ(parsed.num_qubits(), original.num_qubits());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(parsed[i].kind, original[i].kind);
        EXPECT_EQ(parsed[i].q0, original[i].q0);
        EXPECT_EQ(parsed[i].q1, original[i].q1);
        EXPECT_NEAR(parsed[i].angle, original[i].angle, 1e-12);
    }
}

TEST(qasm, random_round_trips) {
    rng random(5);
    for (int trial = 0; trial < 10; ++trial) {
        const int n = random.range(2, 20);
        circuit c(n);
        for (int i = 0; i < 50; ++i) {
            if (random.chance(0.5)) {
                int a = random.range(0, n - 1), b = random.range(0, n - 1);
                if (a == b) continue;
                c.append(random.chance(0.2) ? gate::swap_gate(a, b) : gate::cx(a, b));
            } else {
                c.append(gate::rz(random.range(0, n - 1), random.uniform() * 6.28));
            }
        }
        const circuit back = qasm::parse(qasm::write(c));
        ASSERT_EQ(back.size(), c.size());
        for (std::size_t i = 0; i < c.size(); ++i) {
            EXPECT_EQ(back[i].kind, c[i].kind);
            EXPECT_NEAR(back[i].angle, c[i].angle, 1e-9);
        }
    }
}

TEST(qasm, parses_pi_expressions) {
    const std::string text = R"(OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
rz(pi) q[0];
rz(pi/2) q[0];
rz(-pi/4) q[1];
rz(3*pi/2) q[1];
rz(0.5) q[0];
)";
    const circuit c = qasm::parse(text);
    constexpr double kPi = 3.14159265358979323846;
    EXPECT_NEAR(c[0].angle, kPi, 1e-12);
    EXPECT_NEAR(c[1].angle, kPi / 2, 1e-12);
    EXPECT_NEAR(c[2].angle, -kPi / 4, 1e-12);
    EXPECT_NEAR(c[3].angle, 3 * kPi / 2, 1e-12);
    EXPECT_NEAR(c[4].angle, 0.5, 1e-12);
}

TEST(qasm, ignores_barrier_measure_creg_and_comments) {
    const std::string text = R"(OPENQASM 2.0;
// a benchmark
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0]; // comment after statement
barrier q[0],q[1];
cx q[0],q[1];
measure q[0] -> c[0];
)";
    const circuit c = qasm::parse(text);
    EXPECT_EQ(c.size(), 2u);
    EXPECT_EQ(c[0].kind, gate_kind::h);
    EXPECT_EQ(c[1].kind, gate_kind::cx);
}

TEST(qasm, statements_spanning_lines) {
    const std::string text = "OPENQASM 2.0;\nqreg q[2];\ncx\n q[0],\n q[1];\n";
    const circuit c = qasm::parse(text);
    EXPECT_EQ(c.size(), 1u);
}

TEST(qasm, parse_errors) {
    EXPECT_THROW(qasm::parse(""), std::runtime_error);
    EXPECT_THROW(qasm::parse("qreg q[2];\ncx q[0],q[1];"), std::runtime_error);  // no header
    EXPECT_THROW(qasm::parse("OPENQASM 2.0;\ncx q[0],q[1];"), std::runtime_error);  // no qreg
    EXPECT_THROW(qasm::parse("OPENQASM 2.0;\nqreg q[2];\nccx q[0],q[1];"), std::runtime_error);
    EXPECT_THROW(qasm::parse("OPENQASM 2.0;\nqreg q[2];\ncx q[0];"), std::runtime_error);
    EXPECT_THROW(qasm::parse("OPENQASM 2.0;\nqreg q[2];\nh q[9];"), std::runtime_error);
    EXPECT_THROW(qasm::parse("OPENQASM 2.0;\nqreg q[2];\nh q[0]"), std::runtime_error);  // no ;
    EXPECT_THROW(qasm::parse("OPENQASM 2.0;\nqreg q[2];\nqreg r[2];"), std::runtime_error);
}

TEST(qasm, file_round_trip) {
    const auto path = std::filesystem::temp_directory_path() / "qubikos_qasm_test.qasm";
    qasm::save(sample_circuit(), path.string());
    const circuit loaded = qasm::load(path.string());
    EXPECT_EQ(loaded.size(), sample_circuit().size());
    std::filesystem::remove(path);
    EXPECT_THROW(qasm::load("/nonexistent/nope.qasm"), std::runtime_error);
}

}  // namespace
}  // namespace qubikos
